"""Unit tests for the ECPT walker (repro.ecpt.walker)."""

from repro.ecpt.tables import EcptPageTables
from repro.ecpt.walker import EcptWalker
from repro.mem.allocator import CostModelAllocator
from repro.mem.cache import CacheHierarchy


def make_system():
    tables = EcptPageTables(CostModelAllocator(fmfi=0.1))
    walker = EcptWalker(tables, CacheHierarchy())
    return tables, walker


class TestWalks:
    def test_hit_4k(self):
        tables, walker = make_system()
        tables.map(0x1000, 77)
        result = walker.walk(0x1000)
        assert result.ppn == 77 and result.page_size == "4K"

    def test_hit_2m(self):
        tables, walker = make_system()
        tables.map(512 * 3, 88, "2M")
        result = walker.walk(512 * 3 + 21)
        assert result.ppn == 88 and result.page_size == "2M"

    def test_unmapped_faults(self):
        _tables, walker = make_system()
        assert walker.walk(0x12345).fault

    def test_unmapped_region_skips_probes(self):
        tables, walker = make_system()
        tables.map(0x1000, 1)
        walker.walk(0x1000)
        # A VA in a region with no mappings at all: after the CWT read the
        # walker knows there is nothing to probe.
        result = walker.walk(0x900000)
        assert result.fault

    def test_probes_are_parallel_one_latency(self):
        tables, walker = make_system()
        tables.map(0x2000, 5)
        cold = walker.walk(0x2000)
        warm = walker.walk(0x2000)
        # Cold: CWC miss -> CWT read (DRAM) + parallel probes (DRAM).
        assert cold.cycles == 4 + 200 + 200
        # Warm: CWC hit + all probe lines now cached in L2.
        assert warm.cycles == 4 + 16

    def test_cwc_hit_avoids_cwt_read(self):
        tables, walker = make_system()
        tables.map(0x3000, 5)
        walker.walk(0x3000)
        reads_before = walker.cwt_memory_reads
        walker.walk(0x3000 + 1)  # same 2MB region -> PMD-CWC hit
        assert walker.cwt_memory_reads == reads_before

    def test_coarse_pud_path_on_pmd_cwc_miss(self):
        tables, walker = make_system()
        # Map pages in many distinct 2MB regions to overflow the PMD-CWC
        # (16 entries) while staying in one 1GB region.
        for region in range(64):
            tables.map(region * 512, region)
        for region in range(64):
            result = walker.walk(region * 512)
            assert result.ppn == region
        # The PUD-CWC (1GB granularity) serves most of these walks.
        assert walker.pud_cwc.hits > 0

    def test_cwc_invalidated_on_new_size_in_region(self):
        tables, walker = make_system()
        tables.map(0x4000, 1)
        walker.walk(0x4000)
        # Adding a 2MB page to the same 1GB region changes the CWT entry.
        base_2m = (0x4000 // 512) * 512 + 512  # next 2MB region, same 1GB
        tables.map(base_2m, 2, "2M")
        result = walker.walk(base_2m + 3)
        assert result.page_size == "2M"

    def test_statistics_accumulate(self):
        tables, walker = make_system()
        tables.map(0x5000, 1)
        walker.walk(0x5000)
        walker.walk(0x5000)
        assert walker.walks == 2
        assert walker.mean_walk_cycles() > 0


class TestMixedSizes:
    def test_4k_and_2m_in_same_pud_region(self):
        tables, walker = make_system()
        tables.map(0x100, 1, "4K")
        tables.map(512 * 8, 2, "2M")
        assert walker.walk(0x100).page_size == "4K"
        assert walker.walk(512 * 8 + 1).page_size == "2M"
        assert walker.walk(0x100).ppn == 1

    def test_1g_page_found(self):
        tables, walker = make_system()
        base = (1 << 18) * 5
        tables.map(base, 9, "1G")
        result = walker.walk(base + 777)
        assert result.page_size == "1G" and result.ppn == 9
