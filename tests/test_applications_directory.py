"""Unit tests for the cuckoo directory (repro.applications.directory)."""

import pytest

from repro.applications.directory import CuckooDirectory
from repro.common.errors import ConfigurationError


class TestCoherenceProtocol:
    def test_first_read_is_exclusive(self):
        directory = CuckooDirectory(cores=4)
        directory.record_read(0x100, 2)
        assert directory.state_of(0x100) == "E"
        assert directory.sharers_of(0x100) == 0b0100

    def test_second_reader_shares(self):
        directory = CuckooDirectory(cores=4)
        directory.record_read(0x100, 0)
        directory.record_read(0x100, 1)
        assert directory.state_of(0x100) == "S"
        assert directory.sharers_of(0x100) == 0b0011

    def test_write_invalidates_others(self):
        directory = CuckooDirectory(cores=4)
        directory.record_read(0x100, 0)
        directory.record_read(0x100, 1)
        directory.record_read(0x100, 2)
        mask = directory.record_write(0x100, 1)
        assert mask == 0b0101
        assert directory.state_of(0x100) == "M"
        assert directory.sharers_of(0x100) == 0b0010

    def test_write_to_untracked_line(self):
        directory = CuckooDirectory(cores=2)
        assert directory.record_write(0x200, 0) == 0
        assert directory.state_of(0x200) == "M"

    def test_evict(self):
        directory = CuckooDirectory()
        directory.record_read(0x300, 0)
        assert directory.evict(0x300)
        assert directory.sharers_of(0x300) is None

    def test_core_range_checked(self):
        directory = CuckooDirectory(cores=4)
        with pytest.raises(ConfigurationError):
            directory.record_read(0x1, 4)

    def test_core_count_limits(self):
        with pytest.raises(ConfigurationError):
            CuckooDirectory(cores=65)


class TestSizing:
    def test_grows_with_working_set(self):
        directory = CuckooDirectory(initial_slots=64)
        before = sum(directory.way_sizes())
        for line in range(5000):
            directory.record_read(line * 64, line % 8)
        assert directory.tracked_lines() == 5000
        assert sum(directory.way_sizes()) > before

    def test_shrinks_after_mass_eviction(self):
        directory = CuckooDirectory(initial_slots=64)
        for line in range(5000):
            directory.record_read(line * 64, 0)
        grown = directory.total_bytes()
        for line in range(4900):
            directory.evict(line * 64)
        directory.drain()
        assert directory.total_bytes() < grown
        # Survivors remain valid.
        assert directory.sharers_of(4950 * 64) == 0b1
