"""Versioned reproducer corpus: manifest contract and replay verdicts."""

import json
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.fuzz.corpus import (
    CORPUS_VERSION,
    CorpusEntry,
    add_entry,
    file_sha256,
    load_manifest,
    manifest_path,
    replay_corpus,
    replay_entry,
)
from repro.fuzz.minimize import minimize_trace
from repro.fuzz.runner import CLASS_ABORT_CONTIGUOUS, run_scenario
from repro.fuzz.scenario import make_preset
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.fuzz


@pytest.fixture(scope="module")
def reproducer(tmp_path_factory):
    """A minimized planted-fault reproducer plus its scenario."""
    workdir = str(tmp_path_factory.mktemp("corpus-src"))
    scenario = make_preset("planted-fault", seed=0)
    trace = os.path.join(workdir, "full.vpt")
    scenario.generate_trace(trace)
    outcome = run_scenario(scenario, trace_path=trace, orgs=("ecpt",))
    out = os.path.join(workdir, "repro.vpt")
    minimize_trace(scenario, trace, outcome.failure_class, out, orgs=("ecpt",))
    return scenario, out


@pytest.fixture()
def corpus(reproducer, tmp_path):
    scenario, trace = reproducer
    corpus_dir = str(tmp_path / "corpus")
    add_entry(
        corpus_dir, "planted", trace, scenario,
        CLASS_ABORT_CONTIGUOUS, ["ecpt"], notes="test entry",
    )
    return corpus_dir


class TestManifest:
    def test_add_entry_writes_manifest_and_trace(self, corpus):
        assert os.path.exists(manifest_path(corpus))
        assert os.path.exists(os.path.join(corpus, "planted.vpt"))
        entries = load_manifest(corpus)
        assert [e.name for e in entries] == ["planted"]
        entry = entries[0]
        assert entry.failure_class == CLASS_ABORT_CONTIGUOUS
        assert entry.affected_orgs == ["ecpt"]
        assert entry.sha256 == file_sha256(os.path.join(corpus, entry.trace))
        assert entry.records > 0
        assert entry.scenario["name"] == "planted-fault"

    def test_readd_replaces_entry(self, corpus, reproducer):
        scenario, trace = reproducer
        add_entry(
            corpus, "planted", trace, scenario,
            CLASS_ABORT_CONTIGUOUS, ["ecpt"], notes="updated",
        )
        entries = load_manifest(corpus)
        assert len(entries) == 1
        assert entries[0].notes == "updated"

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no corpus manifest"):
            load_manifest(str(tmp_path / "nowhere"))

    def test_future_version_rejected(self, corpus):
        path = manifest_path(corpus)
        raw = json.loads(open(path).read())
        raw["version"] = CORPUS_VERSION + 1
        with open(path, "w") as handle:
            json.dump(raw, handle)
        with pytest.raises(ConfigurationError, match="newer than supported"):
            load_manifest(corpus)

    def test_non_integer_version_rejected(self, corpus):
        path = manifest_path(corpus)
        raw = json.loads(open(path).read())
        raw["version"] = "one"
        with open(path, "w") as handle:
            json.dump(raw, handle)
        with pytest.raises(ConfigurationError, match="version"):
            load_manifest(corpus)

    def test_malformed_entry_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            CorpusEntry.from_dict({"name": "x"})

    def test_entry_round_trip(self, corpus):
        entry = load_manifest(corpus)[0]
        assert CorpusEntry.from_dict(entry.to_dict()) == entry


class TestReplay:
    def test_replay_matches_manifest(self, corpus):
        registry = MetricsRegistry()
        results = replay_corpus(
            corpus, orgs=("ecpt",), check_divergence=True, registry=registry,
        )
        assert len(results) == 1
        assert results[0].ok, results[0].detail
        assert results[0].got_class == CLASS_ABORT_CONTIGUOUS
        snapshot = registry.snapshot()
        assert snapshot["fuzz.corpus_replays"]["value"] == 1
        assert "fuzz.corpus_mismatches" not in snapshot

    def test_corrupt_trace_detected(self, corpus):
        entry = load_manifest(corpus)[0]
        with open(os.path.join(corpus, entry.trace), "r+b") as handle:
            handle.seek(30)
            handle.write(b"\xff\xff\xff")
        result = replay_entry(corpus, entry, orgs=("ecpt",))
        assert not result.ok
        assert result.got_class == "corrupt"
        assert "sha256" in result.detail

    def test_missing_trace_detected(self, corpus):
        entry = load_manifest(corpus)[0]
        os.unlink(os.path.join(corpus, entry.trace))
        result = replay_entry(corpus, entry, orgs=("ecpt",))
        assert not result.ok
        assert result.got_class == "missing"

    def test_class_drift_detected(self, corpus, registry=None):
        entry = load_manifest(corpus)[0]
        entry.failure_class = "abort:l2p"
        registry = MetricsRegistry()
        result = replay_entry(corpus, entry, orgs=("ecpt",), registry=registry)
        assert not result.ok
        assert "expected abort:l2p" in result.detail
        assert registry.snapshot()["fuzz.corpus_mismatches"]["value"] == 1


CHECKED_IN_CORPUS = os.path.join(os.path.dirname(__file__), "..", "corpus")


class TestCheckedInCorpus:
    """The repository's own ``corpus/`` must replay green (the CI gate)."""

    def test_manifest_spans_required_classes(self):
        entries = load_manifest(CHECKED_IN_CORPUS)
        assert len(entries) >= 5
        classes = {e.failure_class for e in entries}
        assert len(classes) >= 3, classes

    def test_checked_in_corpus_replays_green(self):
        results = replay_corpus(CHECKED_IN_CORPUS, check_divergence=True)
        bad = [r for r in results if not r.ok]
        assert not bad, [(r.name, r.detail) for r in bad]
        # Divergence coverage: every replayed organization ran both
        # scalar and vectorized engines on the reproducer.
        for result in results:
            for org_outcome in result.outcome.outcomes.values():
                assert org_outcome.divergence_checked

    def test_resilience_sweep_attaches_corpus_replays(self, corpus):
        from repro.experiments.resilience import format_result, run

        result = run(fmfi_points=(0.0,), corpus_dir=corpus)
        assert len(result.corpus_replays) == 1
        assert result.corpus_ok()
        text = format_result(result)
        assert "Adversarial corpus: 1/1" in text
