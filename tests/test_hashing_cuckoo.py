"""Unit tests for the elastic cuckoo engine (repro.hashing.cuckoo)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hashing.cuckoo import ElasticCuckooTable
from tests.conftest import make_chunked_table, make_contiguous_table


class TestBasicOperations:
    def test_insert_lookup(self, contiguous_table):
        contiguous_table.insert(10, "a")
        contiguous_table.insert(20, "b")
        assert contiguous_table.lookup(10) == "a"
        assert contiguous_table.lookup(20) == "b"
        assert contiguous_table.lookup(30) is None

    def test_insert_updates_existing(self, contiguous_table):
        contiguous_table.insert(10, "a")
        contiguous_table.insert(10, "b")
        assert contiguous_table.lookup(10) == "b"
        assert len(contiguous_table) == 1
        assert contiguous_table.stats.updates == 1

    def test_delete(self, contiguous_table):
        contiguous_table.insert(10, "a")
        assert contiguous_table.delete(10)
        assert contiguous_table.lookup(10) is None
        assert not contiguous_table.delete(10)
        assert len(contiguous_table) == 0

    def test_contains(self, contiguous_table):
        contiguous_table.insert(5, "x")
        assert 5 in contiguous_table
        assert 6 not in contiguous_table

    def test_items_yield_everything(self, contiguous_table):
        expected = {k: k * 2 for k in range(30)}
        for key, value in expected.items():
            contiguous_table.insert(key, value)
        assert dict(contiguous_table.items()) == expected

    def test_needs_at_least_two_ways(self):
        with pytest.raises(ConfigurationError):
            make_contiguous_table(ways=1)


class TestResizingOutOfPlace:
    """ECPT-style behaviour: contiguous ways resize out of place."""

    def test_upsize_triggers_at_threshold(self):
        table = make_contiguous_table(initial_slots=16)
        for key in range(40):
            table.insert(key, key)
        assert all(way.size > 16 for way in table.ways)
        assert all(way.upsizes >= 1 for way in table.ways)
        table.check_invariants()

    def test_all_ways_resize_together(self):
        table = make_contiguous_table(initial_slots=16)
        for key in range(200):
            table.insert(key, key)
        table.drain()
        sizes = {way.size for way in table.ways}
        assert len(sizes) == 1  # all-way policy keeps them equal

    def test_lookup_during_gradual_resize(self):
        table = make_contiguous_table(initial_slots=64)
        keys = list(range(120))
        for key in keys:
            table.insert(key, key * 3)
        # At least one way should still be mid-resize right after trigger.
        for key in keys:
            assert table.lookup(key) == key * 3
        table.check_invariants()

    def test_out_of_place_moves_everything(self):
        table = make_contiguous_table(initial_slots=16)
        for key in range(100):
            table.insert(key, key)
        table.drain()
        for way in table.ways:
            if way.rehash_examined:
                assert way.moved_fraction() == 1.0

    def test_old_storage_released_after_drain(self):
        table = make_contiguous_table(initial_slots=16)
        for key in range(100):
            table.insert(key, key)
        table.drain()
        assert all(way.old_storage is None for way in table.ways)

    def test_peak_counts_old_plus_new(self):
        table = make_contiguous_table(initial_slots=64)
        for key in range(110):
            table.insert(key, key)
        # Peak during out-of-place resize is at least old+new of one way.
        assert table.peak_bytes > table.ways[0].size * 64 * len(table.ways) / 2


class TestResizingInPlace:
    """ME-HPT-style behaviour: chunked ways resize in place."""

    def test_inplace_upsize_keeps_half_in_place(self):
        table = make_chunked_table(initial_slots=64)
        for key in range(2000):
            table.insert(key, key)
        table.drain()
        fractions = [w.moved_fraction() for w in table.ways if w.rehash_examined > 100]
        assert fractions, "no way rehashed enough entries"
        for fraction in fractions:
            assert 0.4 < fraction < 0.6

    def test_no_old_storage_in_inplace_resize(self):
        table = make_chunked_table(initial_slots=16)
        for key in range(40):
            table.insert(key, key)
        resizing = [w for w in table.ways if w.resizing]
        for way in resizing:
            assert way.old_storage is None

    def test_lookups_correct_through_resizes(self):
        table = make_chunked_table(initial_slots=16)
        for key in range(3000):
            table.insert(key, key + 7)
            if key % 500 == 0:
                table.check_invariants()
        for key in range(0, 3000, 17):
            assert table.lookup(key) == key + 7

    def test_inplace_flag_disables_inplace(self):
        table = make_chunked_table(initial_slots=16)
        table.inplace_enabled = False
        for key in range(200):
            table.insert(key, key)
        table.drain()
        assert all(way.inplace_upsizes == 0 for way in table.ways)
        assert any(way.upsizes > 0 for way in table.ways)


class TestDownsizing:
    def test_downsize_after_deletes(self):
        table = make_contiguous_table(initial_slots=16)
        for key in range(300):
            table.insert(key, key)
        table.drain()
        size_before = table.ways[0].size
        for key in range(290):
            table.delete(key)
        table.drain()
        assert table.ways[0].size < size_before
        for key in range(290, 300):
            assert table.lookup(key) == key
        table.check_invariants()

    def test_never_below_min_way_slots(self):
        table = make_contiguous_table(initial_slots=16)
        for key in range(50):
            table.insert(key, key)
        for key in range(50):
            table.delete(key)
        table.drain()
        assert all(way.size >= 16 for way in table.ways)

    def test_inplace_downsize_shrinks_storage(self):
        table = make_chunked_table(initial_slots=16, chunk_bytes=1024)
        for key in range(2000):
            table.insert(key, key)
        table.drain()
        bytes_before = table.total_bytes()
        for key in range(1900):
            table.delete(key)
        table.drain()
        assert table.total_bytes() < bytes_before
        table.check_invariants()

    def test_downsize_disabled(self):
        table = make_contiguous_table(initial_slots=16, allow_downsize=False)
        for key in range(300):
            table.insert(key, key)
        table.drain()
        size = table.ways[0].size
        for key in range(300):
            table.delete(key)
        assert table.ways[0].size == size


class TestKickAccounting:
    def test_kick_histogram_populated(self):
        table = make_contiguous_table(initial_slots=64)
        for key in range(500):
            table.insert(key, key)
        stats = table.stats
        assert stats.total_kick_samples() >= 500
        assert stats.kick_histogram[0] > 0
        assert 0.0 <= stats.mean_kicks() < 3.0

    def test_distribution_sums_to_one(self):
        table = make_contiguous_table(initial_slots=64)
        for key in range(500):
            table.insert(key, key)
        dist = table.stats.kick_distribution()
        assert abs(sum(dist) - 1.0) < 1e-9


class TestEagerMigration:
    def test_factory_none_triggers_eager_migration(self):
        calls = {"count": 0}
        table = make_chunked_table(initial_slots=16)

        original_factory = table.storage_factory

        def flaky_factory(way, slots):
            calls["count"] += 1
            if calls["count"] % 2 == 1:
                return None  # force the eager path every other resize
            return original_factory(way, slots)

        table.storage_factory = flaky_factory
        table.inplace_enabled = False  # force out-of-place, exercising factory
        for key in range(500):
            table.insert(key, key)
        table.drain()
        assert table.stats.eager_migrations > 0
        for key in range(0, 500, 13):
            assert table.lookup(key) == key
        table.check_invariants()
