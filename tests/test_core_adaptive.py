"""Unit tests for the adaptive chunk policy (repro.core.adaptive)."""

import pytest

from repro.common.errors import ConfigurationError, L2POverflowError
from repro.common.units import KB, MB
from repro.core.adaptive import AdaptiveChunkPolicy
from repro.core.chunks import ChunkLadder
from repro.core.mehpt import MeHptPageTables
from repro.mem.allocator import CostModelAllocator


class TestPrediction:
    def test_no_history_no_extrapolation(self):
        policy = AdaptiveChunkPolicy()
        assert policy.predict_final_way_bytes(1 * MB, recent_upsizes=0) == 1 * MB

    def test_momentum_extrapolates(self):
        policy = AdaptiveChunkPolicy(growth_lookahead=2)
        assert policy.predict_final_way_bytes(1 * MB, recent_upsizes=5) == 4 * MB

    def test_lookahead_caps_extrapolation(self):
        policy = AdaptiveChunkPolicy(growth_lookahead=1)
        assert policy.predict_final_way_bytes(1 * MB, recent_upsizes=10) == 2 * MB

    def test_negative_lookahead_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveChunkPolicy(growth_lookahead=-1)


class TestSelection:
    def test_never_shrinks_chunks(self):
        policy = AdaptiveChunkPolicy(fmfi=0.1)
        assert policy.choose(2 * MB, current_chunk=1 * MB) >= 8 * MB

    def test_low_fragmentation_prefers_large_chunks(self):
        # At FMFI 0.1 big chunks are cheap: one 8MB chunk beats eight 1MB
        # ones for a way predicted to keep growing.
        policy = AdaptiveChunkPolicy(fmfi=0.1, growth_lookahead=2)
        choice = policy.choose(1 * MB, current_chunk=8 * KB, recent_upsizes=8)
        assert choice >= 1 * MB

    def test_high_fragmentation_avoids_failing_sizes(self):
        # Above 0.7 FMFI a 64MB chunk can fail outright: never chosen.
        policy = AdaptiveChunkPolicy(fmfi=0.75)
        choice = policy.choose(100 * MB, current_chunk=1 * MB, recent_upsizes=8)
        assert choice == 8 * MB

    def test_safe_choice_respects_budget(self):
        # A 1GB way cannot be covered by 8MB chunks (64 x 8MB = 512MB);
        # at high fragmentation 64MB chunks are unsafe -> no safe size.
        policy = AdaptiveChunkPolicy(fmfi=0.75)
        with pytest.raises(L2POverflowError):
            policy.choose(1024 * MB, current_chunk=8 * MB)

    def test_ladder_top_exhausted(self):
        policy = AdaptiveChunkPolicy(ladder=ChunkLadder([8 * KB, 1 * MB]))
        with pytest.raises(L2POverflowError):
            policy.choose(2 * MB, current_chunk=1 * MB)

    def test_decisions_recorded(self):
        policy = AdaptiveChunkPolicy(fmfi=0.3)
        policy.choose(1 * MB, current_chunk=8 * KB)
        assert len(policy.decisions) == 1


class TestIntegrationWithMeHpt:
    def _grow(self, policy, blocks=40_000):
        tables = MeHptPageTables(
            CostModelAllocator(fmfi=policy.fmfi if policy else 0.3),
            adaptive_policy=policy,
        )
        for i in range(blocks):
            tables.map(0x1000 + i * 8, i)
        return tables

    def test_adaptive_tables_stay_correct(self):
        policy = AdaptiveChunkPolicy(fmfi=0.3)
        tables = self._grow(policy)
        for i in range(0, 40_000, 977):
            assert tables.translate(0x1000 + i * 8) is not None
        assert policy.decisions  # transitions actually consulted the policy

    def test_low_fragmentation_jumps_ladder_rungs(self):
        # With cheap allocations and strong growth momentum, the policy
        # may skip 1MB and go straight to a larger chunk.
        eager = AdaptiveChunkPolicy(fmfi=0.05, growth_lookahead=3)
        tables = self._grow(eager)
        assert max(tables.chunk_bytes_per_way("4K")) >= 1 * MB

    def test_high_fragmentation_matches_fixed_ladder_safety(self):
        policy = AdaptiveChunkPolicy(fmfi=0.75)
        tables = self._grow(policy)
        # Never allocated anything that can fail above 0.7 FMFI.
        assert tables.max_contiguous_bytes() < 64 * MB
