"""Unit tests for the admission queue: priority, fairness, back-pressure.

The queue is a plain data structure (no asyncio, no processes), so every
scheduling property the service documents in SERVING.md is pinned here
directly: strict priority draining, round-robin fairness within a
priority, both admission bounds, targeted removal, and the retry-after
estimate fed by observed service times.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.serve.queue import AdmissionError, FairPriorityQueue

pytestmark = pytest.mark.serve


class TestPriorityOrdering:
    """Lower priority values always drain first."""

    def test_strict_priority_before_fifo(self):
        q = FairPriorityQueue()
        q.push("batch", "a", 2, "batch-job")
        q.push("normal", "a", 1, "normal-job")
        q.push("interactive", "a", 0, "interactive-job")
        assert [q.pop()[0] for _ in range(3)] == [
            "interactive", "normal", "batch",
        ]

    def test_fifo_within_one_client_and_priority(self):
        q = FairPriorityQueue()
        for n in range(4):
            q.push(f"job-{n}", "a", 1, n)
        assert [q.pop()[0] for _ in range(4)] == [
            "job-0", "job-1", "job-2", "job-3",
        ]

    def test_pop_empty_returns_none(self):
        assert FairPriorityQueue().pop() is None


class TestClientFairness:
    """Within a priority, clients are served round-robin."""

    def test_burst_client_cannot_starve_others(self):
        q = FairPriorityQueue()
        for n in range(10):
            q.push(f"big-{n}", "big", 1, n)
        q.push("small-0", "small", 1, "x")
        # The small client's single job is served second, not eleventh.
        drained = [q.pop()[0] for _ in range(3)]
        assert drained == ["big-0", "small-0", "big-1"]

    def test_three_clients_interleave(self):
        q = FairPriorityQueue()
        for client in ("a", "b", "c"):
            for n in range(2):
                q.push(f"{client}{n}", client, 1, None)
        assert [q.pop()[0] for _ in range(6)] == [
            "a0", "b0", "c0", "a1", "b1", "c1",
        ]

    def test_priority_lanes_keep_separate_rotors(self):
        q = FairPriorityQueue()
        q.push("a-batch", "a", 2, None)
        q.push("b-int", "b", 0, None)
        q.push("a-int", "a", 0, None)
        assert [q.pop()[0] for _ in range(3)] == ["b-int", "a-int", "a-batch"]


class TestBackPressure:
    """Both bounds reject with a structured, hint-carrying error."""

    def test_total_capacity_rejects(self):
        q = FairPriorityQueue(capacity=2, per_client_capacity=2)
        q.push("1", "a", 1, None)
        q.push("2", "b", 1, None)
        with pytest.raises(AdmissionError) as excinfo:
            q.push("3", "c", 1, None)
        assert excinfo.value.context["reason"] == "queue_full"
        assert excinfo.value.context["retry_after_seconds"] >= 1.0
        assert q.rejected == 1

    def test_per_client_cap_rejects_only_the_greedy_client(self):
        q = FairPriorityQueue(capacity=10, per_client_capacity=2)
        q.push("1", "greedy", 1, None)
        q.push("2", "greedy", 1, None)
        with pytest.raises(AdmissionError) as excinfo:
            q.push("3", "greedy", 1, None)
        assert excinfo.value.context["reason"] == "client_full"
        # Another client still gets in.
        assert q.push("4", "polite", 1, None) == 3

    def test_pop_frees_capacity(self):
        q = FairPriorityQueue(capacity=1, per_client_capacity=1)
        q.push("1", "a", 1, None)
        with pytest.raises(AdmissionError):
            q.push("2", "a", 1, None)
        q.pop()
        assert q.push("2", "a", 1, None) == 1

    def test_retry_after_tracks_observed_service_time(self):
        q = FairPriorityQueue(default_job_seconds=1.0)
        for n in range(4):
            q.push(str(n), "a", 1, None)
        baseline = q.retry_after_hint()
        for _ in range(20):
            q.observe_job_seconds(10.0)  # EMA converges towards 10s/job
        assert q.retry_after_hint() > baseline
        assert q.retry_after_hint() == pytest.approx(4 * 10.0, rel=0.1)

    def test_retry_after_never_below_one_second(self):
        q = FairPriorityQueue()
        assert q.retry_after_hint() >= 1.0


class TestRemoval:
    """Targeted removal backs queued-job cancellation."""

    def test_remove_returns_job_and_frees_client_share(self):
        q = FairPriorityQueue(per_client_capacity=1)
        q.push("1", "a", 1, "payload")
        assert q.remove("1") == "payload"
        assert len(q) == 0
        assert q.depth_for("a") == 0
        q.push("2", "a", 1, None)  # share was freed

    def test_remove_unknown_returns_none(self):
        assert FairPriorityQueue().remove("ghost") is None

    def test_remove_middle_preserves_order(self):
        q = FairPriorityQueue()
        for n in range(3):
            q.push(f"j{n}", "a", 1, None)
        q.remove("j1")
        assert [q.pop()[0] for _ in range(2)] == ["j0", "j2"]


class TestConstruction:
    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            FairPriorityQueue(capacity=0)

    def test_per_client_above_total_rejected(self):
        with pytest.raises(ConfigurationError):
            FairPriorityQueue(capacity=4, per_client_capacity=5)
