"""Unit tests for repro.hashing.storage."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hashing.storage import (
    ChunkedStorage,
    ContiguousStorage,
    UnlimitedChunkBudget,
)
from repro.mem.allocator import CostModelAllocator


class TestContiguousStorage:
    def test_basic_get_put_clear(self):
        storage = ContiguousStorage(8)
        assert storage.get(3) is None
        storage.put(3, (42, "v"))
        assert storage.get(3) == (42, "v")
        storage.clear(3)
        assert storage.get(3) is None

    def test_size_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            ContiguousStorage(12)

    def test_cannot_extend_in_place(self):
        assert ContiguousStorage(8).extend_to(16) is False

    def test_cannot_shrink_in_place(self):
        with pytest.raises(ConfigurationError):
            ContiguousStorage(8).shrink_to(4)

    def test_single_contiguous_allocation(self):
        allocator = CostModelAllocator(fmfi=0.1)
        storage = ContiguousStorage(1024, slot_bytes=64, allocator=allocator)
        assert allocator.stats.allocations == 1
        assert allocator.stats.max_contiguous_bytes == 1024 * 64
        assert storage.total_bytes() == 1024 * 64
        assert storage.max_contiguous_bytes() == 1024 * 64

    def test_release_frees_memory(self):
        allocator = CostModelAllocator(fmfi=0.1)
        storage = ContiguousStorage(64, allocator=allocator)
        storage.release()
        assert allocator.stats.current_bytes == 0
        assert storage.total_bytes() == 0
        storage.release()  # idempotent
        assert allocator.stats.frees == 1

    def test_line_addrs_disjoint_across_storages(self):
        a = ContiguousStorage(8)
        b = ContiguousStorage(8)
        assert a.line_addr(0) != b.line_addr(0)
        assert a.line_addr(1) == a.line_addr(0) + 1


class TestChunkedStorage:
    def test_slots_span_chunks(self):
        # 1024-byte chunks of 64B slots = 16 slots per chunk.
        storage = ChunkedStorage(64, chunk_bytes=1024)
        assert storage.slots_per_chunk == 16
        assert storage.chunk_count == 4
        storage.put(17, (9, "x"))  # chunk 1, offset 1
        assert storage.get(17) == (9, "x")
        assert storage.get(16) is None

    def test_partial_chunk_occupancy(self):
        # A 4-slot way inside a 16-slot chunk (Figure 3a).
        storage = ChunkedStorage(4, chunk_bytes=1024)
        assert storage.chunk_count == 1
        assert storage.size_slots == 4

    def test_extend_within_existing_chunk_allocates_nothing(self):
        allocator = CostModelAllocator(fmfi=0.1)
        storage = ChunkedStorage(4, chunk_bytes=1024, allocator=allocator)
        before = allocator.stats.allocations
        assert storage.extend_to(16)
        assert allocator.stats.allocations == before

    def test_extend_allocates_more_chunks(self):
        storage = ChunkedStorage(16, chunk_bytes=1024)
        assert storage.extend_to(64)
        assert storage.chunk_count == 4

    def test_budget_refusal_blocks_extension(self):
        class TwoChunkBudget(UnlimitedChunkBudget):
            def reserve(self, count):
                if self.in_use + count > 2:
                    return False
                return super().reserve(count)

        storage = ChunkedStorage(16, chunk_bytes=1024, budget=TwoChunkBudget())
        assert storage.extend_to(32)  # second chunk fits the budget
        assert not storage.extend_to(64)  # would need 4 chunks
        assert storage.chunk_count == 2

    def test_shrink_releases_chunks_and_budget(self):
        budget = UnlimitedChunkBudget()
        storage = ChunkedStorage(64, chunk_bytes=1024, budget=budget)
        assert budget.in_use == 4
        storage.shrink_to(16)
        assert storage.chunk_count == 1
        assert budget.in_use == 1

    def test_max_contiguous_is_one_chunk(self):
        storage = ChunkedStorage(1024, chunk_bytes=2048)
        assert storage.max_contiguous_bytes() == 2048
        assert storage.total_bytes() == 1024 * 64

    def test_release_returns_all_chunks(self):
        budget = UnlimitedChunkBudget()
        allocator = CostModelAllocator(fmfi=0.1)
        storage = ChunkedStorage(64, chunk_bytes=1024, budget=budget, allocator=allocator)
        storage.release()
        assert budget.in_use == 0
        assert allocator.stats.current_bytes == 0

    def test_chunk_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            ChunkedStorage(16, chunk_bytes=1000)

    def test_extend_cannot_shrink(self):
        storage = ChunkedStorage(16, chunk_bytes=1024)
        with pytest.raises(ConfigurationError):
            storage.extend_to(8)

    def test_shrink_cannot_grow(self):
        storage = ChunkedStorage(16, chunk_bytes=1024)
        with pytest.raises(ConfigurationError):
            storage.shrink_to(32)


class TestUnlimitedChunkBudget:
    def test_counts_usage(self):
        budget = UnlimitedChunkBudget()
        assert budget.reserve(5)
        budget.release(3)
        assert budget.in_use == 2

    def test_over_release_rejected(self):
        budget = UnlimitedChunkBudget()
        budget.reserve(1)
        with pytest.raises(ValueError):
            budget.release(2)
