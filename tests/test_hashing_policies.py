"""Unit tests for resize/insertion policies (repro.hashing.policies)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hashing.policies import AllWayResizePolicy, PerWayResizePolicy
from tests.conftest import make_chunked_table, make_contiguous_table


class TestThresholdValidation:
    def test_defaults_are_paper_values(self):
        policy = AllWayResizePolicy()
        assert policy.upsize_threshold == 0.6
        assert policy.downsize_threshold == 0.2

    def test_invalid_upsize(self):
        with pytest.raises(ConfigurationError):
            AllWayResizePolicy(upsize_threshold=1.5)

    def test_downsize_must_be_below_upsize(self):
        with pytest.raises(ConfigurationError):
            PerWayResizePolicy(upsize_threshold=0.5, downsize_threshold=0.6)


class TestAllWayPolicy:
    def test_uniform_insertion_spreads_over_ways(self):
        table = make_contiguous_table(initial_slots=256)
        for key in range(400):
            table.insert(key, key)
        counts = [way.count for way in table.ways]
        assert max(counts) - min(counts) < 120

    def test_resize_triggered_at_total_occupancy(self):
        table = make_contiguous_table(initial_slots=16)
        # 3 ways x 16 slots = 48; threshold 0.6 -> 29 entries.
        for key in range(28):
            table.insert(key, key)
        assert not any(way.upsizes for way in table.ways)
        for key in range(28, 32):
            table.insert(key, key)
        assert all(way.upsizes == 1 for way in table.ways)


class TestPerWayPolicy:
    def test_one_way_resizes_at_a_time(self):
        table = make_chunked_table(initial_slots=16)
        upsizes_seen = []
        for key in range(60):
            table.insert(key, key)
            upsizes_seen.append(tuple(way.upsizes for way in table.ways))
        # At some point the ways had unequal upsize counts.
        assert any(len(set(counts)) > 1 for counts in upsizes_seen)

    def test_balance_rule_keeps_sizes_within_2x(self):
        table = make_chunked_table(initial_slots=16)
        for key in range(5000):
            table.insert(key, key)
            sizes = [way.size for way in table.ways]
            assert max(sizes) <= 2 * min(sizes)

    def test_weights_proportional_to_free_slots(self):
        table = make_chunked_table(initial_slots=64)
        policy = table.policy
        for key in range(30):
            table.insert(key, key)
        weights = policy.insertion_weights(table)
        frees = [way.size - way.count for way in table.ways]
        assert weights == [float(f) for f in frees]

    def test_blocked_way_gets_zero_weight(self):
        table = make_chunked_table(initial_slots=16)
        policy = table.policy
        # Make way 0 bigger and nearly full.
        table.start_upsize(table.ways[0])
        table.drain()
        way = table.ways[0]
        way.count = int(way.size * policy.upsize_threshold) + 1
        weights = policy.insertion_weights(table)
        assert weights[0] == 0.0
        way.count = 0  # restore for teardown sanity

    def test_upsizes_balanced_long_run(self):
        table = make_chunked_table(initial_slots=16)
        for key in range(4000):
            table.insert(key, key)
        upsizes = [way.upsizes for way in table.ways]
        assert max(upsizes) - min(upsizes) <= 1

    def test_emergency_resize_grows_a_way(self):
        table = make_chunked_table(initial_slots=16)
        before = sum(way.size for way in table.ways)
        table.policy.emergency_resize(table)
        assert sum(way.size for way in table.ways) > before
