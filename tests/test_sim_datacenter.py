"""Tests for the multi-tenant NUMA machine model (repro.sim.datacenter).

Covers the topology primitives (line homing, socket pools, NUMA-aware
DRAM charging), the shootdown/replication cost models, the tenant
scheduler (churn, rebalance, determinism), the sweep-engine integration
(caching, overrides splitting, result codec) and the experiment CLI.
"""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.common.units import CACHE_LINE, KB, MB, PAGE_4K
from repro.experiments import engine
from repro.experiments.datacenter import format_result, main, run
from repro.experiments.runner import (
    ExperimentSettings,
    clear_caches,
    datacenter_sweep,
)
from repro.mem.alloc_cost import AllocationCostModel
from repro.mem.cache import CacheLevel
from repro.sim.config import SimulationConfig
from repro.sim.datacenter import (
    ALL_SOCKETS,
    DatacenterParams,
    DatacenterSimulator,
    LineHomeMap,
    Machine,
    NumaCacheHierarchy,
    PlacementUnit,
    ReplicationEngine,
    ShootdownModel,
    SocketPoolAllocator,
    split_overrides,
)
from repro.sim.datacenter.shootdown import INITIATOR_CYCLES, PER_IPI_CYCLES
from repro.sim.results import result_from_record, result_to_record

pytestmark = pytest.mark.datacenter


def tiny_config(organization="mehpt", **overrides):
    return SimulationConfig(
        organization=organization, scale=512, seed=7, **overrides
    )


def tiny_params(**overrides):
    defaults = dict(
        sockets=2, processes=3, policy="none", quantum=400,
        churn_every=0, rebalance_every=2, pool_mb=16,
    )
    defaults.update(overrides)
    return DatacenterParams(**defaults)


def tiny_run(organization="mehpt", trace_length=1_200, **param_overrides):
    sim = DatacenterSimulator(
        ["GUPS"], tiny_config(organization),
        params=tiny_params(**param_overrides), trace_length=trace_length,
    )
    return sim.run()


class TestParams:
    def test_validate_rejects_bad_ranges(self):
        for bad in (
            dict(sockets=0),
            dict(processes=0),
            dict(policy="teleport"),
            dict(quantum=0),
            dict(cores_per_socket=0),
            dict(churn_every=-1),
            dict(max_forks=-1),
            dict(remote_dram_delta=-1.0),
            dict(pool_mb=0),
            dict(frag_fraction=1.0),
        ):
            with pytest.raises(ConfigurationError):
                DatacenterParams(**bad).validate()

    def test_from_overrides_maps_prefixed_names(self):
        params = DatacenterParams.from_overrides(
            {"dc_sockets": 4, "dc_policy": "replicate"}
        )
        assert params.sockets == 4
        assert params.policy == "replicate"
        assert params.processes == DatacenterParams().processes

    def test_from_overrides_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="dc_bogus"):
            DatacenterParams.from_overrides({"dc_bogus": 1})

    def test_split_overrides_partitions_by_prefix(self):
        params, config = split_overrides(
            {"dc_sockets": 3, "fmfi": 0.5, "dc_policy": "migrate"}
        )
        assert params.sockets == 3 and params.policy == "migrate"
        assert config == {"fmfi": 0.5}


class TestLineHomeMap:
    def test_register_and_lookup(self):
        home = LineHomeMap()
        home.register(1000, 64, 1)
        assert home.home_of(1000) == 1
        assert home.home_of(1063) == 1
        assert home.home_of(1064) is None
        assert home.home_of(999) is None

    def test_unregister_and_rehome(self):
        home = LineHomeMap()
        home.register(1000, 64, 0)
        home.set_home(1000, ALL_SOCKETS)
        assert home.home_of(1010) == ALL_SOCKETS
        home.unregister(1000)
        assert home.home_of(1000) is None


class TestMachine:
    def test_fragment_is_deterministic(self):
        stats = []
        for _ in range(2):
            machine = Machine(2, 8 * MB)
            machine.fragment(0.5)
            stats.append(
                [(pool.free_frames(), pool.largest_free_order())
                 for pool in machine.pools]
            )
        assert stats[0] == stats[1]
        # Singleton holes can't coalesce: big orders are gone.
        frames, largest = stats[0][0]
        assert 0 < frames < Machine(2, 8 * MB).pools[0].free_frames()

    def test_walks_attributed_to_active_socket(self):
        machine = Machine(2, 4 * MB)
        machine.active_socket = 1
        machine.on_walk(50.0)
        assert machine.walks_by_socket == [0, 1]
        assert machine.walk_cycles_by_socket == [0.0, 50.0]


class TestSocketPoolAllocator:
    def test_spills_to_other_socket_when_preferred_full(self):
        machine = Machine(2, 1 * MB)
        pool = SocketPoolAllocator(
            machine, cost_model=AllocationCostModel(), preferred_socket=0
        )
        handles = [pool.alloc(256 * KB) for _ in range(6)]
        sockets = {pool.socket_of(h) for h in handles}
        assert sockets == {0, 1}
        assert machine.spill_allocations > 0
        pool.release_all()

    def test_exhaustion_raises_oom(self):
        machine = Machine(1, 1 * MB)
        pool = SocketPoolAllocator(
            machine, cost_model=AllocationCostModel(), preferred_socket=0
        )
        with pytest.raises(OutOfMemoryError):
            for _ in range(10):
                pool.alloc(512 * KB)
        pool.release_all()


class TestNumaCacheHierarchy:
    def _caches(self, machine):
        return NumaCacheHierarchy(
            machine,
            levels=[CacheLevel("L1", capacity_bytes=2 * KB, ways=2,
                               hit_cycles=4)],
            dram_cycles=100,
        )

    def test_remote_home_charges_delta(self):
        machine = Machine(2, 4 * MB, remote_dram_delta=80.0)
        machine.home_map.register(5000, 64, 1)
        caches = self._caches(machine)
        machine.active_socket = 0
        remote = caches.access(5000)
        assert remote == pytest.approx(100.0 + 80.0)
        assert machine.remote_dram_accesses == 1
        machine.active_socket = 1
        local = caches.access(6000)  # unknown line -> local DRAM
        assert local == pytest.approx(100.0)
        assert machine.local_dram_accesses == 1

    def test_replicated_home_is_always_local(self):
        machine = Machine(2, 4 * MB)
        machine.home_map.register(5000, 64, ALL_SOCKETS)
        caches = self._caches(machine)
        machine.active_socket = 0
        caches.access(5000)
        machine.active_socket = 1
        caches.access(5064 - 1)
        assert machine.remote_dram_accesses == 0


class TestShootdownAndReplication:
    def test_broadcast_cost_and_counters(self):
        model = ShootdownModel()
        cost = model.broadcast(3, "exit", "t#0")
        assert cost == pytest.approx(INITIATOR_CYCLES + 3 * PER_IPI_CYCLES)
        assert model.shootdowns == 1
        assert model.ipis == 3

    def test_replicate_policy_homes_units_everywhere(self):
        machine = Machine(4, 4 * MB)
        rep = ReplicationEngine("replicate", machine)
        unit = PlacementUnit(1000, 64, 64 * CACHE_LINE, 0)
        machine.home_map.register(1000, 64, 0)
        rep.on_unit_registered(unit)
        assert machine.home_map.home_of(1000) == ALL_SOCKETS
        assert rep.replicated_bytes == 64 * CACHE_LINE * 3
        rep.on_faults(10)
        assert rep.replica_updates == 10 * 3

    def test_migrate_units_rehomes(self):
        machine = Machine(2, 4 * MB)
        rep = ReplicationEngine("migrate", machine)
        machine.home_map.register(1000, 64, 0)
        unit = PlacementUnit(1000, 64, 64 * CACHE_LINE, 0)
        rep.migrate_units([unit], 1, "t#0")
        assert machine.home_map.home_of(1000) == 1
        assert unit.socket == 1
        assert rep.migrated_units == 1
        # Already-there units are skipped.
        before = rep.migrated_units
        rep.migrate_units([unit], 1, "t#0")
        assert rep.migrated_units == before


class TestDatacenterSimulator:
    def test_deterministic_across_runs(self):
        a = tiny_run(churn_every=2, policy="migrate")
        b = tiny_run(churn_every=2, policy="migrate")
        assert a.to_dict() == b.to_dict()

    def test_total_cycles_identity(self):
        result = tiny_run(policy="replicate", churn_every=3)
        assert result.total_cycles == pytest.approx(
            result.run_cycles + result.switch_cycles
            + result.shootdown_cycles + result.replication_cycles
            + result.migration_cycles
        )

    def test_churn_forks_and_exits(self):
        result = tiny_run(churn_every=2, max_forks=4)
        assert result.forks > 0
        assert result.exits >= result.forks
        assert result.tenants_spawned == 3 + result.forks

    def test_replicate_kills_remote_dram(self):
        none = tiny_run(policy="none")
        replicate = tiny_run(policy="replicate")
        assert none.remote_dram_accesses > 0
        assert replicate.remote_dram_accesses == 0
        assert replicate.replicated_bytes > 0

    def test_migrate_rehomes_tables(self):
        result = tiny_run(policy="migrate")
        assert result.migrations > 0
        assert result.migrated_bytes > 0
        assert result.shootdowns > 0

    def test_mehpt_replicates_less_than_radix(self):
        mehpt = tiny_run("mehpt", policy="replicate")
        radix = tiny_run("radix", policy="replicate")
        assert not mehpt.failed and not radix.failed
        assert 0 < mehpt.replicated_bytes < radix.replicated_bytes

    def test_l2p_sampled_after_quantum(self):
        result = tiny_run("mehpt")
        assert result.mean_l2p_entries > 0

    def test_radix_has_no_l2p_samples(self):
        result = tiny_run("radix")
        assert result.mean_l2p_entries == 0.0

    def test_walks_split_across_sockets(self):
        result = tiny_run(rebalance_every=2)
        assert len(result.walks_by_socket) == 2
        assert all(w > 0 for w in result.walks_by_socket)

    def test_result_codec_round_trip(self):
        result = tiny_run(policy="replicate", churn_every=2)
        clone = result_from_record(result_to_record(result))
        assert clone == result

    def test_metrics_snapshot_when_observed(self):
        from repro.obs import ObservabilityConfig

        config = tiny_config(obs=ObservabilityConfig(metrics=True))
        result = DatacenterSimulator(
            ["GUPS"], config, params=tiny_params(policy="replicate"),
            trace_length=1_200,
        ).run()
        assert {"numa.walks[socket=0]", "numa.walks[socket=1]",
                "numa.replicated_bytes", "dc.shootdowns",
                "dc.context_switches"} <= set(result.metrics)
        assert result.metrics["numa.replicated_bytes"]["value"] == (
            result.replicated_bytes
        )


class TestEngineIntegration:
    OVERRIDES = dict(
        dc_sockets=2, dc_processes=3, dc_policy="replicate",
        dc_quantum=400, dc_pool_mb=16,
    )

    def settings(self):
        return ExperimentSettings(scale=512, trace_length=1_200)

    def test_sweep_grid_and_memo(self):
        clear_caches()
        results = datacenter_sweep(
            self.settings(), organizations=("mehpt",), apps=("GUPS",),
            **self.OVERRIDES,
        )
        again = datacenter_sweep(
            self.settings(), organizations=("mehpt",), apps=("GUPS",),
            **self.OVERRIDES,
        )
        (cell, result), = results.items()
        assert cell == ("GUPS", "mehpt", False)
        assert again[cell] is result  # in-process memo hit

    def test_disk_cache_hit_on_second_run(self, tmp_path):
        engine.configure(jobs=1, cache_dir=str(tmp_path), use_cache=True)
        try:
            clear_caches()
            first = datacenter_sweep(
                self.settings(), organizations=("mehpt",), apps=("GUPS",),
                **self.OVERRIDES,
            )
            clear_caches()  # drop the memo; force the disk path
            second = datacenter_sweep(
                self.settings(), organizations=("mehpt",), apps=("GUPS",),
                **self.OVERRIDES,
            )
            stats = engine.get_engine().cache_stats()
            assert stats["hits"] >= 1
            key = ("GUPS", "mehpt", False)
            assert first[key].to_dict() == second[key].to_dict()
        finally:
            engine.configure(jobs=1, cache_dir=None, use_cache=False)
            clear_caches()


class TestExperimentDriver:
    def test_run_and_format(self):
        clear_caches()
        result = run(
            ExperimentSettings(scale=512, trace_length=1_200),
            sockets=2, processes=3,
            policies=("none", "replicate"),
            organizations=("radix", "mehpt"),
            dc_quantum=400, dc_pool_mb=16,
        )
        assert set(result.grid) == {
            (org, pol)
            for org in ("radix", "mehpt") for pol in ("none", "replicate")
        }
        report = format_result(result)
        assert "replication cost by organization" in report
        assert "more page-table bytes than ME-HPT" in report

    def test_cli_smoke(self, capsys):
        clear_caches()
        main([
            "--no-cache", "--scale", "512", "--trace-length", "1200",
            "--processes", "2", "--policies", "none",
            "--organizations", "mehpt",
        ])
        out = capsys.readouterr().out
        assert "mehpt" in out and "Datacenter: 2 sockets" in out


class TestServeProtocol:
    def test_datacenter_kind_accepted(self):
        from repro.serve.protocol import parse_job_request

        request = parse_job_request({
            "kind": "datacenter",
            "cells": [{"app": "GUPS", "organization": "mehpt"}],
            "overrides": {"dc_sockets": 2, "dc_policy": "replicate",
                          "fmfi": 0.5},
        })
        assert request.kind == "datacenter"
        assert request.overrides["dc_sockets"] == 2

    def test_dc_overrides_rejected_for_perf(self):
        from repro.serve.protocol import ProtocolError, parse_job_request

        with pytest.raises(ProtocolError, match="dc_sockets"):
            parse_job_request({
                "kind": "perf",
                "cells": [{"app": "GUPS", "organization": "mehpt"}],
                "overrides": {"dc_sockets": 2},
            })

    def test_bad_dc_override_rejected(self):
        from repro.serve.protocol import ProtocolError, parse_job_request

        with pytest.raises(ProtocolError, match="datacenter overrides"):
            parse_job_request({
                "kind": "datacenter",
                "cells": [{"app": "GUPS", "organization": "mehpt"}],
                "overrides": {"dc_policy": "teleport"},
            })


class TestFaultComposition:
    def test_injected_transient_faults_recover(self):
        from repro.faults.plan import FaultPlan, FaultSpec

        config = tiny_config(
            fault_plan=FaultPlan([FaultSpec("chunk_alloc", every=5)], seed=3),
        )
        result = DatacenterSimulator(
            ["GUPS"], config, params=tiny_params(), trace_length=1_200
        ).run()
        assert not result.failed
        assert result.accesses > 0
