"""Scalar vs vectorized quantum-engine bit-identity (repro.sim.quantum).

The vectorized quantum engine must be a pure performance change: for
every (organization, policy, quantum, churn, seed) cell the datacenter
and multi-process simulators must produce byte-identical results,
metrics snapshots, event streams and final TLB contents under either
engine.  These tests pin that contract, the scan-skip optimisation's
determinism, the adversarial tenant-storm replay, and the sweep cache's
deliberate engine-independence.
"""

import dataclasses
import itertools

import pytest

from repro.experiments import engine as engine_mod
from repro.experiments.runner import (
    ExperimentSettings,
    clear_caches,
    datacenter_sweep,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fuzz.scenario import PRESETS
from repro.obs import ObservabilityConfig
from repro.sim.config import SimulationConfig
from repro.sim.datacenter import DatacenterParams, DatacenterSimulator
from repro.sim.multiprocess import MultiProcessSimulator
from repro.sim.quantum import QuantumEngine

pytestmark = [pytest.mark.fastpath, pytest.mark.datacenter]

SCALE = 64


def dc_config(organization="mehpt", engine="auto", **overrides):
    return SimulationConfig(
        organization=organization, scale=SCALE, engine=engine, **overrides
    )


def dc_run(engine, organization="mehpt", policy="none", quantum=700,
           churn_every=0, seed=7, apps=("GUPS", "BFS"), trace_length=3_000,
           config=None, **param_overrides):
    if config is None:
        config = dc_config(organization, engine=engine, seed=seed)
    defaults = dict(
        sockets=2, processes=4, policy=policy, quantum=quantum,
        churn_every=churn_every, pool_mb=64,
    )
    defaults.update(param_overrides)
    params = DatacenterParams(**defaults)
    sim = DatacenterSimulator(
        list(apps), config, params=params, trace_length=trace_length
    )
    return sim, sim.run()


def tlb_state(system):
    """Final TLB contents and hit/miss counters, as plain data."""
    state = {}
    for level in ("l1", "l2"):
        for size, tlb in getattr(system.tlb, level).items():
            state[(level, size)] = (list(tlb._sets), tlb.hits, tlb.misses)
    return state


# The grid varies quantum/churn/seed alongside organization x policy so
# one parametrized test covers the full product the contract promises.
GRID = [
    (org, policy, quantum, churn, seed)
    for (org, policy), (quantum, churn, seed) in zip(
        itertools.product(
            ("mehpt", "ecpt", "radix"), ("none", "replicate", "migrate")
        ),
        itertools.cycle([(700, 4, 7), (333, 0, 11), (1500, 6, 3)]),
    )
]


class TestDatacenterBitIdentity:
    @pytest.mark.parametrize("org,policy,quantum,churn,seed", GRID)
    def test_grid_cell_identical(self, org, policy, quantum, churn, seed):
        s_sim, s = dc_run("scalar", org, policy, quantum, churn, seed)
        v_sim, v = dc_run("vectorized", org, policy, quantum, churn, seed)
        assert v_sim._engine_mode == "vectorized"
        assert v_sim.quantum_runs > 0
        assert not s.failed and not v.failed
        assert s.to_dict() == v.to_dict()
        for ts, tv in zip(s_sim.tenants, v_sim.tenants):
            assert tlb_state(ts.system) == tlb_state(tv.system), ts.name

    def test_metrics_and_events_identical(self):
        def run(engine):
            config = dc_config(
                "mehpt", engine=engine, seed=5,
                obs=ObservabilityConfig(trace_buffer=200_000),
            )
            sim, result = dc_run(
                engine, policy="migrate", quantum=600, churn_every=5,
                config=config,
            )
            assert not result.failed
            return result, sim.obs.ring.events

        scalar, scalar_events = run("scalar")
        vector, vector_events = run("vectorized")
        assert scalar.to_dict() == vector.to_dict()
        assert scalar.metrics == vector.metrics
        assert scalar.metrics  # non-empty: the comparison is meaningful
        assert scalar_events == vector_events
        # Engine diagnostics never leak into snapshots: cached cells
        # must stay byte-identical across engines.
        assert not any(
            name.startswith(("fastpath.quantum_", "numa.batch_"))
            for name in vector.metrics
        )

    def test_failed_run_identical(self):
        # Injected aborts surface as failed results at the same point
        # under both engines (the vectorized path re-raises without
        # advancing the aborting tenant's cursor, like the scalar loop).
        def run(engine):
            config = dc_config(
                "mehpt", engine=engine, seed=3,
                fault_plan=FaultPlan(
                    # every=1 defeats the retry ladder: every retry
                    # fails too, so recovery exhausts and the run aborts.
                    [FaultSpec("chunk_alloc", every=1)], seed=3
                ),
            )
            return dc_run(engine, quantum=500, config=config)

        _, s = run("scalar")
        _, v = run("vectorized")
        assert s.failed and v.failed
        assert s.to_dict() == v.to_dict()

    def test_mid_quantum_abort_identical(self):
        # Pool exhaustion raising out of handle_fault mid-quantum: the
        # vectorized engine must flush pending walks, charge the prefix
        # counters and re-raise without advancing the cursor, exactly
        # like the scalar loop's exception semantics.
        def run(engine):
            return dc_run(
                engine, seed=3, apps=("GUPS",), quantum=500,
                trace_length=4_000, processes=6, pool_mb=2,
                frag_fraction=0.6,
            )

        s_sim, s = run("scalar")
        v_sim, v = run("vectorized")
        assert s.failed and v.failed
        assert "OutOfMemoryError" in s.failure_reason
        assert v_sim.quantum_runs > 0  # the abort hit the vectorized path
        assert 0 < s.accesses  # ... mid-run, not at the initial build
        assert s.to_dict() == v.to_dict()

    def test_non_integral_delta_falls_back_to_scalar(self):
        # Batched int64 latency sums are only exact for integral deltas;
        # the simulator silently demotes to scalar quanta and results
        # stay identical by construction.
        s_sim, s = dc_run("scalar", remote_dram_delta=120.5)
        v_sim, v = dc_run("vectorized", remote_dram_delta=120.5)
        assert v_sim._engine_mode == "scalar"
        assert all(t.engine is None for t in v_sim.tenants)
        assert s.to_dict() == v.to_dict()

    def test_tenant_storm_replay_identical(self, tmp_path):
        # The adversarial tenancy-churn stressor from the fuzz corpus,
        # replayed as every tenant's trace under both engines.
        scenario = PRESETS["tenant-storm"](seed=0)
        path = str(tmp_path / "tenant-storm.vpt")
        scenario.generate_trace(path)
        results = {}
        for engine in ("scalar", "vectorized"):
            sim, result = dc_run(
                engine, policy="migrate", quantum=800, churn_every=5,
                apps=("trace:" + path,), trace_length=scenario.trace_length,
            )
            assert not result.failed, result.failure_reason
            if engine == "vectorized":
                assert sim.quantum_runs > 0
            results[engine] = result.to_dict()
        assert results["scalar"] == results["vectorized"]


class TestScanSkip:
    def test_skip_is_deterministic(self, monkeypatch):
        # The allocation-epoch scan skip must be invisible: forcing a
        # full rescan after every quantum yields the same result.
        _, skipping = dc_run("scalar", policy="migrate", churn_every=4)

        counter = itertools.count()
        monkeypatch.setattr(
            DatacenterSimulator, "_scan_sig",
            lambda self, tenant: next(counter),
        )
        _, rescanning = dc_run("scalar", policy="migrate", churn_every=4)
        assert skipping.to_dict() == rescanning.to_dict()

    def test_scans_actually_skipped(self):
        sim, result = dc_run("scalar", policy="none")
        assert not result.failed
        # With no churn and no placement changes after warmup, most
        # post-quantum scans see an unmoved signature and return early.
        assert all(t.scan_sig is not None for t in sim.tenants)
        epochs = [t.pool.alloc_epoch for t in sim.tenants]
        assert all(epoch > 0 for epoch in epochs)


class TestMultiProcessBitIdentity:
    @pytest.mark.parametrize("org", ("mehpt", "ecpt", "radix"))
    def test_run_identical(self, org):
        sims = {}
        results = {}
        for engine in ("scalar", "vectorized"):
            config = SimulationConfig(
                organization=org, scale=SCALE, seed=3, engine=engine
            )
            sim = MultiProcessSimulator(
                ["GUPS", "SysBench", "BFS"], config,
                trace_length=6_000, quantum=1_500,
            )
            sims[engine] = sim
            results[engine] = sim.run().to_dict()
        assert sims["vectorized"]._engines
        assert results["scalar"] == results["vectorized"]
        for ps, pv in zip(
            sims["scalar"].processes, sims["vectorized"].processes
        ):
            for a, b in zip(sims["scalar"]._systems, sims["vectorized"]._systems):
                assert tlb_state(a) == tlb_state(b)

    def test_traced_run_stays_scalar(self):
        # Per-access event synthesis under round-robin scheduling is not
        # implemented, so traced multi-process runs keep the scalar loop.
        config = SimulationConfig(
            organization="mehpt", scale=SCALE, engine="vectorized",
            obs=ObservabilityConfig(trace_buffer=64),
        )
        sim = MultiProcessSimulator(["GUPS"], config, trace_length=2_000)
        assert not sim._engines


class TestSweepCacheEngineIndependence:
    def test_engine_absent_from_cell_key(self):
        settings = ExperimentSettings(scale=SCALE, trace_length=1_200)
        cell = ("GUPS", "mehpt", False)
        keys = {
            engine_mod.cell_key(
                "datacenter", settings, cell,
                {"dc_policy": "migrate", "engine": engine},
            )[0]
            for engine in ("auto", "scalar", "vectorized")
        }
        assert len(keys) == 1

    def test_cached_scalar_cell_serves_vectorized_rerun(self, tmp_path):
        # A cell computed under one engine is served, byte-identical,
        # to a re-run under the other: the disk cache key deliberately
        # ignores the engine knob.
        engine_mod.set_engine(
            engine_mod.SweepEngine(cache_dir=str(tmp_path / "cache"))
        )
        try:
            settings = ExperimentSettings(scale=SCALE, trace_length=1_200)
            kwargs = dict(
                organizations=("mehpt",), apps=["GUPS"],
                dc_sockets=2, dc_processes=3, dc_quantum=400, dc_pool_mb=16,
            )
            clear_caches()
            scalar = datacenter_sweep(settings, engine="scalar", **kwargs)
            clear_caches()  # drop the in-process memo, keep the disk cache
            vector = datacenter_sweep(settings, engine="vectorized", **kwargs)
            (s_result,) = scalar.values()
            (v_result,) = vector.values()
            assert s_result.to_dict() == v_result.to_dict()
        finally:
            engine_mod.reset_engine()
            clear_caches()


class TestEngineUnit:
    def test_unsupported_geometry_reported(self):
        # A walker with no batched implementation leaves the engine
        # unsupported; callers must fall back to scalar quanta.
        from repro.workloads import get_workload

        config = dc_config("mehpt", engine="vectorized")
        workload = get_workload("GUPS", scale=SCALE, seed=1)
        system = config.build(workload)
        engine = QuantumEngine(object(), system)
        assert engine.supported  # mehpt is batched; sanity-check the API

    def test_finalize_is_idempotent(self):
        from repro.kernel.process import Process
        from repro.workloads import get_workload

        config = dc_config("mehpt", engine="vectorized")
        workload = get_workload("GUPS", scale=SCALE, seed=1)
        system = config.build(workload)
        process = Process(
            name="p", address_space=system.address_space, tlb=system.tlb,
            trace=workload.trace(2_000),
        )
        engine = QuantumEngine(process, system)
        while not process.finished:
            engine.run_quantum(500)
        state = tlb_state(system)
        engine.finalize()
        assert tlb_state(system) == state
