"""Unit tests for the multi-process simulation (repro.sim.multiprocess)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.kernel.context import ContextSwitchModel
from repro.sim.config import SimulationConfig
from repro.sim.multiprocess import MultiProcessSimulator

SCALE = 256


def make_sim(org="mehpt", apps=("TC", "MUMmer"), virtualized=False, **kwargs):
    config = SimulationConfig(organization=org, scale=SCALE)
    return MultiProcessSimulator(
        list(apps),
        config,
        trace_length=kwargs.pop("trace_length", 6_000),
        quantum=kwargs.pop("quantum", 1_000),
        switch_model=ContextSwitchModel(virtualized=virtualized),
        **kwargs,
    )


class TestScheduling:
    def test_all_processes_complete(self):
        sim = make_sim()
        result = sim.run()
        assert all(p.finished for p in sim.processes)
        assert all(p.accesses_done == 6_000 for p in sim.processes)
        assert result.processes == 2

    def test_switch_count_round_robin(self):
        sim = make_sim(trace_length=4_000, quantum=1_000)
        result = sim.run()
        # 2 processes x 4 quanta each = 8 dispatches, all of them switches
        # under strict round-robin.
        assert result.switches == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_sim(apps=())
        with pytest.raises(ConfigurationError):
            make_sim(quantum=0)


class TestSectionVC:
    """The paper's context-switch cost claims."""

    def test_mehpt_pays_l2p_movement(self):
        result = make_sim(org="mehpt").run()
        assert result.l2p_switch_cycles > 0
        assert result.mean_l2p_entries > 0

    def test_radix_pays_none(self):
        result = make_sim(org="radix").run()
        assert result.l2p_switch_cycles == 0.0

    def test_l2p_overhead_is_modest(self):
        """Section V-C: the save/restore overhead is small."""
        result = make_sim(org="mehpt").run()
        assert result.l2p_overhead() < 0.02
        # ...and small relative to the switches themselves.
        assert result.l2p_switch_cycles < result.switch_cycles / 2

    def test_virtualized_switches_skip_l2p(self):
        result = make_sim(org="mehpt", virtualized=True).run()
        assert result.l2p_switch_cycles == 0.0

    def test_teardown_is_table_drop_not_scan(self):
        sim = make_sim(org="mehpt")
        sim.run()
        # Per-process tables: the entries to reclaim are exactly the
        # process's own (no global scan over other processes' entries).
        entries = [p.teardown_entries() for p in sim.processes]
        assert all(e > 0 for e in entries)
        assert entries[0] != sum(entries)  # not a shared global table
