"""Unit tests for the array-backed TLB state (repro.mmu.tlb_array).

The list-backed :class:`~repro.mmu.tlb.SetAssociativeTlb` is the oracle
throughout: every scalar operation, every batched probe decision and the
carried end state must match it exactly, because the vectorized engine's
bit-identity guarantee rests on this module.
"""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.mmu.tlb import SetAssociativeTlb
from repro.mmu.tlb_array import EMPTY_AGE, ArrayTlb, prefix_rank_counts


def reference_probe(state, ways, page_numbers, set_mask):
    """Leave-at-MRU scalar model: returns hits, mutates ``state`` in place."""
    hits = np.zeros(len(page_numbers), dtype=bool)
    for i, pn in enumerate(page_numbers):
        entries = state[pn & set_mask]
        if pn in entries:
            entries.remove(pn)
            hits[i] = True
        entries.insert(0, pn)
        del entries[ways:]
    return hits


class TestPrefixRankCounts:
    def test_brute_force(self):
        rng = np.random.default_rng(7)
        for _ in range(150):
            n = int(rng.integers(1, 200))
            values = rng.integers(-1, n, size=n).astype(np.int64)
            q = int(rng.integers(1, 40))
            bounds = rng.integers(0, n + 1, size=q).astype(np.int64)
            thresholds = rng.integers(-1, n, size=q).astype(np.int64)
            got = prefix_rank_counts(values, bounds, thresholds)
            want = np.array(
                [(values[:k] < x).sum() for k, x in zip(bounds, thresholds)]
            )
            assert np.array_equal(got, want)

    def test_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        assert prefix_rank_counts(empty, empty, empty).size == 0
        values = np.array([0, 1], dtype=np.int64)
        assert prefix_rank_counts(values, empty, empty).size == 0

    def test_zero_bound_counts_nothing(self):
        values = np.array([-1, 0, 1], dtype=np.int64)
        got = prefix_rank_counts(
            values, np.array([0, 3]), np.array([2, 2])
        )
        assert got.tolist() == [0, 3]


class TestValidation:
    def test_entries_must_divide_ways(self):
        with pytest.raises(ConfigurationError):
            ArrayTlb("t", 10, 4, 1)

    def test_sets_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            ArrayTlb("t", 12, 4, 1)

    def test_ways_must_fit_age_encoding(self):
        with pytest.raises(ConfigurationError):
            ArrayTlb("t", EMPTY_AGE * 256, EMPTY_AGE, 1)


class TestScalarOpsMatchListTlb:
    def test_random_op_sequences(self):
        rng = np.random.default_rng(11)
        for _ in range(40):
            nsets = 1 << int(rng.integers(0, 4))
            ways = int(rng.integers(1, 7))
            tlb = SetAssociativeTlb("oracle", nsets * ways, ways, 1)
            arr = ArrayTlb("arr", nsets * ways, ways, 1)
            for _ in range(int(rng.integers(10, 200))):
                op = int(rng.integers(0, 4))
                pn = int(rng.integers(0, 50))
                if op == 0:
                    assert arr.lookup(pn) == tlb.lookup(pn)
                elif op == 1:
                    tlb.fill(pn)
                    arr.fill(pn)
                elif op == 2:
                    assert arr.invalidate(pn) == tlb.invalidate(pn)
                else:
                    tlb.flush()
                    arr.flush()
                for si in range(nsets):
                    assert arr.resident(si) == tlb._sets[si]
            assert (arr.hits, arr.misses) == (tlb.hits, tlb.misses)
            assert arr.occupancy() == tlb.occupancy()
            assert arr.hit_rate() == tlb.hit_rate()


class TestRoundTrip:
    def test_from_tlb_write_back(self):
        tlb = SetAssociativeTlb("t", 16, 4, 2)
        for pn in [3, 7, 11, 3, 19, 23, 5]:
            tlb.fill(pn)
        tlb.lookup(7)
        arr = ArrayTlb.from_tlb(tlb)
        assert (arr.hits, arr.misses) == (tlb.hits, tlb.misses)
        clone = SetAssociativeTlb("t", 16, 4, 2)
        arr.write_back(clone)
        assert clone._sets == tlb._sets


class TestBatchProbe:
    def test_matches_reference_across_chunks(self):
        rng = np.random.default_rng(23)
        for _ in range(60):
            nsets = 1 << int(rng.integers(0, 5))
            ways = int(rng.integers(1, 9))
            arr = ArrayTlb("t", nsets * ways, ways, 1)
            state = [[] for _ in range(nsets)]
            tag_space = int(rng.integers(2, 400))
            for _ in range(int(rng.integers(1, 5))):
                m = int(rng.integers(1, 600))
                pns = rng.integers(0, tag_space, size=m).astype(np.int64)
                got = arr.batch_probe(pns)
                want = reference_probe(state, ways, pns.tolist(), nsets - 1)
                assert np.array_equal(got, want)
                for si in range(nsets):
                    assert arr.resident(si) == state[si]

    def test_empty_stream(self):
        arr = ArrayTlb("t", 8, 2, 1)
        assert arr.batch_probe(np.empty(0, dtype=np.int64)).size == 0

    def test_deep_window_paths(self):
        # A tag returning after a long, tag-poor gap exercises the
        # merge-tree fallback (the windowed gather cannot reject it);
        # a tag-rich gap exercises the suffix fast-reject.
        ways = 2
        arr = ArrayTlb("t", ways, ways, 1)  # single set
        state = [[]]
        poor = [7] + [1, 2] * 40 + [7]        # 2 distinct in window: hit
        rich = [9] + [1, 2, 3] * 40 + [9]     # 3 distinct in window: miss
        for stream in (poor, rich):
            pns = np.array(stream, dtype=np.int64)
            got = arr.batch_probe(pns)
            want = reference_probe(state, ways, stream, 0)
            assert np.array_equal(got, want)
        assert not arr.hits and not arr.misses  # engine owns the counters

    def test_probe_straddles_carried_state(self):
        # Residents installed by one chunk must count as the prologue of
        # the next: a hit whose window begins before the chunk boundary.
        arr = ArrayTlb("t", 4, 4, 1)
        arr.batch_probe(np.array([1, 2, 3], dtype=np.int64))
        hits = arr.batch_probe(np.array([2, 9, 1], dtype=np.int64))
        assert hits.tolist() == [True, False, True]
