"""Integration tests across subsystems.

These check the properties that hold *between* page-table organizations
and through the whole stack — the guarantees a downstream user of the
library relies on.
"""

import pytest

from repro.core.mehpt import MeHptPageTables
from repro.ecpt.tables import EcptPageTables
from repro.kernel.address_space import AddressSpace
from repro.kernel.thp import ThpPolicy
from repro.mem.allocator import CostModelAllocator
from repro.radix.table import RadixPageTable
from repro.sim.config import SimulationConfig
from repro.sim.simulator import TranslationSimulator, memory_result, populate_tables
from repro.workloads import get_workload

SCALE = 128


def organizations():
    return {
        "radix": RadixPageTable(),
        "ecpt": EcptPageTables(CostModelAllocator(fmfi=0.3)),
        "mehpt": MeHptPageTables(CostModelAllocator(fmfi=0.3)),
    }


class TestTranslationEquivalence:
    """All three organizations must implement the same mapping function."""

    def test_same_translations_for_same_mappings(self):
        tables = organizations()
        mappings = [(0x1000 + i * 7, 0x9000 + i, "4K") for i in range(2000)]
        mappings += [((512 * (100 + i)), 0x80000 + i, "2M") for i in range(20)]
        for vpn, ppn, size in mappings:
            for org in tables.values():
                org.map(vpn, ppn, size)
        probes = [vpn for vpn, _p, _s in mappings] + [0x555555, 0x1, 512 * 105 + 77]
        for vpn in probes:
            results = {name: org.translate(vpn) for name, org in tables.items()}
            values = set(results.values())
            assert len(values) == 1, f"divergence at {vpn:#x}: {results}"

    def test_same_translations_after_unmap(self):
        tables = organizations()
        for vpn in range(100):
            for org in tables.values():
                org.map(vpn, vpn + 1, "4K")
        for vpn in range(0, 100, 3):
            for org in tables.values():
                org.unmap(vpn, "4K")
        for vpn in range(100):
            values = {org.translate(vpn) for org in tables.values()}
            assert len(values) == 1

    def test_walkers_agree_with_functional_translate(self):
        for org in ("radix", "ecpt", "mehpt"):
            config = SimulationConfig(organization=org, scale=SCALE)
            workload = get_workload("TC", scale=SCALE)
            system = config.build(workload)
            populate_tables(system)
            pages = workload.page_set()
            for vpn in pages[:: max(1, len(pages) // 50)]:
                vpn = int(vpn)
                functional = system.page_tables.translate(vpn)
                walked = system.walker.walk(vpn)
                assert functional is not None
                assert walked.ppn == functional[0]


class TestFaultPathEquivalence:
    def test_same_pages_mapped_under_demand_paging(self):
        counts = {}
        for org in ("radix", "ecpt", "mehpt"):
            config = SimulationConfig(organization=org, scale=SCALE)
            workload = get_workload("BFS", scale=SCALE)
            system = config.build(workload)
            populate_tables(system)
            counts[org] = (
                system.address_space.totals.pages_mapped_4k,
                system.address_space.totals.pages_mapped_2m,
            )
        assert len(set(counts.values())) == 1

    def test_thp_decisions_identical_across_orgs(self):
        counts = {}
        for org in ("radix", "ecpt", "mehpt"):
            config = SimulationConfig(organization=org, scale=SCALE, thp_enabled=True)
            workload = get_workload("MUMmer", scale=SCALE)
            system = config.build(workload)
            populate_tables(system)
            counts[org] = system.address_space.totals.pages_mapped_2m
        assert len(set(counts.values())) == 1
        assert list(counts.values())[0] > 0


class TestMemoryHeadlines:
    """The paper's three headline memory claims, end-to-end."""

    def test_mehpt_needs_less_contiguous_memory(self):
        ecpt = memory_result(
            SimulationConfig(organization="ecpt", scale=SCALE).build(
                get_workload("GUPS", scale=SCALE)
            )
        )
        mehpt = memory_result(
            SimulationConfig(organization="mehpt", scale=SCALE).build(
                get_workload("GUPS", scale=SCALE)
            )
        )
        assert mehpt.max_contiguous_bytes < ecpt.max_contiguous_bytes / 8

    def test_mehpt_uses_less_total_memory(self):
        for app in ("GUPS", "BFS"):
            ecpt = memory_result(
                SimulationConfig(organization="ecpt", scale=SCALE).build(
                    get_workload(app, scale=SCALE)
                )
            )
            mehpt = memory_result(
                SimulationConfig(organization="mehpt", scale=SCALE).build(
                    get_workload(app, scale=SCALE)
                )
            )
            assert mehpt.peak_pt_bytes < ecpt.peak_pt_bytes

    def test_ecpt_crashes_mehpt_survives_fragmentation(self):
        workload = get_workload("GUPS", scale=SCALE)
        ecpt = memory_result(
            SimulationConfig(organization="ecpt", scale=SCALE, fmfi=0.75).build(workload)
        )
        mehpt = memory_result(
            SimulationConfig(organization="mehpt", scale=SCALE, fmfi=0.75).build(workload)
        )
        assert ecpt.failed
        assert not mehpt.failed


class TestScaleInvariance:
    """Power-of-two scaling must preserve full-scale-equivalent results."""

    @pytest.mark.parametrize("app", ["GUPS", "TC"])
    def test_contiguous_equivalents_match_across_scales(self, app):
        results = {}
        for scale in (64, 128):
            workload = get_workload(app, scale=scale)
            system = SimulationConfig(organization="ecpt", scale=scale).build(workload)
            results[scale] = memory_result(system).max_contiguous_bytes
        assert results[64] == results[128]

    def test_upsize_counts_shift_by_log2_scale(self):
        upsizes = {}
        for scale in (64, 128):
            workload = get_workload("GUPS", scale=scale)
            system = SimulationConfig(organization="mehpt", scale=scale).build(workload)
            upsizes[scale] = memory_result(system).upsizes_per_way_4k
        # Same initial slots floor (4) at both scales here, so the way at
        # half footprint needs exactly one fewer doubling.
        assert [u - 1 for u in upsizes[64]] == upsizes[128]


class TestEndToEndSimulation:
    def test_full_pipeline_radix_vs_mehpt(self):
        results = {}
        for org in ("radix", "mehpt"):
            workload = get_workload("GUPS", scale=SCALE)
            config = SimulationConfig(organization=org, scale=SCALE)
            results[org] = TranslationSimulator(workload, config, trace_length=15_000).run()
        assert results["mehpt"].cycles_per_access() < results["radix"].cycles_per_access()
        for result in results.values():
            assert result.walks + result.l1_hits + result.l2_hits <= result.accesses
