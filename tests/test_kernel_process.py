"""Unit tests for the process model (repro.kernel.process)."""

import numpy as np

from repro.kernel.process import Process
from repro.sim.config import SimulationConfig
from repro.workloads import get_workload

SCALE = 256


def make_process(app="TC", trace_length=3_000):
    workload = get_workload(app, scale=SCALE)
    config = SimulationConfig(organization="mehpt", scale=SCALE)
    system = config.build(workload)
    return Process(
        name=f"{app}#0",
        address_space=system.address_space,
        tlb=system.tlb,
        trace=workload.trace(trace_length),
        l2p=system.page_tables.l2p,
    )


class TestQuantumExecution:
    def test_runs_in_quanta(self):
        process = make_process(trace_length=2_500)
        cycles = process.run_quantum(1_000)
        assert cycles > 0
        assert process.cursor == 1_000
        assert not process.finished
        process.run_quantum(1_000)
        process.run_quantum(1_000)  # clipped to the remaining 500
        assert process.cursor == 2_500
        assert process.finished
        assert process.accesses_done == 2_500

    def test_remaining(self):
        process = make_process(trace_length=2_000)
        assert process.remaining() == 2_000
        process.run_quantum(700)
        assert process.remaining() == 1_300

    def test_cycles_accumulate(self):
        process = make_process()
        process.run_quantum(500)
        first = process.cycles
        process.run_quantum(500)
        assert process.cycles > first

    def test_demand_paging_happens(self):
        process = make_process()
        process.run_quantum(2_000)
        assert process.address_space.totals.faults > 0
        # Faulted pages really are mapped.
        vpn = int(process.trace[0])
        assert process.address_space.page_tables.translate(vpn) is not None


class TestTeardown:
    def test_teardown_counts_own_entries_only(self):
        a = make_process("TC")
        b = make_process("MUMmer")
        a.run_quantum(3_000)
        b.run_quantum(3_000)
        # Per-process tables: teardown cost is each process's own entry
        # count, independent of the other process (Section II-B).
        assert a.teardown_entries() > 0
        assert b.teardown_entries() > 0
        total = a.teardown_entries() + b.teardown_entries()
        assert a.teardown_entries() < total

    def test_radix_process_reports_zero_hpt_entries(self):
        workload = get_workload("TC", scale=SCALE)
        system = SimulationConfig(organization="radix", scale=SCALE).build(workload)
        process = Process("r", system.address_space, system.tlb,
                          workload.trace(100), l2p=None)
        assert process.teardown_entries() == 0
