"""Tests for the binary address-trace subsystem (repro.traces): the
chunked varint format, recording, importers, transforms, the
TraceWorkload replay path, CLI, and engine cache-key integration."""

import dataclasses
import os
import tracemalloc

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, TraceFormatError
from repro.experiments import engine as engine_mod
from repro.experiments.engine import SweepEngine, cell_key
from repro.experiments.runner import ExperimentSettings, clear_caches, perf_sweep
from repro.obs import MetricsRegistry
from repro.sim.config import SimulationConfig
from repro.sim.simulator import TranslationSimulator
from repro.traces import (
    DEFAULT_CHUNK_VALUES,
    TRACE_PREFIX,
    TraceMeta,
    TraceReader,
    TraceWorkload,
    TraceWriter,
    import_csv,
    import_lackey,
    record_workload,
    trace_content_id,
    transform_trace,
    validate_trace,
)
from repro.traces.__main__ import main as cli_main
from repro.traces.format import decode_vpn_chunk, encode_vpn_chunk
from repro.traces.record import spec_from_dict, spec_to_dict
from repro.traces.transform import interleave_offset
from repro.workloads import get_workload

pytestmark = pytest.mark.traces


def write_trace(path, vpns, chunk_values=DEFAULT_CHUNK_VALUES, **meta_kw):
    meta = TraceMeta(source="synthetic", **meta_kw)
    with TraceWriter(str(path), meta=meta, chunk_values=chunk_values) as writer:
        writer.append(np.asarray(vpns, dtype=np.int64))
    return str(path)


def random_walk(n, seed=0, start=1 << 40):
    rng = np.random.default_rng(seed)
    deltas = rng.integers(-1000, 1000, size=n)
    return np.maximum(np.cumsum(deltas) + start, 0)


def payload_offset(path, chunk_no=0):
    """Byte offset of a chunk's payload (for corruption tests)."""
    with TraceReader(path) as reader:
        offset = reader._footer["chunks"][chunk_no][0]
    return offset + 12  # past the <III chunk header


def flip_byte(path, offset):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


# -- varint codec ----------------------------------------------------------


class TestCodec:
    @pytest.mark.parametrize("prev", [0, 123456789])
    def test_round_trip_random_walk(self, prev):
        vpns = random_walk(10_000, seed=3)
        payload = encode_vpn_chunk(vpns, prev)
        assert np.array_equal(decode_vpn_chunk(payload, vpns.size, prev), vpns)

    def test_round_trip_adversarial_values(self):
        vpns = np.array(
            [0, 1, 0, (1 << 52) - 1, 0, 7, 7, 7, 1 << 35, (1 << 35) + 1],
            dtype=np.int64,
        )
        payload = encode_vpn_chunk(vpns, 0)
        assert np.array_equal(decode_vpn_chunk(payload, vpns.size, 0), vpns)

    def test_single_value(self):
        payload = encode_vpn_chunk(np.array([42], dtype=np.int64), 40)
        assert decode_vpn_chunk(payload, 1, 40).tolist() == [42]

    def test_local_deltas_compress(self):
        vpns = random_walk(50_000, seed=5)
        payload = encode_vpn_chunk(vpns, 0)
        # Deltas fit in 2 varint bytes; raw int64 would be 8 bytes/record.
        assert len(payload) < 3 * vpns.size


# -- writer / reader round trip --------------------------------------------


class TestFormatRoundTrip:
    def test_multi_chunk_round_trip(self, tmp_path):
        vpns = random_walk(10_000, seed=1)
        path = write_trace(
            tmp_path / "t.vpt", vpns, chunk_values=1024, seed=9, scale=4
        )
        with TraceReader(path) as reader:
            assert reader.total_values == vpns.size
            assert reader.chunks == 10
            assert reader.min_vpn == int(vpns.min())
            assert reader.max_vpn == int(vpns.max())
            assert reader.meta.seed == 9 and reader.meta.scale == 4
            assert np.array_equal(reader.read(), vpns)

    def test_chunks_are_independent_and_ordered(self, tmp_path):
        vpns = random_walk(3_000, seed=2)
        path = write_trace(tmp_path / "t.vpt", vpns, chunk_values=500)
        with TraceReader(path) as reader:
            rebuilt = np.concatenate(list(reader.iter_chunks()))
        assert np.array_equal(rebuilt, vpns)

    def test_read_prefix_loop_and_overrun(self, tmp_path):
        vpns = random_walk(1_000, seed=4)
        path = write_trace(tmp_path / "t.vpt", vpns, chunk_values=256)
        with TraceReader(path) as reader:
            assert np.array_equal(reader.read(100), vpns[:100])
            looped = reader.read(2_500, loop=True)
            assert np.array_equal(looped, np.tile(vpns, 3)[:2_500])
            with pytest.raises(ConfigurationError, match="loop=True"):
                reader.read(1_001)

    def test_iter_yields_python_ints(self, tmp_path):
        path = write_trace(tmp_path / "t.vpt", [5, 6, 7])
        with TraceReader(path) as reader:
            assert list(reader) == [5, 6, 7]

    def test_meta_round_trips_layout_and_extra(self, tmp_path):
        layout = [[100, 50, "heap"], [9000, 2, "stack"]]
        path = write_trace(
            tmp_path / "t.vpt", [100, 101], vma_layout=layout, extra={"k": "v"}
        )
        with TraceReader(path) as reader:
            assert reader.meta.vma_layout == layout
            assert reader.meta.extra == {"k": "v"}

    def test_registry_counters(self, tmp_path):
        registry = MetricsRegistry()
        meta = TraceMeta(source="synthetic")
        path = str(tmp_path / "t.vpt")
        with TraceWriter(path, meta=meta, chunk_values=100,
                         registry=registry) as writer:
            writer.append(random_walk(250))
        assert registry.counter("traces.records_written").value == 250
        assert registry.counter("traces.chunks_written").value == 3
        with TraceReader(path, registry=registry) as reader:
            reader.read()
        assert registry.counter("traces.records_read").value == 250
        assert registry.counter("traces.chunks_read").value == 3


class TestCorruption:
    def test_validate_detects_flipped_payload_byte(self, tmp_path):
        path = write_trace(tmp_path / "t.vpt", random_walk(5_000), chunk_values=1024)
        assert validate_trace(path).ok
        flip_byte(path, payload_offset(path, chunk_no=2))
        report = validate_trace(path)
        assert not report.ok
        assert report.checksum_failures == 1
        assert any("chunk 2" in p for p in report.problems)
        assert "CORRUPT" in report.summary()

    def test_reader_raises_and_counts_on_bad_crc(self, tmp_path):
        path = write_trace(tmp_path / "t.vpt", random_walk(2_000), chunk_values=512)
        flip_byte(path, payload_offset(path, chunk_no=1))
        registry = MetricsRegistry()
        with TraceReader(path, registry=registry) as reader:
            with pytest.raises(TraceFormatError, match="CRC32"):
                list(reader.iter_chunks())
        assert registry.counter("traces.checksum_failures").value == 1

    def test_truncated_file_rejected_at_open(self, tmp_path):
        path = write_trace(tmp_path / "t.vpt", random_walk(1_000))
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 7)
        with pytest.raises(TraceFormatError):
            TraceReader(path)

    def test_not_a_trace_rejected(self, tmp_path):
        path = tmp_path / "junk.vpt"
        path.write_bytes(b"definitely not a trace file" * 10)
        with pytest.raises(TraceFormatError, match="magic"):
            TraceReader(str(path))


class TestStreamingMemory:
    def test_ten_million_records_stream_in_o_chunk_memory(self, tmp_path):
        """Acceptance criterion: a 10M-reference trace replays through
        TraceReader chunk-by-chunk without materializing the stream
        (10M int64 = 80MB; the bound below is a small multiple of one
        64K-value chunk)."""
        n, batch = 10_000_000, 1_000_000
        path = str(tmp_path / "big.vpt")
        rng = np.random.default_rng(11)
        meta = TraceMeta(source="synthetic")
        last = 1 << 40
        checksum = 0
        with TraceWriter(path, meta=meta) as writer:
            for _ in range(n // batch):
                deltas = rng.integers(-4096, 4096, size=batch)
                vpns = np.cumsum(deltas) + last
                last = int(vpns[-1])
                checksum ^= int(np.bitwise_xor.reduce(vpns))
                writer.append(vpns)
        assert writer.total_values == n

        tracemalloc.start()
        seen = 0
        replay_checksum = 0
        with TraceReader(path) as reader:
            for chunk in reader.iter_chunks():
                seen += chunk.size
                replay_checksum ^= int(np.bitwise_xor.reduce(chunk))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert seen == n
        assert replay_checksum == checksum
        assert peak < 20 * 1024 * 1024


# -- content identity ------------------------------------------------------


class TestContentId:
    def test_rename_preserves_content_id(self, tmp_path):
        path = write_trace(tmp_path / "a.vpt", random_walk(2_000))
        original = trace_content_id(path)
        renamed = str(tmp_path / "b.vpt")
        os.rename(path, renamed)
        assert trace_content_id(renamed) == original

    def test_different_payloads_differ(self, tmp_path):
        a = write_trace(tmp_path / "a.vpt", random_walk(500, seed=1))
        b = write_trace(tmp_path / "b.vpt", random_walk(500, seed=2))
        assert trace_content_id(a) != trace_content_id(b)

    def test_matches_reader_and_is_memoised(self, tmp_path):
        path = write_trace(tmp_path / "a.vpt", random_walk(500))
        with TraceReader(path) as reader:
            assert trace_content_id(path) == reader.content_id
        assert trace_content_id(path) == trace_content_id(path)


# -- recording and replay --------------------------------------------------

#: One fast, non-trivial recording: GUPS at 1/1024 scale.
RECORD_APP, RECORD_SCALE, RECORD_SEED, RECORD_LEN = "GUPS", 1024, 7, 3_000


@pytest.fixture(scope="module")
def gups_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("traces") / "gups.vpt")
    workload = get_workload(RECORD_APP, scale=RECORD_SCALE, seed=RECORD_SEED)
    record_workload(workload, RECORD_LEN, path)
    return path


class TestRecording:
    def test_spec_dict_round_trip(self):
        spec = get_workload("MUMmer", scale=64).spec
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_recorded_stream_matches_generator(self, gups_trace):
        workload = get_workload(RECORD_APP, scale=RECORD_SCALE, seed=RECORD_SEED)
        with TraceReader(gups_trace) as reader:
            assert np.array_equal(reader.read(), workload.trace(RECORD_LEN))
        assert validate_trace(gups_trace).ok

    def test_replay_workload_restores_provenance(self, gups_trace):
        live = get_workload(RECORD_APP, scale=RECORD_SCALE, seed=RECORD_SEED)
        replay = get_workload(TRACE_PREFIX + gups_trace)
        assert isinstance(replay, TraceWorkload)
        assert replay.spec == live.spec
        assert replay.scale == RECORD_SCALE and replay.seed == RECORD_SEED
        assert replay.vma_layout() == live.vma_layout()
        assert np.array_equal(replay.trace(RECORD_LEN), live.trace(RECORD_LEN))
        assert np.array_equal(replay.page_set(), np.unique(replay.trace(RECORD_LEN)))
        assert replay.unscale_bytes(10) == live.unscale_bytes(10)
        assert gups_trace in replay.describe()

    @pytest.mark.parametrize("org", ["radix", "ecpt", "mehpt"])
    def test_replay_is_byte_identical_to_live_run(self, gups_trace, org):
        """Acceptance criterion: replaying a recorded trace produces a
        PerformanceResult byte-identical to the live generator, for all
        three organizations."""
        config = SimulationConfig(
            organization=org, scale=RECORD_SCALE, seed=RECORD_SEED
        )
        live = TranslationSimulator(
            get_workload(RECORD_APP, scale=RECORD_SCALE, seed=RECORD_SEED),
            config, trace_length=RECORD_LEN,
        ).run()
        replay = TranslationSimulator(
            get_workload(TRACE_PREFIX + gups_trace),
            config, trace_length=RECORD_LEN,
        ).run()
        assert replay == live

    def test_trace_file_config_source(self, gups_trace):
        config = SimulationConfig(
            organization="mehpt", scale=RECORD_SCALE, seed=RECORD_SEED,
            trace_file=gups_trace,
        )
        from_config = TranslationSimulator(
            None, config, trace_length=RECORD_LEN
        ).run()
        explicit = TranslationSimulator(
            get_workload(TRACE_PREFIX + gups_trace),
            config, trace_length=RECORD_LEN,
        ).run()
        assert from_config == explicit

    def test_missing_trace_file_errors(self):
        config = SimulationConfig(organization="mehpt")
        with pytest.raises(ConfigurationError, match="trace_file"):
            TranslationSimulator(None, config, trace_length=100)
        with pytest.raises(ConfigurationError, match="does not exist"):
            SimulationConfig(trace_file="/nonexistent/x.vpt").load_trace_workload()


class TestWorkloadDeterminism:
    """Regression guard: the synthetic generators must stay bit-stable,
    otherwise recorded traces silently diverge from live runs."""

    @pytest.mark.parametrize("app", ["GUPS", "BFS", "MUMmer"])
    def test_two_builds_emit_identical_streams(self, app):
        first = get_workload(app, scale=256, seed=99)
        second = get_workload(app, scale=256, seed=99)
        assert first.spec == second.spec
        assert np.array_equal(first.trace(5_000), second.trace(5_000))
        assert np.array_equal(first.page_set(), second.page_set())
        assert first.vma_layout() == second.vma_layout()

    def test_seed_changes_the_stream(self):
        base = get_workload("GUPS", scale=256, seed=99)
        other = get_workload("GUPS", scale=256, seed=100)
        assert not np.array_equal(base.trace(5_000), other.trace(5_000))


# -- importers -------------------------------------------------------------


class TestImporters:
    def test_csv_import(self, tmp_path):
        lines = [
            "# comment",
            "0x7f0012345678",
            "139637976727144, trailing fields ignored",
            "",
            "not-an-address",
            "0x7f0012349999",
        ]
        path = str(tmp_path / "c.vpt")
        stats = import_csv(iter(lines), path, name="mini")
        assert stats.records == 3
        assert stats.distinct_pages == 3
        assert stats.skipped_lines == 1
        with TraceReader(path) as reader:
            assert reader.meta.source == "csv"
            assert reader.total_values == 3
            assert reader.meta.vma_layout  # synthesized from the footprint
        replay = TraceWorkload(path)
        assert replay.spec.kind == "trace"
        assert replay.trace(3).size == 3

    def test_lackey_import_filters_instruction_fetches(self, tmp_path):
        lines = [
            "==123== Lackey, a trace generator",
            "I  0023C790,2",
            " S 04EAFFA0,8",
            " L 04EAFFA8,8",
            "M  0421C7A0,4",
            "garbage line",
        ]
        data = import_lackey(iter(lines), str(tmp_path / "d.vpt"))
        assert data.records == 3  # S, L, M
        both = import_lackey(
            iter(lines), str(tmp_path / "i.vpt"), include_instructions=True
        )
        assert both.records == 4

    def test_page_shift_controls_normalization(self, tmp_path):
        lines = ["0x1000", "0x1fff", "0x2000"]
        stats = import_csv(iter(lines), str(tmp_path / "p.vpt"), page_shift=12)
        assert stats.distinct_pages == 2
        coarse = import_csv(
            iter(lines), str(tmp_path / "q.vpt"), page_shift=21
        )
        assert coarse.distinct_pages == 1

    def test_empty_import_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="no records"):
            import_csv(iter(["# nothing"]), str(tmp_path / "e.vpt"))


# -- transforms ------------------------------------------------------------


class TestTransforms:
    def test_truncate(self, tmp_path, gups_trace):
        out = str(tmp_path / "t.vpt")
        total = transform_trace([gups_trace], out, truncate=500)
        assert total == 500
        with TraceReader(gups_trace) as full, TraceReader(out) as cut:
            assert np.array_equal(cut.read(), full.read(500))

    def test_rescale_halves_the_span(self, tmp_path, gups_trace):
        out = str(tmp_path / "r.vpt")
        transform_trace([gups_trace], out, rescale=(1, 2))
        with TraceReader(gups_trace) as full, TraceReader(out) as half:
            ratio = (half.max_vpn - half.min_vpn) / (full.max_vpn - full.min_vpn)
            assert 0.45 < ratio < 0.55
            assert half.total_values == full.total_values

    def test_interleave_round_robin_with_region_separation(self, tmp_path):
        a = write_trace(tmp_path / "a.vpt", np.arange(100, dtype=np.int64))
        b = write_trace(
            tmp_path / "b.vpt", np.arange(200, 260, dtype=np.int64)
        )
        out = str(tmp_path / "mix.vpt")
        total = transform_trace([a, b], out, interleave_granularity=25)
        assert total == 160
        with TraceReader(out) as reader:
            merged = reader.read()
        shift = interleave_offset(1)
        expected = np.concatenate([
            np.arange(0, 25), np.arange(200, 225) + shift,
            np.arange(25, 50), np.arange(225, 250) + shift,
            np.arange(50, 75), np.arange(250, 260) + shift,
            np.arange(75, 100),
        ])
        assert np.array_equal(merged, expected)

    def test_interleave_shared_regions_keeps_vpns(self, tmp_path):
        a = write_trace(tmp_path / "a.vpt", [1, 2, 3])
        b = write_trace(tmp_path / "b.vpt", [2, 3, 4])
        out = str(tmp_path / "mix.vpt")
        transform_trace([a, b], out, interleave_granularity=2,
                        separate_regions=False)
        with TraceReader(out) as reader:
            assert set(reader.read().tolist()) == {1, 2, 3, 4}

    def test_transformed_trace_replays(self, tmp_path, gups_trace):
        out = str(tmp_path / "t.vpt")
        transform_trace([gups_trace], out, truncate=1_000, rescale=(1, 2))
        replay = get_workload(TRACE_PREFIX + out)
        result = TranslationSimulator(
            replay,
            SimulationConfig(organization="mehpt", scale=RECORD_SCALE),
            trace_length=1_000,
        ).run()
        assert result.accesses > 0 and not result.failed
        assert validate_trace(out).ok


# -- registry --------------------------------------------------------------


class TestRegistry:
    def test_unknown_name_lists_names_and_nearest_match(self):
        with pytest.raises(ConfigurationError) as err:
            get_workload("GUSP")
        message = str(err.value)
        assert "did you mean 'GUPS'" in message
        assert "BFS" in message and "MUMmer" in message
        assert TRACE_PREFIX in message

    def test_unknown_name_without_a_close_match(self):
        with pytest.raises(ConfigurationError) as err:
            get_workload("zzzzzz")
        assert "did you mean" not in str(err.value)

    def test_trace_prefix_resolves(self, gups_trace):
        assert isinstance(get_workload(TRACE_PREFIX + gups_trace), TraceWorkload)


# -- engine cache keys -----------------------------------------------------


@pytest.fixture
def isolated_engine():
    clear_caches()
    engine_mod.reset_engine()
    yield
    clear_caches()
    engine_mod.reset_engine()


class TestEngineCacheKeys:
    def test_cell_key_survives_rename(self, tmp_path, gups_trace, isolated_engine):
        settings = ExperimentSettings(scale=256, trace_length=1_000)
        cell = (TRACE_PREFIX + gups_trace, "mehpt", False)
        base, cacheable = cell_key("perf", settings, cell, {})
        assert cacheable
        renamed = str(tmp_path / "elsewhere.vpt")
        os.link(gups_trace, renamed)
        moved = (TRACE_PREFIX + renamed, "mehpt", False)
        assert cell_key("perf", settings, moved, {})[0] == base

    def test_cell_key_tracks_trace_content(self, tmp_path, gups_trace,
                                           isolated_engine):
        settings = ExperimentSettings(scale=256, trace_length=1_000)
        base, _ = cell_key(
            "perf", settings, (TRACE_PREFIX + gups_trace, "mehpt", False), {}
        )
        other = write_trace(tmp_path / "o.vpt", random_walk(2_000))
        different, _ = cell_key(
            "perf", settings, (TRACE_PREFIX + other, "mehpt", False), {}
        )
        assert different != base

    def test_synthetic_apps_key_on_their_name(self, isolated_engine):
        settings = ExperimentSettings(scale=256, trace_length=1_000)
        gups, _ = cell_key("perf", settings, ("GUPS", "mehpt", False), {})
        bfs, _ = cell_key("perf", settings, ("BFS", "mehpt", False), {})
        assert gups != bfs

    def test_renamed_trace_still_hits_the_disk_cache(self, tmp_path,
                                                     gups_trace,
                                                     isolated_engine):
        """Satellite acceptance: moving a trace file must not invalidate
        cached sweep results, because the key is the content hash."""
        cache_dir = str(tmp_path / "cache")
        engine_mod.configure(cache_dir=cache_dir)
        settings = ExperimentSettings(
            scale=RECORD_SCALE, trace_length=RECORD_LEN,
            apps=(TRACE_PREFIX + gups_trace,),
        )
        cold = perf_sweep(settings, organizations=("radix",),
                          thp_options=(False,))
        assert engine_mod.get_engine().cache_stats()["stores"] == 1

        renamed = str(tmp_path / "renamed.vpt")
        os.link(gups_trace, renamed)
        clear_caches()
        engine_mod.set_engine(SweepEngine(cache_dir=cache_dir))
        moved = dataclasses.replace(settings, apps=(TRACE_PREFIX + renamed,))
        warm = perf_sweep(moved, organizations=("radix",), thp_options=(False,))
        stats = engine_mod.get_engine().cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 0
        cold_result = cold[(TRACE_PREFIX + gups_trace, "radix", False)]
        warm_result = warm[(TRACE_PREFIX + renamed, "radix", False)]
        assert warm_result == cold_result


# -- CLI -------------------------------------------------------------------


class TestCli:
    def test_record_info_validate(self, tmp_path, capsys):
        out = str(tmp_path / "cli.vpt")
        assert cli_main(["record", "-w", "GUPS", "-n", "1000", "-o", out,
                         "--scale", "1024"]) == 0
        assert cli_main(["info", out]) == 0
        stdout = capsys.readouterr().out
        assert "GUPS" in stdout and "records:      1000" in stdout
        assert cli_main(["validate", out]) == 0

    def test_validate_fails_on_corruption(self, tmp_path, capsys):
        out = str(tmp_path / "cli.vpt")
        cli_main(["record", "-w", "GUPS", "-n", "1000", "-o", out])
        flip_byte(out, payload_offset(out))
        assert cli_main(["validate", out]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_convert_csv(self, tmp_path, capsys):
        src = tmp_path / "addrs.csv"
        src.write_text("0x1000\n0x2000\n0x3000\n")
        out = str(tmp_path / "conv.vpt")
        assert cli_main(["convert", str(src), "-o", out,
                         "--format", "csv", "--name", "mini"]) == 0
        with TraceReader(out) as reader:
            assert reader.total_values == 3

    def test_transform(self, tmp_path, gups_trace, capsys):
        out = str(tmp_path / "half.vpt")
        assert cli_main(["transform", gups_trace, "-o", out,
                         "--truncate", "400", "--rescale", "1/2"]) == 0
        with TraceReader(out) as reader:
            assert reader.total_values == 400

    def test_errors_exit_nonzero(self, tmp_path, capsys):
        assert cli_main(["record", "-w", "GUSP", "-n", "10",
                         "-o", str(tmp_path / "x.vpt")]) == 1
        assert "did you mean" in capsys.readouterr().err
        assert cli_main(["info", str(tmp_path / "missing.vpt")]) == 1
