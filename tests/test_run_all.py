"""Unit tests for the combined report driver (repro.experiments.run_all)."""

import io

import pytest

from repro.experiments import engine as engine_mod
from repro.experiments import run_all as run_all_mod
from repro.experiments.runner import ExperimentSettings


@pytest.fixture(autouse=True)
def _restore_engine():
    previous = engine_mod.get_engine()
    yield
    engine_mod.set_engine(previous)


class TestSectionWiring:
    def test_all_fourteen_experiments_present(self):
        sections = run_all_mod._sections(ExperimentSettings())
        titles = [title for title, _fn in sections]
        assert titles[0].startswith("Section III")
        for expected in ("Table I", "Table II", "Table III"):
            assert expected in titles
        for figure in range(8, 17):
            assert f"Figure {figure}" in titles
        assert "Multi-tenant NUMA datacenter" in titles
        assert len(sections) == 14

    def test_report_streams_sections(self, monkeypatch):
        # Stub the producers so the loop itself is cheap to test.
        stub = [(f"S{i}", lambda i=i: f"body-{i}") for i in range(3)]
        monkeypatch.setattr(run_all_mod, "_sections", lambda settings: stub)
        stream = io.StringIO()
        run_all_mod.run_all(ExperimentSettings(), stream=stream)
        text = stream.getvalue()
        for i in range(3):
            assert f"# S{i}" in text
            assert f"body-{i}" in text

    def test_report_is_deterministic(self, monkeypatch):
        # Timing goes through logging, not the report stream, so two runs
        # of the same settings produce byte-identical reports.
        stub = [("S", lambda: "body")]
        monkeypatch.setattr(run_all_mod, "_sections", lambda settings: stub)
        first, second = io.StringIO(), io.StringIO()
        run_all_mod.run_all(ExperimentSettings(), stream=first)
        run_all_mod.run_all(ExperimentSettings(), stream=second)
        assert first.getvalue() == second.getvalue()
        assert "completed in" not in first.getvalue()

    def test_cli_parses_flags(self, monkeypatch):
        calls = {}

        def fake_run_all(settings, stream=None):
            calls["scale"] = settings.scale

        monkeypatch.setattr(run_all_mod, "run_all", fake_run_all)
        run_all_mod.main(["--scale", "128"])
        assert calls["scale"] == 128

    def test_cli_configures_engine(self, monkeypatch, tmp_path):
        monkeypatch.setattr(run_all_mod, "run_all", lambda settings, stream=None: None)
        cache_dir = str(tmp_path / "sweep-cache")
        run_all_mod.main(["--jobs", "3", "--cache-dir", cache_dir])
        engine = engine_mod.get_engine()
        assert engine.jobs == 3
        assert engine.cache_dir == cache_dir
        assert engine.cache is not None

    def test_cli_no_cache_disables_disk(self, monkeypatch):
        monkeypatch.setattr(run_all_mod, "run_all", lambda settings, stream=None: None)
        run_all_mod.main(["--no-cache"])
        engine = engine_mod.get_engine()
        assert engine.cache is None
        assert not engine.use_cache
