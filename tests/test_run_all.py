"""Unit tests for the combined report driver (repro.experiments.run_all)."""

import io

from repro.experiments import run_all as run_all_mod
from repro.experiments.runner import ExperimentSettings


class TestSectionWiring:
    def test_all_thirteen_experiments_present(self):
        sections = run_all_mod._sections(ExperimentSettings())
        titles = [title for title, _fn in sections]
        assert titles[0].startswith("Section III")
        for expected in ("Table I", "Table II", "Table III"):
            assert expected in titles
        for figure in range(8, 17):
            assert f"Figure {figure}" in titles
        assert len(sections) == 13

    def test_report_streams_sections(self, monkeypatch):
        # Stub the producers so the loop itself is cheap to test.
        stub = [(f"S{i}", lambda i=i: f"body-{i}") for i in range(3)]
        monkeypatch.setattr(run_all_mod, "_sections", lambda settings: stub)
        stream = io.StringIO()
        run_all_mod.run_all(ExperimentSettings(), stream=stream)
        text = stream.getvalue()
        for i in range(3):
            assert f"# S{i}" in text
            assert f"body-{i}" in text
        assert "all experiments completed" in text

    def test_cli_parses_flags(self, monkeypatch):
        calls = {}

        def fake_run_all(settings, stream=None):
            calls["scale"] = settings.scale

        monkeypatch.setattr(run_all_mod, "run_all", fake_run_all)
        run_all_mod.main(["--scale", "128"])
        assert calls["scale"] == 128
