"""Unit tests for FMFI and the fragmenter (repro.mem.fragmentation)."""

import pytest

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.common.units import GB, MB
from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import Fragmenter, fmfi


class TestFmfi:
    def test_pristine_memory_is_unfragmented(self):
        buddy = BuddyAllocator(256 * MB)
        assert fmfi(buddy, buddy.order_for_bytes(64 * MB)) == 0.0

    def test_exhausted_memory_reports_one(self):
        buddy = BuddyAllocator(4 * MB, max_order=5)
        while True:
            try:
                buddy.alloc_order(0)
            except OutOfMemoryError:
                break
        assert fmfi(buddy, 3) == 1.0

    def test_order_zero_always_usable(self):
        buddy = BuddyAllocator(64 * MB)
        buddy.alloc_order(0)
        assert fmfi(buddy, 0) == 0.0

    def test_scattered_frames_unusable_for_large_orders(self):
        buddy = BuddyAllocator(64 * MB, max_order=10)
        frag = Fragmenter(buddy)
        frag.grab_all()
        # Free isolated even frames: all free memory is order-0.
        for frame in range(0, 2000, 2):
            frag._held.discard(frame)
            buddy.free(frame)
        assert fmfi(buddy, 10) == 1.0


class TestFragmenter:
    @pytest.mark.parametrize("target", [0.0, 0.3, 0.7, 0.9])
    def test_reaches_target(self, target):
        buddy = BuddyAllocator(1 * GB)
        frag = Fragmenter(buddy)
        order = buddy.order_for_bytes(64 * MB)
        achieved = frag.fragment_to(target, order)
        assert abs(achieved - target) < 0.05

    def test_full_fragmentation_blocks_64mb(self):
        buddy = BuddyAllocator(1 * GB)
        frag = Fragmenter(buddy)
        order = buddy.order_for_bytes(64 * MB)
        frag.fragment_to(1.0, order)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc_bytes(64 * MB)

    def test_moderate_fragmentation_allows_64mb(self):
        buddy = BuddyAllocator(1 * GB)
        frag = Fragmenter(buddy)
        order = buddy.order_for_bytes(64 * MB)
        frag.fragment_to(0.5, order)
        assert buddy.alloc_bytes(64 * MB) is not None

    def test_release_all_restores_memory(self):
        buddy = BuddyAllocator(256 * MB)
        frag = Fragmenter(buddy)
        frag.fragment_to(0.8, buddy.order_for_bytes(8 * MB))
        frag.release_all()
        assert buddy.free_frames() == buddy.total_frames

    def test_invalid_target_rejected(self):
        frag = Fragmenter(BuddyAllocator(64 * MB))
        with pytest.raises(ConfigurationError):
            frag.fragment_to(1.5, 5)
        with pytest.raises(ConfigurationError):
            frag.fragment_to(0.5, 5, free_fraction=0.0)
