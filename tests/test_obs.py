"""Tests for the observability layer (repro.obs): metric registry,
event tracing, run manifests, the report CLI, and the contract that a
disabled layer changes nothing."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.engine import SweepEngine
from repro.experiments.runner import ExperimentSettings
from repro.obs import Observability, ObservabilityConfig, build_observability
from repro.obs.manifest import read_manifest
from repro.obs.metrics import (
    CATALOGUE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric_name,
    pow2_bin,
)
from repro.obs.report import attribute, record_cell
from repro.obs.trace import (
    ALL_KINDS,
    EVENT_CUCKOO_KICK,
    EVENT_FAULT_SERVICED,
    EVENT_MEASURE_START,
    EVENT_RESIZE_BEGIN,
    EVENT_RESIZE_COMMIT,
    EVENT_RUN_END,
    EVENT_RUN_START,
    EVENT_TLB_MISS,
    EVENT_WALK_END,
    EVENT_WALK_START,
    SAMPLED_KINDS,
    JsonlTraceSink,
    RingBufferTraceSink,
    Tracer,
    filter_kind,
    first_of_kind,
    read_jsonl,
)
from repro.sim.config import SimulationConfig
from repro.sim.simulator import TranslationSimulator, memory_result, populate_tables
from repro.workloads import get_workload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_perf(organization, obs=None, scale=64, trace_length=4000, warmup=0.1,
             app="GUPS"):
    workload = get_workload(app, scale=scale)
    config = SimulationConfig(organization=organization, scale=scale, obs=obs)
    simulator = TranslationSimulator(
        workload, config, trace_length=trace_length, warmup_fraction=warmup
    )
    return simulator.run(), simulator.system


# -- registry and metric primitives ---------------------------------------


class TestMetricsRegistry:
    def test_unknown_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("nonsense.metric")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.gauge("tlb.walks")  # catalogued as a counter

    def test_labels_render_sorted(self):
        assert (
            format_metric_name("cuckoo.way_bytes", {"way": 0, "size": "4K"})
            == "cuckoo.way_bytes[size=4K,way=0]"
        )

    def test_labelled_instances_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("cuckoo.inserts", size="4K").inc(3)
        registry.counter("cuckoo.inserts", size="2M").inc(5)
        snapshot = registry.snapshot()
        assert snapshot["cuckoo.inserts[size=4K]"]["value"] == 3
        assert snapshot["cuckoo.inserts[size=2M]"]["value"] == 5

    def test_snapshot_is_json_safe_and_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("alloc.peak_bytes").set(123)
        registry.histogram("cuckoo.kick_depth", size="4K").observe(2)
        snapshot = registry.snapshot()
        # Round-trips through JSON without key coercion surprises.
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert list(snapshot) == sorted(snapshot)

    def test_histogram_set_from_bins_is_idempotent(self):
        histogram = Histogram("cuckoo.kick_depth", CATALOGUE["cuckoo.kick_depth"])
        for _ in range(3):  # repeated snapshots must not double-count
            histogram.set_from_bins({0: 10, 2: 1})
        assert histogram.count == 11
        assert histogram.bins == {"0": 10, "2": 1}

    def test_pow2_binning(self):
        assert [pow2_bin(v) for v in (0, 1, 2, 3, 9)] == ["0", "1", "2", "4", "16"]


# -- tracer ----------------------------------------------------------------


class TestTracer:
    def test_ring_buffer_keeps_tail(self):
        sink = RingBufferTraceSink(capacity=4)
        tracer = Tracer(sink)
        for i in range(10):
            tracer.emit(EVENT_CUCKOO_KICK, cycle=i, kicks=1)
        assert len(sink.events) == 4
        assert sink.events_seen == 10

    def test_sampling_keeps_every_nth_per_kind(self):
        sink = RingBufferTraceSink()
        tracer = Tracer(sink, sample_every=3)
        for i in range(9):
            tracer.emit(EVENT_TLB_MISS, cycle=i, vpn=i)
        tracer.emit(EVENT_RUN_END, cycle=9)  # lifecycle kind: always kept
        kinds = [event["kind"] for event in sink.events]
        assert kinds.count(EVENT_TLB_MISS) == 3
        assert kinds.count(EVENT_RUN_END) == 1

    def test_jsonl_sink_writes_sorted_keys(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlTraceSink(path)
        Tracer(sink).emit(EVENT_WALK_START, cycle=5, walk=1, vpn=2)
        sink.close()
        (line,) = open(path).read().splitlines()
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(trace_path="x", trace_buffer=10).validate()
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(trace_sample_every=0).validate()
        assert build_observability(None) is None


# -- disabled observability changes nothing --------------------------------


class TestDisabledIsFree:
    @pytest.mark.parametrize("organization", ["radix", "ecpt", "mehpt"])
    def test_results_identical_except_metrics(self, organization):
        enabled, _ = run_perf(organization, obs=ObservabilityConfig())
        disabled, _ = run_perf(organization, obs=None)
        on = dataclasses.asdict(enabled)
        off = dataclasses.asdict(disabled)
        assert on.pop("metrics") and off.pop("metrics") == {}
        assert on == off

    def test_memory_results_identical_except_metrics(self):
        workload = get_workload("GUPS", scale=64)
        results = []
        for obs in (ObservabilityConfig(), None):
            system = SimulationConfig(
                organization="mehpt", scale=64, obs=obs
            ).build(workload)
            results.append(dataclasses.asdict(memory_result(system)))
        on, off = results
        assert on.pop("metrics") and off.pop("metrics") == {}
        assert on == off


# -- metric snapshots ------------------------------------------------------


class TestSnapshots:
    def test_run_covers_catalogue(self, tmp_path):
        """One mehpt run, one radix run, one ecpt run, one trace
        record/replay and one datacenter run together must instantiate
        every catalogued base name — otherwise the catalogue documents
        metrics nothing produces."""
        seen = set()
        for organization in ("mehpt", "radix", "ecpt"):
            result, _ = run_perf(organization, obs=ObservabilityConfig())
            for name in result.metrics:
                seen.add(name.split("[", 1)[0])
        # The traces.* counters come from trace-backed runs: record with
        # a registry attached, then replay through the simulator.
        from repro.traces import record_workload

        registry = MetricsRegistry()
        trace_path = str(tmp_path / "gups.vpt")
        record_workload(
            get_workload("GUPS", scale=64), 4000, trace_path, registry=registry
        )
        seen.update(
            name for name, metric in registry.snapshot().items()
            if metric["value"]
        )
        replay, _ = run_perf(
            "mehpt", obs=ObservabilityConfig(), app="trace:" + trace_path
        )
        for name in replay.metrics:
            seen.add(name.split("[", 1)[0])
        # The numa.*/dc.* gauges and counters come from the datacenter
        # machine model; one tiny churning run registers all of them.
        from repro.sim.datacenter import DatacenterParams, DatacenterSimulator

        dc = DatacenterSimulator(
            ["GUPS"],
            SimulationConfig(
                organization="mehpt", scale=64, seed=3,
                obs=ObservabilityConfig(),
            ),
            params=DatacenterParams(
                sockets=2, processes=3, policy="migrate", quantum=400,
                churn_every=2, rebalance_every=2, pool_mb=16,
            ),
            trace_length=1_200,
        ).run()
        for name in dc.metrics:
            seen.add(name.split("[", 1)[0])
        # faults.events needs a degradation event (counted via the
        # always-registered recovery counter instead);
        # traces.checksum_failures needs a corrupted file (covered by
        # tests/test_traces.py); fuzz.* only fire inside the fuzzer
        # pipeline (covered by tests/test_fuzz_*.py); serve.* only fire
        # inside the translation service (covered by
        # tests/test_serve_server.py); fastpath.quantum_*/numa.batch_*
        # are engine diagnostics deliberately stripped from result
        # snapshots so cached sweep cells stay engine-independent
        # (covered by tests/test_sim_quantum.py).
        missing = set(CATALOGUE) - seen - {
            "faults.events", "sim.populated_pages", "traces.checksum_failures",
        }
        missing = {
            name for name in missing
            if not name.startswith(
                ("fuzz.", "serve.", "fastpath.quantum_", "numa.batch_")
            )
        }
        assert not missing, f"catalogued but never produced: {sorted(missing)}"

    def test_populate_sets_populated_pages(self):
        workload = get_workload("GUPS", scale=64)
        system = SimulationConfig(
            organization="mehpt", scale=64, obs=ObservabilityConfig()
        ).build(workload)
        populate_tables(system)
        result = memory_result(system, populate=False)
        assert result.metrics["sim.populated_pages"]["value"] > 0

    def test_snapshot_round_trips_through_disk_cache(self, tmp_path):
        settings = ExperimentSettings(scale=256, trace_length=2000)
        cells = [("GUPS", "mehpt", False)]
        overrides = {}
        cold_engine = SweepEngine(jobs=1, cache_dir=str(tmp_path))
        # ObservabilityConfig is a non-scalar override: memo-only, so we
        # verify the *metrics field* round-trips, using a plain cell
        # whose (empty) metrics dict must survive, plus a direct
        # record-level round-trip of a populated snapshot.
        cold = cold_engine.run_cells("perf", settings, cells, overrides)
        warm_engine = SweepEngine(jobs=1, cache_dir=str(tmp_path))
        warm = warm_engine.run_cells("perf", settings, cells, overrides)
        assert warm == cold
        assert warm_engine.cache_stats()["hits"] == 1

        from repro.sim.results import result_from_record, result_to_record

        result, _ = run_perf("mehpt", obs=ObservabilityConfig())
        assert result.metrics
        restored = result_from_record(
            json.loads(json.dumps(result_to_record(result)))
        )
        assert restored == result

    def test_walk_latency_histogram_counts_walks(self):
        result, _ = run_perf("mehpt", obs=ObservabilityConfig())
        histogram = result.metrics["walker.walk_latency"]
        assert histogram["kind"] == "histogram"
        assert histogram["count"] == result.metrics["walker.walks"]["value"]


# -- traces ----------------------------------------------------------------


class TestTraces:
    def test_trace_is_deterministic_for_fixed_seed(self, tmp_path):
        paths = [str(tmp_path / f"t{i}.jsonl") for i in range(2)]
        for path in paths:
            run_perf(
                "mehpt",
                obs=ObservabilityConfig(trace_path=path, trace_sample_every=4),
            )
        a, b = (open(path, "rb").read() for path in paths)
        assert a == b

    def test_sampling_thins_only_sampled_kinds(self, tmp_path):
        dense_path = str(tmp_path / "dense.jsonl")
        sparse_path = str(tmp_path / "sparse.jsonl")
        run_perf("mehpt", obs=ObservabilityConfig(trace_path=dense_path))
        run_perf(
            "mehpt",
            obs=ObservabilityConfig(trace_path=sparse_path, trace_sample_every=5),
        )
        dense = read_jsonl(dense_path)
        sparse = read_jsonl(sparse_path)
        for kind in SAMPLED_KINDS:
            dense_count = len(filter_kind(dense, kind))
            if dense_count:
                assert len(filter_kind(sparse, kind)) < dense_count
        for kind in ALL_KINDS - SAMPLED_KINDS:
            assert len(filter_kind(sparse, kind)) == len(filter_kind(dense, kind))

    def test_cycle_stamps_are_monotonic(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        run_perf("ecpt", obs=ObservabilityConfig(trace_path=path))
        events = read_jsonl(path)
        cycles = [event["cycle"] for event in events]
        assert cycles == sorted(cycles)
        assert [event["seq"] for event in events] == list(range(len(events)))

    def test_lifecycle_events_present_and_ordered(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        run_perf("mehpt", obs=ObservabilityConfig(trace_path=path))
        events = read_jsonl(path)
        kinds = [event["kind"] for event in events]
        assert kinds[0] == EVENT_RUN_START
        assert kinds[-1] == EVENT_RUN_END
        assert kinds.index(EVENT_MEASURE_START) < kinds.index(EVENT_RUN_END)

    def test_resize_begin_commit_pair_up(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        run_perf("mehpt", obs=ObservabilityConfig(trace_path=path))
        events = read_jsonl(path)
        begins = filter_kind(events, EVENT_RESIZE_BEGIN)
        commits = [
            event
            for event in filter_kind(events, EVENT_RESIZE_COMMIT)
            if not event.get("eager")
        ]
        assert begins
        # Every non-eager commit closes an earlier begin (some begins may
        # still be in flight at run end).
        assert len(commits) <= len(begins)

    def test_walk_start_end_pair_by_id(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        run_perf("radix", obs=ObservabilityConfig(trace_path=path))
        events = read_jsonl(path)
        starts = {event["walk"] for event in filter_kind(events, EVENT_WALK_START)}
        ends = {event["walk"] for event in filter_kind(events, EVENT_WALK_END)}
        assert starts == ends


# -- the report CLI --------------------------------------------------------


class TestReport:
    @pytest.mark.parametrize("organization", ["radix", "ecpt", "mehpt"])
    def test_reproduces_cpa_terms_from_events_alone(self, tmp_path, organization):
        """The acceptance criterion: record one Figure-9 cell with JSONL
        tracing and rebuild that cell's cpa terms from events only."""
        path = str(tmp_path / "t.jsonl")
        record_cell(
            "GUPS", organization, False, path, scale=64, trace_length=4000
        )
        attribution = attribute(read_jsonl(path))
        assert attribution["exact"]
        for name, check in attribution["crosscheck"].items():
            assert check["match"] is True, (name, check)

    def test_matches_simulator_result_dataclass(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        workload = get_workload("GUPS", scale=64)
        config = SimulationConfig(
            organization="mehpt",
            scale=64,
            obs=ObservabilityConfig(trace_path=path),
        )
        simulator = TranslationSimulator(
            workload, config, trace_length=4000, warmup_fraction=0.1
        )
        result = simulator.run()
        terms = attribute(read_jsonl(path))["terms"]
        assert terms["translation_cycles"] == pytest.approx(result.translation_cycles)
        assert terms["pt_alloc_cycles"] == pytest.approx(result.pt_alloc_cycles)
        assert terms["cycles_per_access"] == pytest.approx(result.cycles_per_access())

    def test_sampled_trace_is_flagged_estimate(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        record_cell(
            "GUPS", "ecpt", False, path,
            sample_every=7, scale=64, trace_length=4000,
        )
        attribution = attribute(read_jsonl(path))
        assert not attribution["exact"]
        check = attribution["crosscheck"]["translation_cycles"]
        assert check["match"] == "sampled-estimate"
        # Still a close estimate: within 5% of the simulator's value.
        assert check["events"] == pytest.approx(check["simulator"], rel=0.05)
        # OS-side terms stay exact under sampling.
        assert attribution["crosscheck"]["pt_alloc_cycles"]["match"] is True

    def test_trace_without_run_start_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"kind": "tlb_miss", "cycle": 0, "seq": 0}) + "\n")
        with pytest.raises(ConfigurationError):
            attribute(read_jsonl(str(path)))

    def test_cli_end_to_end(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.obs.report",
                "--record", "GUPS", "mehpt", "--out", trace,
                "--scale", "64", "--trace-length", "3000", "--json",
            ],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )
        assert completed.returncode == 0, completed.stderr
        attribution = json.loads(completed.stdout)
        assert attribution["organization"] == "mehpt"
        assert all(c["match"] is True for c in attribution["crosscheck"].values())


# -- manifests -------------------------------------------------------------


class TestManifests:
    def test_engine_writes_manifest_next_to_record(self, tmp_path):
        settings = ExperimentSettings(scale=256, trace_length=2000)
        engine = SweepEngine(jobs=1, cache_dir=str(tmp_path))
        engine.run_cells("memory", settings, [("GUPS", "mehpt", False)], {})
        records = [f for f in os.listdir(tmp_path) if not f.endswith(".manifest.json")]
        manifests = [f for f in os.listdir(tmp_path) if f.endswith(".manifest.json")]
        assert len(records) == len(manifests) == 1
        manifest = read_manifest(os.path.join(str(tmp_path), manifests[0]))
        assert manifest["cell"] == {
            "app": "GUPS", "organization": "mehpt", "thp": False,
        }
        assert manifest["kind"] == "memory"
        assert manifest["seed"] == settings.seed
        assert manifest["elapsed_seconds"] > 0
        assert manifest["key"] == records[0].removesuffix(".json")

    def test_manifests_never_gate_cache_hits(self, tmp_path):
        settings = ExperimentSettings(scale=256, trace_length=2000)
        cells = [("GUPS", "radix", False)]
        SweepEngine(jobs=1, cache_dir=str(tmp_path)).run_cells(
            "memory", settings, cells, {}
        )
        for name in os.listdir(tmp_path):
            if name.endswith(".manifest.json"):
                os.unlink(os.path.join(str(tmp_path), name))
        warm = SweepEngine(jobs=1, cache_dir=str(tmp_path))
        warm.run_cells("memory", settings, cells, {})
        assert warm.cache_stats()["hits"] == 1

    def test_no_cache_writes_no_manifests(self, tmp_path):
        settings = ExperimentSettings(scale=256, trace_length=2000)
        engine = SweepEngine(jobs=1, cache_dir=str(tmp_path), use_cache=False)
        engine.run_cells("memory", settings, [("GUPS", "radix", False)], {})
        assert os.listdir(tmp_path) == []


# -- degradation + fault_injected event ------------------------------------


class TestFaultEvents:
    def test_injected_fault_emits_event_and_metric(self):
        from repro.faults.plan import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec(site="chunk_alloc", every=3)], seed=9)
        workload = get_workload("GUPS", scale=64)
        config = SimulationConfig(
            organization="mehpt",
            scale=64,
            fault_plan=plan,
            obs=ObservabilityConfig(trace_buffer=100000),
        )
        system = config.build(workload)
        populate_tables(system)
        result = memory_result(system, populate=False)
        injected = [
            event
            for event in system.obs.ring.events
            if event["kind"] == "fault_injected"
        ]
        assert injected, "plan should have fired at least once"
        fault_metrics = [
            name for name in result.metrics if name.startswith("faults.events[")
        ]
        assert fault_metrics


# -- doccheck tooling -------------------------------------------------------


class TestDoccheck:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "tools", "doccheck.py"), *args],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )

    def test_obs_docs_pass_on_repo(self):
        completed = self._run("obs-docs")
        assert completed.returncode == 0, completed.stdout

    def test_coverage_meets_ci_floor(self):
        completed = self._run("coverage", "--min", "66.0")
        assert completed.returncode == 0, completed.stdout

    def test_coverage_gate_can_fail(self):
        completed = self._run("coverage", "--min", "100.0")
        assert completed.returncode == 1

    def test_doc_drift_detected(self, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "doccheck", os.path.join(REPO_ROOT, "tools", "doccheck.py")
        )
        doccheck = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(doccheck)
        doc = tmp_path / "OBS.md"
        doc.write_text(
            "## Metric catalogue\n\n| metric |\n|---|\n| `made.up_metric` |\n"
        )
        names = doccheck.doc_table_names(str(doc), "Metric catalogue")
        assert names == {"made.up_metric"}
        assert "made.up_metric" not in CATALOGUE
