"""Unit tests for the trace-driven simulator (repro.sim.simulator)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.results import speedup
from repro.sim.simulator import TranslationSimulator, memory_result, populate_tables
from repro.workloads import get_workload

SCALE = 64
FAST = dict(scale=SCALE)


def run(org, thp=False, app="TC", n=8_000, warmup=0.0, **overrides):
    workload = get_workload(app, scale=SCALE)
    config = SimulationConfig(organization=org, thp_enabled=thp, **FAST, **overrides)
    return TranslationSimulator(
        workload, config, trace_length=n, warmup_fraction=warmup
    ).run()


class TestPopulate:
    def test_every_page_mapped(self):
        workload = get_workload("TC", scale=SCALE)
        system = SimulationConfig(organization="mehpt", **FAST).build(workload)
        populate_tables(system)
        pages = workload.page_set()
        for vpn in pages[:: max(1, len(pages) // 100)]:
            assert system.page_tables.translate(int(vpn)) is not None

    def test_memory_result_fields(self):
        workload = get_workload("TC", scale=SCALE)
        system = SimulationConfig(organization="mehpt", **FAST).build(workload)
        result = memory_result(system)
        assert result.total_pt_bytes > 0
        assert result.max_contiguous_bytes > 0
        assert len(result.upsizes_per_way_4k) == 3
        assert not result.failed

    def test_memory_result_radix(self):
        workload = get_workload("TC", scale=SCALE)
        system = SimulationConfig(organization="radix", **FAST).build(workload)
        result = memory_result(system)
        assert result.max_contiguous_bytes == 4096
        assert result.total_pt_bytes > 0

    def test_ecpt_failure_recorded_not_raised(self):
        workload = get_workload("GUPS", scale=SCALE)
        system = SimulationConfig(organization="ecpt", fmfi=0.75, **FAST).build(workload)
        result = memory_result(system)
        assert result.failed
        assert "contiguous" in result.failure_reason


class TestTraceRuns:
    @pytest.mark.parametrize("org", ["radix", "ecpt", "mehpt"])
    def test_runs_and_counts(self, org):
        result = run(org)
        assert result.accesses >= 8_000
        assert result.walks > 0
        assert result.translation_cycles > 0
        assert 0.0 < result.tlb_miss_rate() <= 1.0

    def test_accesses_include_repeats(self):
        result = run("radix")
        repeats = get_workload("TC", scale=SCALE).spec.pattern.page_repeats
        assert result.accesses == 8_000 * repeats

    def test_faults_bounded_by_footprint(self):
        result = run("mehpt")
        workload = get_workload("TC", scale=SCALE)
        assert result.faults <= len(workload.page_set())

    def test_thp_reduces_misses_for_covered_app(self):
        no_thp = run("radix", thp=False, app="GUPS")
        thp = run("radix", thp=True, app="GUPS")
        assert thp.walks < no_thp.walks

    def test_cycles_per_access_composition(self):
        result = run("mehpt")
        assert result.cycles_per_access() == pytest.approx(
            result.base_cycles_per_access + result.translation_cpa() + result.os_cpa()
        )

    def test_speedup_self_is_one(self):
        result = run("radix")
        assert speedup(result, result) == 1.0

    def test_hpt_faster_than_radix_on_tlb_hostile_app(self):
        base = run("radix", app="GUPS", n=20_000)
        me = run("mehpt", app="GUPS", n=20_000)
        assert speedup(me, base) > 1.0

    def test_failed_run_flagged(self):
        # scale=512 makes the fatal 64MB-equivalent way reachable within a
        # short trace (the failure needs the table to actually grow there).
        workload = get_workload("GUPS", scale=512)
        config = SimulationConfig(organization="ecpt", fmfi=0.75, scale=512)
        result = TranslationSimulator(workload, config, trace_length=30_000).run()
        assert result.failed
        base = run("radix", app="GUPS", n=20_000)
        assert speedup(result, base) == 0.0

    def test_warmup_changes_translation_cpa(self):
        cold = run("mehpt", app="GUPS", n=10_000)
        warm = run("mehpt", app="GUPS", n=10_000, warmup=0.5)
        repeats = get_workload("GUPS", scale=SCALE).spec.pattern.page_repeats
        assert warm.accesses == 5_000 * repeats
        assert warm.translation_cpa() != cold.translation_cpa()
        # Warming excludes the cold-start faults/walks from the window.
        assert warm.faults < cold.faults
        assert warm.walks < cold.walks
        assert warm.translation_cycles < cold.translation_cycles

    def test_warmup_counters_are_windowed(self):
        result = run("radix", n=8_000, warmup=0.25)
        repeats = get_workload("TC", scale=SCALE).spec.pattern.page_repeats
        assert result.accesses == 6_000 * repeats
        events = result.l1_hits + result.l2_hits + result.walks
        assert events == 6_000

    def test_warmup_fraction_validated(self):
        workload = get_workload("TC", scale=SCALE)
        config = SimulationConfig(**FAST)
        for bad in (-0.1, 1.0, 1.5):
            with pytest.raises(ConfigurationError):
                TranslationSimulator(workload, config, warmup_fraction=bad)

    def test_aborted_run_counts_simulated_prefix(self):
        # Same failing configuration as test_failed_run_flagged: the run
        # aborts mid-trace, and the access count must be the simulated
        # prefix, not the full trace.
        workload = get_workload("GUPS", scale=512)
        config = SimulationConfig(organization="ecpt", fmfi=0.75, scale=512)
        result = TranslationSimulator(workload, config, trace_length=30_000).run()
        repeats = workload.spec.pattern.page_repeats
        assert result.failed
        assert 0 < result.accesses < 30_000 * repeats
        assert result.accesses % repeats == 0
        # The per-access rates divide prefix cycles by prefix accesses.
        assert result.translation_cpa() > 0
        assert 0.0 < result.tlb_miss_rate() <= 1.0

    def test_differential_costs_populated_for_hpts(self):
        result = run("ecpt", app="GUPS", n=20_000)
        assert result.pt_alloc_cycles > 0
        assert result.rehash_move_cycles > 0
        me = run("mehpt", app="GUPS", n=20_000)
        assert me.l2p_exposed_cycles >= 0
