"""Unit tests for the clustered page-table layer (repro.hashing.clustered)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hashing.clustered import PAGES_PER_BLOCK, ClusteredHashedPageTable
from tests.conftest import make_chunked_table, make_contiguous_table


def make_pt(page_size="4K", table=None):
    return ClusteredHashedPageTable(page_size, table or make_contiguous_table())


class TestClustering:
    def test_eight_pages_share_one_block(self):
        pt = make_pt()
        for offset in range(PAGES_PER_BLOCK):
            pt.map(0x1000 + offset, 0x9000 + offset)
        assert len(pt.table) == 1  # one cuckoo entry for 8 pages
        assert pt.mapped_pages == PAGES_PER_BLOCK

    def test_ninth_page_uses_second_block(self):
        pt = make_pt()
        for offset in range(PAGES_PER_BLOCK + 1):
            pt.map(0x1000 + offset, 0x9000 + offset)
        assert len(pt.table) == 2

    def test_translate_returns_per_page_ppn(self):
        pt = make_pt()
        pt.map(0x1003, 777)
        assert pt.translate(0x1003) == 777
        assert pt.translate(0x1004) is None

    def test_map_result_flags_new_block(self):
        pt = make_pt()
        first = pt.map(0x2000, 1)
        second = pt.map(0x2001, 2)
        assert first.new_block and not second.new_block


class TestUnmap:
    def test_unmap_single_page(self):
        pt = make_pt()
        pt.map(0x1000, 5)
        assert pt.unmap(0x1000)
        assert pt.translate(0x1000) is None
        assert not pt.unmap(0x1000)

    def test_block_removed_when_empty(self):
        pt = make_pt()
        pt.map(0x1000, 5)
        pt.map(0x1001, 6)
        pt.unmap(0x1000)
        assert len(pt.table) == 1
        pt.unmap(0x1001)
        assert len(pt.table) == 0


class TestPageSizes:
    def test_2m_granularity(self):
        pt = make_pt(page_size="2M")
        vpn = 512 * 7  # 2MB-aligned
        pt.map(vpn, 0xAA)
        # Any 4KB vpn within the huge page translates.
        assert pt.translate(vpn + 100) == 0xAA

    def test_alignment_enforced(self):
        pt = make_pt(page_size="2M")
        with pytest.raises(ConfigurationError):
            pt.map(513, 1)

    def test_1g_granularity(self):
        pt = make_pt(page_size="1G")
        vpn = (1 << 18) * 3
        pt.map(vpn, 0xBB)
        assert pt.translate(vpn + 12345) == 0xBB

    def test_unknown_page_size_rejected(self):
        with pytest.raises(ConfigurationError):
            make_pt(page_size="16K")


class TestProbeLines:
    def test_one_line_per_way(self):
        pt = make_pt()
        pt.map(0x1000, 5)
        lines = pt.probe_line_addrs(0x1000)
        assert len(lines) == pt.table.num_ways
        assert len(set(lines)) == len(lines)  # distinct storages/slots

    def test_probe_lines_stable_for_same_block(self):
        pt = make_pt()
        assert pt.probe_line_addrs(0x1000) == pt.probe_line_addrs(0x1007)


class TestAccounting:
    def test_peak_bytes_monotonic(self):
        pt = make_pt(table=make_chunked_table(initial_slots=16))
        last_peak = pt.peak_bytes
        for i in range(2000):
            pt.map(0x1000 + i, i)
            assert pt.peak_bytes >= last_peak
            last_peak = pt.peak_bytes
        assert pt.peak_bytes >= pt.total_bytes()

    def test_occupancy_in_range(self):
        pt = make_pt()
        for i in range(100):
            pt.map(0x4000 + i * PAGES_PER_BLOCK, i)
        assert 0.0 < pt.occupancy() <= 0.6 + 1e-9 or pt.table.resizing()
