"""Unit tests for allocator objects (repro.mem.allocator)."""

import pytest

from repro.common.errors import ContiguousAllocationError, OutOfMemoryError
from repro.common.units import GB, KB, MB
from repro.mem.allocator import AllocationStats, BuddyBackedAllocator, CostModelAllocator
from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import Fragmenter


class TestAllocationStats:
    def test_peak_and_current_tracking(self):
        stats = AllocationStats()
        stats.on_alloc(100, 10.0)
        stats.on_alloc(200, 10.0)
        stats.on_free(100)
        assert stats.current_bytes == 200
        assert stats.peak_bytes == 300
        assert stats.max_contiguous_bytes == 200

    def test_size_histogram(self):
        stats = AllocationStats()
        stats.on_alloc(64, 1.0)
        stats.on_alloc(64, 1.0)
        stats.on_alloc(128, 1.0)
        assert stats.size_histogram == {64: 2, 128: 1}


class TestCostModelAllocator:
    def test_charges_cycles(self):
        allocator = CostModelAllocator(fmfi=0.7)
        allocator.alloc(1 * MB)
        assert allocator.stats.cycles == pytest.approx(750_000)

    def test_free_returns_bytes(self):
        allocator = CostModelAllocator(fmfi=0.1)
        handle = allocator.alloc(8 * KB)
        allocator.free(handle)
        assert allocator.stats.current_bytes == 0

    def test_failure_recorded_and_raised(self):
        allocator = CostModelAllocator(fmfi=0.9)
        with pytest.raises(ContiguousAllocationError):
            allocator.alloc(64 * MB)
        assert allocator.stats.failed_allocations == 1

    def test_scale_reports_fullscale_equivalents(self):
        scaled = CostModelAllocator(fmfi=0.7, scale=16)
        scaled.alloc(4 * MB)  # full-scale equivalent: 64MB
        assert scaled.stats.max_contiguous_bytes == 64 * MB
        assert scaled.stats.cycles == pytest.approx(120_000_000)

    def test_scale_applies_failure_rule(self):
        scaled = CostModelAllocator(fmfi=0.8, scale=16)
        with pytest.raises(ContiguousAllocationError):
            scaled.alloc(4 * MB)  # 64MB full-scale equivalent fails > 0.7

    def test_shared_stats_aggregate(self):
        stats = AllocationStats()
        a = CostModelAllocator(fmfi=0.1, stats=stats)
        b = CostModelAllocator(fmfi=0.1, stats=stats)
        a.alloc(4 * KB)
        b.alloc(8 * KB)
        assert stats.allocations == 2


class TestBuddyBackedAllocator:
    def test_places_and_frees(self):
        buddy = BuddyAllocator(64 * MB)
        allocator = BuddyBackedAllocator(buddy)
        handle = allocator.alloc(1 * MB)
        assert buddy.free_frames() < buddy.total_frames
        allocator.free(handle)
        assert buddy.free_frames() == buddy.total_frames

    def test_failure_from_real_fragmentation(self):
        buddy = BuddyAllocator(256 * MB)
        Fragmenter(buddy).fragment_to(1.0, buddy.order_for_bytes(64 * MB))
        allocator = BuddyBackedAllocator(buddy)
        with pytest.raises(OutOfMemoryError):
            allocator.alloc(64 * MB)
        assert allocator.stats.failed_allocations == 1

    def test_cost_tracks_live_fmfi(self):
        pristine = BuddyBackedAllocator(BuddyAllocator(1 * GB))
        fragmented_buddy = BuddyAllocator(1 * GB)
        Fragmenter(fragmented_buddy).fragment_to(
            0.6, fragmented_buddy.order_for_bytes(8 * MB)
        )
        fragmented = BuddyBackedAllocator(fragmented_buddy)
        pristine.alloc(8 * MB)
        fragmented.alloc(8 * MB)
        assert fragmented.stats.cycles > pristine.stats.cycles
