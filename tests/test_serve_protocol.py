"""Unit tests for request validation: every 400 the service can produce.

``parse_job_request`` is the service's only gate between untrusted JSON
and the worker processes, so the tests enumerate the rejection classes:
malformed shapes, unknown fields, bad kinds/priorities, unregistered
workloads, unresolvable traces, non-scalar overrides, reserved override
names, and cells whose ``SimulationConfig`` would not construct.
"""

import pytest

from repro.serve.protocol import (
    EVENT_TYPES,
    JobRequest,
    ProtocolError,
    job_event,
    parse_job_request,
    settings_to_dict,
)
from repro.common.errors import ConfigurationError

pytestmark = pytest.mark.serve


def _body(**overrides):
    """A minimal valid perf submission, with overrides applied on top."""
    payload = {
        "kind": "perf",
        "cells": [{"app": "GUPS", "organization": "mehpt", "thp": False}],
        "settings": {"scale": 1024, "trace_length": 2000},
    }
    payload.update(overrides)
    return payload


class TestValidRequests:
    def test_minimal_perf_request(self):
        request = parse_job_request(_body())
        assert request.kind == "perf"
        assert request.cells == (("GUPS", "mehpt", False),)
        assert request.settings.scale == 1024
        assert request.priority == 1 and request.client == "anonymous"

    def test_selftest_needs_no_cells(self):
        request = parse_job_request(
            {"kind": "selftest", "duration_seconds": 2.5}
        )
        assert request.duration_seconds == 2.5
        assert request.cells == ()

    def test_events_and_metrics_knobs(self):
        request = parse_job_request(
            _body(events={"sample_every": 10}, metrics=True)
        )
        assert request.events_sample_every == 10
        assert request.metrics is True

    def test_trace_cell_resolved_through_resolver(self):
        request = parse_job_request(
            _body(cells=[{"app": "trace:sha256:abcd", "organization": "mehpt",
                          "thp": False}]),
            trace_resolver=lambda handle: f"/spool/{handle}.vpt",
        )
        assert request.cells[0][0] == "trace:/spool/sha256:abcd.vpt"

    def test_scalar_overrides_accepted(self):
        request = parse_job_request(_body(overrides={"fmfi": 0.3}))
        assert request.overrides == {"fmfi": 0.3}

    def test_describe_and_settings_roundtrip_are_json_safe(self):
        import json

        request = parse_job_request(_body())
        json.dumps(request.describe())
        json.dumps(settings_to_dict(request.settings))


class TestRejections:
    @pytest.mark.parametrize("payload, fragment", [
        (None, "JSON object"),
        ([], "JSON object"),
        (_body(kind="nope"), "kind"),
        (_body(priority=9), "priority"),
        (_body(priority="high"), "priority"),
        (_body(client=""), "client"),
        (_body(timeout_seconds=-1), "timeout_seconds"),
        (_body(timeout_seconds=True), "timeout_seconds"),
        (_body(metrics="yes"), "metrics"),
        (_body(cells=[]), "non-empty"),
        (_body(cells=["GUPS"]), "object"),
        (_body(cells=[{"app": "GUPS", "organization": "mehpt",
                       "extra": 1}]), "unknown keys"),
        (_body(cells=[{"app": "NotAWorkload",
                       "organization": "mehpt"}]), "not a registered"),
        (_body(cells=[{"app": "GUPS", "organization": "mehpt",
                       "thp": "yes"}]), "boolean"),
        (_body(cells=[{"app": "GUPS", "organization": 7}]), "organization"),
        (_body(settings={"scale": 1024, "bogus": 1}), "unknown fields"),
        (_body(settings={"scale": "big"}), "number"),
        (_body(settings=[1]), "settings must be an object"),
        (_body(overrides={"not_a_field": 1}), "not an overridable"),
        (_body(overrides={"obs": {}}), "not an overridable"),
        (_body(overrides={"fault_plan": None}), "not an overridable"),
        (_body(overrides={"fmfi": [0.1]}), "JSON scalar"),
        (_body(events={"sample_every": 0}), ">= 1"),
        (_body(events={"weird": 1}), "unknown keys"),
        ({"kind": "selftest", "duration_seconds": 1e9}, "duration_seconds"),
    ])
    def test_bad_payload_raises_protocol_error(self, payload, fragment):
        with pytest.raises(ProtocolError) as excinfo:
            parse_job_request(payload)
        assert fragment in excinfo.value.message

    def test_invalid_organization_caught_at_parse_time(self):
        """The dry config build rejects cells a worker would crash on."""
        with pytest.raises(ProtocolError) as excinfo:
            parse_job_request(_body(
                cells=[{"app": "GUPS", "organization": "hogwarts"}]
            ))
        assert "hogwarts" in excinfo.value.message

    def test_invalid_override_value_caught_at_parse_time(self):
        with pytest.raises(ProtocolError):
            parse_job_request(_body(overrides={"fmfi": 7.5}))

    def test_trace_without_resolver_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_job_request(_body(
                cells=[{"app": "trace:sha256:abcd", "organization": "mehpt"}]
            ))
        assert "no trace store" in excinfo.value.message

    def test_resolver_protocol_error_propagates(self):
        def resolver(handle):
            raise ProtocolError(f"unknown trace {handle}")

        with pytest.raises(ProtocolError) as excinfo:
            parse_job_request(
                _body(cells=[{"app": "trace:ghost", "organization": "mehpt"}]),
                trace_resolver=resolver,
            )
        assert "unknown trace ghost" in excinfo.value.message


class TestJobEvents:
    def test_every_declared_type_builds(self):
        for event in EVENT_TYPES:
            record = job_event(event, "job-1", extra=1)
            assert record["event"] == event and record["job"] == "job-1"

    def test_unknown_type_raises(self):
        with pytest.raises(ConfigurationError):
            job_event("exploded", "job-1")


class TestJobRequestShape:
    def test_frozen(self):
        request = parse_job_request(_body())
        with pytest.raises(Exception):
            request.kind = "memory"

    def test_direct_construction_for_internal_use(self):
        from repro.experiments.runner import ExperimentSettings

        request = JobRequest(kind="perf", cells=(), overrides={},
                             settings=ExperimentSettings())
        assert request.timeout_seconds is None
