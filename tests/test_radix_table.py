"""Unit tests for the radix page table (repro.radix.table)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import PAGE_4K
from repro.radix.table import FANOUT, RadixPageTable


class TestMapping:
    def test_map_translate_4k(self):
        table = RadixPageTable()
        table.map(0x12345, 0x999)
        assert table.translate(0x12345) == (0x999, "4K")
        assert table.translate(0x12346) is None

    def test_map_2m_leaf_covers_512_pages(self):
        table = RadixPageTable()
        base = 512 * 9
        table.map(base, 0x777, "2M")
        assert table.translate(base) == (0x777, "2M")
        assert table.translate(base + 511) == (0x777, "2M")
        assert table.translate(base + 512) is None

    def test_map_1g_leaf(self):
        table = RadixPageTable()
        base = (1 << 18) * 2
        table.map(base, 0x555, "1G")
        assert table.translate(base + 98765) == (0x555, "1G")

    def test_alignment_enforced(self):
        table = RadixPageTable()
        with pytest.raises(ConfigurationError):
            table.map(513, 1, "2M")

    def test_conflicting_leaf_levels_rejected(self):
        table = RadixPageTable()
        table.map(0, 1, "2M")
        with pytest.raises(ConfigurationError):
            table.map(0, 2, "4K")  # inside the huge page
        table2 = RadixPageTable()
        table2.map(5, 1, "4K")
        with pytest.raises(ConfigurationError):
            table2.map(0, 2, "2M")  # over existing small pages

    def test_remap_replaces(self):
        table = RadixPageTable()
        table.map(7, 1)
        table.map(7, 2)
        assert table.translate(7) == (2, "4K")
        assert table.mapped_pages["4K"] == 1

    def test_unmap(self):
        table = RadixPageTable()
        table.map(7, 1)
        assert table.unmap(7)
        assert table.translate(7) is None
        assert not table.unmap(7)

    def test_five_level_mode(self):
        table = RadixPageTable(levels=5)
        vpn = (1 << 48) // PAGE_4K * 3  # beyond 48-bit VA space
        table.map(vpn, 0xAB)
        assert table.translate(vpn) == (0xAB, "4K")

    def test_invalid_levels(self):
        with pytest.raises(ConfigurationError):
            RadixPageTable(levels=3)


class TestMemoryAccounting:
    def test_one_node_initially(self):
        assert RadixPageTable().table_bytes() == PAGE_4K

    def test_dense_mapping_node_count(self):
        table = RadixPageTable()
        # Map 2*FANOUT contiguous pages: 2 PTE nodes + 1 PMD + 1 PUD + root.
        for vpn in range(2 * FANOUT):
            table.map(vpn, vpn)
        assert table.node_count == 5
        assert table.max_contiguous_bytes() == PAGE_4K

    def test_sparse_mapping_costs_more_nodes(self):
        dense = RadixPageTable()
        sparse = RadixPageTable()
        for i in range(64):
            dense.map(i, i)
            sparse.map(i * FANOUT * FANOUT, i)
        assert sparse.node_count > dense.node_count


class TestWalkPath:
    def test_walk_depth_4k(self):
        table = RadixPageTable()
        table.map(0x1000, 1)
        leaf, lines = table.walk(0x1000)
        assert leaf is not None
        assert len(lines) == 4  # PGD, PUD, PMD, PTE

    def test_walk_depth_2m(self):
        table = RadixPageTable()
        table.map(0, 1, "2M")
        leaf, lines = table.walk(100)
        assert leaf.page_size == "2M"
        assert len(lines) == 3  # stops at the PMD leaf

    def test_walk_unmapped_stops_at_missing_entry(self):
        table = RadixPageTable()
        table.map(0x1000, 1)
        leaf, lines = table.walk(0x1000 + (1 << 27))  # different PGD entry
        assert leaf is None
        assert len(lines) == 1

    def test_walk_lines_distinct_per_level(self):
        table = RadixPageTable()
        table.map(0x2000, 1)
        _leaf, lines = table.walk(0x2000)
        assert len(set(lines)) == len(lines)


class TestIteration:
    def test_iter_mappings_roundtrip(self):
        table = RadixPageTable()
        expected = set()
        for i in range(50):
            table.map(i * 17, i)
            expected.add((i * 17, i, "4K"))
        table.map(512 * 100, 1234, "2M")
        expected.add((512 * 100, 1234, "2M"))
        assert set(table.iter_mappings()) == expected
