"""Unit tests for set-associative TLBs (repro.mmu.tlb)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mmu.tlb import SetAssociativeTlb


class TestGeometry:
    def test_entries_divisible_by_ways(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeTlb("bad", 100, 3, 2)

    def test_sets_power_of_two(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeTlb("bad", 24, 4, 2)  # 6 sets

    def test_table3_geometries_valid(self):
        SetAssociativeTlb("L1-4K", 64, 4, 2)
        SetAssociativeTlb("L1-2M", 32, 4, 2)
        SetAssociativeTlb("L1-1G", 4, 4, 2)
        SetAssociativeTlb("L2-4K", 1024, 8, 12)


class TestLookupFill:
    def test_miss_then_hit(self):
        tlb = SetAssociativeTlb("t", 16, 4, 2)
        assert not tlb.lookup(42)
        tlb.fill(42)
        assert tlb.lookup(42)
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_within_set(self):
        tlb = SetAssociativeTlb("t", 8, 2, 2)  # 4 sets, 2 ways
        tlb.fill(0)
        tlb.fill(4)   # same set 0
        tlb.fill(8)   # evicts LRU (0)
        assert not tlb.lookup(0)
        assert tlb.lookup(4) and tlb.lookup(8)

    def test_lookup_refreshes_lru(self):
        tlb = SetAssociativeTlb("t", 8, 2, 2)
        tlb.fill(0)
        tlb.fill(4)
        tlb.lookup(0)
        tlb.fill(8)  # evicts 4
        assert tlb.lookup(0)
        assert not tlb.lookup(4)

    def test_fill_idempotent(self):
        tlb = SetAssociativeTlb("t", 8, 2, 2)
        tlb.fill(3)
        tlb.fill(3)
        assert tlb.occupancy() == 1

    def test_invalidate(self):
        tlb = SetAssociativeTlb("t", 8, 2, 2)
        tlb.fill(5)
        assert tlb.invalidate(5)
        assert not tlb.lookup(5)
        assert not tlb.invalidate(5)

    def test_flush(self):
        tlb = SetAssociativeTlb("t", 16, 4, 2)
        for i in range(10):
            tlb.fill(i)
        tlb.flush()
        assert tlb.occupancy() == 0

    def test_hit_rate(self):
        tlb = SetAssociativeTlb("t", 16, 4, 2)
        tlb.lookup(1)
        tlb.fill(1)
        tlb.lookup(1)
        assert tlb.hit_rate() == 0.5
