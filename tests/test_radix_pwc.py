"""Unit tests for page-walk caches (repro.radix.pwc)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.radix.pwc import PageWalkCaches, _FullyAssociativeCache


class TestFullyAssociativeCache:
    def test_lru_eviction(self):
        cache = _FullyAssociativeCache(2)
        cache.fill(1)
        cache.fill(2)
        cache.fill(3)
        assert not cache.lookup(1)
        assert cache.lookup(2) and cache.lookup(3)

    def test_lookup_promotes(self):
        cache = _FullyAssociativeCache(2)
        cache.fill(1)
        cache.fill(2)
        cache.lookup(1)
        cache.fill(3)  # evicts 2 (LRU), not 1
        assert cache.lookup(1)
        assert not cache.lookup(2)


class TestPageWalkCaches:
    def test_cold_lookup_starts_at_root(self):
        pwc = PageWalkCaches()
        assert pwc.lookup(0x12345, max_depth=3) == 0

    def test_fill_then_deepest_hit(self):
        pwc = PageWalkCaches()
        pwc.fill(0x12345, reached_depth=3)
        assert pwc.lookup(0x12345, max_depth=3) == 3

    def test_max_depth_respected_for_huge_walks(self):
        pwc = PageWalkCaches()
        pwc.fill(0x12345, reached_depth=3)
        # A 2MB walk only has 3 node levels; the depth-3 pointer is too deep.
        assert pwc.lookup(0x12345, max_depth=2) == 2

    def test_neighbouring_pages_share_upper_entries(self):
        pwc = PageWalkCaches()
        pwc.fill(0x1000, reached_depth=3)
        # Same PTE node (same vpn >> 9) -> depth-3 hit.
        assert pwc.lookup(0x11FF, max_depth=3) == 3
        # Same PMD node but different PTE node -> depth-2 hit.
        assert pwc.lookup(0x1000 + (1 << 9), max_depth=3) == 2

    def test_capacity_eviction(self):
        pwc = PageWalkCaches(entries_per_level=2)
        for i in range(4):
            pwc.fill(i << 27, reached_depth=1)  # distinct PGD entries
        assert pwc.lookup(0 << 27, max_depth=3) == 0  # evicted
        assert pwc.lookup(3 << 27, max_depth=3) == 1

    def test_five_level_tree_caches_deepest_three(self):
        pwc = PageWalkCaches(levels=5, num_caches=3)
        pwc.fill(0xABCDE, reached_depth=4)
        assert pwc.lookup(0xABCDE, max_depth=4) == 4
        assert len(pwc._caches) == 3

    def test_hit_rate(self):
        pwc = PageWalkCaches()
        pwc.lookup(1, max_depth=3)
        pwc.fill(1, reached_depth=3)
        pwc.lookup(1, max_depth=3)
        assert 0.0 < pwc.hit_rate() < 1.0

    def test_needs_two_levels(self):
        with pytest.raises(ConfigurationError):
            PageWalkCaches(levels=1)
