"""Unit tests for the radix walker (repro.radix.walker)."""

from repro.mem.cache import CacheHierarchy
from repro.radix.pwc import PageWalkCaches
from repro.radix.table import RadixPageTable
from repro.radix.walker import RadixWalker


def make_walker(table=None):
    table = table or RadixPageTable()
    return RadixWalker(table, CacheHierarchy()), table


class TestWalks:
    def test_cold_walk_pays_four_sequential_accesses(self):
        walker, table = make_walker()
        table.map(0x3000, 9)
        result = walker.walk(0x3000)
        assert result.ppn == 9
        assert result.memory_accesses == 4
        # 4 cold accesses at DRAM latency plus the PWC lookup.
        assert result.cycles == 4 + 4 * 200

    def test_warm_walk_uses_pwc(self):
        walker, table = make_walker()
        table.map(0x3000, 9)
        walker.walk(0x3000)
        result = walker.walk(0x3001 + 0)  # unmapped but same PTE node
        table.map(0x3001, 10)
        result = walker.walk(0x3001)
        assert result.memory_accesses == 1  # PWC skips to the PTE access

    def test_sequential_latency_adds_up(self):
        walker, table = make_walker()
        table.map(0x5000, 1)
        cold = walker.walk(0x5000).cycles
        warm = walker.walk(0x5000).cycles
        assert warm < cold

    def test_fault_result(self):
        walker, _table = make_walker()
        result = walker.walk(0x77777)
        assert result.fault
        assert result.ppn is None

    def test_huge_page_walk_is_shorter(self):
        walker, table = make_walker()
        table.map(0, 1, "2M")
        result = walker.walk(5)
        assert result.page_size == "2M"
        assert result.memory_accesses == 3

    def test_statistics(self):
        walker, table = make_walker()
        table.map(1, 1)
        walker.walk(1)
        walker.walk(1)
        assert walker.walks == 2
        assert walker.mean_walk_cycles() > 0
