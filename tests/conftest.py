"""Shared fixtures for the ME-HPT reproduction test suite."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.hashing.cuckoo import ElasticCuckooTable, ElasticWay
from repro.hashing.hashes import HashFamily
from repro.hashing.policies import AllWayResizePolicy, PerWayResizePolicy
from repro.hashing.storage import ChunkedStorage, ContiguousStorage, UnlimitedChunkBudget


def make_contiguous_table(
    ways: int = 3,
    initial_slots: int = 16,
    seed: int = 7,
    policy=None,
    allow_downsize: bool = True,
) -> ElasticCuckooTable:
    """A small ECPT-style table: contiguous ways, all-way policy."""
    family = HashFamily(seed=seed)
    way_objs = [
        ElasticWay(i, family.function(i), ContiguousStorage(initial_slots))
        for i in range(ways)
    ]
    if policy is None:
        policy = AllWayResizePolicy(min_way_slots=initial_slots,
                                    allow_downsize=allow_downsize)
    return ElasticCuckooTable(
        way_objs,
        policy,
        lambda w, slots: ContiguousStorage(slots),
        rng=DeterministicRng(seed + 1),
    )


def make_chunked_table(
    ways: int = 3,
    initial_slots: int = 16,
    chunk_bytes: int = 1024,
    seed: int = 7,
    budget=None,
    allow_downsize: bool = True,
) -> ElasticCuckooTable:
    """A small ME-HPT-style table: chunked ways, per-way policy."""
    family = HashFamily(seed=seed)
    shared_budget = budget if budget is not None else UnlimitedChunkBudget()
    way_objs = [
        ElasticWay(
            i,
            family.function(i),
            ChunkedStorage(initial_slots, chunk_bytes=chunk_bytes, budget=shared_budget),
        )
        for i in range(ways)
    ]
    policy = PerWayResizePolicy(min_way_slots=initial_slots,
                                allow_downsize=allow_downsize)
    return ElasticCuckooTable(
        way_objs,
        policy,
        lambda w, slots: ChunkedStorage(
            slots, chunk_bytes=chunk_bytes, budget=shared_budget
        ),
        rng=DeterministicRng(seed + 2),
    )


@pytest.fixture
def contiguous_table() -> ElasticCuckooTable:
    return make_contiguous_table()


@pytest.fixture
def chunked_table() -> ElasticCuckooTable:
    return make_chunked_table()
