"""Unit tests for workload generation (repro.workloads)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.base import (
    DATA_VMA_BASE,
    PAGES_PER_BLOCK,
    AccessPattern,
    Workload,
    WorkloadSpec,
)
from repro.workloads.registry import (
    ALL_WORKLOADS,
    GRAPH_WORKLOADS,
    get_workload,
    graph_workload_with_nodes,
    workload_names,
)


class TestAccessPattern:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            AccessPattern(sequential=0.5, uniform=0.2, zipf=0.1)

    def test_valid_pattern(self):
        AccessPattern(sequential=0.3, uniform=0.4, zipf=0.3)


class TestRegistry:
    def test_eleven_applications(self):
        assert len(workload_names()) == 11
        assert set(GRAPH_WORKLOADS) <= set(workload_names())

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            get_workload("nosuchapp")

    def test_table1_data_sizes(self):
        assert ALL_WORKLOADS["GUPS"].data_gb == 64.0
        assert ALL_WORKLOADS["BFS"].data_gb == 9.3
        assert ALL_WORKLOADS["MUMmer"].data_gb == 6.9

    def test_thp_coverage_calibration(self):
        assert ALL_WORKLOADS["GUPS"].thp_coverage == 1.0
        assert ALL_WORKLOADS["SysBench"].thp_coverage == 1.0
        assert ALL_WORKLOADS["BFS"].thp_coverage == 0.0
        assert 0.0 < ALL_WORKLOADS["MUMmer"].thp_coverage < 1.0


class TestFootprint:
    def test_block_set_size_scales(self):
        full = get_workload("BFS", scale=1)
        scaled = get_workload("BFS", scale=8)
        assert abs(len(scaled.block_set()) - len(full.block_set()) / 8) < 8

    def test_scale_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            Workload(ALL_WORKLOADS["BFS"], scale=3)

    def test_blocks_inside_vma(self):
        workload = get_workload("GUPS", scale=64)
        (start, pages, _name), = workload.vma_layout()
        page_set = workload.page_set()
        assert page_set.min() >= start
        assert page_set.max() < start + pages

    def test_page_set_is_sorted_unique(self):
        workload = get_workload("TC", scale=16)
        pages = workload.page_set()
        assert np.all(np.diff(pages) > 0)

    def test_density_limits_pages_per_block(self):
        workload = get_workload("GUPS", scale=64)  # density 0.6
        pages = workload.page_set()
        blocks = np.unique(pages // PAGES_PER_BLOCK)
        per_block = len(pages) / len(blocks)
        assert 4.0 <= per_block <= 5.5  # 0.6 * 8 = 4.8

    def test_footprint_stable_across_instances(self):
        a = get_workload("BFS", scale=32, seed=1)
        b = get_workload("BFS", scale=32, seed=1)
        assert np.array_equal(a.page_set(), b.page_set())

    def test_different_seeds_differ(self):
        a = get_workload("GUPS", scale=64, seed=1)
        b = get_workload("GUPS", scale=64, seed=2)
        assert not np.array_equal(a.page_set(), b.page_set())

    def test_unscale(self):
        workload = get_workload("BFS", scale=16)
        assert workload.unscale_bytes(100) == 1600


class TestTraces:
    def test_trace_length_and_domain(self):
        workload = get_workload("BFS", scale=32)
        trace = workload.trace(5000)
        assert len(trace) == 5000
        page_set = set(workload.page_set().tolist())
        sample = trace[:: max(1, len(trace) // 200)]
        assert all(int(v) in page_set for v in sample)

    def test_trace_deterministic(self):
        workload = get_workload("GUPS", scale=64)
        assert np.array_equal(workload.trace(1000), workload.trace(1000))

    def test_seed_offset_changes_trace(self):
        workload = get_workload("GUPS", scale=64)
        assert not np.array_equal(
            workload.trace(1000, seed_offset=0), workload.trace(1000, seed_offset=1)
        )

    def test_sequential_pattern_has_runs(self):
        workload = get_workload("MUMmer", scale=8)  # 65% sequential
        trace = workload.trace(4000)
        diffs = np.diff(trace)
        assert (diffs == 1).mean() > 0.3

    def test_uniform_pattern_spreads(self):
        workload = get_workload("GUPS", scale=64)
        trace = workload.trace(4000)
        assert len(np.unique(trace)) > 3000  # random over a large footprint


class TestGraphScaling:
    def test_fig15_node_scaling(self):
        small = graph_workload_with_nodes("BFS", 1_000)
        big = graph_workload_with_nodes("BFS", 100_000)
        assert big.blocks > 50 * small.blocks

    def test_non_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            graph_workload_with_nodes("GUPS", 1000)

    def test_describe(self):
        text = get_workload("BFS", scale=8).describe()
        assert "BFS" in text and "1/8" in text
