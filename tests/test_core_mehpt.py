"""Unit tests for the assembled ME-HPT page tables (repro.core.mehpt)."""

import pytest

from repro.common.units import KB, MB
from repro.core.chunks import ChunkLadder
from repro.core.l2p import L2PTable
from repro.core.mehpt import MeHptPageTables
from repro.mem.allocator import CostModelAllocator


def make_tables(fmfi=0.3, **kwargs):
    return MeHptPageTables(CostModelAllocator(fmfi=fmfi), **kwargs)


class TestBasics:
    def test_map_translate(self):
        tables = make_tables()
        tables.map(0x100, 0xA)
        tables.map(512 * 2, 0xB, "2M")
        assert tables.translate(0x100) == (0xA, "4K")
        assert tables.translate(512 * 2 + 1) == (0xB, "2M")

    def test_ways_start_at_smallest_chunk(self):
        tables = make_tables()
        assert all(c == 8 * KB for c in tables.chunk_bytes_per_way("4K"))

    def test_l2p_shared_across_page_sizes(self):
        tables = make_tables()
        tables.map(0x100, 1, "4K")
        tables.map(512 * 4, 2, "2M")
        assert tables.l2p_entries_used() >= 6  # 3 ways x 2 page sizes minimum


class TestContiguity:
    def test_contiguous_need_is_one_chunk(self):
        tables = make_tables()
        # One page per 8-page block: 40K distinct HPT entries, so the
        # 4KB-page ways outgrow the 8KB-chunk budget and move to 1MB.
        for i in range(40_000):
            tables.map(0x1000 + i * 8, i)
        assert tables.max_contiguous_bytes() <= 1 * MB
        assert tables.total_bytes() > 1 * MB  # the table itself is bigger

    def test_survives_high_fragmentation(self):
        # Where ECPT crashes (>0.7 FMFI), ME-HPT keeps working because it
        # never asks for more than a 1MB chunk.
        tables = make_tables(fmfi=0.9)
        for i in range(40_000):
            tables.map(0x1000 + i, i)
        assert tables.translate(0x1000 + 39_999) is not None


class TestChunkTransitions:
    def test_transition_to_1mb_chunks(self):
        tables = make_tables()
        for i in range(40_000):
            tables.map(0x1000 + i * 8, i)
        assert all(c == 1 * MB for c in tables.chunk_bytes_per_way("4K"))
        assert tables.chunk_transitions["4K"] == 3  # one per way

    def test_small_footprint_stays_on_8kb_chunks(self):
        tables = make_tables()
        for i in range(1_000):
            tables.map(0x1000 + i, i)
        assert all(c == 8 * KB for c in tables.chunk_bytes_per_way("4K"))
        assert tables.total_chunk_transitions() == 0

    def test_fixed_1mb_ladder_never_transitions_small(self):
        tables = make_tables(chunk_ladder=ChunkLadder([1 * MB, 8 * MB]))
        for i in range(1_000):
            tables.map(0x1000 + i, i)
        assert all(c == 1 * MB for c in tables.chunk_bytes_per_way("4K"))
        # Wasteful: each tiny way occupies a whole 1MB chunk (Figure 15).
        assert tables.total_bytes() >= 3 * MB


class TestPerWayResizing:
    def test_way_sizes_can_differ(self):
        tables = make_tables()
        for i in range(20_000):
            tables.map(0x1000 + i, i)
        # Per-way resizing staggers sizes at least transiently; after the
        # run either sizes differ or upsize counts stay within one.
        upsizes = tables.upsizes_per_way("4K")
        assert max(upsizes) - min(upsizes) <= 1

    def test_ablation_all_way(self):
        tables = make_tables(enable_perway=False)
        for i in range(20_000):
            tables.map(0x1000 + i, i)
        tables.drain()
        sizes = {w.size for w in tables.tables["4K"].table.ways}
        assert len(sizes) == 1


class TestInPlaceResizing:
    def test_moved_fraction_near_half(self):
        tables = make_tables()
        for i in range(40_000):
            tables.map(0x1000 + i, i)
        fractions = [f for f in tables.moved_fractions("4K") if f > 0]
        assert fractions
        for fraction in fractions:
            assert 0.35 < fraction < 0.65

    def test_ablation_out_of_place_moves_all(self):
        tables = make_tables(enable_inplace=False)
        for i in range(20_000):
            tables.map(0x1000 + i, i)
        tables.drain()
        fractions = [f for f in tables.moved_fractions("4K") if f > 0]
        assert fractions
        for fraction in fractions:
            assert fraction > 0.95

    def test_inplace_peak_below_out_of_place_peak(self):
        inplace = make_tables(hash_seed=1)
        outofplace = make_tables(hash_seed=1, enable_inplace=False)
        for i in range(40_000):
            inplace.map(0x1000 + i, i)
            outofplace.map(0x1000 + i, i)
        assert inplace.peak_total_bytes < outofplace.peak_total_bytes


class TestL2PIntegration:
    def test_external_l2p_observes_usage(self):
        l2p = L2PTable(ways=3)
        tables = make_tables(l2p=l2p)
        for i in range(10_000):
            tables.map(0x1000 + i, i)
        assert l2p.entries_used() == tables.l2p_entries_used()
        assert l2p.entries_used() > 0

    def test_usage_within_capacity(self):
        tables = make_tables()
        for i in range(100_000):
            tables.map(0x1000 + i, i)
        assert tables.l2p_entries_used() <= tables.l2p.total_entries()
