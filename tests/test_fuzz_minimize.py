"""Delta-debugging minimizer: shrink bound, determinism, guard rails.

The acceptance bar: for the planted failure the reproducer must keep
tripping the *same* failure class at <= 1% of the original trace
length, and re-running the minimizer must reproduce the identical
reproducer byte-for-byte.
"""

import hashlib
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.fuzz.minimize import minimize_trace
from repro.fuzz.runner import CLASS_ABORT_CONTIGUOUS, CLASS_OK, run_scenario
from repro.fuzz.scenario import make_preset
from repro.obs import MetricsRegistry
from repro.traces.format import TraceReader

pytestmark = pytest.mark.fuzz


def _sha(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


@pytest.fixture(scope="module")
def planted(tmp_path_factory):
    """The planted-fault scenario, its full trace, and its classification."""
    workdir = str(tmp_path_factory.mktemp("minimize"))
    scenario = make_preset("planted-fault", seed=0)
    trace = os.path.join(workdir, "full.vpt")
    scenario.generate_trace(trace)
    outcome = run_scenario(scenario, trace_path=trace, orgs=("ecpt",))
    assert outcome.failure_class == CLASS_ABORT_CONTIGUOUS
    return scenario, trace, outcome


class TestMinimization:
    def test_shrinks_below_one_percent(self, planted, tmp_path):
        scenario, trace, outcome = planted
        out = str(tmp_path / "repro.vpt")
        registry = MetricsRegistry()
        result = minimize_trace(
            scenario, trace, outcome.failure_class, out,
            orgs=("ecpt",), registry=registry,
        )
        assert result.shrink_ratio <= 0.01, result.summary()
        assert result.minimized_records >= 1
        assert result.failure_class == CLASS_ABORT_CONTIGUOUS
        # The final validation ran both engines on the reproducer.
        final = result.final_outcome
        assert final is not None
        assert final.outcomes["ecpt"].divergence_checked
        assert final.failure_class == CLASS_ABORT_CONTIGUOUS
        snapshot = registry.snapshot()
        assert snapshot["fuzz.minimizer_evals"]["value"] == result.evals
        assert snapshot["fuzz.minimizer_records_removed"]["value"] == (
            result.original_records - result.minimized_records
        )

    def test_reproducer_carries_provenance(self, planted, tmp_path):
        scenario, trace, outcome = planted
        out = str(tmp_path / "repro.vpt")
        minimize_trace(
            scenario, trace, outcome.failure_class, out, orgs=("ecpt",),
        )
        with TraceReader(out) as reader:
            meta = reader.meta
        assert meta.source == "fuzz-min"
        assert meta.extra["minimized_from_records"] == scenario.trace_length
        assert meta.extra["failure_class"] == CLASS_ABORT_CONTIGUOUS

    def test_minimization_is_deterministic(self, planted, tmp_path):
        scenario, trace, outcome = planted
        a, b = str(tmp_path / "a.vpt"), str(tmp_path / "b.vpt")
        one = minimize_trace(
            scenario, trace, outcome.failure_class, a, orgs=("ecpt",),
        )
        two = minimize_trace(
            scenario, trace, outcome.failure_class, b, orgs=("ecpt",),
        )
        assert one.minimized_records == two.minimized_records
        assert one.evals == two.evals
        assert _sha(a) == _sha(b)


class TestGuardRails:
    def test_ok_class_rejected(self, planted, tmp_path):
        scenario, trace, _outcome = planted
        with pytest.raises(ConfigurationError, match="nothing to reproduce"):
            minimize_trace(
                scenario, trace, CLASS_OK, str(tmp_path / "x.vpt"),
            )

    def test_tiny_budget_rejected(self, planted, tmp_path):
        scenario, trace, outcome = planted
        with pytest.raises(ConfigurationError, match="max_evals"):
            minimize_trace(
                scenario, trace, outcome.failure_class,
                str(tmp_path / "x.vpt"), max_evals=2,
            )

    def test_non_reproducing_class_rejected(self, planted, tmp_path):
        scenario, trace, _outcome = planted
        with pytest.raises(ConfigurationError, match="does not reproduce"):
            minimize_trace(
                scenario, trace, "invariant_violation",
                str(tmp_path / "x.vpt"), orgs=("ecpt",),
            )
