"""Unit tests for the allocation cost model (repro.mem.alloc_cost)."""

import pytest

from repro.common.errors import ConfigurationError, ContiguousAllocationError
from repro.common.units import KB, MB
from repro.mem.alloc_cost import ANCHOR_FMFI, PAPER_ANCHORS, AllocationCostModel


class TestPaperAnchors:
    """The Section III measurements must be reproduced exactly."""

    @pytest.mark.parametrize("size,cycles", list(PAPER_ANCHORS))
    def test_anchor_exact_at_measured_fmfi(self, size, cycles):
        model = AllocationCostModel()
        assert model.cycles(size, ANCHOR_FMFI) == pytest.approx(cycles)

    def test_paper_values(self):
        model = AllocationCostModel()
        assert model.cycles(4 * KB, 0.7) == pytest.approx(4_000)
        assert model.cycles(8 * KB, 0.7) == pytest.approx(5_000)
        assert model.cycles(1 * MB, 0.7) == pytest.approx(750_000)
        assert model.cycles(8 * MB, 0.7) == pytest.approx(13_000_000)
        assert model.cycles(64 * MB, 0.7) == pytest.approx(120_000_000)


class TestFailureRule:
    def test_64mb_fails_above_070(self):
        model = AllocationCostModel()
        with pytest.raises(ContiguousAllocationError):
            model.cycles(64 * MB, 0.71)

    def test_64mb_ok_at_070(self):
        assert AllocationCostModel().cycles(64 * MB, 0.7) > 0

    def test_small_sizes_never_fail(self):
        model = AllocationCostModel()
        assert model.cycles(1 * MB, 0.99) > 0

    def test_can_allocate_mirrors_check(self):
        model = AllocationCostModel()
        assert model.can_allocate(64 * MB, 0.7)
        assert not model.can_allocate(64 * MB, 0.8)
        assert not model.can_allocate(128 * MB, 0.8)


class TestInterpolation:
    def test_monotonic_in_size(self):
        model = AllocationCostModel()
        sizes = [4 * KB, 16 * KB, 128 * KB, 1 * MB, 4 * MB, 8 * MB, 32 * MB, 64 * MB]
        costs = [model.cycles(s, 0.7) for s in sizes]
        assert costs == sorted(costs)

    def test_monotonic_in_fmfi(self):
        model = AllocationCostModel()
        costs = [model.cycles(1 * MB, level) for level in (0.0, 0.2, 0.4, 0.6, 0.7)]
        assert costs == sorted(costs)

    def test_fmfi_zero_is_zeroing_cost(self):
        model = AllocationCostModel()
        assert model.cycles(1 * MB, 0.0) == pytest.approx(
            AllocationCostModel.zeroing_cycles(1 * MB)
        )

    def test_between_anchor_interpolation_is_bounded(self):
        model = AllocationCostModel()
        mid = model.cycles(2 * MB, 0.7)
        assert model.cycles(1 * MB, 0.7) < mid < model.cycles(8 * MB, 0.7)

    def test_extrapolation_beyond_largest_anchor(self):
        model = AllocationCostModel()
        # 128MB extrapolates the 8MB->64MB slope (superlinear growth).
        big = model.cycles(128 * MB, 0.5)
        assert big > model.cycles(64 * MB, 0.5) * 1.5

    def test_below_smallest_anchor_scales_linearly(self):
        model = AllocationCostModel()
        assert model.cycles(2 * KB, 0.7) == pytest.approx(2_000)


class TestConfiguration:
    def test_needs_two_anchors(self):
        with pytest.raises(ConfigurationError):
            AllocationCostModel(anchors=[(4096, 4000.0)])

    def test_positive_anchors_required(self):
        with pytest.raises(ConfigurationError):
            AllocationCostModel(anchors=[(4096, 0.0), (8192, 100.0)])

    def test_cost_cache_consistency(self):
        model = AllocationCostModel()
        assert model.cycles(1 * MB, 0.7) == model.cycles(1 * MB, 0.7)
