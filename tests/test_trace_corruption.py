"""Trace-container corruption handling: every malformed footer shape
must surface as :class:`TraceFormatError` with file-offset context, and
``python -m repro.traces validate`` must exit non-zero with a one-line
diagnosis — never a ``TypeError``/``KeyError`` leaking from chunk
iteration.
"""

import json
import struct

import numpy as np
import pytest

from repro.common.errors import TraceFormatError
from repro.traces import __main__ as traces_cli
from repro.traces.format import (
    TRAILER_MAGIC,
    TraceMeta,
    TraceReader,
    TraceWriter,
    _TRAILER_FMT,
    validate_trace,
)

pytestmark = pytest.mark.traces

_TRAILER_STRUCT_BYTES = struct.calcsize(_TRAILER_FMT)


@pytest.fixture()
def good_trace(tmp_path):
    path = str(tmp_path / "good.vpt")
    with TraceWriter(path, meta=TraceMeta(source="corruption-test")) as writer:
        writer.append(np.arange(1000, 1500, dtype=np.uint64))
    return path


def _read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


def _rewrite_footer(good_path, out_path, footer_bytes):
    """The original data region with ``footer_bytes`` as the new footer."""
    blob = _read_bytes(good_path)
    trailer = blob[-(_TRAILER_STRUCT_BYTES + len(TRAILER_MAGIC)):]
    footer_offset, _footer_len = struct.unpack(
        _TRAILER_FMT, trailer[:_TRAILER_STRUCT_BYTES]
    )
    with open(out_path, "wb") as handle:
        handle.write(blob[:footer_offset])
        handle.write(footer_bytes)
        handle.write(struct.pack(_TRAILER_FMT, footer_offset, len(footer_bytes)))
        handle.write(TRAILER_MAGIC)
    return out_path


def _footer_json(good_path):
    with open(good_path, "rb") as handle:
        blob = handle.read()
    trailer = blob[-(_TRAILER_STRUCT_BYTES + len(TRAILER_MAGIC)):]
    offset, length = struct.unpack(_TRAILER_FMT, trailer[:_TRAILER_STRUCT_BYTES])
    return json.loads(blob[offset:offset + length].decode("utf-8"))


def _corrupt_footer(good_path, tmp_path, mutate):
    footer = _footer_json(good_path)
    mutate(footer)
    out = str(tmp_path / "bad.vpt")
    return _rewrite_footer(good_path, out, json.dumps(footer).encode("utf-8"))


class TestStructuralCorruption:
    def test_truncated_header(self, good_trace, tmp_path):
        out = tmp_path / "short.vpt"
        out.write_bytes(_read_bytes(good_trace)[:8])
        with pytest.raises(TraceFormatError, match="bad magic"):
            TraceReader(str(out))

    def test_truncated_mid_data(self, good_trace, tmp_path):
        out = tmp_path / "middata.vpt"
        out.write_bytes(_read_bytes(good_trace)[:-10])
        with pytest.raises(TraceFormatError, match="trailer magic"):
            TraceReader(str(out))

    def test_missing_trailer_magic(self, good_trace, tmp_path):
        blob = bytearray(_read_bytes(good_trace))
        blob[-len(TRAILER_MAGIC):] = b"XXXX"
        out = tmp_path / "nomagic.vpt"
        out.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="trailer magic"):
            TraceReader(str(out))

    def test_footer_offset_past_eof(self, good_trace, tmp_path):
        blob = bytearray(_read_bytes(good_trace))
        bad = struct.pack(_TRAILER_FMT, len(blob) * 2, 10)
        start = len(blob) - (_TRAILER_STRUCT_BYTES + len(TRAILER_MAGIC))
        blob[start:start + _TRAILER_STRUCT_BYTES] = bad
        out = tmp_path / "pasteof.vpt"
        out.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="footer location is corrupt"):
            TraceReader(str(out))

    def test_garbage_footer_bytes(self, good_trace, tmp_path):
        out = _rewrite_footer(
            good_trace, str(tmp_path / "garbage.vpt"), b"\xff\xfe not json!"
        )
        with pytest.raises(TraceFormatError, match="unparseable"):
            TraceReader(out)

    def test_error_carries_offset_context(self, good_trace, tmp_path):
        out = _rewrite_footer(good_trace, str(tmp_path / "ctx.vpt"), b"[]")
        with pytest.raises(TraceFormatError) as err:
            TraceReader(out)
        assert "offset" in str(err.value)
        assert err.value.context.get("footer_offset") is not None


class TestFooterSchemaCorruption:
    def test_footer_not_an_object(self, good_trace, tmp_path):
        out = _rewrite_footer(good_trace, str(tmp_path / "list.vpt"), b"[1, 2]")
        with pytest.raises(TraceFormatError, match="not an object"):
            TraceReader(out)

    def test_footer_missing_keys(self, good_trace, tmp_path):
        out = _rewrite_footer(
            good_trace, str(tmp_path / "nokeys.vpt"), b'{"unrelated": 1}'
        )
        with pytest.raises(TraceFormatError, match="incomplete"):
            TraceReader(out)

    @pytest.mark.parametrize("total", [-5, True, "many", None])
    def test_bad_total_values(self, good_trace, tmp_path, total):
        out = _corrupt_footer(
            good_trace, tmp_path,
            lambda f: f.__setitem__("total_values", total),
        )
        with pytest.raises(TraceFormatError, match="total_values"):
            TraceReader(out)

    def test_chunks_not_a_list(self, good_trace, tmp_path):
        out = _corrupt_footer(
            good_trace, tmp_path, lambda f: f.__setitem__("chunks", {"a": 1})
        )
        with pytest.raises(TraceFormatError, match="not a list"):
            TraceReader(out)

    def test_chunk_entry_wrong_arity(self, good_trace, tmp_path):
        out = _corrupt_footer(
            good_trace, tmp_path,
            lambda f: f.__setitem__("chunks", [[0, 1, 2]]),
        )
        with pytest.raises(TraceFormatError, match="malformed"):
            TraceReader(out)

    def test_chunk_entry_non_integer(self, good_trace, tmp_path):
        out = _corrupt_footer(
            good_trace, tmp_path,
            lambda f: f.__setitem__("chunks", [["x", 1, 2, 3, 4]]),
        )
        with pytest.raises(TraceFormatError, match="non-integer"):
            TraceReader(out)

    def test_chunk_entry_out_of_range(self, good_trace, tmp_path):
        out = _corrupt_footer(
            good_trace, tmp_path,
            lambda f: f.__setitem__("chunks", [[-4, 1, 8, 0, 0]]),
        )
        with pytest.raises(TraceFormatError, match="out of range"):
            TraceReader(out)

    def test_chunk_points_past_data_region(self, good_trace, tmp_path):
        def mutate(footer):
            entry = list(footer["chunks"][0])
            entry[2] = 1 << 30  # payload_len far beyond the footer
            footer["chunks"][0] = entry

        out = _corrupt_footer(good_trace, tmp_path, mutate)
        with pytest.raises(TraceFormatError, match="past the data region"):
            TraceReader(out)

    def test_bad_vpn_bounds(self, good_trace, tmp_path):
        out = _corrupt_footer(
            good_trace, tmp_path, lambda f: f.__setitem__("min_vpn", "zero")
        )
        with pytest.raises(TraceFormatError, match="min_vpn"):
            TraceReader(out)

    def test_bad_sealed_meta(self, good_trace, tmp_path):
        out = _corrupt_footer(
            good_trace, tmp_path, lambda f: f.__setitem__("meta", [1, 2])
        )
        with pytest.raises(TraceFormatError, match="sealed metadata"):
            TraceReader(out)


class TestValidateCli:
    """``python -m repro.traces validate`` is the triage entry point."""

    def test_good_trace_exits_zero(self, good_trace, capsys):
        assert traces_cli.main(["validate", good_trace]) == 0
        assert "OK" in capsys.readouterr().out

    @pytest.mark.parametrize("mutate, diagnosis", [
        (lambda f: f.__setitem__("total_values", -1), "total_values"),
        (lambda f: f.__setitem__("chunks", 7), "not a list"),
        (lambda f: f.__setitem__("chunks", [[1]]), "malformed"),
    ])
    def test_corrupt_footer_exits_nonzero_with_diagnosis(
        self, good_trace, tmp_path, capsys, mutate, diagnosis
    ):
        bad = _corrupt_footer(good_trace, tmp_path, mutate)
        assert traces_cli.main(["validate", bad]) == 1
        out = capsys.readouterr().out
        assert diagnosis in out

    def test_empty_file_exits_nonzero_with_diagnosis(self, tmp_path, capsys):
        """A 0-byte file gets its own one-line diagnosis, not 'bad magic'.

        Regression: an interrupted capture leaves an empty .vpt behind;
        triage must say so directly instead of pointing at the magic.
        """
        empty = tmp_path / "empty.vpt"
        empty.write_bytes(b"")
        assert traces_cli.main(["validate", str(empty)]) == 1
        out = capsys.readouterr().out
        assert "empty (0 bytes)" in out
        assert "bad magic" not in out

    def test_empty_file_validate_trace_reports_problem(self, tmp_path):
        empty = tmp_path / "empty.vpt"
        empty.write_bytes(b"")
        report = validate_trace(str(empty))
        assert not report.ok
        assert any("empty (0 bytes)" in problem for problem in report.problems)

    def test_truncated_file_exits_nonzero(self, good_trace, tmp_path, capsys):
        out = tmp_path / "trunc.vpt"
        out.write_bytes(_read_bytes(good_trace)[:-10])
        assert traces_cli.main(["validate", str(out)]) == 1
        assert "trailer" in capsys.readouterr().out

    def test_validate_trace_reports_problem_strings(self, good_trace, tmp_path):
        bad = _corrupt_footer(
            good_trace, tmp_path, lambda f: f.__setitem__("chunks", None)
        )
        report = validate_trace(bad)
        assert not report.ok
        assert any("not a list" in problem for problem in report.problems)
