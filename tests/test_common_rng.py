"""Unit tests for repro.common.rng."""

import pytest

from repro.common.rng import DeterministicRng, make_rng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_fork_is_deterministic_and_independent(self):
        a = DeterministicRng(42).fork(1)
        b = DeterministicRng(42).fork(1)
        c = DeterministicRng(42).fork(2)
        seq_a = [a.random() for _ in range(5)]
        seq_b = [b.random() for _ in range(5)]
        seq_c = [c.random() for _ in range(5)]
        assert seq_a == seq_b
        assert seq_a != seq_c


class TestWeightedIndex:
    def test_single_positive_weight_always_wins(self):
        rng = DeterministicRng(0)
        assert all(rng.weighted_index([0.0, 5.0, 0.0]) == 1 for _ in range(50))

    def test_proportions_roughly_respected(self):
        rng = DeterministicRng(3)
        counts = [0, 0]
        for _ in range(4000):
            counts[rng.weighted_index([1.0, 3.0])] += 1
        ratio = counts[1] / (counts[0] + counts[1])
        assert 0.68 < ratio < 0.82

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).weighted_index([1.0, -0.5])

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).weighted_index([0.0, 0.0])


class TestZipf:
    def test_in_range(self):
        rng = DeterministicRng(5)
        for _ in range(200):
            assert 0 <= rng.sample_zipf(100, 1.0) < 100

    def test_skew_toward_low_ranks(self):
        rng = DeterministicRng(6)
        samples = [rng.sample_zipf(1000, 1.0) for _ in range(3000)]
        low = sum(1 for s in samples if s < 100)
        assert low > len(samples) * 0.3  # far above the uniform 10%


class TestMakeRng:
    def test_accepts_none_int_and_rng(self):
        assert isinstance(make_rng(None), DeterministicRng)
        assert make_rng(7).seed == 7
        rng = DeterministicRng(9)
        assert make_rng(rng) is rng

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            make_rng("seed")
