"""Unit tests for Level Hashing (repro.applications.level_hashing)."""

import pytest

from repro.applications.level_hashing import BUCKET_SLOTS, LevelHashTable
from repro.common.errors import ConfigurationError


class TestBasicOperations:
    def test_put_get_delete(self):
        table = LevelHashTable()
        table.put(1, "a")
        table.put(2, "b")
        assert table.get(1) == "a"
        assert table.get(3) is None
        assert table.delete(1)
        assert table.get(1) is None
        assert not table.delete(1)

    def test_update_in_place(self):
        table = LevelHashTable()
        table.put(1, "a")
        table.put(1, "b")
        assert table.get(1) == "b"
        assert len(table) == 1

    def test_items(self):
        table = LevelHashTable()
        expected = {k: k * 2 for k in range(100)}
        for key, value in expected.items():
            table.put(key, value)
        assert dict(table.items()) == expected

    def test_four_probe_locations(self):
        table = LevelHashTable()
        assert table.probes_per_lookup == 4
        assert len(table._probe_buckets(12345)) == 4

    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            LevelHashTable(initial_top_buckets=12)


class TestResizing:
    def test_grows_and_preserves_contents(self):
        table = LevelHashTable(initial_top_buckets=4)
        for key in range(2000):
            table.put(key, key)
        assert len(table) == 2000
        assert table.resizes > 0
        for key in range(0, 2000, 37):
            assert table.get(key) == key

    def test_moved_fraction_about_one_third(self):
        """Section IX: Level Hashing moves ~1/3 of entries per resize."""
        table = LevelHashTable(initial_top_buckets=16)
        for key in range(20_000):
            table.put(key, key)
        assert 0.2 < table.moved_fraction() < 0.45

    def test_capacity_doubles_per_resize(self):
        # Before: N top + N/2 bottom buckets; after: 2N top + N bottom.
        table = LevelHashTable(initial_top_buckets=4)
        cap_before = table.capacity()
        table._resize()
        assert table.capacity() == cap_before * 2

    def test_load_factor_bounded(self):
        table = LevelHashTable(initial_top_buckets=8)
        for key in range(5000):
            table.put(key, key)
            assert table.load_factor() <= 1.0
