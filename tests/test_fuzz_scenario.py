"""Scenario composition, validation, and deterministic generation.

The acceptance bar: the same seed and stressor mix must produce a
byte-identical ``.vpt`` file — generation is a pure function of the
scenario value, with no wall-clock or global RNG leakage.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.fuzz.scenario import (
    PRESETS,
    Scenario,
    StressorSpec,
    make_preset,
    preset_names,
    scenario_from_trace_meta,
)
from repro.fuzz.stressors import STRESSORS, get_stressor
from repro.traces.format import TraceReader

pytestmark = pytest.mark.fuzz


def _sha(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


class TestStressorCatalogue:
    def test_catalogue_names(self):
        assert {
            "fragmentation_storm", "churn", "oscillation",
            "collision_cluster", "l2p_overflow",
        } <= set(STRESSORS)

    def test_unknown_stressor_lists_menu(self):
        with pytest.raises(ConfigurationError, match="fragmentation_storm"):
            get_stressor("heap_spray")

    @pytest.mark.parametrize("name", sorted(set(STRESSORS) - {"collision_cluster"}))
    def test_streams_are_deterministic(self, name):
        stressor = get_stressor(name)
        params = dict(sim_seed=7)
        one = stressor.generate(np.random.default_rng(5), 500, params)
        two = stressor.generate(np.random.default_rng(5), 500, params)
        assert one.dtype.kind in "iu"
        assert one.size == 500
        np.testing.assert_array_equal(one, two)


class TestScenarioValidation:
    def test_empty_stressors_rejected(self):
        with pytest.raises(ConfigurationError, match="stressor"):
            Scenario(name="empty", seed=0, stressors=())

    @pytest.mark.parametrize("key", ["organization", "trace_file", "fault_plan"])
    def test_reserved_override_rejected(self, key):
        with pytest.raises(ConfigurationError, match="reserved|override"):
            Scenario(
                name="bad", seed=0,
                stressors=(StressorSpec.make("churn"),),
                overrides=((key, "x"),),
            )

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError, match="fmfi_level"):
            Scenario(
                name="bad", seed=0,
                stressors=(StressorSpec.make("churn"),),
                overrides=(("fmfi_level", 0.5),),
            )

    def test_unknown_stressor_name_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="heap_spray"):
            StressorSpec.make("heap_spray")

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ConfigurationError, match="weight"):
            StressorSpec.make("churn", weight=0.0)


class TestPresets:
    def test_preset_names_sorted_and_complete(self):
        assert tuple(preset_names()) == tuple(sorted(PRESETS))
        assert len(preset_names()) >= 5

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="unknown preset"):
            make_preset("zip-bomb")

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_json_round_trip(self, name):
        scenario = make_preset(name, seed=3)
        clone = Scenario.from_json(scenario.to_json())
        assert clone == scenario
        assert clone.to_dict() == scenario.to_dict()

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_stream_shape(self, name):
        scenario = make_preset(name, seed=1)
        stream = scenario.generate_stream()
        assert stream.dtype.kind in "iu"
        assert stream.size == scenario.trace_length
        assert int(stream.min()) >= 0

    def test_with_seed(self):
        scenario = make_preset("frag-storm", seed=1)
        other = scenario.with_seed(9)
        assert other.seed == 9
        assert other.stressors == scenario.stressors


class TestDeterministicGeneration:
    def test_same_seed_byte_identical(self, tmp_path):
        a, b = str(tmp_path / "a.vpt"), str(tmp_path / "b.vpt")
        make_preset("churn-oscillation", seed=4).generate_trace(a)
        make_preset("churn-oscillation", seed=4).generate_trace(b)
        assert _sha(a) == _sha(b)

    def test_different_seed_differs(self, tmp_path):
        a, b = str(tmp_path / "a.vpt"), str(tmp_path / "b.vpt")
        make_preset("churn-oscillation", seed=4).generate_trace(a)
        make_preset("churn-oscillation", seed=5).generate_trace(b)
        assert _sha(a) != _sha(b)

    def test_trace_meta_embeds_scenario(self, tmp_path):
        path = str(tmp_path / "meta.vpt")
        scenario = make_preset("l2p-ladder", seed=2)
        scenario.generate_trace(path)
        with TraceReader(path) as reader:
            meta = reader.meta
            assert reader.total_values == scenario.trace_length
        assert meta.source == "fuzz"
        recovered = scenario_from_trace_meta(meta)
        assert recovered == scenario

    def test_overrides_surface_in_config(self, tmp_path):
        path = str(tmp_path / "cfg.vpt")
        scenario = make_preset("l2p-ladder", seed=0)
        scenario.generate_trace(path)
        config = scenario.config_for("mehpt", path)
        assert config.max_chunks_per_way == 8
        assert config.organization == "mehpt"
        assert config.trace_file == path

    def test_scenario_override_beats_stressor_override(self):
        scenario = Scenario(
            name="mix", seed=0,
            stressors=(
                StressorSpec.make("fragmentation_storm", fmfi=0.78),
            ),
            overrides=(("fmfi", 0.33),),
        )
        assert scenario.merged_overrides()["fmfi"] == 0.33

    def test_fault_specs_round_trip_via_json(self):
        scenario = make_preset("planted-fault", seed=0)
        raw = json.loads(scenario.to_json())
        clone = Scenario.from_dict(raw)
        plan = clone.build_fault_plan()
        assert plan is not None
        assert plan.specs[0].site == "contiguous_alloc"
        assert plan.specs[0].min_bytes == 2 * 1024 * 1024
        assert plan.seed == scenario.fault_seed
