"""Property-based tests: the elastic cuckoo table against a dict model.

Hypothesis drives random operation sequences (insert/update/delete and
explicit resize triggers) against both table flavours and checks that
the table always agrees with a plain dict and that its internal
invariants hold — including *during* gradual resizes, which is where the
rehash-pointer index math could go wrong.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from tests.conftest import make_chunked_table, make_contiguous_table

KEYS = st.integers(min_value=0, max_value=400)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(st.tuples(st.sampled_from(["put", "del"]), KEYS), max_size=300))
@pytest.mark.parametrize("maker", [make_contiguous_table, make_chunked_table])
def test_matches_dict_model(maker, ops):
    table = maker(initial_slots=16)
    model = {}
    for op, key in ops:
        if op == "put":
            table.insert(key, key * 31)
            model[key] = key * 31
        else:
            assert table.delete(key) == (key in model)
            model.pop(key, None)
        assert len(table) == len(model)
    for key, value in model.items():
        assert table.lookup(key) == value
    for key in range(401):
        if key not in model:
            assert table.lookup(key) is None
    table.check_invariants()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(min_value=1, max_value=800), seed=st.integers(0, 10))
@pytest.mark.parametrize("maker", [make_contiguous_table, make_chunked_table])
def test_bulk_insert_then_full_scan(maker, n, seed):
    table = maker(initial_slots=16, seed=seed)
    for key in range(n):
        table.insert(key, key)
    assert len(table) == n
    assert dict(table.items()) == {k: k for k in range(n)}
    table.check_invariants()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(min_value=50, max_value=600))
def test_drain_preserves_contents(n):
    table = make_chunked_table(initial_slots=16)
    for key in range(n):
        table.insert(key, -key)
    table.drain()
    assert not table.resizing()
    assert dict(table.items()) == {k: -k for k in range(n)}
    table.check_invariants()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(min_value=100, max_value=500),
       keep_every=st.integers(min_value=2, max_value=7))
def test_grow_then_shrink_cycle(n, keep_every):
    """Insert a lot, delete most, and verify survivors after downsizing."""
    table = make_chunked_table(initial_slots=16)
    for key in range(n):
        table.insert(key, key)
    survivors = {}
    for key in range(n):
        if key % keep_every == 0:
            survivors[key] = key
        else:
            table.delete(key)
    table.drain()
    assert dict(table.items()) == survivors
    table.check_invariants()


class CuckooMachine(RuleBasedStateMachine):
    """Stateful fuzz: arbitrary interleavings of operations and rehash work."""

    def __init__(self):
        super().__init__()
        self.table = make_chunked_table(initial_slots=16)
        self.model = {}

    @rule(key=KEYS, value=st.integers())
    def put(self, key, value):
        self.table.insert(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def drop(self, key):
        assert self.table.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def read(self, key):
        assert self.table.lookup(key) == self.model.get(key)

    @rule()
    def rehash_step(self):
        self.table.maintenance(steps=1)

    @rule()
    def drain_all(self):
        self.table.drain()

    @invariant()
    def count_matches(self):
        assert len(self.table) == len(self.model)


TestCuckooMachine = CuckooMachine.TestCase
TestCuckooMachine.settings = settings(
    max_examples=30, stateful_step_count=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
