"""Unit tests for the cache-hierarchy model (repro.mem.cache)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mem.cache import CacheHierarchy, CacheLevel


class TestCacheLevel:
    def test_miss_then_hit(self):
        level = CacheLevel("L2", 64 * 1024, 8, 16)
        assert not level.access(0x42)
        assert level.access(0x42)
        assert level.hit_rate() == 0.5

    def test_lru_eviction_within_set(self):
        level = CacheLevel("tiny", 4 * 64, 2, 10)  # 4 lines, 2 ways, 2 sets
        # Lines 0 and 2 map to set 0; line 4 also set 0 -> evicts LRU (0).
        level.access(0)
        level.access(2)
        level.access(4)
        assert not level.contains(0)
        assert level.contains(2) and level.contains(4)

    def test_mru_promotion(self):
        level = CacheLevel("tiny", 4 * 64, 2, 10)
        level.access(0)
        level.access(2)
        level.access(0)  # promote 0
        level.access(4)  # evicts 2, not 0
        assert level.contains(0)
        assert not level.contains(2)

    def test_effective_fraction_shrinks_capacity(self):
        full = CacheLevel("a", 64 * 1024, 8, 16, effective_fraction=1.0)
        quarter = CacheLevel("b", 64 * 1024, 8, 16, effective_fraction=0.25)
        assert quarter.num_sets < full.num_sets

    def test_invalidate_all(self):
        level = CacheLevel("L2", 8 * 1024, 8, 16)
        level.access(7)
        level.invalidate_all()
        assert not level.contains(7)


class TestCacheHierarchy:
    def test_latency_progression(self):
        hierarchy = CacheHierarchy()
        first = hierarchy.access(0x100)   # DRAM
        second = hierarchy.access(0x100)  # L2 now
        assert first == 200
        assert second == 16

    def test_l3_hit_after_l2_eviction(self):
        small_l2 = CacheLevel("L2", 2 * 64, 1, 16)  # 2 direct-mapped lines
        big_l3 = CacheLevel("L3", 1024 * 64, 16, 56)
        hierarchy = CacheHierarchy(levels=[small_l2, big_l3], dram_cycles=200)
        hierarchy.access(0)
        hierarchy.access(2)  # evicts 0 from L2 (same set), stays in L3
        assert hierarchy.access(0) == 56

    def test_parallel_access_is_max(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0x1)
        cycles = hierarchy.access_parallel([0x1, 0x999])
        assert cycles == 200  # the DRAM miss dominates

    def test_parallel_empty(self):
        assert CacheHierarchy().access_parallel([]) == 0

    def test_needs_levels(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(levels=[])

    def test_dram_counter(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0xA)
        hierarchy.access(0xA)
        assert hierarchy.dram_accesses == 1
