"""Unit tests for repro.hashing.hashes."""

import pytest

from repro.hashing.hashes import HashFamily, crc32c, mix64


class TestCrc32c:
    def test_known_determinism(self):
        assert crc32c(0x1234) == crc32c(0x1234)

    def test_seed_changes_output(self):
        assert crc32c(0x1234, seed=1) != crc32c(0x1234, seed=2)

    def test_range_is_32_bit(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= crc32c(value) < 2**32

    def test_distinct_inputs_rarely_collide(self):
        outputs = {crc32c(v) for v in range(2000)}
        assert len(outputs) == 2000


class TestMix64:
    def test_bijective_like_no_collisions_on_small_range(self):
        outputs = {mix64(v) for v in range(5000)}
        assert len(outputs) == 5000

    def test_64_bit_range(self):
        for value in (0, 1, 2**64 - 1):
            assert 0 <= mix64(value) < 2**64

    def test_avalanche(self):
        # Flipping one input bit should flip roughly half the output bits.
        base = mix64(0xDEADBEEF)
        flipped = mix64(0xDEADBEEF ^ 1)
        differing = bin(base ^ flipped).count("1")
        assert 16 <= differing <= 48


class TestHashFamily:
    @pytest.mark.parametrize("kind", ["mix64", "crc32c"])
    def test_ways_are_independent(self, kind):
        family = HashFamily(seed=3, kind=kind)
        f0, f1 = family.functions(2)
        same = sum(
            1
            for v in range(1000)
            if (f0(v) & 1023) == (f1(v) & 1023)
        )
        # Two independent functions agree on a 1024-bucket index ~1/1024.
        assert same < 15

    @pytest.mark.parametrize("kind", ["mix64", "crc32c"])
    def test_functions_are_stable(self, kind):
        family = HashFamily(seed=3, kind=kind)
        f_a = family.function(0)
        f_b = family.function(0)
        assert all(f_a(v) == f_b(v) for v in range(100))

    def test_distinct_seeds_distinct_families(self):
        f_a = HashFamily(seed=1).function(0)
        f_b = HashFamily(seed=2).function(0)
        assert any(f_a(v) != f_b(v) for v in range(10))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            HashFamily(kind="md5")

    def test_uniformity_over_buckets(self):
        f = HashFamily(seed=9).function(0)
        buckets = [0] * 64
        n = 6400
        for v in range(n):
            buckets[f(v) & 63] += 1
        expected = n / 64
        assert all(expected * 0.5 < b < expected * 1.5 for b in buckets)
