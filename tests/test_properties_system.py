"""Property-based tests on system-level invariants (hypothesis).

Beyond the cuckoo-vs-dict model checks, these pin down the invariants
the paper's design arguments rest on: L2P accounting, chunk-ladder
algebra, page-table equivalence under random mapping programs, and the
power-of-two scaling law of the methodology.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.units import CACHE_LINE, KB, MB
from repro.core.chunks import ChunkLadder
from repro.core.l2p import ENTRIES_PER_SUBTABLE, L2PTable
from repro.core.mehpt import MeHptPageTables
from repro.ecpt.tables import EcptPageTables
from repro.mem.allocator import CostModelAllocator
from repro.mem.alloc_cost import AllocationCostModel
from repro.radix.table import RadixPageTable

slow = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# L2P invariants
# ---------------------------------------------------------------------------

@slow
@given(ops=st.lists(
    st.tuples(st.integers(0, 2), st.sampled_from(["4K", "2M", "1G"]),
              st.integers(1, 20), st.booleans()),
    max_size=80,
))
def test_l2p_never_overcommits(ops):
    l2p = L2PTable(ways=3)
    held = {}
    for way, size, count, release in ops:
        sub = l2p.subtable(way, size)
        key = (way, size)
        if release and held.get(key, 0) > 0:
            sub.release(1)
            held[key] -= 1
        elif sub.reserve(count):
            held[key] = held.get(key, 0) + count
        # Invariants: per-subtable cap (with stealing) and way-group cap.
        assert sub.in_use <= 2 * ENTRIES_PER_SUBTABLE
        assert sub.group.in_use() <= 3 * ENTRIES_PER_SUBTABLE
    assert l2p.entries_used() == sum(held.values())


# ---------------------------------------------------------------------------
# Chunk-ladder algebra
# ---------------------------------------------------------------------------

@slow
@given(way_kb=st.integers(1, 4 * 1024 * 1024))
def test_ladder_choice_is_minimal_and_sufficient(way_kb):
    ladder = ChunkLadder()
    way_bytes = way_kb * KB
    try:
        chosen = ladder.size_for_way(way_bytes)
    except Exception:
        assert way_bytes > ladder.max_way_bytes(ladder.largest)
        return
    assert ladder.chunks_needed(way_bytes, chosen) <= ladder.max_chunks_per_way
    for smaller in ladder.sizes:
        if smaller >= chosen:
            break
        assert ladder.chunks_needed(way_bytes, smaller) > ladder.max_chunks_per_way


@slow
@given(fmfi=st.floats(0.0, 0.7), size_kb=st.sampled_from([4, 8, 64, 1024, 8192]))
def test_alloc_cost_bounded_by_anchor(fmfi, size_kb):
    model = AllocationCostModel()
    cost = model.cycles(size_kb * KB, fmfi)
    assert model.zeroing_cycles(size_kb * KB) <= cost
    assert cost <= model.cycles(size_kb * KB, 0.7) + 1e-6


# ---------------------------------------------------------------------------
# Cross-organization equivalence under random mapping programs
# ---------------------------------------------------------------------------

@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(
    st.tuples(st.sampled_from(["map4k", "map2m", "unmap"]),
              st.integers(0, 400)),
    max_size=120,
))
def test_all_organizations_implement_the_same_function(ops):
    radix = RadixPageTable()
    ecpt = EcptPageTables(CostModelAllocator(fmfi=0.1), initial_slots=16)
    mehpt = MeHptPageTables(CostModelAllocator(fmfi=0.1), initial_slots=16)
    orgs = (radix, ecpt, mehpt)
    mapped_2m_bases = set()
    mapped_4k = set()
    for op, value in ops:
        if op == "map4k":
            vpn = value
            if vpn // 512 * 512 in mapped_2m_bases:
                continue  # radix forbids nesting under a huge leaf
            for org in orgs:
                org.map(vpn, value + 7, "4K")
            mapped_4k.add(vpn)
        elif op == "map2m":
            base = (value % 16 + 1) * 512 * 64  # away from the 4K range
            for org in orgs:
                org.map(base, value + 9, "2M")
            mapped_2m_bases.add(base)
        else:
            vpn = value
            for org in orgs:
                org.unmap(vpn, "4K")
            mapped_4k.discard(vpn)
    for vpn in list(mapped_4k) + [401, 999999]:
        results = {org.translate(vpn) for org in orgs}
        assert len(results) == 1


# ---------------------------------------------------------------------------
# The scaling law of the methodology
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(blocks=st.integers(500, 4000), seed=st.integers(0, 5))
def test_full_scale_equivalents_are_scale_invariant(blocks, seed):
    """Running the same footprint at half scale with 2x accounting must
    report identical full-scale contiguous needs."""
    results = {}
    for scale in (1, 2):
        tables = EcptPageTables(
            CostModelAllocator(fmfi=0.3, scale=scale),
            initial_slots=max(4, 16 // scale),
            hash_seed=seed,
        )
        for i in range(blocks // scale):
            tables.map(0x1000 + i * 8, i)
        results[scale] = tables.max_contiguous_bytes()
    assert results[1] == results[2]
