"""Failure-injection tests: behaviour under allocation failures.

The paper's key failure mode is a contiguous allocation that cannot be
served on a fragmented machine.  These tests verify that the failure
surfaces as the right exception at the right moment, that tables remain
*readable and consistent* afterwards (a crashed grow must not corrupt
existing translations), and that ME-HPT configurations never reach the
failing path.
"""

import pytest

from repro.common.errors import ContiguousAllocationError
from repro.common.units import MB
from repro.ecpt.tables import EcptPageTables
from repro.core.mehpt import MeHptPageTables
from repro.mem.allocator import AllocationStats, CostModelAllocator


class FlakyAllocator(CostModelAllocator):
    """Fails every allocation at or above a byte threshold."""

    def __init__(self, fail_at_bytes, fmfi=0.3, fail_after=0):
        super().__init__(fmfi=fmfi)
        self.fail_at_bytes = fail_at_bytes
        self.fail_after = fail_after  # successful big allocations allowed
        self._big_allocs = 0

    def alloc(self, nbytes):
        if nbytes >= self.fail_at_bytes:
            if self._big_allocs >= self.fail_after:
                self.stats.on_failure()
                raise ContiguousAllocationError(nbytes, self.fmfi)
            self._big_allocs += 1
        return super().alloc(nbytes)


def grow_until_failure(tables, limit=2_000_000):
    for i in range(limit):
        tables.map(0x1000 + i * 8, i)
    raise AssertionError("expected a failure before the limit")


class TestEcptFailurePath:
    def test_exception_type_and_moment(self):
        tables = EcptPageTables(FlakyAllocator(fail_at_bytes=1 * MB), initial_slots=16)
        with pytest.raises(ContiguousAllocationError):
            grow_until_failure(tables)
        assert tables.allocation_stats.failed_allocations == 1

    def test_existing_translations_survive_the_crash(self):
        tables = EcptPageTables(FlakyAllocator(fail_at_bytes=1 * MB), initial_slots=16)
        mapped = 0
        try:
            for i in range(2_000_000):
                tables.map(0x1000 + i * 8, i)
                mapped += 1
        except ContiguousAllocationError:
            pass
        assert mapped > 1000
        # Everything mapped before the crash still translates correctly.
        for i in range(0, mapped, max(1, mapped // 200)):
            assert tables.translate(0x1000 + i * 8) == (i, "4K")
        # And the internal structures are consistent.
        tables.tables["4K"].table.check_invariants()

    def test_failed_insert_key_is_present(self):
        """The insert that *triggered* the failing resize has landed; only
        the capacity growth failed."""
        tables = EcptPageTables(FlakyAllocator(fail_at_bytes=1 * MB), initial_slots=16)
        last = None
        try:
            for i in range(2_000_000):
                tables.map(0x1000 + i * 8, i)
                last = i
        except ContiguousAllocationError:
            pass
        # The triggering mapping may or may not be the last successful
        # one, but lookups must not see torn state for any key tried.
        assert tables.translate(0x1000 + last * 8) == (last, "4K")

    def test_repeated_failures_do_not_corrupt(self):
        tables = EcptPageTables(
            FlakyAllocator(fail_at_bytes=256 * 1024), initial_slots=16
        )
        failures = 0
        i = 0
        while failures < 3 and i < 200_000:
            try:
                tables.map(0x1000 + i * 8, i)
                i += 1
            except ContiguousAllocationError:
                failures += 1
                # The OS would back off; we just retry, which re-triggers
                # the resize attempt on a later insert.
                i += 1
        tables.tables["4K"].table.check_invariants()


class TestMeHptNeverFails:
    def test_small_chunks_below_any_failure_threshold(self):
        # Fail anything >= 2MB: ME-HPT's 8KB/1MB chunks never trip it.
        tables = MeHptPageTables(FlakyAllocator(fail_at_bytes=2 * MB), initial_slots=16)
        for i in range(60_000):
            tables.map(0x1000 + i * 8, i)
        assert tables.translate(0x1000) is not None
        assert tables.allocation_stats.failed_allocations == 0

    def test_transient_big_chunk_failure_only_with_big_ladder(self):
        # If the ladder is forced to 8MB chunks, ME-HPT can also fail —
        # the protection comes from small chunks, not magic.
        from repro.core.chunks import ChunkLadder

        with pytest.raises(ContiguousAllocationError):
            # Even building the initial ways needs an 8MB chunk.
            MeHptPageTables(
                FlakyAllocator(fail_at_bytes=8 * MB, fmfi=0.3),
                initial_slots=16,
                chunk_ladder=ChunkLadder([8 * MB, 64 * MB]),
            )


class TestStatsUnderFailure:
    def test_failure_counter_and_no_leak(self):
        stats = AllocationStats()
        allocator = CostModelAllocator(fmfi=0.9, stats=stats)
        with pytest.raises(ContiguousAllocationError):
            allocator.alloc(64 * MB)
        assert stats.failed_allocations == 1
        assert stats.current_bytes == 0  # nothing was charged
