"""Deterministic grow→shrink→grow oscillation across downsizing.

The fuzzer's oscillation stressor only *suggests* downsizing pressure;
this test pins the behaviour directly: populate a table well past its
initial capacity, delete down to a small core, re-grow with fresh keys,
and hold ``check_invariants()`` plus per-way balance through every
phase.  Independent of :mod:`repro.fuzz` so a fuzzer regression cannot
mask a downsizing regression (or vice versa).
"""

import pytest

from repro.sim.config import SimulationConfig
from repro.workloads import get_workload
from tests.conftest import make_chunked_table, make_contiguous_table

GROW = 3000
CORE = 200
REGROW = 2500


def _assert_way_balance(table, live):
    """Entries conserved across ways, and no way hoards the table."""
    counts = [way.count for way in table.ways]
    assert sum(counts) == live
    assert all(count >= 0 for count in counts)
    # The all-way/per-way policies keep occupancy within the resize
    # thresholds, so no single way should hold the whole footprint once
    # the table is past trivial size.
    if live >= 100:
        assert max(counts) < live


def _oscillate(table):
    for key in range(GROW):
        table.insert(key, key)
    table.drain()
    table.check_invariants()
    _assert_way_balance(table, GROW)
    grown_slots = table.capacity()

    for key in range(CORE, GROW):
        table.delete(key)
    table.drain()
    table.check_invariants()
    _assert_way_balance(table, CORE)
    shrunk_slots = table.capacity()
    assert shrunk_slots < grown_slots
    assert any(way.downsizes > 0 for way in table.ways)
    for key in range(CORE):
        assert table.lookup(key) == key

    for key in range(10_000, 10_000 + REGROW):
        table.insert(key, key)
    table.drain()
    table.check_invariants()
    _assert_way_balance(table, CORE + REGROW)
    assert table.capacity() > shrunk_slots
    for key in range(10_000, 10_000 + REGROW):
        assert table.lookup(key) == key
    return [way.size for way in table.ways]


class TestOscillationAcrossDownsize:
    def test_contiguous_table_grow_shrink_grow(self):
        sizes = _oscillate(make_contiguous_table(initial_slots=16))
        assert all(size >= 16 for size in sizes)

    def test_chunked_table_grow_shrink_grow(self):
        sizes = _oscillate(make_chunked_table(initial_slots=16, chunk_bytes=1024))
        assert all(size >= 16 for size in sizes)

    def test_oscillation_is_deterministic(self):
        first = _oscillate(make_chunked_table(initial_slots=16, chunk_bytes=1024))
        second = _oscillate(make_chunked_table(initial_slots=16, chunk_bytes=1024))
        assert first == second


class TestPageTableOscillation:
    """The same oscillation through the ME-HPT page-table facade."""

    @pytest.fixture()
    def tables(self):
        config = SimulationConfig(
            organization="mehpt", scale=512, allow_downsize=True, seed=3,
        )
        workload = get_workload("GUPS", scale=512, seed=3)
        return config.build(workload).page_tables

    def test_map_unmap_map_preserves_invariants(self, tables):
        base = 0x1000
        pages = 1500
        for i in range(pages):
            tables.map(base + i, i)
        tables.check_invariants()
        for i in range(100, pages):
            tables.unmap(base + i)
        tables.check_invariants()
        for i in range(100, pages):
            tables.map(base + i, pages + i)
        tables.check_invariants()
        assert tables.translate(base + 50) == (50, "4K")
        assert tables.translate(base + 200) == (pages + 200, "4K")
