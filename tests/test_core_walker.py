"""Unit tests for the ME-HPT walker (repro.core.walker)."""

from repro.core.mehpt import MeHptPageTables
from repro.core.walker import MeHptWalker
from repro.mem.allocator import CostModelAllocator
from repro.mem.cache import CacheHierarchy


def make_system():
    tables = MeHptPageTables(CostModelAllocator(fmfi=0.1))
    walker = MeHptWalker(tables, CacheHierarchy())
    return tables, walker


class TestLatencyHiding:
    def test_l2p_adds_no_walk_latency(self):
        """Section V-D: L2P (4 cyc) overlaps the CWC access (4 cyc)."""
        tables, walker = make_system()
        tables.map(0x1000, 7)
        cold = walker.walk(0x1000)
        warm = walker.walk(0x1000)
        # Identical to the ECPT walker's costs — no extra cycles.
        assert cold.cycles == 4 + 200 + 200
        assert warm.cycles == 4 + 16
        assert walker.l2p_hidden_accesses == 2

    def test_slower_l2p_partially_exposed(self):
        tables = MeHptPageTables(CostModelAllocator(fmfi=0.1))
        walker = MeHptWalker(tables, CacheHierarchy(), l2p_cycles=10, cwc_cycles=4)
        tables.map(0x1000, 7)
        result = walker.walk(0x1000)
        # Only the portion beyond the CWC round trip shows.
        assert result.cycles == 4 + (10 - 4) + 200 + 200

    def test_reinsertion_exposes_l2p(self):
        _tables, walker = make_system()
        assert walker.reinsertion_cycles(3) == 3 * 4
        assert walker.l2p_exposed_cycles == 12

    def test_translation_correct(self):
        tables, walker = make_system()
        for i in range(3000):
            tables.map(0x1000 + i, i)
        for i in range(0, 3000, 71):
            assert walker.walk(0x1000 + i).ppn == i

    def test_faults_propagate(self):
        _tables, walker = make_system()
        assert walker.walk(0xDEAD000).fault

    def test_walks_during_inplace_resize(self):
        tables, walker = make_system()
        # Enough mappings to keep at least one resize in flight.
        for i in range(5000):
            tables.map(0x1000 + i * 8, i)
            if i % 997 == 0:
                result = walker.walk(0x1000 + i * 8)
                assert result.ppn == i
