"""Unit tests for the TLB hierarchy (repro.mmu.hierarchy)."""

from repro.ecpt.tables import EcptPageTables
from repro.ecpt.walker import EcptWalker
from repro.mem.allocator import CostModelAllocator
from repro.mem.cache import CacheHierarchy
from repro.mmu.hierarchy import TlbHierarchy


def make_hierarchy():
    tables = EcptPageTables(CostModelAllocator(fmfi=0.1))
    walker = EcptWalker(tables, CacheHierarchy())
    return tables, TlbHierarchy(walker)


class TestTranslationPath:
    def test_walk_then_l1_hits(self):
        tables, tlb = make_hierarchy()
        tables.map(0x1000, 7)
        first = tlb.translate(0x1000)
        second = tlb.translate(0x1000)
        assert first.level == "walk" and first.cycles > 0
        assert second.level == "l1" and second.cycles == 0

    def test_l2_hit_after_l1_eviction(self):
        tables, tlb = make_hierarchy()
        # Fill far more 4KB translations than L1 (64) holds but fewer
        # than L2 (1024); all map to rotating sets.
        for i in range(512):
            tables.map(0x1000 + i, i)
            tlb.translate(0x1000 + i)
        outcome = tlb.translate(0x1000)
        assert outcome.level in ("l1", "l2")
        assert tlb.l2_hits > 0

    def test_fault_outcome(self):
        _tables, tlb = make_hierarchy()
        outcome = tlb.translate(0xBAD000)
        assert outcome.level == "fault"
        assert outcome.walk is not None and outcome.walk.fault

    def test_huge_page_uses_2m_tlb(self):
        tables, tlb = make_hierarchy()
        tables.map(512 * 4, 9, "2M")
        first = tlb.translate(512 * 4 + 17)
        second = tlb.translate(512 * 4 + 400)  # same 2MB page, other vpn
        assert first.level == "walk" and first.page_size == "2M"
        assert second.level == "l1"

    def test_fill_and_invalidate(self):
        _tables, tlb = make_hierarchy()
        tlb.fill(0x2000, "4K")
        assert tlb.translate(0x2000).level == "l1"
        tlb.invalidate(0x2000, "4K")
        tlb.flush()
        assert tlb.l1["4K"].occupancy() == 0

    def test_miss_rate(self):
        tables, tlb = make_hierarchy()
        tables.map(0x3000, 1)
        tlb.translate(0x3000)
        tlb.translate(0x3000)
        assert tlb.miss_rate() == 0.5
