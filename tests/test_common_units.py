"""Unit tests for repro.common.units."""

import pytest

from repro.common.units import (
    GB,
    KB,
    MB,
    align_down,
    align_up,
    format_bytes,
    is_power_of_two,
    log2_int,
    next_power_of_two,
)


class TestPowerOfTwo:
    def test_powers_are_powers(self):
        for exp in range(0, 40):
            assert is_power_of_two(1 << exp)

    def test_non_powers(self):
        for value in (0, -1, -8, 3, 6, 12, 1000):
            assert not is_power_of_two(value)

    def test_next_power_of_two(self):
        assert next_power_of_two(0) == 1
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1025) == 2048

    def test_next_power_of_two_idempotent_on_powers(self):
        for exp in range(20):
            assert next_power_of_two(1 << exp) == 1 << exp

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(64 * MB) == 26
        with pytest.raises(ValueError):
            log2_int(3)


class TestAlignment:
    def test_align_up(self):
        assert align_up(0, 8) == 0
        assert align_up(1, 8) == 8
        assert align_up(8, 8) == 8
        assert align_up(9, 8) == 16

    def test_align_down(self):
        assert align_down(7, 8) == 0
        assert align_down(8, 8) == 8
        assert align_down(15, 8) == 8

    def test_alignment_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            align_up(5, 3)
        with pytest.raises(ValueError):
            align_down(5, 6)


class TestFormatBytes:
    def test_exact_units(self):
        assert format_bytes(8 * KB) == "8KB"
        assert format_bytes(1 * MB) == "1MB"
        assert format_bytes(64 * MB) == "64MB"
        assert format_bytes(3 * GB) == "3GB"

    def test_sub_kb(self):
        assert format_bytes(512) == "512B"

    def test_fractional(self):
        assert format_bytes(1536) == "1.50KB"
