"""Smoke tests for every experiment driver, at reduced scale.

Each paper table/figure driver must run end-to-end and produce sane,
paper-shaped output.  Scale 256 keeps these fast; the benchmarks run the
real settings.
"""

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments import (
    alloc_cost,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    table1,
    table2,
    table3,
)
from repro.experiments.runner import clear_caches

#: Tiny settings: three representative apps, small footprints/traces.
FAST = ExperimentSettings(
    scale=256, trace_length=8_000, apps=("GUPS", "BFS", "MUMmer")
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestTableDrivers:
    def test_alloc_cost(self):
        result = alloc_cost.run(memory_gb=1)
        # The Section III anchors must appear verbatim at FMFI 0.7.
        assert result.cycles[(4 * 1024, 0.7)] == pytest.approx(4000)
        assert result.cycles[(64 * 1024 * 1024, 0.75)] is None
        assert result.buddy_check[0.5] is True
        assert result.buddy_check[0.99] is False
        assert "FAIL" in alloc_cost.format_result(result)

    def test_table1(self):
        rows = table1.run(FAST)
        by_app = {row.app: row for row in rows}
        assert by_app["GUPS"].tree_contig_kb == 4
        assert by_app["GUPS"].ecpt_contig_kb > by_app["MUMmer"].ecpt_contig_kb
        assert by_app["GUPS"].ecpt_total_mb > by_app["GUPS"].tree_total_mb
        assert "GeoMean" in table1.format_result(rows)

    def test_table2(self):
        rows = table2.run()
        assert rows[0].max_way_bytes == 512 * 1024
        assert rows[1].max_way_bytes == 64 * 1024 * 1024
        assert table2.verify_smallest_row_live(rows[0])
        assert "384GB" in table2.format_result(rows)

    def test_table3(self):
        assert all(table3.live_check().values())
        assert "L2P table" in table3.format_result(table3.run())


class TestFigureDrivers:
    def test_fig8(self):
        result = fig8.run(FAST)
        by_app = {row.app: row for row in result.rows}
        assert by_app["GUPS"].mehpt_bytes < by_app["GUPS"].ecpt_bytes
        assert result.mean_reduction > 0.5
        assert "Reduction" in fig8.format_result(result)

    def test_fig9(self):
        result = fig9.run(FAST)
        # ME-HPT must beat radix on the TLB-hostile workload.
        assert result.speedups["GUPS"][("mehpt", False)] > 1.0
        # THP must help the fully-covered workload.
        assert result.speedups["GUPS"][("radix", True)] > 1.5
        assert "GeoMean" in fig9.format_result(result)

    def test_fig10(self):
        result = fig10.run(FAST)
        assert result.mean_reduction(False) > 0.0
        gups = [r for r in result.rows if r.app == "GUPS" and not r.thp][0]
        assert gups.mehpt_peak < gups.ecpt_peak
        assert "In-place share" in fig10.format_result(result)

    def test_fig11(self):
        result = fig11.run(FAST)
        assert result.upsizes[("GUPS", False)][0] > 5
        assert result.upsizes[("GUPS", True)] == [0, 0, 0]
        assert "Average" in fig11.format_result(result)

    def test_fig12(self):
        result = fig12.run(FAST)
        gups = result.way_bytes[("GUPS", False)]
        assert all(b == gups[0] for b in gups)
        # With THP, GUPS's 4KB table never grows beyond the initial size.
        assert max(result.way_bytes[("GUPS", True)]) <= 64 * 1024
        assert "Way0" in fig12.format_result(result)

    def test_fig13(self):
        result = fig13.run(FAST)
        assert 0.4 < result.average(False) < 0.6
        assert result.fraction[("GUPS", True)] == 0.0
        assert "0.5" in fig13.format_result(result)

    def test_fig14(self):
        result = fig14.run(FAST)
        assert result.entries[("GUPS", False)] > result.entries[("BFS", False)]
        assert 0 < result.average() <= 288
        assert "288" in fig14.format_result(result)

    def test_fig15(self):
        result = fig15.run(ExperimentSettings(scale=1))
        small_fixed = result.mean_way_bytes[("ME-HPT 1MB", 1_000)]
        small_mixed = result.mean_way_bytes[("ME-HPT 1MB+8KB", 1_000)]
        assert small_fixed >= 1024 * 1024
        assert small_mixed < small_fixed / 10
        big_fixed = result.mean_way_bytes[("ME-HPT 1MB", 100_000)]
        big_mixed = result.mean_way_bytes[("ME-HPT 1MB+8KB", 100_000)]
        assert 0.5 < big_mixed / big_fixed <= 1.0
        assert "1K nodes" in fig15.format_result(result)

    def test_fig16(self):
        result = fig16.run(FAST)
        assert abs(sum(result.distribution) - 1.0) < 1e-9
        assert result.p_zero > 0.4
        assert 0.0 <= result.mean < 3.0
        assert "re-insertions" in fig16.format_result(result)
