"""Unit tests for the THP policy (repro.kernel.thp)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.kernel.thp import PAGES_PER_2M, ThpPolicy


class TestCoverage:
    def test_disabled_always_4k(self):
        policy = ThpPolicy(enabled=False, coverage=1.0)
        assert all(policy.page_size_for(v) == "4K" for v in range(0, 10000, 37))

    def test_full_coverage_always_2m(self):
        policy = ThpPolicy(enabled=True, coverage=1.0)
        assert all(policy.page_size_for(v) == "2M" for v in range(0, 10000, 37))

    def test_zero_coverage_always_4k(self):
        policy = ThpPolicy(enabled=True, coverage=0.0)
        assert all(policy.page_size_for(v) == "4K" for v in range(0, 10000, 37))

    def test_partial_coverage_fraction(self):
        policy = ThpPolicy(enabled=True, coverage=0.5, seed=3)
        regions = 4000
        huge = sum(
            1 for r in range(regions)
            if policy.page_size_for(r * PAGES_PER_2M) == "2M"
        )
        assert 0.42 < huge / regions < 0.58

    def test_decision_stable_within_region(self):
        policy = ThpPolicy(enabled=True, coverage=0.5, seed=9)
        for region in range(50):
            base = region * PAGES_PER_2M
            sizes = {policy.page_size_for(base + off) for off in (0, 1, 255, 511)}
            assert len(sizes) == 1

    def test_decision_deterministic_across_instances(self):
        a = ThpPolicy(enabled=True, coverage=0.5, seed=4)
        b = ThpPolicy(enabled=True, coverage=0.5, seed=4)
        assert all(
            a.page_size_for(v) == b.page_size_for(v) for v in range(0, 50000, 511)
        )

    def test_invalid_coverage(self):
        with pytest.raises(ConfigurationError):
            ThpPolicy(coverage=1.5)


class TestRegionBase:
    def test_region_base(self):
        policy = ThpPolicy()
        assert policy.region_base(0) == 0
        assert policy.region_base(511) == 0
        assert policy.region_base(512) == 512
        assert policy.region_base(1025) == 1024
