"""Unit tests for ECPT page tables (repro.ecpt.tables)."""

import pytest

from repro.common.errors import ContiguousAllocationError
from repro.common.units import KB, MB
from repro.ecpt.tables import EcptPageTables
from repro.mem.allocator import CostModelAllocator


def make_tables(fmfi=0.3, **kwargs):
    return EcptPageTables(CostModelAllocator(fmfi=fmfi), **kwargs)


class TestKernelApi:
    def test_map_translate_multiple_sizes(self):
        tables = make_tables()
        tables.map(0x100, 0xA, "4K")
        tables.map(512 * 4, 0xB, "2M")
        tables.map((1 << 18) * 2, 0xC, "1G")
        assert tables.translate(0x100) == (0xA, "4K")
        assert tables.translate(512 * 4 + 5) == (0xB, "2M")
        assert tables.translate((1 << 18) * 2 + 99) == (0xC, "1G")
        assert tables.translate(0x500000) is None

    def test_unmap(self):
        tables = make_tables()
        tables.map(0x100, 0xA)
        assert tables.unmap(0x100)
        assert tables.translate(0x100) is None
        assert not tables.unmap(0x100)

    def test_cwt_updated_on_map(self):
        tables = make_tables()
        tables.map(0x100, 0xA)
        assert "4K" in tables.pmd_cwt.sizes_for(0x100)
        assert "4K" in tables.pud_cwt.sizes_for(0x100)
        tables.unmap(0x100)
        assert tables.pmd_cwt.sizes_for(0x100) == frozenset()


class TestContiguityBehaviour:
    def test_ways_are_contiguous_allocations(self):
        tables = make_tables(initial_slots=128)
        # One page per 8-page block: 40K distinct HPT entries.
        for i in range(40_000):
            tables.map(0x1000 + i * 8, i)
        # The biggest single allocation equals the biggest way.
        way_bytes = max(w.total_bytes() for w in tables.tables["4K"].table.ways)
        assert tables.max_contiguous_bytes() >= way_bytes // 2
        assert tables.max_contiguous_bytes() >= 1 * MB

    def test_upsize_fails_on_fragmented_memory(self):
        # At FMFI > 0.7, a 64MB way allocation must crash the run,
        # reproducing the paper's ECPT failure.  scale=64 makes a 1MB way
        # count as a 64MB full-scale allocation.
        tables = EcptPageTables(
            CostModelAllocator(fmfi=0.75, scale=64), initial_slots=2
        )
        with pytest.raises(ContiguousAllocationError):
            for i in range(100_000):
                tables.map(0x1000 + i * 8, i)

    def test_all_ways_resize_together(self):
        tables = make_tables(initial_slots=128)
        for i in range(10_000):
            tables.map(0x1000 + i, i)
        tables.drain()
        sizes = {w.size for w in tables.tables["4K"].table.ways}
        assert len(sizes) == 1

    def test_peak_includes_resize_overlap(self):
        tables = make_tables(initial_slots=128)
        for i in range(40_000):
            tables.map(0x1000 + i, i)
        # Out-of-place resizing keeps old+new alive: peak > final unless
        # the final state itself still holds both tables.
        assert tables.peak_total_bytes >= tables.total_bytes()


class TestStatistics:
    def test_upsizes_per_way_tracked(self):
        tables = make_tables(initial_slots=128)
        for i in range(10_000):
            tables.map(0x1000 + i, i)
        upsizes = tables.upsizes_per_way("4K")
        assert len(upsizes) == 3
        assert all(u > 0 for u in upsizes)

    def test_kick_histogram_merged(self):
        tables = make_tables()
        for i in range(5_000):
            tables.map(0x1000 + i, i)
        histogram = tables.kick_histogram()
        assert sum(histogram.values()) > 0

    def test_relocated_counter(self):
        tables = make_tables(initial_slots=128)
        for i in range(10_000):
            tables.map(0x1000 + i, i)
        tables.drain()
        # Out-of-place resizes relocate every rehashed entry.
        assert tables.total_relocated_entries() > 0
