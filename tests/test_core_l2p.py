"""Unit tests for the L2P table (repro.core.l2p)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.l2p import ENTRIES_PER_SUBTABLE, L2PSubtable, L2PTable


class TestGeometry:
    def test_total_entries_and_bits(self):
        l2p = L2PTable(ways=3)
        assert l2p.total_entries() == 288
        assert l2p.table_bits() == 288 * 33  # 1.16KB, as in Section V-B

    def test_needs_at_least_one_way(self):
        with pytest.raises(ConfigurationError):
            L2PTable(ways=0)

    def test_unknown_page_size(self):
        with pytest.raises(ConfigurationError):
            L2PTable().subtable(0, "16K")


class TestReservation:
    def test_within_own_capacity(self):
        sub = L2PTable().subtable(0, "4K")
        assert sub.reserve(32)
        assert sub.in_use == 32
        assert not sub.stealing

    def test_stealing_doubles_capacity(self):
        sub = L2PTable().subtable(0, "4K")
        assert sub.reserve(64)  # 32 own + 32 stolen from the 1GB neighbour
        assert sub.stealing

    def test_cannot_exceed_double(self):
        sub = L2PTable().subtable(0, "4K")
        assert sub.reserve(64)
        assert not sub.reserve(1)

    def test_group_capacity_shared(self):
        l2p = L2PTable()
        assert l2p.subtable(0, "4K").reserve(64)
        assert l2p.subtable(0, "2M").reserve(32)
        # 64 + 32 = 96: the way-group is full; 1GB gets nothing.
        assert not l2p.subtable(0, "1G").reserve(1)

    def test_displaced_1g_takes_2m_entries(self):
        # Figure 6c: 4KB stole the whole 1GB subtable; a 1GB entry then
        # borrows from the 2MB side — allowed while the group has room.
        l2p = L2PTable()
        assert l2p.subtable(0, "4K").reserve(64)
        assert l2p.subtable(0, "1G").reserve(1)
        assert l2p.subtable(0, "2M").reserve(31)
        assert not l2p.subtable(0, "2M").reserve(1)

    def test_ways_are_independent(self):
        l2p = L2PTable()
        assert l2p.subtable(0, "4K").reserve(64)
        assert l2p.subtable(1, "4K").reserve(64)

    def test_release(self):
        sub = L2PTable().subtable(0, "4K")
        sub.reserve(10)
        sub.release(4)
        assert sub.in_use == 6

    def test_over_release_rejected(self):
        sub = L2PTable().subtable(0, "4K")
        sub.reserve(2)
        with pytest.raises(ConfigurationError):
            sub.release(3)

    def test_negative_reserve_rejected(self):
        with pytest.raises(ConfigurationError):
            L2PTable().subtable(0, "4K").reserve(-1)


class TestReporting:
    def test_entries_used(self):
        l2p = L2PTable()
        l2p.subtable(0, "4K").reserve(5)
        l2p.subtable(1, "2M").reserve(3)
        assert l2p.entries_used() == 8
        assert l2p.entries_used_for("4K") == 5

    def test_peak_tracking(self):
        l2p = L2PTable()
        sub = l2p.subtable(0, "4K")
        sub.reserve(10)
        sub.release(10)
        assert l2p.entries_used() == 0
        assert l2p.peak_entries_used() == 10

    def test_usage_by_subtable(self):
        l2p = L2PTable(ways=2)
        l2p.subtable(1, "1G").reserve(2)
        usage = dict(
            ((way, size), used) for way, size, used in l2p.usage_by_subtable()
        )
        assert usage[(1, "1G")] == 2
        assert usage[(0, "4K")] == 0

    def test_context_switch_cost_scales_with_usage(self):
        l2p = L2PTable()
        assert l2p.context_switch_cycles() == 0
        l2p.subtable(0, "4K").reserve(53)  # the paper's average usage
        assert l2p.context_switch_cycles(cycles_per_entry=4) == 2 * 53 * 4
