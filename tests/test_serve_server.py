"""Integration tests: a real server, real workers, real HTTP.

Each fixture boots a :class:`~repro.serve.server.ServeServer` on an
ephemeral loopback port inside a dedicated event-loop thread and drives
it with the stdlib :class:`~repro.serve.client.ServeClient` — the same
path CI's smoke job and real deployments use.  The acceptance-critical
properties live here:

* a served cell is **byte-identical** to a direct ``SweepEngine`` call
  and shares its disk-cache entry;
* a saturated queue rejects with 429 + ``retry_after_seconds``;
* higher-priority jobs run first; cancellation reaps the worker
  process (PID change + ``serve.worker_restarts``);
* a corpus ``.vpt`` replayed through the upload path matches the
  direct replay of the same file;
* ``/metrics`` exposes the serve counters; event streams carry
  progress, per-cell results and obs events.
"""

import asyncio
import json
import os
import threading

import pytest

from repro.experiments.engine import SweepEngine
from repro.experiments.runner import ExperimentSettings
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.server import ServeConfig, ServeServer
from repro.sim.results import result_to_record

pytestmark = pytest.mark.serve

#: Settings every test uses: small enough for sub-second cells, shaped
#: exactly like a direct engine invocation for the identity tests.
FAST_SETTINGS = {"scale": 1024, "trace_length": 2000}

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")


class ServerHarness:
    """Owns one server + its event-loop thread; exposes a client."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.loop = asyncio.new_event_loop()
        self.server: ServeServer = None
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.server = ServeServer(self.config)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_until_complete(self.server.serve_forever())

    def start(self) -> "ServerHarness":
        self.thread.start()
        assert self._ready.wait(timeout=30), "server failed to boot"
        return self

    @property
    def client(self) -> ServeClient:
        return ServeClient(port=self.server.port, timeout=120.0)

    def submit_to_loop(self, coro):
        """Run a coroutine on the server's loop (drain/stop helpers)."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(60)

    def stop(self) -> None:
        if (self.server is not None and not self.server.stopped
                and self.thread.is_alive()):
            self.submit_to_loop(self.server.stop())
        if self.loop.is_running():
            self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)


@pytest.fixture()
def harness(tmp_path):
    """A two-shard server with a disk cache and a tight queue."""
    config = ServeConfig(
        port=0,
        shards=2,
        cache_dir=str(tmp_path / "cache"),
        spool_dir=str(tmp_path / "spool"),
        queue_capacity=6,
        per_client_capacity=4,
        drain_timeout_seconds=5.0,
    )
    h = ServerHarness(config).start()
    yield h
    h.stop()


def _cell_payload(app="GUPS", organization="mehpt", thp=False, **extra):
    payload = {
        "kind": "perf",
        "cells": [{"app": app, "organization": organization, "thp": thp}],
        "settings": dict(FAST_SETTINGS),
        "client": "pytest",
    }
    payload.update(extra)
    return payload


def _metric_value(metrics_text, name):
    """Read one scalar series from the /metrics exposition."""
    for line in metrics_text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[-1])
    return None


class TestByteIdentity:
    """The acceptance criterion: served == direct, same cache entry."""

    def test_served_result_identical_to_direct_engine_call(
        self, harness, tmp_path
    ):
        terminal, results = harness.client.run(_cell_payload())
        assert terminal["event"] == "done"
        (served,) = results

        engine = SweepEngine(jobs=1, cache_dir=str(tmp_path / "direct"),
                             use_cache=True)
        settings = ExperimentSettings(**FAST_SETTINGS)
        direct = engine.run_cells(
            "perf", settings, [("GUPS", "mehpt", False)], {}
        )[("GUPS", "mehpt", False)]

        direct_record = result_to_record(direct)
        assert served["result"] == direct_record
        # Byte-for-byte, not merely field-equal.
        assert (json.dumps(served["result"], sort_keys=True)
                == json.dumps(direct_record, sort_keys=True))

    def test_served_job_shares_the_disk_cache_with_direct_runs(
        self, harness, tmp_path
    ):
        """Same cache key: a direct run against the server's cache dir
        hits the entry the served job stored."""
        terminal, _ = harness.client.run(_cell_payload())
        assert terminal["cache"]["stores"] == 1

        engine = SweepEngine(jobs=1, cache_dir=harness.config.cache_dir,
                             use_cache=True)
        settings = ExperimentSettings(**FAST_SETTINGS)
        engine.run_cells("perf", settings, [("GUPS", "mehpt", False)], {})
        assert engine.cache_stats() == {
            "hits": 1, "misses": 0, "stores": 0, "corrupt": 0,
        }

    def test_second_served_submission_is_a_cache_hit(self, harness):
        first, _ = harness.client.run(_cell_payload())
        second, _ = harness.client.run(_cell_payload())
        assert first["cache"]["misses"] == 1
        assert second["cache"] == {
            "hits": 1, "misses": 0, "stores": 0, "corrupt": 0,
        }


class TestBackPressure:
    """A saturated queue answers 429 with a retry hint."""

    def test_full_queue_rejects_with_429_and_retry_after(self, harness):
        client = harness.client
        # Two shards busy + fill the queue with slow selftests from two
        # clients (per-client cap is 4, total capacity 6).
        receipts = []
        for name in ("a", "a", "a", "a", "b", "b", "b", "b"):
            receipts.append(client.submit({
                "kind": "selftest", "duration_seconds": 30, "client": name,
            }))
        with pytest.raises(ServeClientError) as excinfo:
            client.submit({
                "kind": "selftest", "duration_seconds": 30, "client": "c",
            })
        assert excinfo.value.context["status"] == 429
        assert excinfo.value.context["reason"] == "queue_full"
        assert excinfo.value.context["retry_after_seconds"] >= 1.0

        rejections = _metric_value(
            client.metrics(),
            'serve_admission_rejections{reason="queue_full"}',
        )
        assert rejections == 1.0
        for receipt in receipts:  # clean up so teardown drains fast
            client.cancel(receipt["job"])

    def test_per_client_cap_rejects_the_greedy_client_only(self, harness):
        client = harness.client
        receipts = [client.submit({
            "kind": "selftest", "duration_seconds": 30, "client": "greedy",
        }) for _ in range(6)]  # 2 running + 4 queued = cap
        with pytest.raises(ServeClientError) as excinfo:
            client.submit({
                "kind": "selftest", "duration_seconds": 30, "client": "greedy",
            })
        assert excinfo.value.context["reason"] == "client_full"
        # A polite client is still admitted.
        receipts.append(client.submit({
            "kind": "selftest", "duration_seconds": 30, "client": "polite",
        }))
        for receipt in receipts:
            client.cancel(receipt["job"])


class TestPriorityAndFairness:
    def test_interactive_job_overtakes_batch_backlog(self, harness):
        client = harness.client
        # Staggered blockers: shard 0 frees at ~2s while shard 1 is
        # still busy, so exactly one dispatch decision happens then —
        # and it must pick the interactive job over the older batch jobs.
        blockers = [client.submit({
            "kind": "selftest", "duration_seconds": seconds, "client": "w",
        }) for seconds in (2, 30)]
        batch = [client.submit({
            "kind": "selftest", "duration_seconds": 30, "client": "w",
            "priority": 2,
        }) for _ in range(2)]
        interactive = client.submit({
            "kind": "selftest", "duration_seconds": 0.1, "client": "w",
            "priority": 0,
        })
        # Follow the interactive stream until it starts running.
        started = None
        for event in client.events(interactive["job"]):
            if event["event"] == "started":
                started = event
                break
        assert started is not None
        # Both batch jobs (submitted earlier!) must still be queued.
        assert [client.status(r["job"])["status"] for r in batch] == [
            "queued", "queued",
        ]
        for receipt in blockers + batch + [interactive]:
            try:
                client.cancel(receipt["job"])
            except ServeClientError:
                pass  # already finished


class TestCancellation:
    def test_cancelling_running_job_reaps_the_worker(self, harness):
        client = harness.client
        before = {s["index"]: s["pid"] for s in client.health()["shards"]}
        receipt = client.submit({
            "kind": "selftest", "duration_seconds": 60, "client": "pytest",
        })
        # Wait for the started event so the job is on a shard.
        events = []
        for event in client.events(receipt["job"]):
            events.append(event)
            if event["event"] == "started":
                break
        shard = next(e for e in events if e["event"] == "started")["shard"]
        outcome = client.cancel(receipt["job"])
        assert outcome["status"] == "cancelled"
        assert outcome["reaped_worker"] is True

        after = {s["index"]: s["pid"] for s in client.health()["shards"]}
        assert after[shard] != before[shard], "worker PID must change"
        assert _metric_value(client.metrics(), "serve_worker_restarts") >= 1.0
        assert _metric_value(client.metrics(), "serve_jobs_cancelled") == 1.0

    def test_cancelling_queued_job_never_runs_it(self, harness):
        client = harness.client
        blockers = [client.submit({
            "kind": "selftest", "duration_seconds": 30, "client": "w",
        }) for _ in range(2)]
        queued = client.submit({
            "kind": "selftest", "duration_seconds": 30, "client": "w",
        })
        outcome = client.cancel(queued["job"])
        assert outcome["reaped_worker"] is False
        terminal, _ = client.wait(queued["job"])
        assert terminal["event"] == "cancelled"
        for receipt in blockers:
            client.cancel(receipt["job"])

    def test_cancel_terminal_job_conflicts(self, harness):
        client = harness.client
        terminal, _ = client.run({
            "kind": "selftest", "duration_seconds": 0, "client": "pytest",
        })
        with pytest.raises(ServeClientError) as excinfo:
            client.cancel(terminal["job"])
        assert excinfo.value.context["status"] == 409


class TestTimeouts:
    def test_job_deadline_reaps_and_reports_timeout(self, harness):
        client = harness.client
        terminal, _ = client.run({
            "kind": "selftest", "duration_seconds": 60,
            "timeout_seconds": 1.0, "client": "pytest",
        })
        assert terminal["event"] == "timeout"
        assert _metric_value(client.metrics(), "serve_job_timeouts") == 1.0
        # The shard recovered: a follow-up job completes normally.
        follow_up, _ = client.run({
            "kind": "selftest", "duration_seconds": 0, "client": "pytest",
        })
        assert follow_up["event"] == "done"


class TestTraceReplay:
    """Corpus entries replayed through the upload path."""

    def _corpus_trace(self):
        vpts = sorted(
            f for f in os.listdir(CORPUS_DIR) if f.endswith(".vpt")
        )
        assert vpts, "reproducer corpus must hold at least one .vpt"
        return os.path.join(CORPUS_DIR, vpts[0])

    def test_upload_then_replay_matches_direct_replay(
        self, harness, tmp_path
    ):
        client = harness.client
        path = self._corpus_trace()
        upload = client.upload_trace(path)
        assert upload["trace"].startswith("trace:sha256:")
        assert upload["records"] > 0

        replay_settings = {"scale": 1024,
                           "trace_length": min(2000, upload["records"])}
        terminal, served = client.run({
            "kind": "perf",
            "cells": [{"app": upload["trace"], "organization": "mehpt",
                       "thp": False}],
            "settings": replay_settings,
            "client": "pytest",
        })
        assert terminal["event"] == "done"

        engine = SweepEngine(jobs=1, cache_dir=str(tmp_path / "direct"),
                             use_cache=True)
        settings = ExperimentSettings(**replay_settings)
        cell = (f"trace:{path}", "mehpt", False)
        direct = engine.run_cells("perf", settings, [cell], {})[cell]
        direct_record = result_to_record(direct)
        # The workload label carries the .vpt file stem (spool copy vs
        # the original); every simulated quantity must match exactly.
        served_fields = dict(served[0]["result"]["fields"])
        direct_fields = dict(direct_record["fields"])
        assert served_fields.pop("workload").startswith("upload-")
        assert direct_fields.pop("workload")
        assert served_fields == direct_fields
        # Same content, same cache key: a direct run pointed at the
        # server's cache dir hits the entry the served replay stored.
        shared = SweepEngine(jobs=1, cache_dir=harness.config.cache_dir,
                             use_cache=True)
        shared.run_cells("perf", settings, [cell], {})
        assert shared.cache_stats()["hits"] == 1

    def test_duplicate_upload_is_idempotent(self, harness):
        client = harness.client
        path = self._corpus_trace()
        first = client.upload_trace(path)
        second = client.upload_trace(path)
        assert first["trace"] == second["trace"]
        assert _metric_value(client.metrics(), "serve_trace_uploads") == 1.0

    def test_garbage_upload_rejected_with_diagnosis(self, harness):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", harness.server.port)
        try:
            conn.request("POST", "/v1/traces", body=b"this is not a trace",
                         headers={"Content-Type": "application/octet-stream"})
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["problems"]

    def test_unknown_trace_handle_rejected_at_submit(self, harness):
        harness.server.config.allow_local_traces = False
        with pytest.raises(ServeClientError) as excinfo:
            harness.client.submit(_cell_payload(app="trace:sha256:feedbeef"))
        assert excinfo.value.context["status"] == 400


class TestStreamingAndMetrics:
    def test_event_stream_carries_progress_and_results(self, harness):
        client = harness.client
        receipt = client.submit({
            "kind": "selftest", "duration_seconds": 1.2, "client": "pytest",
        })
        events = [e["event"] for e in client.events(receipt["job"])]
        assert events[0] == "queued"
        assert "started" in events
        assert "progress" in events
        assert events[-1] == "done"

    def test_obs_events_stream_for_instrumented_jobs(self, harness):
        client = harness.client
        terminal, _ = client.run(
            _cell_payload(events={"sample_every": 100})
        )
        assert terminal["event"] == "done"
        status = client.status(terminal["job"])
        # obs events were folded into the stream alongside the results.
        assert status["events_seen"] > 3

    def test_metrics_endpoint_exposes_serve_series(self, harness):
        client = harness.client
        client.run({"kind": "selftest", "duration_seconds": 0,
                    "client": "pytest"})
        text = client.metrics()
        for series in ("serve_jobs_completed", "serve_queue_depth",
                       "serve_inflight_jobs", "serve_cache_hit_ratio",
                       "serve_streamed_events"):
            assert _metric_value(text, series) is not None, series
        assert _metric_value(text, "serve_jobs_completed") == 1.0

    def test_obs_metrics_aggregate_onto_the_exposition(self, harness):
        client = harness.client
        terminal, _ = client.run(_cell_payload(metrics=True))
        assert terminal["event"] == "done"
        text = client.metrics()
        assert _metric_value(text, "walker_walks") is not None

    def test_malformed_submission_is_a_400_not_a_500(self, harness):
        with pytest.raises(ServeClientError) as excinfo:
            harness.client.submit({"kind": "perf", "cells": []})
        assert excinfo.value.context["status"] == 400

    def test_unknown_route_is_a_404_listing_routes(self, harness):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", harness.server.port)
        try:
            conn.request("GET", "/nope")
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 404
        assert any("POST /v1/jobs" in route for route in payload["routes"])

    def test_queue_endpoint_reports_counters(self, harness):
        client = harness.client
        client.run({"kind": "selftest", "duration_seconds": 0,
                    "client": "pytest"})
        stats = client.queue()
        assert stats["pushed"] == 1 and stats["popped"] == 1
        assert stats["capacity"] == harness.config.queue_capacity


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new_work(self, harness):
        client = harness.client
        receipt = client.submit({
            "kind": "selftest", "duration_seconds": 1.0, "client": "pytest",
        })
        drain_future = asyncio.run_coroutine_threadsafe(
            harness.server.drain(), harness.loop,
        )
        # Submissions during the drain answer 503 + Retry-After.
        import time as _time
        rejected = None
        for _ in range(50):
            try:
                client.submit({"kind": "selftest", "duration_seconds": 0,
                               "client": "late"})
            except ServeClientError as exc:
                rejected = exc
                break
            except OSError:
                break  # socket already closed: drain completed first
            _time.sleep(0.02)
        if rejected is not None:
            assert rejected.context["status"] == 503
        drain_future.result(timeout=30)
        # The in-flight job was allowed to finish, not reaped.
        record = harness.server.jobs[receipt["job"]]
        assert record.status == "done"
