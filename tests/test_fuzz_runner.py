"""Outcome classification and scenario execution.

The planted-fault preset is the suite's workhorse: its injected
contiguous-allocation failure is cheap (scale 512), graceful, and
organization-specific, so classification, determinism and the
divergence machinery can all be asserted against a known ground truth.
"""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.fuzz.runner import (
    CLASS_ABORT_CONTIGUOUS,
    CLASS_ABORT_L2P,
    CLASS_ABORT_OTHER,
    CLASS_ABORT_TABLE_FULL,
    CLASS_CYCLE_BLOWUP,
    CLASS_NON_GRACEFUL,
    CLASS_OK,
    CLASS_SEVERITY,
    OrgOutcome,
    ScenarioOutcome,
    classify_failure_reason,
    run_scenario,
)
from repro.fuzz.scenario import make_preset
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.fuzz


class TestClassification:
    @pytest.mark.parametrize("reason, expected", [
        ("cannot allocate 67108864 contiguous bytes at FMFI 0.78",
         CLASS_ABORT_CONTIGUOUS),
        ("way 2 chunk ladder is exhausted", CLASS_ABORT_L2P),
        ("no chunk size above 8192 bytes", CLASS_ABORT_L2P),
        ("cuckoo table stuck at occupancy 0.93 after 3 emergency resizes",
         CLASS_ABORT_TABLE_FULL),
        ("something else entirely", CLASS_ABORT_OTHER),
    ])
    def test_reason_vocabulary(self, reason, expected):
        assert classify_failure_reason(reason) == expected

    def test_severity_covers_every_class(self):
        assert CLASS_SEVERITY[-1] == CLASS_OK
        assert len(set(CLASS_SEVERITY)) == len(CLASS_SEVERITY)

    def test_aggregation_picks_worst(self):
        scenario = make_preset("planted-fault", seed=0)
        outcome = ScenarioOutcome(scenario=scenario, trace_path="x.vpt")
        outcome.outcomes["radix"] = OrgOutcome("radix", CLASS_OK)
        outcome.outcomes["ecpt"] = OrgOutcome("ecpt", CLASS_CYCLE_BLOWUP)
        outcome.outcomes["mehpt"] = OrgOutcome("mehpt", CLASS_NON_GRACEFUL)
        assert outcome.failure_class == CLASS_NON_GRACEFUL
        assert outcome.affected_orgs == ("ecpt", "mehpt")

    def test_downsize_probe_feeds_aggregate(self):
        scenario = make_preset("churn-oscillation", seed=0)
        outcome = ScenarioOutcome(scenario=scenario, trace_path="x.vpt")
        outcome.outcomes["mehpt"] = OrgOutcome("mehpt", CLASS_OK)
        outcome.downsize_probe = CLASS_ABORT_L2P
        assert outcome.failure_class == CLASS_ABORT_L2P

    def test_summary_mentions_every_org(self):
        scenario = make_preset("planted-fault", seed=2)
        outcome = ScenarioOutcome(scenario=scenario, trace_path="x.vpt")
        outcome.outcomes["ecpt"] = OrgOutcome("ecpt", CLASS_ABORT_CONTIGUOUS)
        text = outcome.summary()
        assert "planted-fault" in text and "seed=2" in text
        assert "ecpt=abort:contiguous" in text


class TestPlantedFaultExecution:
    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        workdir = str(tmp_path_factory.mktemp("planted"))
        scenario = make_preset("planted-fault", seed=0)
        return run_scenario(scenario, orgs=("radix", "ecpt"), workdir=workdir)

    def test_planted_fault_aborts_gracefully(self, outcome):
        ecpt = outcome.outcomes["ecpt"]
        assert ecpt.failure_class == CLASS_ABORT_CONTIGUOUS
        assert ecpt.failed
        assert "contiguous" in ecpt.failure_reason

    def test_radix_baseline_unaffected(self, outcome):
        assert outcome.outcomes["radix"].failure_class == CLASS_OK
        assert outcome.outcomes["radix"].cycles_per_access > 0

    def test_classification_is_deterministic(self, outcome, tmp_path):
        scenario = make_preset("planted-fault", seed=0)
        again = run_scenario(
            scenario, orgs=("radix", "ecpt"), workdir=str(tmp_path)
        )
        assert again.failure_class == outcome.failure_class
        assert again.affected_orgs == outcome.affected_orgs
        assert dataclasses.asdict(again.outcomes["ecpt"]) == dataclasses.asdict(
            outcome.outcomes["ecpt"]
        )

    def test_registry_counters(self, tmp_path):
        registry = MetricsRegistry()
        scenario = make_preset("planted-fault", seed=0)
        run_scenario(
            scenario, orgs=("ecpt",), workdir=str(tmp_path), registry=registry,
        )
        snapshot = registry.snapshot()
        assert snapshot["fuzz.scenarios_run"]["value"] == 1
        assert snapshot["fuzz.failures_found"]["value"] == 1

    def test_divergence_check_runs_both_engines(self, outcome, tmp_path):
        scenario = make_preset("planted-fault", seed=0)
        checked = run_scenario(
            scenario, trace_path=outcome.trace_path, orgs=("ecpt",),
            check_divergence=True,
        )
        org = checked.outcomes["ecpt"]
        assert org.divergence_checked
        # Engines agree, so the class stays the graceful abort.
        assert org.failure_class == CLASS_ABORT_CONTIGUOUS

    def test_empty_trace_rejected(self, tmp_path):
        import numpy as np

        from repro.traces.format import TraceMeta, TraceWriter

        path = str(tmp_path / "empty.vpt")
        with TraceWriter(path, meta=TraceMeta(source="fuzz")) as writer:
            writer.append(np.empty(0, dtype=np.uint64))
        scenario = make_preset("planted-fault", seed=0)
        with pytest.raises(ConfigurationError, match="empty"):
            run_scenario(scenario, trace_path=path, orgs=("ecpt",))
