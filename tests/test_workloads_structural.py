"""Unit tests for structural workload generators (graph + kernels)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.graph import (
    NODE_RECORD_BYTES,
    SyntheticGraph,
    TRAVERSALS,
    structural_trace,
)
from repro.workloads.kernels import GupsKernel, MummerKernel, SysbenchMemoryKernel


class TestSyntheticGraph:
    def test_csr_consistency(self):
        graph = SyntheticGraph(nodes=2000, seed=3)
        assert graph.offsets[0] == 0
        assert graph.offsets[-1] == graph.edge_count
        assert np.all(np.diff(graph.offsets) >= 1)
        assert graph.edges.min() >= 0
        assert graph.edges.max() < graph.nodes

    def test_power_law_hubs(self):
        graph = SyntheticGraph(nodes=5000, seed=3)
        # Preferential targets: the lowest-id 10% of nodes receive a
        # disproportionate share of edges.
        hub_share = (graph.edges < graph.nodes // 10).mean()
        assert hub_share > 0.25

    def test_layout_regions_disjoint_and_ordered(self):
        graph = SyntheticGraph(nodes=3000)
        assert graph.node_base < graph.offset_base < graph.edge_base < graph.end_vpn
        assert graph.node_vpn(graph.nodes - 1) < graph.offset_base
        assert graph.edge_vpn(graph.edge_count - 1) < graph.end_vpn

    def test_node_vpn_packing(self):
        graph = SyntheticGraph(nodes=1000)
        per_page = 4096 // NODE_RECORD_BYTES
        assert graph.node_vpn(0) == graph.node_vpn(per_page - 1)
        assert graph.node_vpn(per_page) == graph.node_vpn(0) + 1

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticGraph(nodes=1)

    def test_deterministic(self):
        a = SyntheticGraph(nodes=1000, seed=5)
        b = SyntheticGraph(nodes=1000, seed=5)
        assert np.array_equal(a.edges, b.edges)


class TestTraversalTraces:
    @pytest.mark.parametrize("method", ["bfs_trace", "dfs_trace",
                                        "pagerank_trace", "triangle_trace"])
    def test_traces_stay_in_graph_memory(self, method):
        graph = SyntheticGraph(nodes=2000, seed=9)
        trace = getattr(graph, method)(5000)
        assert len(trace) == 5000
        assert trace.min() >= graph.base_vpn
        assert trace.max() < graph.end_vpn

    def test_bfs_covers_many_nodes(self):
        graph = SyntheticGraph(nodes=2000, seed=9)
        trace = graph.bfs_trace(8000)
        node_pages = trace[(trace >= graph.node_base) & (trace < graph.offset_base)]
        assert len(np.unique(node_pages)) > 10

    def test_pagerank_streams_node_array(self):
        graph = SyntheticGraph(nodes=20000, seed=9)
        trace = graph.pagerank_trace(20000)
        node_pages = trace[(trace >= graph.node_base) & (trace < graph.offset_base)]
        # The sweep advances through the node array.
        assert len(np.unique(node_pages)) > 50

    def test_triangle_hits_edge_array_hard(self):
        graph = SyntheticGraph(nodes=2000, seed=9)
        trace = graph.triangle_trace(8000)
        edge_hits = ((trace >= graph.edge_base) & (trace < graph.end_vpn)).mean()
        assert edge_hits > 0.3

    def test_structural_trace_dispatch(self):
        for app in TRAVERSALS:
            trace = structural_trace(app, nodes=800, length=500)
            assert len(trace) == 500

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            structural_trace("GUPS", nodes=100, length=10)


class TestGupsKernel:
    def test_uniform_coverage(self):
        kernel = GupsKernel(table_pages=1000)
        trace = kernel.trace(20000)
        assert len(np.unique(trace)) > 900
        assert trace.min() >= kernel.base_vpn
        assert trace.max() < kernel.base_vpn + 1000

    def test_no_locality(self):
        kernel = GupsKernel(table_pages=4096)
        trace = kernel.trace(10000)
        assert (np.abs(np.diff(trace)) <= 1).mean() < 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GupsKernel(table_pages=0)


class TestMummerKernel:
    def test_mixes_streaming_and_descents(self):
        kernel = MummerKernel(reference_pages=5000, index_pages=2000)
        trace = kernel.trace(10000)
        ref = trace < kernel.index_base
        assert 0.5 < ref.mean() < 0.95  # mostly streaming
        seq = (np.diff(trace) == 1).mean()
        assert seq > 0.4

    def test_index_pages_scattered(self):
        kernel = MummerKernel(reference_pages=100, index_pages=5000)
        trace = kernel.trace(10000)
        index_hits = trace[trace >= kernel.index_base]
        assert len(np.unique(index_hits)) > 500

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MummerKernel(reference_pages=0, index_pages=10)


class TestSysbenchKernel:
    def test_block_runs(self):
        kernel = SysbenchMemoryKernel(buffer_pages=4096, block_pages=4)
        trace = kernel.trace(8000)
        # Within blocks, accesses are sequential.
        assert (np.diff(trace) == 1).mean() > 0.5

    def test_random_mode_spreads(self):
        kernel = SysbenchMemoryKernel(
            buffer_pages=8192, block_pages=4, random_fraction=1.0
        )
        trace = kernel.trace(8000)
        assert len(np.unique(trace // 4)) > 1000

    def test_sequential_mode_sweeps(self):
        kernel = SysbenchMemoryKernel(
            buffer_pages=64, block_pages=4, random_fraction=0.0
        )
        trace = kernel.trace(64)
        assert np.array_equal(trace, kernel.base_vpn + np.arange(64))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SysbenchMemoryKernel(buffer_pages=2, block_pages=4)
