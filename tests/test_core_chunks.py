"""Unit tests for the chunk ladder (repro.core.chunks)."""

import pytest

from repro.common.errors import ConfigurationError, L2POverflowError
from repro.common.units import GB, KB, MB
from repro.core.chunks import DEFAULT_CHUNK_SIZES, ChunkLadder


class TestLadderConstruction:
    def test_paper_default(self):
        assert DEFAULT_CHUNK_SIZES == (8 * KB, 1 * MB, 8 * MB, 64 * MB)

    def test_must_be_increasing(self):
        with pytest.raises(ConfigurationError):
            ChunkLadder([1 * MB, 8 * KB])

    def test_must_be_powers_of_two(self):
        with pytest.raises(ConfigurationError):
            ChunkLadder([3 * KB])

    def test_cannot_be_empty(self):
        with pytest.raises(ConfigurationError):
            ChunkLadder([])


class TestTransitions:
    def test_next_size(self):
        ladder = ChunkLadder()
        assert ladder.next_size(8 * KB) == 1 * MB
        assert ladder.next_size(1 * MB) == 8 * MB
        assert ladder.next_size(64 * MB) is None

    def test_next_size_unknown(self):
        with pytest.raises(ConfigurationError):
            ChunkLadder().next_size(16 * KB)

    def test_chunks_needed(self):
        ladder = ChunkLadder()
        assert ladder.chunks_needed(512 * KB, 8 * KB) == 64
        assert ladder.chunks_needed(1, 8 * KB) == 1
        assert ladder.chunks_needed(9 * KB, 8 * KB) == 2


class TestTableTwoNumbers:
    """The ladder arithmetic must reproduce Table II exactly."""

    @pytest.mark.parametrize(
        "chunk,max_way",
        [(8 * KB, 512 * KB), (1 * MB, 64 * MB), (8 * MB, 512 * MB), (64 * MB, 4 * GB)],
    )
    def test_max_way_sizes(self, chunk, max_way):
        assert ChunkLadder().max_way_bytes(chunk) == max_way


class TestSizeForWay:
    def test_smallest_adequate_size(self):
        ladder = ChunkLadder()
        assert ladder.size_for_way(100 * KB) == 8 * KB
        assert ladder.size_for_way(512 * KB) == 8 * KB
        assert ladder.size_for_way(513 * KB) == 1 * MB
        assert ladder.size_for_way(64 * MB) == 1 * MB
        assert ladder.size_for_way(65 * MB) == 8 * MB

    def test_at_least_floor(self):
        ladder = ChunkLadder()
        assert ladder.size_for_way(100 * KB, at_least=1 * MB) == 1 * MB

    def test_overflow_raises(self):
        ladder = ChunkLadder()
        with pytest.raises(L2POverflowError):
            ladder.size_for_way(5 * GB)
