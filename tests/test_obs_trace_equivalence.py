"""Traced-event equivalence between the scalar and vectorized engines.

PR 7's tentpole contract: with a trace sink attached, the vectorized
batched engine synthesizes the per-access event stream (walk_start,
walk_end, tlb_miss, measure_start) from its batch results while the real
fault machinery emits its own events live — and the resulting JSONL file
is **byte-identical** to the scalar engine's, for every organization,
THP setting, warmup fraction, chunk size, sampling rate and seed, on
clean and aborted runs alike.  Byte identity implies the per-kind
sampling counters and sequence numbers also agree, so these tests pin
the emit-call sequence itself, not just the kept events.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fuzz.corpus import load_manifest
from repro.fuzz.scenario import Scenario
from repro.obs import ObservabilityConfig
from repro.obs.trace import ALL_KINDS, SAMPLED_KINDS, read_jsonl
from repro.sim.config import SimulationConfig
from repro.sim.simulator import TranslationSimulator
from repro.workloads import get_workload

pytestmark = pytest.mark.fastpath

SCALE = 64


def run_traced(engine, path, org="mehpt", app="GUPS", n=4_000, warmup=0.0,
               thp=False, chunk=None, scale=SCALE, seed=3, sample=1,
               **config_kw):
    workload = get_workload(app, scale=scale, seed=seed)
    config = SimulationConfig(
        organization=org, thp_enabled=thp, scale=scale, seed=seed,
        engine=engine,
        obs=ObservabilityConfig(
            trace_path=str(path), trace_sample_every=sample,
        ),
        **config_kw,
    )
    sim = TranslationSimulator(
        workload, config, trace_length=n, warmup_fraction=warmup,
        engine_chunk=chunk,
    )
    return sim.run()


def trace_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


class TestJsonlByteIdentity:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        org=st.sampled_from(["radix", "ecpt", "mehpt"]),
        thp=st.booleans(),
        warmup=st.sampled_from([0.0, 0.25, 0.617]),
        chunk=st.sampled_from([257, 1024, None]),
        sample=st.sampled_from([1, 7]),
        seed=st.integers(0, 2**16),
    )
    def test_jsonl_byte_identical(self, tmp_path_factory, org, thp, warmup,
                                  chunk, sample, seed):
        tmp = tmp_path_factory.mktemp("jsonl")
        s_path, v_path = tmp / "s.jsonl", tmp / "v.jsonl"
        scalar = run_traced("scalar", s_path, org=org, thp=thp, warmup=warmup,
                            chunk=chunk, sample=sample, seed=seed)
        vector = run_traced("vectorized", v_path, org=org, thp=thp,
                            warmup=warmup, chunk=chunk, sample=sample,
                            seed=seed)
        assert scalar == vector
        assert trace_bytes(s_path) == trace_bytes(v_path)

    def test_aborted_run_trace_byte_identical(self, tmp_path):
        # The contiguous-allocation abort truncates the event stream
        # mid-access; the traced prefix must still match byte-for-byte.
        s_path, v_path = tmp_path / "s.jsonl", tmp_path / "v.jsonl"
        scalar = run_traced("scalar", s_path, org="ecpt", scale=512,
                            n=30_000, warmup=0.1, fmfi=0.75)
        vector = run_traced("vectorized", v_path, org="ecpt", scale=512,
                            n=30_000, warmup=0.1, fmfi=0.75)
        assert scalar.failed and vector.failed
        assert scalar == vector
        assert trace_bytes(s_path) == trace_bytes(v_path)

    def test_ring_buffer_events_identical(self):
        # The ring-buffer sink goes through the same Tracer; pin the
        # in-memory event dicts too (JSON never enters the picture).
        events = {}
        for engine in ("scalar", "vectorized"):
            workload = get_workload("GUPS", scale=SCALE, seed=3)
            config = SimulationConfig(
                scale=SCALE, seed=3, engine=engine,
                obs=ObservabilityConfig(trace_buffer=200_000),
            )
            sim = TranslationSimulator(workload, config, trace_length=3_000)
            sim.run()
            events[engine] = sim.system.obs.ring.events
        assert events["scalar"] == events["vectorized"]


class TestSamplingAndKinds:
    def test_sampling_is_per_kind_and_lifecycle_kept(self, tmp_path):
        full = run_traced("vectorized", tmp_path / "full.jsonl", sample=1)
        sampled = run_traced("vectorized", tmp_path / "s7.jsonl", sample=7)
        assert full == sampled  # sampling never changes results
        full_ev = read_jsonl(str(tmp_path / "full.jsonl"))
        samp_ev = read_jsonl(str(tmp_path / "s7.jsonl"))

        def counts(events):
            out = {}
            for event in events:
                out[event["kind"]] = out.get(event["kind"], 0) + 1
            return out

        full_counts, samp_counts = counts(full_ev), counts(samp_ev)
        for kind in SAMPLED_KINDS & set(full_counts):
            # Every sample_every-th occurrence of that kind is kept.
            expected = (full_counts[kind] + 6) // 7
            assert samp_counts.get(kind, 0) == expected, kind
        for kind in set(full_counts) - SAMPLED_KINDS:
            # Lifecycle / fault / resize events are never down-sampled.
            assert samp_counts.get(kind, 0) == full_counts[kind], kind

    def test_all_event_kinds_covered_byte_identically(self, tmp_path):
        # GUPS on ME-HPT produces the steady-state kinds (walks, misses,
        # faults, kicks, resizes, chunk transitions); the planted-fault
        # corpus reproducer adds fault_injected and resize_rollback; a
        # tiny churning datacenter run adds the tenancy kinds (shootdown,
        # migration, lifecycle).  Together the traces span every kind.
        run_traced("vectorized", tmp_path / "gups.jsonl", n=6_000)
        seen = {e["kind"] for e in read_jsonl(str(tmp_path / "gups.jsonl"))}
        entry = next(
            e for e in load_manifest(CHECKED_IN_CORPUS)
            if e.name.startswith("planted-fault")
        )
        s_ev, v_ev = _replay_corpus_entry_traced(entry, tmp_path)
        assert s_ev == v_ev
        seen |= {e["kind"] for e in s_ev}
        seen |= _datacenter_kinds(tmp_path)
        assert seen == ALL_KINDS


CHECKED_IN_CORPUS = os.path.join(os.path.dirname(__file__), "..", "corpus")


def _datacenter_kinds(tmp_path):
    """Kinds from a tiny traced datacenter run (migrate policy + churn)."""
    from repro.sim.datacenter import DatacenterParams, DatacenterSimulator

    path = tmp_path / "dc.jsonl"
    config = SimulationConfig(
        organization="mehpt", scale=512, seed=3,
        obs=ObservabilityConfig(trace_path=str(path)),
    )
    params = DatacenterParams(
        sockets=2, processes=3, policy="migrate", quantum=400,
        churn_every=2, rebalance_every=2, pool_mb=16,
    )
    DatacenterSimulator(["GUPS"], config, params=params,
                        trace_length=1_200).run()
    return {e["kind"] for e in read_jsonl(str(path))}


def _replay_corpus_entry_traced(entry, tmp_path):
    """Replay one corpus entry under both engines with JSONL tracing."""
    org = entry.affected_orgs[0]
    scenario = Scenario.from_dict(entry.scenario)
    trace = os.path.join(CHECKED_IN_CORPUS, entry.trace)
    events = {}
    for engine in ("scalar", "vectorized"):
        path = tmp_path / f"{entry.name}-{engine}.jsonl"
        config = scenario.config_for(org, trace)
        config.engine = engine
        config.obs = ObservabilityConfig(trace_path=str(path))
        sim = TranslationSimulator(
            config.load_trace_workload(), config, trace_length=entry.records,
        )
        sim.run()
        events[engine] = read_jsonl(str(path))
    return events["scalar"], events["vectorized"]


@pytest.mark.fuzz
class TestCorpusReplayTraced:
    """Every checked-in reproducer replays divergence-free with the
    vectorized tracer: same failure class, same events, byte-for-byte."""

    @pytest.mark.parametrize(
        "name", [e.name for e in load_manifest(CHECKED_IN_CORPUS)],
    )
    def test_corpus_entry_traces_identical(self, name, tmp_path):
        entry = next(
            e for e in load_manifest(CHECKED_IN_CORPUS) if e.name == name
        )
        s_ev, v_ev = _replay_corpus_entry_traced(entry, tmp_path)
        assert s_ev == v_ev
        # The reproducer still reproduces under tracing: aborts surface
        # as a truncated stream whose run_end reports failed=True.
        run_end = [e for e in s_ev if e["kind"] == "run_end"]
        assert len(run_end) == 1
        if entry.failure_class.startswith("abort:"):
            assert run_end[0]["failed"] is True
