"""Tests for the parallel sweep engine and its persistent disk cache
(repro.experiments.engine), plus the sweep-key normalization fix."""

import dataclasses
import json
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments import engine as engine_mod
from repro.experiments.engine import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    SweepEngine,
    cell_key,
)
from repro.experiments.runner import (
    ExperimentSettings,
    clear_caches,
    memory_sweep,
    perf_sweep,
)
from repro.sim.results import (
    MemoryFootprintResult,
    PerformanceResult,
    result_from_record,
    result_to_record,
)

#: Tiny but non-trivial grid: two apps, both hashed organizations.
SETTINGS = ExperimentSettings(scale=256, trace_length=4_000, apps=("GUPS", "BFS"))


@pytest.fixture(autouse=True)
def _isolated_engine():
    clear_caches()
    engine_mod.reset_engine()
    yield
    clear_caches()
    engine_mod.reset_engine()


class TestCellKey:
    def test_memory_key_ignores_trace_window_fields(self):
        cell = ("GUPS", "mehpt", False)
        base, _ = cell_key("memory", SETTINGS, cell, {})
        changed = dataclasses.replace(
            SETTINGS, trace_length=999, base_cycles_per_access=1.0,
            warmup_fraction=0.5, apps=("GUPS",),
        )
        assert cell_key("memory", changed, cell, {})[0] == base

    def test_perf_key_tracks_trace_window_fields(self):
        cell = ("GUPS", "mehpt", False)
        base, _ = cell_key("perf", SETTINGS, cell, {})
        for changed in (
            dataclasses.replace(SETTINGS, trace_length=999),
            dataclasses.replace(SETTINGS, warmup_fraction=0.5),
            dataclasses.replace(SETTINGS, base_cycles_per_access=1.0),
        ):
            assert cell_key("perf", changed, cell, {})[0] != base

    def test_key_tracks_methodology_and_overrides(self):
        cell = ("GUPS", "mehpt", False)
        base, cacheable = cell_key("memory", SETTINGS, cell, {})
        assert cacheable
        assert cell_key("memory", dataclasses.replace(SETTINGS, fmfi=0.5), cell, {})[0] != base
        assert cell_key("memory", SETTINGS, cell, {"enable_inplace": False})[0] != base
        assert cell_key("memory", SETTINGS, ("BFS", "mehpt", False), {})[0] != base
        assert cell_key("perf", SETTINGS, cell, {})[0] != base

    def test_non_scalar_override_not_disk_cacheable(self):
        cell = ("GUPS", "mehpt", False)
        _, cacheable = cell_key("memory", SETTINGS, cell, {"fault_plan": object()})
        assert not cacheable


class TestResultRecords:
    def test_memory_result_roundtrip(self):
        results = memory_sweep(SETTINGS, organizations=("mehpt",), apps=("GUPS",))
        original = results[("GUPS", "mehpt", False)]
        rebuilt = result_from_record(
            json.loads(json.dumps(result_to_record(original)))
        )
        assert rebuilt == original
        assert isinstance(rebuilt, MemoryFootprintResult)
        assert rebuilt.kick_histogram == original.kick_histogram

    def test_perf_result_roundtrip(self):
        results = perf_sweep(
            SETTINGS, organizations=("radix",), thp_options=(False,), apps=("GUPS",)
        )
        original = results[("GUPS", "radix", False)]
        rebuilt = result_from_record(
            json.loads(json.dumps(result_to_record(original)))
        )
        assert rebuilt == original
        assert isinstance(rebuilt, PerformanceResult)


class TestSerialParallelEquivalence:
    def test_memory_sweep_matches(self):
        serial = memory_sweep(SETTINGS)
        clear_caches()
        engine_mod.configure(jobs=2)
        parallel = memory_sweep(SETTINGS)
        assert serial == parallel

    def test_perf_sweep_matches(self):
        serial = perf_sweep(SETTINGS, thp_options=(False,))
        clear_caches()
        engine_mod.configure(jobs=2)
        parallel = perf_sweep(SETTINGS, thp_options=(False,))
        assert serial == parallel


class TestDiskCache:
    def test_cold_run_stores_warm_run_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine_mod.configure(cache_dir=cache_dir)
        memory_sweep(SETTINGS, organizations=("mehpt",))
        stats = engine_mod.get_engine().cache_stats()
        assert stats["stores"] == 4  # 2 apps x 1 org x 2 thp
        assert stats["hits"] == 0
        # Fresh process simulation: new engine, empty memo, same directory.
        clear_caches()
        engine_mod.set_engine(SweepEngine(cache_dir=cache_dir))
        warm = memory_sweep(SETTINGS, organizations=("mehpt",))
        stats = engine_mod.get_engine().cache_stats()
        assert stats["hits"] == 4
        assert stats["misses"] == 0
        assert stats["stores"] == 0
        assert warm[("GUPS", "mehpt", False)].total_pt_bytes > 0

    def test_warm_results_equal_cold_results(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine_mod.configure(cache_dir=cache_dir)
        cold = perf_sweep(SETTINGS, organizations=("mehpt",), thp_options=(False,))
        clear_caches()
        engine_mod.set_engine(SweepEngine(cache_dir=cache_dir))
        warm = perf_sweep(SETTINGS, organizations=("mehpt",), thp_options=(False,))
        assert warm == cold

    def test_corrupt_record_recomputed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine_mod.configure(cache_dir=cache_dir)
        cold = memory_sweep(SETTINGS, organizations=("mehpt",), apps=("GUPS",))
        files = sorted(os.listdir(cache_dir))
        with open(os.path.join(cache_dir, files[0]), "w") as handle:
            handle.write("{ not json")
        clear_caches()
        engine_mod.set_engine(SweepEngine(cache_dir=cache_dir))
        warm = memory_sweep(SETTINGS, organizations=("mehpt",), apps=("GUPS",))
        stats = engine_mod.get_engine().cache_stats()
        assert stats["corrupt"] == 1
        assert stats["stores"] == 1  # the corrupt cell was recomputed + rewritten
        assert warm == cold

    def test_stale_schema_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine_mod.configure(cache_dir=cache_dir)
        memory_sweep(SETTINGS, organizations=("mehpt",), apps=("GUPS",))
        for name in os.listdir(cache_dir):
            path = os.path.join(cache_dir, name)
            with open(path) as handle:
                record = json.load(handle)
            record["schema"] = CACHE_SCHEMA_VERSION - 1
            with open(path, "w") as handle:
                json.dump(record, handle)
        clear_caches()
        engine_mod.set_engine(SweepEngine(cache_dir=cache_dir))
        memory_sweep(SETTINGS, organizations=("mehpt",), apps=("GUPS",))
        stats = engine_mod.get_engine().cache_stats()
        assert stats["hits"] == 0
        assert stats["corrupt"] == 2

    def test_no_cache_writes_nothing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine_mod.configure(cache_dir=cache_dir, use_cache=False)
        memory_sweep(SETTINGS, organizations=("mehpt",), apps=("GUPS",))
        assert engine_mod.get_engine().cache is None
        assert not os.path.exists(cache_dir)

    def test_failed_cells_cache_their_failure_records(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine_mod.configure(cache_dir=cache_dir)
        failing = dataclasses.replace(SETTINGS, fmfi=0.75, scale=64, apps=("GUPS",))
        cold = memory_sweep(failing, organizations=("ecpt",), thp_options=(False,))
        assert cold[("GUPS", "ecpt", False)].failed
        clear_caches()
        engine_mod.set_engine(SweepEngine(cache_dir=cache_dir))
        warm = memory_sweep(failing, organizations=("ecpt",), thp_options=(False,))
        result = warm[("GUPS", "ecpt", False)]
        assert engine_mod.get_engine().cache_stats()["hits"] == 1
        assert result.failed
        assert "contiguous" in result.failure_reason


class TestMemoNormalization:
    def test_memory_memo_survives_trace_length_change(self):
        first = memory_sweep(SETTINGS, organizations=("mehpt",), apps=("GUPS",))
        changed = dataclasses.replace(SETTINGS, trace_length=9_999)
        second = memory_sweep(changed, organizations=("mehpt",), apps=("GUPS",))
        # Served from the in-process memo: the very same objects.
        key = ("GUPS", "mehpt", False)
        assert second[key] is first[key]

    def test_perf_memo_respects_trace_length(self):
        key = ("GUPS", "radix", False)
        first = perf_sweep(
            SETTINGS, organizations=("radix",), thp_options=(False,), apps=("GUPS",)
        )
        changed = dataclasses.replace(SETTINGS, trace_length=2_000)
        second = perf_sweep(
            changed, organizations=("radix",), thp_options=(False,), apps=("GUPS",)
        )
        assert second[key] is not first[key]
        assert second[key].accesses < first[key].accesses


class TestEngineConfig:
    def test_jobs_validated(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(jobs=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepEngine().run_cells("nope", SETTINGS, [("GUPS", "mehpt", False)], {})

    def test_configure_replaces_default(self, tmp_path):
        engine_mod.configure(jobs=5, cache_dir=str(tmp_path))
        engine = engine_mod.get_engine()
        assert engine.jobs == 5
        assert engine.cache is not None
        engine_mod.configure(use_cache=False)
        assert engine_mod.get_engine().jobs == 5
        assert engine_mod.get_engine().cache is None

    def test_atomic_store_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        results = memory_sweep(SETTINGS, organizations=("mehpt",), apps=("GUPS",))
        cache.store("deadbeef", "memory", results[("GUPS", "mehpt", False)])
        assert sorted(os.listdir(str(tmp_path))) == ["deadbeef.json"]
        assert cache.load("deadbeef", "memory") == results[("GUPS", "mehpt", False)]
