"""``python -m repro.fuzz`` CLI: all four verbs plus error paths."""

import json
import os

import pytest

from repro.fuzz.__main__ import main
from repro.fuzz.corpus import load_manifest
from repro.fuzz.scenario import make_preset

pytestmark = pytest.mark.fuzz


class TestGenerate:
    def test_generate_writes_trace_and_sidecar(self, tmp_path, capsys):
        out = str(tmp_path / "s.vpt")
        rc = main([
            "generate", "--preset", "planted-fault", "--seed", "3",
            "--out", out,
        ])
        assert rc == 0
        assert os.path.exists(out)
        sidecar = str(tmp_path / "s.scenario.json")
        assert os.path.exists(sidecar)
        raw = json.loads(open(sidecar).read())
        assert raw["name"] == "planted-fault"
        assert raw["seed"] == 3
        assert "records" in capsys.readouterr().out

    def test_generate_from_scenario_file(self, tmp_path):
        scenario = make_preset("planted-fault", seed=1)
        blob = str(tmp_path / "in.json")
        with open(blob, "w") as handle:
            handle.write(scenario.to_json())
        out = str(tmp_path / "from-json.vpt")
        assert main(["generate", "--scenario", blob, "--out", out]) == 0
        assert os.path.exists(out)

    def test_missing_recipe_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["generate", "--out", str(tmp_path / "x.vpt")])
        assert err.value.code == 2

    def test_unknown_preset_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main([
                "generate", "--preset", "zip-bomb",
                "--out", str(tmp_path / "x.vpt"),
            ])
        assert err.value.code == 2


class TestRunMinimizeReplay:
    def test_run_reports_findings(self, tmp_path, capsys):
        rc = main([
            "run", "--preset", "planted-fault", "--orgs", "ecpt",
            "--out-dir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ecpt=abort:contiguous" in out
        assert "1 with findings" in out

    def test_fail_on_findings(self, tmp_path):
        rc = main([
            "run", "--preset", "planted-fault", "--orgs", "ecpt",
            "--out-dir", str(tmp_path), "--fail-on-findings",
        ])
        assert rc == 1

    def test_run_minimize_into_corpus_then_replay(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        rc = main([
            "run", "--preset", "planted-fault", "--orgs", "radix,ecpt",
            "--out-dir", str(tmp_path / "work"), "--minimize",
            "--corpus", corpus,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "minimized:" in out and "corpus: added" in out
        entries = load_manifest(corpus)
        assert len(entries) == 1
        # < 1% of the 20000-record original.
        assert entries[0].records <= 200

        rc = main(["replay-corpus", "--corpus", corpus])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 mismatch(es)" in out

    def test_minimize_verb(self, tmp_path, capsys):
        trace = str(tmp_path / "full.vpt")
        assert main([
            "generate", "--preset", "planted-fault", "--out", trace,
        ]) == 0
        out = str(tmp_path / "min.vpt")
        rc = main([
            "minimize", "--preset", "planted-fault", "--trace", trace,
            "--failure-class", "abort:contiguous", "--out", out,
            "--orgs", "ecpt",
        ])
        assert rc == 0
        assert os.path.exists(out)
        assert "records" in capsys.readouterr().out

    def test_replay_missing_corpus_errors(self, tmp_path, capsys):
        rc = main(["replay-corpus", "--corpus", str(tmp_path / "nope")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_minimize_wrong_class_errors(self, tmp_path, capsys):
        trace = str(tmp_path / "full.vpt")
        main(["generate", "--preset", "planted-fault", "--out", trace])
        rc = main([
            "minimize", "--preset", "planted-fault", "--trace", trace,
            "--failure-class", "abort:l2p", "--out",
            str(tmp_path / "min.vpt"), "--orgs", "ecpt",
        ])
        assert rc == 1
        assert "does not reproduce" in capsys.readouterr().err
