"""Unit tests for the buddy allocator (repro.mem.buddy)."""

import pytest

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.common.units import GB, KB, MB
from repro.mem.buddy import BuddyAllocator


def make(total=64 * MB, max_order=10):
    return BuddyAllocator(total, max_order=max_order)


class TestGeometry:
    def test_total_frames(self):
        buddy = make(64 * MB)
        assert buddy.total_frames == 64 * MB // (4 * KB)

    def test_unaligned_total_rejected(self):
        with pytest.raises(ConfigurationError):
            BuddyAllocator(4 * KB * 1000 + 1)

    def test_max_order_clamped_to_tile_memory(self):
        # 100 frames cannot tile order-10 blocks; the top order clamps to 2.
        buddy = BuddyAllocator(4 * KB * 100, max_order=10)
        assert buddy.max_order == 2
        assert buddy.free_frames() == 100

    def test_order_for_bytes(self):
        buddy = make()
        assert buddy.order_for_bytes(1) == 0
        assert buddy.order_for_bytes(4 * KB) == 0
        assert buddy.order_for_bytes(8 * KB) == 1
        assert buddy.order_for_bytes(8 * KB + 1) == 2
        assert buddy.order_for_bytes(1 * MB) == 8


class TestAllocationAndFree:
    def test_alloc_splits_blocks(self):
        buddy = make()
        start = buddy.alloc_order(0)
        assert buddy.free_frames() == buddy.total_frames - 1
        buddy.free(start)
        assert buddy.free_frames() == buddy.total_frames

    def test_coalescing_restores_max_order(self):
        buddy = make()
        starts = [buddy.alloc_order(0) for _ in range(64)]
        for start in starts:
            buddy.free(start)
        assert buddy.largest_free_order() == buddy.max_order

    def test_distinct_allocations_do_not_overlap(self):
        buddy = make()
        seen = set()
        for _ in range(20):
            start = buddy.alloc_order(3)
            block = set(range(start, start + 8))
            assert not (block & seen)
            seen |= block

    def test_exhaustion_raises(self):
        buddy = BuddyAllocator(4 * MB, max_order=5)
        with pytest.raises(OutOfMemoryError):
            for _ in range(10000):
                buddy.alloc_order(5)

    def test_order_above_max_rejected(self):
        with pytest.raises(OutOfMemoryError):
            make(max_order=5).alloc_order(6)

    def test_double_free_rejected(self):
        buddy = make()
        start = buddy.alloc_order(0)
        buddy.free(start)
        with pytest.raises(ConfigurationError):
            buddy.free(start)

    def test_free_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make().free(12345)

    def test_alloc_bytes_rounds_to_order(self):
        buddy = make()
        buddy.alloc_bytes(5 * KB)  # needs an order-1 block (8KB)
        assert buddy.free_frames() == buddy.total_frames - 2


class TestFreeAccounting:
    def test_free_frames_at_or_above(self):
        buddy = make(64 * MB, max_order=10)
        assert buddy.free_frames_at_or_above(10) == buddy.total_frames
        buddy.alloc_order(0)  # splits one top block down to order 0
        # The split leaves exactly one buddy free at each order 0..9.
        top = buddy.free_frames_at_or_above(10)
        assert top == buddy.total_frames - (1 << 10)

    def test_allocated_blocks_map(self):
        buddy = make()
        a = buddy.alloc_order(2)
        blocks = buddy.allocated_blocks()
        assert blocks[a] == 2
