"""Unit tests for result containers and speedup math (repro.sim.results)."""

import pytest

from repro.sim.results import (
    MemoryFootprintResult,
    PerformanceResult,
    format_table,
    geomean,
    speedup,
)


def make_perf(translation=100.0, os_cycles=0.0, failed=False, accesses=100):
    return PerformanceResult(
        workload="X",
        organization="radix",
        thp=False,
        accesses=accesses,
        base_cycles_per_access=10.0,
        translation_cycles=translation,
        l1_hits=0,
        l2_hits=0,
        walks=10,
        faults=1,
        pt_alloc_cycles=os_cycles,
        reinsert_cycles=0.0,
        l2p_exposed_cycles=0.0,
        fullscale_accesses=1000.0,
        failed=failed,
    )


class TestPerformanceResult:
    def test_cpa_composition(self):
        result = make_perf(translation=200.0, os_cycles=5000.0)
        assert result.translation_cpa() == 2.0
        assert result.os_cpa() == 5.0
        assert result.cycles_per_access() == 17.0

    def test_miss_rate(self):
        assert make_perf().tlb_miss_rate() == 0.1

    def test_zero_accesses_safe(self):
        result = make_perf(accesses=0)
        result.fullscale_accesses = 0.0
        assert result.translation_cpa() == 0.0
        assert result.os_cpa() == 0.0


class TestSpeedup:
    def test_faster_configuration(self):
        fast = make_perf(translation=0.0)
        slow = make_perf(translation=1000.0)
        assert speedup(fast, slow) == 2.0

    def test_failed_faster_is_zero(self):
        assert speedup(make_perf(failed=True), make_perf()) == 0.0

    def test_failed_baseline_is_inf(self):
        assert speedup(make_perf(), make_perf(failed=True)) == float("inf")


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_skips_zeros(self):
        assert geomean([0.0, 4.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0


class TestMemoryFootprintResult:
    def test_mean_moved_fraction_skips_idle_ways(self):
        result = MemoryFootprintResult(
            workload="X", organization="mehpt", thp=False,
            max_contiguous_bytes=1, total_pt_bytes=1, peak_pt_bytes=1,
            pt_alloc_cycles=0.0, pages_mapped_4k=0, pages_mapped_2m=0,
            moved_fractions_4k=[0.5, 0.0, 0.52],
        )
        assert result.mean_moved_fraction() == pytest.approx(0.51)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["App", "Value"], [["GUPS", "1"], ["BC", "22"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "App" in lines[2]
        assert all(len(line) >= 4 for line in lines[3:])
