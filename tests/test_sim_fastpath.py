"""Engine-equivalence tests for the vectorized fast path (repro.sim.fastpath).

The contract under test: for every organization, workload, warmup
fraction, chunk size and abort scenario, ``engine="vectorized"`` and
``engine="scalar"`` produce the *same* ``PerformanceResult`` — dataclass
equality, every field — and identical final TLB contents on clean runs.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.obs import ObservabilityConfig
from repro.sim.config import ENGINES, SimulationConfig
from repro.sim.simulator import TranslationSimulator
from repro.traces.format import TraceMeta, TraceReader, TraceWriter
from repro.traces.workload import TraceWorkload
from repro.workloads import get_workload

pytestmark = pytest.mark.fastpath

SCALE = 64


def run_engine(engine, org="mehpt", app="GUPS", n=6_000, warmup=0.0,
               thp=False, chunk=None, scale=SCALE, seed=3, **config_kw):
    workload = get_workload(app, scale=scale, seed=seed)
    config = SimulationConfig(
        organization=org, thp_enabled=thp, scale=scale, seed=seed,
        engine=engine, **config_kw,
    )
    sim = TranslationSimulator(
        workload, config, trace_length=n, warmup_fraction=warmup,
        engine_chunk=chunk,
    )
    result = sim.run()
    return result, sim.system


def tlb_contents(system):
    tlb = system.tlb
    return {
        (level, size): [list(s) for s in t._sets]
        for level, group in (("l1", tlb.l1), ("l2", tlb.l2))
        for size, t in group.items()
    }


class TestEngineEquivalence:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        org=st.sampled_from(["radix", "ecpt", "mehpt"]),
        thp=st.booleans(),
        warmup=st.sampled_from([0.0, 0.25, 0.617]),
        chunk=st.sampled_from([1, 257, 4096, None]),
        app=st.sampled_from(["GUPS", "TC"]),
        seed=st.integers(0, 2**16),
    )
    def test_results_bit_identical(self, org, thp, warmup, chunk, app, seed):
        scalar, s_sys = run_engine(
            "scalar", org=org, app=app, thp=thp, warmup=warmup,
            chunk=chunk, seed=seed,
        )
        vector, v_sys = run_engine(
            "vectorized", org=org, app=app, thp=thp, warmup=warmup,
            chunk=chunk, seed=seed,
        )
        assert scalar == vector
        assert tlb_contents(s_sys) == tlb_contents(v_sys)

    @pytest.mark.parametrize("chunk", [257, 1024, None])
    def test_aborted_run_bit_identical(self, chunk):
        # ecpt at fmfi 0.75 hits the paper's contiguous-allocation
        # failure mid-trace; the prefix accounting must match exactly.
        scalar, _ = run_engine(
            "scalar", org="ecpt", scale=512, n=30_000, warmup=0.1,
            chunk=chunk, fmfi=0.75,
        )
        vector, _ = run_engine(
            "vectorized", org="ecpt", scale=512, n=30_000, warmup=0.1,
            chunk=chunk, fmfi=0.75,
        )
        assert scalar.failed and vector.failed
        assert scalar == vector

    def test_invariant_checks_run_in_vectorized_mode(self):
        scalar, _ = run_engine("scalar", invariant_check_every=777)
        vector, _ = run_engine("vectorized", invariant_check_every=777)
        assert scalar == vector

    def test_invariant_cadence_below_chunk_size(self):
        # Satellite of PR 7: several checkpoints per chunk, with demand
        # faults landing between them (warmup-free GUPS faults heavily
        # early on).  The vectorized engine catches checks up lazily —
        # before each miss and at chunk end — which must not change any
        # result of a completed run.
        for every in (3, 64, 100):
            scalar, _ = run_engine(
                "scalar", n=3_000, chunk=512, invariant_check_every=every,
            )
            vector, _ = run_engine(
                "vectorized", n=3_000, chunk=512, invariant_check_every=every,
            )
            assert scalar == vector


class TestAbortWarmupBoundary:
    """Satellite of PR 7: the abort path's warmup-snapshot condition.

    The clean path closes the warmup window when ``boundary < base + n``;
    the abort path uses ``boundary < base + aborted_at`` because the
    aborting access never completes (``events_done`` excludes it).  Pin
    scalar/vectorized equivalence with the boundary placed exactly at,
    just before, and just after the aborting access.
    """

    N = 30_000

    @pytest.fixture(scope="class")
    def abort_index(self):
        result, _ = run_engine(
            "scalar", org="ecpt", scale=512, n=self.N, fmfi=0.75, warmup=0.0,
        )
        assert result.failed
        # events_done == index of the aborting access (it never
        # completes); with warmup 0, accesses == events_done * repeats.
        repeats = max(
            1, get_workload("GUPS", scale=512, seed=3).spec.pattern.page_repeats
        )
        assert result.accesses % repeats == 0
        return result.accesses // repeats

    @pytest.mark.parametrize("delta", [-2, -1, 0, 1, 2])
    def test_abort_straddles_warmup_boundary(self, abort_index, delta):
        # warmup_events = int(frac * N); choose frac to land the warmup
        # boundary (warmup_events - 1) at abort_index + delta.
        warmup_events = abort_index + delta + 1
        if not 0 < warmup_events < self.N:
            pytest.skip("boundary out of range for this trace")
        frac = (warmup_events + 0.5) / self.N
        scalar, _ = run_engine(
            "scalar", org="ecpt", scale=512, n=self.N, fmfi=0.75,
            warmup=frac,
        )
        vector, _ = run_engine(
            "vectorized", org="ecpt", scale=512, n=self.N, fmfi=0.75,
            warmup=frac,
        )
        assert scalar.failed and vector.failed
        assert scalar == vector

    @pytest.mark.parametrize("chunk", [64, 257])
    def test_abort_boundary_with_small_chunks(self, abort_index, chunk):
        # Same straddle with the abort mid-chunk rather than in the
        # first chunk, exercising the base-relative index arithmetic.
        warmup_events = abort_index  # boundary one before the abort
        frac = (warmup_events + 0.5) / self.N
        scalar, _ = run_engine(
            "scalar", org="ecpt", scale=512, n=self.N, fmfi=0.75,
            warmup=frac, chunk=chunk,
        )
        vector, _ = run_engine(
            "vectorized", org="ecpt", scale=512, n=self.N, fmfi=0.75,
            warmup=frac, chunk=chunk,
        )
        assert scalar.failed and vector.failed
        assert scalar == vector


class TestEngineSelection:
    def test_engine_validated(self):
        assert SimulationConfig(engine="auto").engine == "auto"
        with pytest.raises(ConfigurationError):
            SimulationConfig(engine="turbo")
        assert "vectorized" in ENGINES

    def test_auto_prefers_vectorized(self):
        assert SimulationConfig().resolve_engine() == "vectorized"
        assert SimulationConfig(engine="scalar").resolve_engine() == "scalar"

    def test_tracing_composes_with_vectorized(self):
        # Tracing no longer forces the scalar loop (PR 7): the batched
        # engine synthesizes the per-access event stream itself.
        traced = SimulationConfig(obs=ObservabilityConfig(trace_buffer=64))
        assert traced.resolve_engine() == "vectorized"
        metrics_only = SimulationConfig(obs=ObservabilityConfig())
        assert metrics_only.resolve_engine() == "vectorized"

    def test_vectorized_with_tracing_accepted(self):
        config = SimulationConfig(
            engine="vectorized", obs=ObservabilityConfig(trace_buffer=64),
        )
        assert config.resolve_engine() == "vectorized"
        result, _ = run_engine(
            "vectorized", n=2_000, obs=ObservabilityConfig(trace_buffer=256),
        )
        assert result.accesses > 0

    def test_traced_auto_run_enters_fastpath(self, monkeypatch):
        import repro.sim.fastpath as fastpath

        entered = []
        real = fastpath.run_vectorized

        def spy(*args, **kwargs):
            entered.append(True)
            return real(*args, **kwargs)

        monkeypatch.setattr(fastpath, "run_vectorized", spy)
        result, _ = run_engine(
            "auto", n=2_000, obs=ObservabilityConfig(trace_buffer=256),
        )
        assert result.accesses > 0
        assert entered

    def test_engine_chunk_validated(self):
        workload = get_workload("GUPS", scale=SCALE)
        with pytest.raises(ConfigurationError):
            TranslationSimulator(
                workload, SimulationConfig(scale=SCALE), engine_chunk=0
            )


class TestObservabilityEquivalence:
    def test_metrics_snapshots_match_across_engines(self):
        scalar, _ = run_engine(
            "scalar", n=4_000, obs=ObservabilityConfig(metrics=True),
        )
        vector, _ = run_engine(
            "vectorized", n=4_000, obs=ObservabilityConfig(metrics=True),
        )
        assert scalar.metrics == vector.metrics
        assert scalar == vector

    def test_clock_skip_does_not_change_results(self):
        # The scalar loop only advances the sim-cycle clock when a trace
        # sink is attached; a traced run must still compute the same
        # performance numbers as an untraced one.
        plain, _ = run_engine("scalar", n=4_000)
        traced, _ = run_engine(
            "scalar", n=4_000,
            obs=ObservabilityConfig(metrics=False, trace_buffer=100_000),
        )
        assert plain == traced


class TestChunkedTraceFeeds:
    @pytest.mark.parametrize("chunk_values", [1, 100, 4096, 65536])
    def test_workload_chunks_concatenate_to_trace(self, chunk_values):
        workload = get_workload("TC", scale=SCALE)
        whole = workload.trace(5_000)
        parts = list(get_workload("TC", scale=SCALE).trace_chunks(
            5_000, chunk_values=chunk_values,
        ))
        assert all(p.size == chunk_values for p in parts[:-1])
        assert np.array_equal(np.concatenate(parts), whole)

    def test_chunk_values_validated(self):
        workload = get_workload("TC", scale=SCALE)
        with pytest.raises(ConfigurationError):
            next(workload.trace_chunks(100, chunk_values=0))

    def test_reader_window_matches_read(self, tmp_path):
        path = str(tmp_path / "t.vpt")
        rng = np.random.default_rng(5)
        with TraceWriter(path, meta=TraceMeta(), chunk_values=64) as writer:
            writer.append(rng.integers(0, 1 << 30, size=500))
        with TraceReader(path) as reader:
            whole = reader.read(300)
        with TraceReader(path) as reader:
            parts = list(reader.iter_window(300))
        assert np.array_equal(np.concatenate(parts), whole)
        with TraceReader(path) as reader:
            looped = reader.read(1200, loop=True)
        with TraceReader(path) as reader:
            looped_parts = list(reader.iter_window(1200, loop=True))
        assert np.array_equal(np.concatenate(looped_parts), looped)

    def test_reader_window_validates_like_read(self, tmp_path):
        path = str(tmp_path / "t.vpt")
        with TraceWriter(path, meta=TraceMeta()) as writer:
            writer.append(np.arange(10, dtype=np.int64))
        with TraceReader(path) as reader:
            with pytest.raises(ConfigurationError):
                list(reader.iter_window(11))
            with pytest.raises(ConfigurationError):
                list(reader.iter_window(-1))


class TestTraceReplayStreaming:
    def make_trace(self, path, total, chunk=65_536):
        # Synthesize a trace directly through the writer (the generator's
        # burst loop would dominate the test's runtime).  The 512-page
        # footprint fits the L2 TLB, keeping the replay hit-dominated.
        meta = TraceMeta(scale=SCALE, seed=9)
        rng = np.random.default_rng(9)
        with TraceWriter(path, meta=meta, chunk_values=chunk) as writer:
            remaining = total
            while remaining:
                n = min(chunk, remaining)
                writer.append(rng.integers(0, 512, size=n).astype(np.int64))
                remaining -= n

    def test_replay_engines_agree(self, tmp_path):
        path = str(tmp_path / "r.vpt")
        self.make_trace(path, 50_000)
        results = {}
        for engine in ("scalar", "vectorized"):
            config = SimulationConfig(
                organization="mehpt", scale=SCALE, engine=engine,
            )
            sim = TranslationSimulator(
                TraceWorkload(path), config, trace_length=50_000,
            )
            results[engine] = sim.run()
        assert results["scalar"] == results["vectorized"]

    def test_large_replay_streams_without_materializing(self, tmp_path):
        # 4M records would be ~32MB as one int64 array (and far more as
        # a Python list); the streaming replay must stay under 20MB.
        total = 4_000_000
        path = str(tmp_path / "big.vpt")
        self.make_trace(path, total)
        config = SimulationConfig(
            organization="mehpt", scale=SCALE, engine="vectorized",
        )
        sim = TranslationSimulator(
            TraceWorkload(path), config, trace_length=total,
        )
        tracemalloc.start()
        result = sim.run()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert not result.failed
        assert result.accesses == total
        assert peak < 20 * 1024 * 1024, f"peak {peak / 1e6:.1f} MB"
        with TraceReader(path) as reader:
            assert reader.total_values == total  # really 4M records on disk
