"""Integration: structural traces through the full translation stack."""

import numpy as np

from repro.core.mehpt import MeHptPageTables
from repro.core.walker import MeHptWalker
from repro.kernel.address_space import AddressSpace
from repro.mem.allocator import CostModelAllocator
from repro.mem.cache import CacheHierarchy
from repro.mmu.hierarchy import TlbHierarchy
from repro.workloads.graph import SyntheticGraph
from repro.workloads.kernels import GupsKernel


def drive(trace: np.ndarray, base_vpn: int, span: int):
    tables = MeHptPageTables(CostModelAllocator(fmfi=0.3))
    walker = MeHptWalker(tables, CacheHierarchy())
    aspace = AddressSpace(tables, fmfi=0.3, charge_data_alloc=False)
    aspace.add_vma(base_vpn, span, "data")
    tlb = TlbHierarchy(walker)
    for vpn in trace:
        vpn = int(vpn)
        outcome = tlb.translate(vpn)
        if outcome.level == "fault":
            fault = aspace.handle_fault(vpn)
            tlb.fill(vpn, fault.page_size)
    return tables, tlb, aspace


class TestStructuralThroughStack:
    def test_graph_traversal_end_to_end(self):
        graph = SyntheticGraph(nodes=20_000, seed=4)
        trace = graph.bfs_trace(10_000)
        tables, tlb, aspace = drive(trace, graph.base_vpn, graph.span_pages())
        # Every traced page is mapped and translatable afterwards.
        for vpn in np.unique(trace)[::37]:
            assert tables.translate(int(vpn)) is not None
        # Demand paging touched only traced pages.
        assert aspace.totals.faults == len(np.unique(trace))
        assert tlb.translations == len(trace)

    def test_locality_ordering_emerges(self):
        """A real traversal must show better TLB locality than pure
        random access over a comparable footprint."""
        graph = SyntheticGraph(nodes=50_000, seed=4)
        bfs = graph.bfs_trace(12_000)
        _t, tlb_bfs, _a = drive(bfs, graph.base_vpn, graph.span_pages())
        gups = GupsKernel(table_pages=graph.span_pages())
        _t, tlb_gups, _a = drive(
            gups.trace(12_000), gups.base_vpn, graph.span_pages()
        )
        assert tlb_bfs.miss_rate() < tlb_gups.miss_rate()

    def test_tables_consistent_after_structural_run(self):
        graph = SyntheticGraph(nodes=10_000, seed=6)
        tables, _tlb, _a = drive(
            graph.triangle_trace(8_000), graph.base_vpn, graph.span_pages()
        )
        tables.tables["4K"].table.check_invariants()
