"""FaultSpec / FaultPlan construction-time validation and round-trips.

Bad parameters must be rejected at construction with the same error
quality as ``unknown fault site`` — not surface later as silent
no-fires or TypeErrors mid-sweep.  The dict round-trip is what the fuzz
corpus uses to embed fault plans in scenario JSON.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.faults.plan import (
    SITE_CHUNK_ALLOC,
    SITE_CONTIGUOUS_ALLOC,
    FaultPlan,
    FaultSpec,
)

pytestmark = pytest.mark.faults


class TestFaultSpecValidation:
    def test_unknown_site(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            FaultSpec("coffee_machine", every=2)

    @pytest.mark.parametrize("kwargs", [
        {"every": True},
        {"every": 2, "max_failures": False},
        {"every": 2, "min_bytes": True},
        {"every": 2.5},
    ])
    def test_bool_or_float_counts_rejected(self, kwargs):
        with pytest.raises(ConfigurationError, match="integer count"):
            FaultSpec(SITE_CHUNK_ALLOC, **kwargs)

    def test_bool_probability_rejected(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSpec(SITE_CHUNK_ALLOC, probability=True)

    def test_bool_fmfi_above_rejected(self):
        with pytest.raises(ConfigurationError, match="fmfi_above"):
            FaultSpec(SITE_CHUNK_ALLOC, every=2, fmfi_above=False)

    def test_fmfi_above_one_can_never_fire(self):
        with pytest.raises(ConfigurationError, match="can never fire"):
            FaultSpec(SITE_CHUNK_ALLOC, every=2, fmfi_above=1.0)

    def test_negative_min_bytes(self):
        with pytest.raises(ConfigurationError, match="min_bytes"):
            FaultSpec(SITE_CHUNK_ALLOC, every=2, min_bytes=-1)

    def test_every_and_probability_exclusive(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            FaultSpec(SITE_CHUNK_ALLOC, every=2, probability=0.5)
        with pytest.raises(ConfigurationError, match="exactly one"):
            FaultSpec(SITE_CHUNK_ALLOC)

    def test_probability_out_of_range(self):
        with pytest.raises(ConfigurationError, match="in \\[0, 1\\]"):
            FaultSpec(SITE_CHUNK_ALLOC, probability=1.5)


class TestFaultSpecRoundTrip:
    def test_to_dict_from_dict_identity(self):
        spec = FaultSpec(
            SITE_CONTIGUOUS_ALLOC, every=3, max_failures=7,
            min_bytes=2 * 1024 * 1024, fmfi_above=0.5,
        )
        clone = FaultSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        raw = FaultSpec(SITE_CHUNK_ALLOC, every=2).to_dict()
        raw["frequency"] = 9
        with pytest.raises(ConfigurationError, match="unknown fault spec field"):
            FaultSpec.from_dict(raw)

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigurationError, match="must be a dict"):
            FaultSpec.from_dict([("site", SITE_CHUNK_ALLOC)])

    def test_from_dict_revalidates(self):
        raw = FaultSpec(SITE_CHUNK_ALLOC, every=2).to_dict()
        raw["every"] = -1
        with pytest.raises(ConfigurationError, match="every"):
            FaultSpec.from_dict(raw)


class TestFaultPlanValidation:
    def test_non_spec_entries_rejected(self):
        with pytest.raises(ConfigurationError, match="is not a FaultSpec"):
            FaultPlan([{"site": SITE_CHUNK_ALLOC, "every": 2}])

    def test_bool_seed_rejected(self):
        with pytest.raises(ConfigurationError, match="seed"):
            FaultPlan([], seed=True)

    def test_min_bytes_gates_opportunity_counting(self):
        # Requests below the gate are not opportunities: the counter
        # only advances on eligible requests, so the firing schedule is
        # a function of *eligible* traffic.
        plan = FaultPlan(
            [FaultSpec(SITE_CONTIGUOUS_ALLOC, every=2, min_bytes=1024)]
        )
        assert plan.decide(SITE_CONTIGUOUS_ALLOC, nbytes=512) is None
        assert plan.opportunities() == 0
        assert plan.decide(SITE_CONTIGUOUS_ALLOC, nbytes=2048) is None
        assert plan.decide(SITE_CONTIGUOUS_ALLOC, nbytes=2048) is not None
        assert plan.fired() == 1
