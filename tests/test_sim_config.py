"""Unit tests for simulation configuration (repro.sim.config)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import KB, MB
from repro.core.mehpt import MeHptPageTables
from repro.ecpt.tables import EcptPageTables
from repro.radix.table import RadixPageTable
from repro.sim.config import SimulationConfig, table3_parameters
from repro.workloads import get_workload


class TestValidation:
    def test_unknown_organization(self):
        with pytest.raises(ConfigurationError) as info:
            SimulationConfig(organization="hash_trie")
        assert info.value.context["field"] == "organization"

    def test_scale_power_of_two(self):
        with pytest.raises(ConfigurationError) as info:
            SimulationConfig(scale=3)
        assert info.value.context["field"] == "scale"

    @pytest.mark.parametrize("fmfi", [-0.1, 1.0, 1.5])
    def test_fmfi_must_be_in_unit_interval(self, fmfi):
        with pytest.raises(ConfigurationError) as info:
            SimulationConfig(fmfi=fmfi)
        assert info.value.context["field"] == "fmfi"
        assert info.value.context["value"] == fmfi

    def test_fmfi_boundaries_accepted(self):
        SimulationConfig(fmfi=0.0)
        SimulationConfig(fmfi=0.99)

    def test_invariant_check_every_nonnegative(self):
        with pytest.raises(ConfigurationError) as info:
            SimulationConfig(invariant_check_every=-1)
        assert info.value.context["field"] == "invariant_check_every"

    def test_trace_length_must_be_positive(self):
        from repro.sim.simulator import TranslationSimulator
        from repro.workloads import get_workload

        config = SimulationConfig(organization="mehpt", scale=64)
        workload = get_workload("TC", scale=64)
        with pytest.raises(ConfigurationError) as info:
            TranslationSimulator(workload, config, trace_length=0)
        assert info.value.context["field"] == "trace_length"


class TestScaledParameters:
    def test_initial_slots_scale(self):
        assert SimulationConfig(scale=1).scaled_initial_slots() == 128
        assert SimulationConfig(scale=16).scaled_initial_slots() == 8
        assert SimulationConfig(scale=64).scaled_initial_slots() == 4  # floor

    def test_ladder_scales(self):
        ladder = SimulationConfig(scale=16).scaled_ladder()
        assert ladder.sizes[0] == 8 * KB // 16
        assert ladder.sizes[1] == 1 * MB // 16

    def test_ladder_floor_dedupes(self):
        # At very large scales, small rungs collapse to the 64B floor.
        ladder = SimulationConfig(scale=1024).scaled_ladder()
        assert ladder.sizes[0] == 64
        assert len(ladder.sizes) == len(set(ladder.sizes))


class TestBuild:
    @pytest.mark.parametrize(
        "org,table_type",
        [("radix", RadixPageTable), ("ecpt", EcptPageTables), ("mehpt", MeHptPageTables)],
    )
    def test_builds_each_organization(self, org, table_type):
        config = SimulationConfig(organization=org, scale=64)
        system = config.build(get_workload("TC", scale=64))
        assert isinstance(system.page_tables, table_type)
        assert system.tlb.walker is system.walker

    def test_vmas_installed(self):
        config = SimulationConfig(organization="mehpt", scale=64)
        workload = get_workload("TC", scale=64)
        system = config.build(workload)
        assert system.address_space.total_vma_pages() == workload.span_pages

    def test_thp_coverage_wired_from_workload(self):
        config = SimulationConfig(organization="mehpt", scale=64, thp_enabled=True)
        system = config.build(get_workload("GUPS", scale=64))
        assert system.address_space.thp.enabled
        assert system.address_space.thp.coverage == 1.0

    def test_ablation_flags_reach_tables(self):
        config = SimulationConfig(organization="mehpt", scale=64, enable_inplace=False)
        system = config.build(get_workload("TC", scale=64))
        assert not system.page_tables.tables["4K"].table.inplace_enabled

    def test_cache_scaling_flag(self):
        scaled = SimulationConfig(scale=32).build_cache_hierarchy()
        unscaled = SimulationConfig(
            scale=32, scale_cache_with_footprint=False
        ).build_cache_hierarchy()
        assert scaled.levels[0].num_sets < unscaled.levels[0].num_sets


class TestTable3Dump:
    def test_headline_parameters_present(self):
        params = table3_parameters()
        assert "L2P table" in params
        assert "0.6 upsize" in params["HPT occupancy thresholds"]
        assert "0.7 FMFI" in params["Memory fragmentation"]
