"""Unit tests for the context-switch model (repro.kernel.context)."""

from repro.core.l2p import L2PTable
from repro.kernel.context import ContextSwitchModel


class TestContextSwitchModel:
    def test_non_mehpt_pays_base_only(self):
        model = ContextSwitchModel(base_cycles=1000)
        assert model.switch_cost(None, None) == 1000

    def test_l2p_cost_scales_with_usage(self):
        model = ContextSwitchModel(base_cycles=1000, l2p_entry_cycles=4)
        out = L2PTable()
        out.subtable(0, "4K").reserve(50)
        incoming = L2PTable()
        incoming.subtable(1, "2M").reserve(10)
        cost = model.switch_cost(out, incoming)
        assert cost == 1000 + 50 * 4 + 10 * 4

    def test_virtualized_guest_skips_l2p(self):
        """Section V-C: no guest L2P tables; host table not switched."""
        model = ContextSwitchModel(base_cycles=1000, virtualized=True)
        l2p = L2PTable()
        l2p.subtable(0, "4K").reserve(64)
        assert model.switch_cost(l2p, l2p) == 1000

    def test_statistics(self):
        model = ContextSwitchModel(base_cycles=100)
        model.switch_cost(None, None)
        model.switch_cost(None, None)
        assert model.switches == 2
        assert model.mean_cost() == 100

    def test_paper_average_usage_is_cheap(self):
        # 53 entries on average (Section V-C) -> few hundred cycles.
        model = ContextSwitchModel(base_cycles=1500, l2p_entry_cycles=4)
        l2p = L2PTable()
        l2p.subtable(0, "4K").reserve(53)
        overhead = model.switch_cost(l2p, None) - 1500
        assert overhead == 53 * 4
        assert overhead < 500
