"""Unit tests for the context-switch model (repro.kernel.context)."""

from repro.core.l2p import L2PTable
from repro.kernel.context import ContextSwitchModel
from repro.sim.config import SimulationConfig
from repro.sim.datacenter import DatacenterParams, DatacenterSimulator
from repro.sim.multiprocess import MultiProcessSimulator


class TestContextSwitchModel:
    def test_non_mehpt_pays_base_only(self):
        model = ContextSwitchModel(base_cycles=1000)
        assert model.switch_cost(None, None) == 1000

    def test_l2p_cost_scales_with_usage(self):
        model = ContextSwitchModel(base_cycles=1000, l2p_entry_cycles=4)
        out = L2PTable()
        out.subtable(0, "4K").reserve(50)
        incoming = L2PTable()
        incoming.subtable(1, "2M").reserve(10)
        cost = model.switch_cost(out, incoming)
        assert cost == 1000 + 50 * 4 + 10 * 4

    def test_virtualized_guest_skips_l2p(self):
        """Section V-C: no guest L2P tables; host table not switched."""
        model = ContextSwitchModel(base_cycles=1000, virtualized=True)
        l2p = L2PTable()
        l2p.subtable(0, "4K").reserve(64)
        assert model.switch_cost(l2p, l2p) == 1000

    def test_statistics(self):
        model = ContextSwitchModel(base_cycles=100)
        model.switch_cost(None, None)
        model.switch_cost(None, None)
        assert model.switches == 2
        assert model.mean_cost() == 100

    def test_paper_average_usage_is_cheap(self):
        # 53 entries on average (Section V-C) -> few hundred cycles.
        model = ContextSwitchModel(base_cycles=1500, l2p_entry_cycles=4)
        l2p = L2PTable()
        l2p.subtable(0, "4K").reserve(53)
        overhead = model.switch_cost(l2p, None) - 1500
        assert overhead == 53 * 4
        assert overhead < 500


class TestSwitchAccountingInSchedulers:
    """The model's counters against the schedulers that drive it."""

    def test_multiprocess_charges_save_and_restore(self):
        model = ContextSwitchModel(base_cycles=1000, l2p_entry_cycles=4)
        config = SimulationConfig(organization="mehpt", scale=512, seed=7)
        sim = MultiProcessSimulator(
            ["GUPS", "GUPS"], config, trace_length=1_200, quantum=400,
            switch_model=model,
        )
        result = sim.run()
        assert result.switches == model.switches > 0
        # Every switch between live ME-HPT processes saves the outgoing
        # L2P and restores the incoming one; the per-switch surcharge
        # over base_cycles is exactly what the result attributes to L2P.
        assert result.switch_cycles == (
            model.switches * 1000 + result.l2p_switch_cycles
        )
        assert result.l2p_switch_cycles > 0
        assert result.mean_l2p_entries > 0
        assert result.to_dict()["switches"] == result.switches

    def test_datacenter_churn_deterministic_across_seeds(self):
        def run(seed):
            config = SimulationConfig(
                organization="mehpt", scale=512, seed=seed
            )
            params = DatacenterParams(
                sockets=2, processes=3, policy="migrate", quantum=400,
                churn_every=2, max_forks=4, rebalance_every=2, pool_mb=16,
            )
            return DatacenterSimulator(
                ["GUPS"], config, params=params, trace_length=1_200
            ).run()

        a, b, c = run(7), run(7), run(11)
        # Same seed: the whole fork/exec/exit schedule and every counter
        # replays identically.  A different seed runs to completion too
        # (determinism is per-seed, not a constant outcome).
        assert a.to_dict() == b.to_dict()
        assert a.forks > 0 and a.exits > a.forks - 1
        assert not c.failed
        assert c.to_dict() != a.to_dict()
