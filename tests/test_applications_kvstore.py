"""Unit tests for the ME key-value store (repro.applications.kvstore)."""

from repro.applications.kvstore import MemEfficientKVStore
from repro.mem.allocator import CostModelAllocator


class TestMappingSemantics:
    def test_put_get(self):
        store = MemEfficientKVStore()
        store.put("alpha", 1)
        store.put("beta", {"x": 2})
        assert store.get("alpha") == 1
        assert store.get("beta") == {"x": 2}
        assert store.get("gamma") is None
        assert store.get("gamma", default=-1) == -1

    def test_update(self):
        store = MemEfficientKVStore()
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2
        assert len(store) == 1

    def test_delete(self):
        store = MemEfficientKVStore()
        store.put("k", 1)
        assert store.delete("k")
        assert "k" not in store
        assert not store.delete("k")

    def test_contains(self):
        store = MemEfficientKVStore()
        store.put("here", 0)
        assert "here" in store
        assert "gone" not in store

    def test_items_roundtrip(self):
        store = MemEfficientKVStore()
        expected = {f"key-{i}": i for i in range(500)}
        for key, value in expected.items():
            store.put(key, value)
        assert dict(store.items()) == expected


class TestElasticity:
    def test_grows_under_load(self):
        store = MemEfficientKVStore(initial_slots=16)
        for i in range(5000):
            store.put(f"item-{i}", i)
        assert len(store) == 5000
        for i in range(0, 5000, 101):
            assert store.get(f"item-{i}") == i

    def test_contiguous_need_bounded_by_chunk(self):
        allocator = CostModelAllocator(fmfi=0.3)
        store = MemEfficientKVStore(
            initial_slots=16, chunk_bytes=8 * 1024, allocator=allocator
        )
        for i in range(20000):
            store.put(f"item-{i}", i)
        assert allocator.stats.max_contiguous_bytes <= 8 * 1024
        assert store.max_contiguous_bytes() == 8 * 1024

    def test_peak_close_to_final(self):
        """In-place resizing: peak memory ~= final memory, not 1.5x."""
        store = MemEfficientKVStore(initial_slots=16)
        for i in range(5000):
            store.put(f"item-{i}", i)
        assert store.peak_bytes() <= store.total_bytes() * 1.26

    def test_occupancy_and_kicks_reported(self):
        store = MemEfficientKVStore(initial_slots=16)
        for i in range(1000):
            store.put(f"item-{i}", i)
        assert 0.0 < store.occupancy() <= 1.0
        assert store.mean_kicks() >= 0.0
