"""Unit tests for Cuckoo Walk Tables and Caches (repro.ecpt.cwt)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.ecpt.cwt import CuckooWalkCache, CuckooWalkTable


class TestCuckooWalkTable:
    def test_region_granularity(self):
        pmd = CuckooWalkTable("pmd")
        pmd.add(0, "4K")
        assert pmd.sizes_for(511) == frozenset(["4K"])  # same 2MB region
        assert pmd.sizes_for(512) == frozenset()

    def test_pud_granularity(self):
        pud = CuckooWalkTable("pud")
        pud.add(0, "1G")
        assert pud.sizes_for((1 << 18) - 1) == frozenset(["1G"])
        assert pud.sizes_for(1 << 18) == frozenset()

    def test_add_reports_set_changes(self):
        cwt = CuckooWalkTable("pmd")
        assert cwt.add(0, "4K") is True
        assert cwt.add(1, "4K") is False  # refcount bump only
        assert cwt.add(2, "2M") is True

    def test_remove_refcounting(self):
        cwt = CuckooWalkTable("pmd")
        cwt.add(0, "4K")
        cwt.add(1, "4K")
        assert cwt.remove(0, "4K") is False  # one 4K mapping remains
        assert cwt.remove(1, "4K") is True
        assert cwt.sizes_for(0) == frozenset()

    def test_underflow_rejected(self):
        cwt = CuckooWalkTable("pmd")
        with pytest.raises(ConfigurationError):
            cwt.remove(0, "4K")

    def test_unknown_granularity(self):
        with pytest.raises(ConfigurationError):
            CuckooWalkTable("pgd")

    def test_line_addr_clusters_regions(self):
        cwt = CuckooWalkTable("pmd")
        assert cwt.line_addr(0) == cwt.line_addr(512 * 7)  # regions 0..7
        assert cwt.line_addr(0) != cwt.line_addr(512 * 8)

    def test_region_count(self):
        cwt = CuckooWalkTable("pmd")
        cwt.add(0, "4K")
        cwt.add(512, "4K")
        assert len(cwt) == 2


class TestCuckooWalkCache:
    def make(self, entries=2):
        cwt = CuckooWalkTable("pmd")
        return cwt, CuckooWalkCache(cwt, entries=entries)

    def test_miss_then_hit(self):
        _cwt, cwc = self.make()
        assert cwc.lookup(0) is None
        cwc.fill(0, frozenset(["4K"]))
        assert cwc.lookup(100) == frozenset(["4K"])  # same region

    def test_lru_eviction(self):
        _cwt, cwc = self.make(entries=2)
        cwc.fill(0 * 512, frozenset(["4K"]))
        cwc.fill(1 * 512, frozenset(["4K"]))
        cwc.fill(2 * 512, frozenset(["4K"]))
        assert cwc.lookup(0) is None

    def test_invalidate(self):
        _cwt, cwc = self.make()
        cwc.fill(0, frozenset(["4K"]))
        cwc.invalidate(0)
        assert cwc.lookup(0) is None

    def test_fill_updates_existing(self):
        _cwt, cwc = self.make()
        cwc.fill(0, frozenset(["4K"]))
        cwc.fill(0, frozenset(["4K", "2M"]))
        assert cwc.lookup(0) == frozenset(["4K", "2M"])

    def test_hit_rate(self):
        _cwt, cwc = self.make()
        cwc.lookup(0)
        cwc.fill(0, frozenset())
        cwc.lookup(0)
        assert cwc.hit_rate() == 0.5
