"""Property-based tests for fault injection and rollback.

Hypothesis drives (a) random alloc/free sequences through the buddy
allocator — with and without injected transient failures — checking the
structural invariants after every operation, and (b) random partial
gradual resizes that are then rolled back, checking the rollback leaves
the table indistinguishable (to lookups and invariants) from one that
never resized.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import ContiguousAllocationError, OutOfMemoryError
from repro.common.units import PAGE_4K
from repro.faults import (
    SITE_CHUNK_ALLOC,
    DegradationLog,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
)
from repro.hashing.storage import ContiguousStorage
from repro.mem.allocator import BuddyBackedAllocator
from repro.mem.buddy import BuddyAllocator
from tests.conftest import make_chunked_table, make_contiguous_table

pytestmark = pytest.mark.faults

#: (op, size_exponent) — op >= 0 allocates 2**op frames, -1 frees the oldest.
OPS = st.lists(st.integers(min_value=-1, max_value=4), min_size=1, max_size=120)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_buddy_invariants_hold_under_random_ops(ops):
    buddy = BuddyAllocator(256 * PAGE_4K, max_order=6)
    live = []
    for op in ops:
        if op < 0:
            if live:
                buddy.free(live.pop(0))
        else:
            try:
                live.append(buddy.alloc_order(op))
            except OutOfMemoryError:
                pass
        buddy.check_invariants()
    for start in live:
        buddy.free(start)
    buddy.check_invariants()
    assert buddy.free_frames() == buddy.total_frames


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS, seed=st.integers(0, 50))
def test_buddy_backed_allocator_survives_injected_faults(ops, seed):
    """Transient faults plus real exhaustion: after recovery or abort the
    buddy state stays structurally sound and the stats stay consistent."""
    plan = FaultPlan(
        [FaultSpec(SITE_CHUNK_ALLOC, probability=0.3, max_failures=20)],
        seed=seed,
    )
    log = DegradationLog()
    alloc = BuddyBackedAllocator(
        BuddyAllocator(128 * PAGE_4K, max_order=5),
        fault_plan=plan,
        recovery=RecoveryPolicy(max_retries=1, backoff_base_cycles=10.0),
        degradation=log,
    )
    live = []
    for op in ops:
        if op < 0:
            if live:
                alloc.free(live.pop(0))
        else:
            try:
                live.append(alloc.alloc((1 << op) * PAGE_4K))
            except (OutOfMemoryError, ContiguousAllocationError):
                pass
        alloc.buddy.check_invariants()
    assert alloc.stats.allocations == len(live) + alloc.stats.frees
    assert alloc.stats.cycles >= log.recovery_cycles
    for start in live:
        alloc.free(start)
    alloc.buddy.check_invariants()
    assert alloc.buddy.free_frames() == alloc.buddy.total_frames


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(min_value=0, max_value=60),
    way_index=st.integers(min_value=0, max_value=2),
    rehash_steps=st.integers(min_value=0, max_value=40),
    seed=st.integers(0, 20),
    chunked=st.booleans(),
)
def test_rollback_after_partial_rehash_is_invisible(
    n, way_index, rehash_steps, seed, chunked
):
    """Start an out-of-place upsize, rehash an arbitrary prefix, roll it
    back: geometry restored, count conserved, every key still resolvable."""
    maker = make_chunked_table if chunked else make_contiguous_table
    table = maker(initial_slots=16, seed=seed)
    keys = [0x2000 + i * 16 for i in range(n)]
    for key in keys:
        table.insert(key, key ^ 0xFF)
    way = table.ways[way_index]
    if way.resizing:
        table.drain_way(way)
    count_before = table.count
    if chunked:
        started_inplace = way.storage.extend_to(way.size * 2)
        new_storage = None if started_inplace else ContiguousStorage(way.size * 2)
    else:
        new_storage = ContiguousStorage(way.size * 2)
    way.begin_resize(way.size * 2, new_storage)
    table.maintenance(steps=rehash_steps)
    # Enough steps may finish the resize first; rollback is then a no-op.
    finished = not way.resizing
    table.rollback_resize(way)
    assert not way.resizing
    assert way.rollbacks == (0 if finished else 1)
    assert table.count == count_before
    table.check_invariants()
    for key in keys:
        assert table.lookup(key) == key ^ 0xFF
