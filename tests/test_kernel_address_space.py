"""Unit tests for address spaces and fault handling (repro.kernel.address_space)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.mehpt import MeHptPageTables
from repro.ecpt.tables import EcptPageTables
from repro.kernel.address_space import AddressSpace, SegmentationFault, Vma
from repro.kernel.thp import PAGES_PER_2M, ThpPolicy
from repro.mem.allocator import CostModelAllocator
from repro.radix.table import RadixPageTable


def make_aspace(tables=None, thp=None, **kwargs):
    tables = tables if tables is not None else EcptPageTables(CostModelAllocator(fmfi=0.3))
    aspace = AddressSpace(tables, thp=thp, fmfi=0.3, **kwargs)
    aspace.add_vma(0x10000, 200_000, "heap")
    return aspace


class TestVma:
    def test_empty_vma_rejected(self):
        with pytest.raises(ConfigurationError):
            Vma(10, 10)

    def test_overlap_rejected(self):
        aspace = make_aspace()
        with pytest.raises(ConfigurationError):
            aspace.add_vma(0x10000 + 100, 10)

    def test_vma_for(self):
        aspace = make_aspace()
        assert aspace.vma_for(0x10000).name == "heap"
        assert aspace.vma_for(0x5) is None

    def test_total_pages(self):
        aspace = make_aspace()
        assert aspace.total_vma_pages() == 200_000


class TestFaultHandling:
    def test_fault_maps_page(self):
        aspace = make_aspace()
        result = aspace.handle_fault(0x10005)
        assert result.page_size == "4K"
        assert aspace.page_tables.translate(0x10005) is not None
        assert result.cycles > 0

    def test_segfault_outside_vmas(self):
        aspace = make_aspace()
        with pytest.raises(SegmentationFault):
            aspace.handle_fault(0x5)

    def test_thp_fault_maps_whole_region(self):
        aspace = make_aspace(thp=ThpPolicy(enabled=True, coverage=1.0))
        vpn = ((0x10000 // PAGES_PER_2M) + 1) * PAGES_PER_2M + 37
        result = aspace.handle_fault(vpn)
        assert result.page_size == "2M"
        base = aspace.thp.region_base(vpn)
        assert aspace.page_tables.translate(base)[1] == "2M"
        assert aspace.page_tables.translate(base + 511)[1] == "2M"

    def test_thp_clipped_at_vma_edge(self):
        tables = EcptPageTables(CostModelAllocator(fmfi=0.3))
        aspace = AddressSpace(tables, thp=ThpPolicy(enabled=True, coverage=1.0), fmfi=0.3)
        # A VMA that does not cover a whole 2MB region.
        aspace.add_vma(PAGES_PER_2M * 10 + 5, 100, "small")
        result = aspace.handle_fault(PAGES_PER_2M * 10 + 50)
        assert result.page_size == "4K"

    def test_huge_frames_are_aligned(self):
        aspace = make_aspace(thp=ThpPolicy(enabled=True, coverage=1.0))
        vpn = ((0x10000 // PAGES_PER_2M) + 2) * PAGES_PER_2M
        aspace.handle_fault(vpn)
        ppn, size = aspace.page_tables.translate(vpn)
        assert size == "2M"
        assert ppn % PAGES_PER_2M == 0

    def test_totals_accumulate(self):
        aspace = make_aspace()
        for i in range(50):
            aspace.handle_fault(0x10000 + i)
        assert aspace.totals.faults == 50
        assert aspace.totals.pages_mapped_4k == 50
        assert aspace.totals.cycles > 0

    def test_pt_alloc_delta_charged_for_hpt(self):
        aspace = make_aspace(charge_data_alloc=False)
        # Map enough to force HPT resizes; some fault must carry pt cycles.
        for i in range(30_000):
            aspace.handle_fault(0x10000 + i)
        assert aspace.totals.pt_alloc_cycles > 0

    def test_radix_node_cost_charged(self):
        tables = RadixPageTable()
        aspace = AddressSpace(tables, fmfi=0.3, charge_data_alloc=False)
        aspace.add_vma(0x10000, 1000, "heap")
        aspace.handle_fault(0x10000)
        assert aspace.totals.pt_alloc_cycles > 0

    def test_data_alloc_toggle(self):
        with_data = make_aspace(charge_data_alloc=True)
        without = make_aspace(charge_data_alloc=False)
        a = with_data.handle_fault(0x10000)
        b = without.handle_fault(0x10000)
        assert a.data_alloc_cycles > 0
        assert b.data_alloc_cycles == 0


class TestConvenience:
    def test_touch_faults_once(self):
        aspace = make_aspace()
        first = aspace.touch(0x10010)
        second = aspace.touch(0x10010)
        assert first == second
        assert aspace.totals.faults == 1

    def test_populate_whole_vma(self):
        tables = MeHptPageTables(CostModelAllocator(fmfi=0.3))
        aspace = AddressSpace(tables, fmfi=0.3)
        vma = aspace.add_vma(0x40000, 500, "data")
        aspace.populate(vma)
        assert all(
            tables.translate(0x40000 + i) is not None for i in range(0, 500, 13)
        )

    def test_populate_with_thp_counts_huge_pages(self):
        tables = MeHptPageTables(CostModelAllocator(fmfi=0.3))
        aspace = AddressSpace(
            tables, thp=ThpPolicy(enabled=True, coverage=1.0), fmfi=0.3
        )
        start = PAGES_PER_2M * 20
        vma = aspace.add_vma(start, PAGES_PER_2M * 2, "data")
        aspace.populate(vma)
        assert aspace.totals.pages_mapped_2m == 2
        assert aspace.totals.pages_mapped_4k == 0
