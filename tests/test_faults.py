"""Fault-injection framework tests (repro.faults + hooks).

Covers the graceful-degradation contracts end to end: deterministic
fault plans, cycle-charged retry/backoff in the allocators, atomic
resize rollback (the mid-resize allocation-failure acceptance test),
degrade-to-out-of-place, chunk-size fallback, L2P reservation refusal,
injected cuckoo kick-bound overruns, the invariant checkers' ability to
actually detect corruption, and pickle/repr round-trips of the
structured errors.
"""

from __future__ import annotations

import pickle

import pytest

from repro.common.errors import (
    ConfigurationError,
    ContiguousAllocationError,
    OutOfMemoryError,
    SimulationError,
    TransientAllocationError,
)
from repro.common.rng import DeterministicRng
from repro.common.units import KB, MB, PAGE_4K
from repro.core.chunks import ChunkLadder
from repro.core.l2p import L2PTable
from repro.core.mehpt import MeHptPageTables
from repro.faults import (
    DEFAULT_RECOVERY,
    EVENT_ABORT,
    EVENT_DEGRADE_OOP,
    EVENT_FALLBACK,
    EVENT_FAULT,
    EVENT_RETRY,
    EVENT_ROLLBACK,
    SITE_CHUNK_ALLOC,
    SITE_CONTIGUOUS_ALLOC,
    SITE_CUCKOO_KICKS,
    SITE_L2P_RESERVE,
    DegradationLog,
    FaultInjectedBudget,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
)
from repro.hashing.cuckoo import ElasticCuckooTable, ElasticWay
from repro.hashing.hashes import HashFamily
from repro.hashing.policies import AllWayResizePolicy
from repro.hashing.storage import (
    ChunkedStorage,
    ContiguousStorage,
    UnlimitedChunkBudget,
)
from repro.mem.allocator import BuddyBackedAllocator, CostModelAllocator
from repro.mem.buddy import BuddyAllocator
from tests.conftest import make_chunked_table, make_contiguous_table

pytestmark = pytest.mark.faults


# ---------------------------------------------------------------------------
# FaultSpec / FaultPlan
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("disk_io", every=1)

    def test_exactly_one_mode_required(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(SITE_CHUNK_ALLOC)  # neither
        with pytest.raises(ConfigurationError):
            FaultSpec(SITE_CHUNK_ALLOC, every=2, probability=0.5)  # both

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(SITE_CHUNK_ALLOC, probability=1.5)

    def test_negative_max_failures_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(SITE_CHUNK_ALLOC, every=1, max_failures=-1)


class TestFaultPlan:
    def test_every_mode_fires_deterministically(self):
        plan = FaultPlan([FaultSpec(SITE_CHUNK_ALLOC, every=3)])
        fired = [plan.decide(SITE_CHUNK_ALLOC) is not None for _ in range(9)]
        assert fired == [False, False, True] * 3

    def test_site_mismatch_never_fires(self):
        plan = FaultPlan([FaultSpec(SITE_CHUNK_ALLOC, every=1)])
        assert plan.decide(SITE_L2P_RESERVE) is None
        assert plan.opportunities() == 0

    def test_min_bytes_gate(self):
        plan = FaultPlan([FaultSpec(SITE_CHUNK_ALLOC, every=1, min_bytes=1 * MB)])
        assert plan.decide(SITE_CHUNK_ALLOC, nbytes=8 * KB) is None
        assert plan.decide(SITE_CHUNK_ALLOC, nbytes=1 * MB) is not None

    def test_fmfi_gate(self):
        plan = FaultPlan([FaultSpec(SITE_CHUNK_ALLOC, every=1, fmfi_above=0.7)])
        assert plan.decide(SITE_CHUNK_ALLOC, fmfi=0.7) is None
        assert plan.decide(SITE_CHUNK_ALLOC, fmfi=0.75) is not None

    def test_max_failures_caps_firing(self):
        plan = FaultPlan([FaultSpec(SITE_CHUNK_ALLOC, every=1, max_failures=2)])
        results = [plan.decide(SITE_CHUNK_ALLOC) is not None for _ in range(5)]
        assert results == [True, True, False, False, False]
        assert plan.fired(SITE_CHUNK_ALLOC) == 2

    def test_probability_mode_replicates_identically(self):
        plan = FaultPlan([FaultSpec(SITE_CHUNK_ALLOC, probability=0.3)], seed=99)
        first = [plan.decide(SITE_CHUNK_ALLOC) is not None for _ in range(200)]
        again = plan.replicate()
        second = [again.decide(SITE_CHUNK_ALLOC) is not None for _ in range(200)]
        assert first == second
        assert any(first) and not all(first)

    def test_replicate_zeroes_counters(self):
        plan = FaultPlan([FaultSpec(SITE_CHUNK_ALLOC, every=2)])
        for _ in range(4):
            plan.decide(SITE_CHUNK_ALLOC)
        fresh = plan.replicate()
        assert fresh.fired() == 0 and fresh.opportunities() == 0
        assert plan.fired() == 2 and plan.opportunities() == 4


# ---------------------------------------------------------------------------
# Structured errors: repr + pickle round-trips (multiprocessing contract)
# ---------------------------------------------------------------------------


class TestErrorRoundTrips:
    def test_contiguous_error_pickles(self):
        exc = ContiguousAllocationError(64 * MB, 0.8, attempt=2)
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is ContiguousAllocationError
        assert (clone.size_bytes, clone.fmfi, clone.attempt) == (64 * MB, 0.8, 2)
        assert clone.transient is False

    def test_transient_error_pickles_and_subclasses(self):
        exc = TransientAllocationError(8 * KB, 0.1, attempt=1)
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is TransientAllocationError
        assert isinstance(clone, ContiguousAllocationError)
        assert clone.transient is True

    def test_simulation_error_context_pickles(self):
        exc = SimulationError("boom", component="cuckoo", way=1, counted=3)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.context == {"component": "cuckoo", "way": 1, "counted": 3}
        assert "component='cuckoo'" in repr(clone)

    def test_repr_sorts_context(self):
        exc = SimulationError("x", zebra=1, apple=2)
        assert repr(exc).index("apple") < repr(exc).index("zebra")


# ---------------------------------------------------------------------------
# Recovery policy + allocator retry/backoff accounting
# ---------------------------------------------------------------------------


class TestRecoveryPolicy:
    def test_backoff_is_geometric(self):
        policy = RecoveryPolicy(max_retries=3, backoff_base_cycles=100.0, backoff_factor=2.0)
        assert [policy.backoff_cycles(a) for a in (1, 2, 3)] == [100.0, 200.0, 400.0]

    def test_default_policy_shape(self):
        assert DEFAULT_RECOVERY.max_retries >= 1
        assert DEFAULT_RECOVERY.backoff_base_cycles > 0


class TestAllocatorRecovery:
    def test_transient_failures_retried_with_charged_backoff(self):
        plan = FaultPlan([FaultSpec(SITE_CHUNK_ALLOC, every=1, max_failures=2)])
        log = DegradationLog()
        alloc = CostModelAllocator(fmfi=0.0, fault_plan=plan, degradation=log)
        handle = alloc.alloc(PAGE_4K)
        assert handle is not None
        assert alloc.stats.failed_allocations == 2
        assert log.count(EVENT_FAULT) == 2
        assert log.count(EVENT_RETRY) == 2
        assert log.count(EVENT_ABORT) == 0
        expected_backoff = DEFAULT_RECOVERY.backoff_cycles(1) + DEFAULT_RECOVERY.backoff_cycles(2)
        assert log.recovery_cycles == expected_backoff
        assert alloc.stats.cycles >= expected_backoff  # backoff charged to the clock

    def test_unbounded_transient_faults_abort_after_max_retries(self):
        plan = FaultPlan([FaultSpec(SITE_CHUNK_ALLOC, every=1)])
        log = DegradationLog()
        recovery = RecoveryPolicy(max_retries=2, backoff_base_cycles=10.0)
        alloc = CostModelAllocator(
            fmfi=0.0, fault_plan=plan, recovery=recovery, degradation=log
        )
        with pytest.raises(TransientAllocationError):
            alloc.alloc(PAGE_4K)
        # initial attempt + 2 retries, then the abort propagates.
        assert log.count(EVENT_FAULT) == 3
        assert log.count(EVENT_RETRY) == 2
        assert log.count(EVENT_ABORT) == 1
        assert alloc.stats.allocations == 0

    def test_permanent_injected_failure_never_retried(self):
        plan = FaultPlan([FaultSpec(SITE_CONTIGUOUS_ALLOC, every=1)])
        log = DegradationLog()
        alloc = CostModelAllocator(fmfi=0.8, fault_plan=plan, degradation=log)
        with pytest.raises(ContiguousAllocationError) as info:
            alloc.alloc(64 * MB)
        assert not info.value.transient
        assert log.count(EVENT_RETRY) == 0
        assert log.count(EVENT_ABORT) == 1

    def test_scale_applied_before_gates(self):
        # An 8KB request at scale 128 is a 1MB full-scale request.
        plan = FaultPlan([FaultSpec(SITE_CONTIGUOUS_ALLOC, every=1, min_bytes=1 * MB)])
        alloc = CostModelAllocator(fmfi=0.0, scale=128, fault_plan=plan)
        with pytest.raises(ContiguousAllocationError):
            alloc.alloc(8 * KB)

    def test_buddy_backed_exhaustion_records_abort(self):
        log = DegradationLog()
        buddy = BuddyAllocator(4 * PAGE_4K, max_order=2)
        alloc = BuddyBackedAllocator(buddy, degradation=log)
        alloc.alloc(4 * PAGE_4K)
        with pytest.raises(OutOfMemoryError):
            alloc.alloc(PAGE_4K)
        assert log.count(EVENT_ABORT) == 1
        assert alloc.stats.failed_allocations == 1


# ---------------------------------------------------------------------------
# Resize rollback (the mid-resize failure acceptance test)
# ---------------------------------------------------------------------------


def _fill(table: ElasticCuckooTable, n: int, base: int = 0x1000):
    keys = [base + i * 8 for i in range(n)]
    for key in keys:
        table.insert(key, key * 3)
    return keys


class TestRollbackResize:
    def test_rollback_idle_way_is_noop(self, contiguous_table):
        way = contiguous_table.ways[0]
        contiguous_table.rollback_resize(way)
        assert way.rollbacks == 0

    def test_out_of_place_rollback_restores_geometry_and_items(self):
        table = make_contiguous_table(initial_slots=16)
        keys = _fill(table, 8)
        way = table.ways[0]
        way.begin_resize(32, ContiguousStorage(32))
        table.maintenance(steps=5)  # partial gradual rehash
        assert way.resizing
        table.rollback_resize(way)
        assert not way.resizing
        assert way.size == 16 and way.old_storage is None
        assert way.upsizes == 0 and way.rollbacks == 1
        table.check_invariants()
        for key in keys:
            assert table.lookup(key) == key * 3

    def test_inplace_rollback_shrinks_storage_back(self):
        table = make_chunked_table(initial_slots=16, chunk_bytes=256)
        keys = _fill(table, 9)
        way = table.ways[1]
        assert way.storage.extend_to(32)
        way.begin_resize(32, None)
        table.maintenance(steps=7)
        table.rollback_resize(way)
        assert way.size == 16
        assert way.storage.size_slots == 16
        assert way.inplace_upsizes == 0 and way.rollbacks == 1
        table.check_invariants()
        for key in keys:
            assert table.lookup(key) == key * 3

    def test_downsize_rollback(self):
        table = make_chunked_table(initial_slots=16, chunk_bytes=256)
        keys = _fill(table, 5)
        way = table.ways[0]
        way.begin_resize(8, None)
        table.maintenance(steps=3)
        table.rollback_resize(way)
        assert way.size == 16 and way.downsizes == 0
        table.check_invariants()
        for key in keys:
            assert table.lookup(key) == key * 3

    def test_rollback_records_degradation_event(self):
        table = make_contiguous_table(initial_slots=16)
        table.degradation = DegradationLog()
        _fill(table, 6)
        way = table.ways[2]
        way.begin_resize(32, ContiguousStorage(32))
        table.rollback_resize(way)
        assert table.degradation.count(EVENT_ROLLBACK) == 1
        (event,) = list(table.degradation)
        assert dict(event.detail)["way"] == 2

    def test_allway_resize_failure_mid_group_rolls_back_atomically(self):
        """The acceptance test: a contiguous-allocation failure striking a
        sibling way mid-all-way-resize leaves the table consistent and every
        prior translation resolvable."""
        family = HashFamily(seed=7)
        calls = {"n": 0}

        def factory(way_index, slots):
            calls["n"] += 1
            if calls["n"] == 2:  # way 0 succeeds, way 1 fails
                raise ContiguousAllocationError(slots * 64, 0.8)
            return ContiguousStorage(slots)

        ways = [ElasticWay(i, family.function(i), ContiguousStorage(16)) for i in range(3)]
        table = ElasticCuckooTable(
            ways,
            AllWayResizePolicy(min_way_slots=16),
            factory,
            rng=DeterministicRng(8),
            degradation=DegradationLog(),
        )
        inserted = []
        with pytest.raises(ContiguousAllocationError):
            for i in range(200):
                key = 0x1000 + i * 8
                table.insert(key, key)
                inserted.append(key)
        # The triggering key was placed before the resize tripped.
        inserted.append(0x1000 + len(inserted) * 8)
        assert calls["n"] == 2
        assert all(not way.resizing for way in table.ways)
        assert [way.size for way in table.ways] == [16, 16, 16]
        assert table.ways[0].rollbacks == 1
        assert table.degradation.count(EVENT_ROLLBACK) == 1
        table.check_invariants()
        for key in inserted:
            assert table.lookup(key) == key


# ---------------------------------------------------------------------------
# Degrade-to-out-of-place and chunk-size fallback
# ---------------------------------------------------------------------------


class _FlakyChunkAllocator(CostModelAllocator):
    """Fails the next ``fail_times`` allocations, then recovers."""

    def __init__(self, fail_times: int = 0, fail_at_bytes: int = 0, **kwargs):
        super().__init__(**kwargs)
        self.fail_times = fail_times
        self.fail_at_bytes = fail_at_bytes

    def alloc(self, nbytes: int) -> int:
        if self.fail_times > 0:
            self.fail_times -= 1
            raise ContiguousAllocationError(nbytes, self.fmfi)
        if self.fail_at_bytes and nbytes >= self.fail_at_bytes:
            raise ContiguousAllocationError(nbytes, self.fmfi)
        return super().alloc(nbytes)


class TestDegradeToOutOfPlace:
    def test_failed_inplace_extend_degrades_to_gradual_oop(self):
        allocator = _FlakyChunkAllocator(fmfi=0.8)
        budget = UnlimitedChunkBudget()
        family = HashFamily(seed=7)

        def storage(slots):
            return ChunkedStorage(
                slots, chunk_bytes=1024, allocator=allocator, budget=budget
            )

        ways = [ElasticWay(i, family.function(i), storage(16)) for i in range(3)]
        from repro.hashing.policies import PerWayResizePolicy

        log = DegradationLog()
        table = ElasticCuckooTable(
            ways,
            PerWayResizePolicy(min_way_slots=16),
            lambda w, slots: storage(slots),
            rng=DeterministicRng(9),
            degradation=log,
        )
        target = table.ways[0]
        # Arm the failure just before the in-place extension attempt: the
        # extend fails atomically, the resize degrades to out-of-place.
        allocator.fail_times = 1
        table.start_upsize(target)
        assert log.count(EVENT_DEGRADE_OOP) == 1
        assert target.resizing and target.old_storage is not None
        table.drain()
        table.check_invariants()

    def test_atomic_extend_failure_leaves_storage_untouched(self):
        allocator = _FlakyChunkAllocator(fmfi=0.8)
        budget = UnlimitedChunkBudget()
        storage = ChunkedStorage(16, chunk_bytes=256, allocator=allocator, budget=budget)
        chunks_before = storage.chunk_count
        budget_before = budget.in_use
        allocator.fail_times = 1
        with pytest.raises(ContiguousAllocationError):
            storage.extend_to(64)  # needs several new 256B chunks
        assert storage.size_slots == 16
        assert storage.chunk_count == chunks_before
        assert budget.in_use == budget_before
        storage.check_invariants()
        # With the transient gone the same extension succeeds.
        assert storage.extend_to(64)


class TestChunkFallback:
    def _tables(self, allocator, log):
        return MeHptPageTables(
            allocator=allocator,
            initial_slots=16,
            chunk_ladder=ChunkLadder((8 * KB, 1 * MB)),
            degradation=log,
        )

    def test_fallback_chunk_walks_ladder_down(self):
        tables = self._tables(CostModelAllocator(), DegradationLog())
        # 128KB way: 16 x 8KB chunks fit the 64-chunk budget.
        assert tables._fallback_chunk(1 * MB, 128 * KB) == 8 * KB
        # 600KB way: 75 x 8KB chunks exceed it -> no fallback possible.
        assert tables._fallback_chunk(1 * MB, 600 * KB) is None

    def test_resize_storage_falls_back_to_smaller_chunks(self):
        log = DegradationLog()
        allocator = _FlakyChunkAllocator(fmfi=0.8, fail_at_bytes=1 * MB)
        tables = self._tables(allocator, log)
        table = tables.tables["4K"].table
        storage = tables._resize_storage(table, "4K", 0, 2048)
        assert storage is not None
        assert storage.chunk_bytes == 8 * KB
        assert log.count(EVENT_FALLBACK) == 1
        detail = dict(list(log)[0].detail)
        assert detail["from_chunk"] == 1 * MB and detail["to_chunk"] == 8 * KB
        tables.check_invariants()

    def test_fallback_exhausted_reraises(self):
        log = DegradationLog()
        allocator = _FlakyChunkAllocator(fmfi=0.8)
        tables = self._tables(allocator, log)
        table = tables.tables["4K"].table
        allocator.fail_at_bytes = 8 * KB  # every ladder size now fails
        with pytest.raises(ContiguousAllocationError):
            tables._resize_storage(table, "4K", 0, 2048)


# ---------------------------------------------------------------------------
# L2P reservation and cuckoo-kick injection
# ---------------------------------------------------------------------------


class TestL2PReservationInjection:
    def test_injected_budget_refuses_and_logs(self):
        inner = UnlimitedChunkBudget()
        log = DegradationLog()
        plan = FaultPlan([FaultSpec(SITE_L2P_RESERVE, every=1)])
        budget = FaultInjectedBudget(inner, plan, log)
        assert budget.reserve(2) is False
        assert inner.in_use == 0
        assert log.count(EVENT_FAULT) == 1
        assert dict(list(log)[0].detail)["count"] == 2

    def test_release_proxies_to_inner(self):
        inner = UnlimitedChunkBudget()
        plan = FaultPlan([FaultSpec(SITE_L2P_RESERVE, every=2)])
        budget = FaultInjectedBudget(inner, plan)
        assert budget.reserve(3)  # opportunity 1: no fire
        assert budget.in_use == 3
        budget.release(3)
        assert inner.in_use == 0

    def test_refused_reservation_stops_inplace_extension(self):
        plan = FaultPlan([FaultSpec(SITE_L2P_RESERVE, every=2)])
        budget = FaultInjectedBudget(UnlimitedChunkBudget(), plan)
        storage = ChunkedStorage(16, chunk_bytes=256, budget=budget)  # reserve #1 passes
        assert storage.extend_to(64) is False  # reserve #2 injected
        assert storage.size_slots == 16
        storage.check_invariants()


class TestCuckooKickInjection:
    def test_injected_kick_overrun_forces_emergency_resize(self):
        table = make_chunked_table(initial_slots=16)
        table.fault_plan = FaultPlan([FaultSpec(SITE_CUCKOO_KICKS, every=40)])
        table.degradation = DegradationLog()
        keys = _fill(table, 120)
        faults = table.degradation.count(EVENT_FAULT)
        assert faults >= 1
        assert table.capacity() > 3 * 16  # emergency resizes grew the table
        table.check_invariants()
        for key in keys:
            assert table.lookup(key) == key * 3


# ---------------------------------------------------------------------------
# Invariant checkers actually detect corruption
# ---------------------------------------------------------------------------


class TestInvariantDetection:
    def test_buddy_healthy_passes(self):
        buddy = BuddyAllocator(64 * PAGE_4K, max_order=4)
        handles = [buddy.alloc_bytes(PAGE_4K) for _ in range(5)]
        buddy.free(handles[2])
        buddy.check_invariants()

    def test_buddy_detects_overlap(self):
        buddy = BuddyAllocator(64 * PAGE_4K, max_order=4)
        buddy.alloc_bytes(PAGE_4K)
        buddy.free_lists[0].add(0)  # frame 0 is allocated: overlap/leak
        with pytest.raises(SimulationError) as info:
            buddy.check_invariants()
        assert info.value.context["component"] == "buddy"

    def test_buddy_detects_uncoalesced_pair(self):
        buddy = BuddyAllocator(2 * PAGE_4K)
        buddy.free_lists[buddy.max_order].clear()
        buddy.free_lists[0].update({0, 1})
        with pytest.raises(SimulationError, match="uncoalesced"):
            buddy.check_invariants()

    def test_cuckoo_detects_count_drift(self):
        table = make_contiguous_table()
        _fill(table, 6)
        table.ways[0].count += 1
        with pytest.raises(SimulationError) as info:
            table.check_invariants()
        assert info.value.context["component"] == "cuckoo"

    def test_cuckoo_detects_table_count_drift(self):
        table = make_contiguous_table()
        _fill(table, 6)
        table.count += 1
        with pytest.raises(SimulationError, match="table count"):
            table.check_invariants()

    def test_chunked_storage_detects_handle_mismatch(self):
        storage = ChunkedStorage(32, chunk_bytes=256)
        storage._handles.pop()
        with pytest.raises(SimulationError, match="handle"):
            storage.check_invariants()

    def test_chunked_storage_detects_budget_undercount(self):
        budget = UnlimitedChunkBudget()
        storage = ChunkedStorage(32, chunk_bytes=256, budget=budget)
        budget.in_use = 0
        with pytest.raises(SimulationError, match="budget"):
            storage.check_invariants()

    def test_l2p_detects_negative_usage(self):
        l2p = L2PTable(3)
        l2p.subtable(1, "4K").in_use = -1
        with pytest.raises(SimulationError) as info:
            l2p.check_invariants()
        assert info.value.context["component"] == "l2p"

    def test_l2p_detects_group_overflow(self):
        l2p = L2PTable(3)
        for page_size in ("4K", "2M", "1G"):
            sub = l2p.subtable(0, page_size)
            sub.in_use = 33
            sub.peak_in_use = 33
        with pytest.raises(SimulationError, match="96"):
            l2p.check_invariants()

    def test_l2p_healthy_passes(self):
        l2p = L2PTable(3)
        assert l2p.subtable(0, "4K").reserve(40)
        l2p.check_invariants()


# ---------------------------------------------------------------------------
# End-to-end determinism: same seed + plan => identical degradation logs
# ---------------------------------------------------------------------------


class TestDeterminism:
    def _signature(self):
        from repro.experiments.runner import ExperimentSettings
        from repro.sim.simulator import memory_result
        from repro.workloads import get_workload

        settings = ExperimentSettings(scale=64)
        plan = FaultPlan(
            [FaultSpec(SITE_CHUNK_ALLOC, every=5, max_failures=8)], seed=7
        )
        config = settings.config(
            "mehpt", thp=False, fault_plan=plan, invariant_check_every=512
        )
        workload = get_workload("MUMmer", scale=64, seed=settings.seed)
        system = config.build(workload)
        result = memory_result(system)
        assert not result.failed
        assert sum(result.degradation_counts.values()) > 0
        return system.degradation.signature()

    def test_repeated_builds_yield_identical_logs(self):
        assert self._signature() == self._signature()

    def test_allocator_level_determinism(self):
        def run():
            plan = FaultPlan(
                [FaultSpec(SITE_CHUNK_ALLOC, probability=0.4, max_failures=6)],
                seed=3,
            ).replicate()
            log = DegradationLog()
            alloc = CostModelAllocator(fmfi=0.2, fault_plan=plan, degradation=log)
            for i in range(30):
                try:
                    alloc.alloc(PAGE_4K << (i % 4))
                except ContiguousAllocationError:
                    pass
            return log.signature()

        assert run() == run()
