"""The asyncio front-end: translation experiments as a service.

``ServeServer`` binds a plain ``asyncio.start_server`` socket and speaks
a deliberately small HTTP/1.1 subset (stdlib only, connection-per-
request): requests are parsed in the event loop, validated through
:mod:`repro.serve.protocol`, admitted by the
:class:`~repro.serve.queue.FairPriorityQueue`, and executed on the
:class:`~repro.serve.workers.ShardPool`.  Nothing simulation-shaped runs
in the loop itself — the loop only routes, queues, streams, and reaps.

The endpoint table (checked two-way against ``SERVING.md`` by
``tools/doccheck.py serving-docs``):

* ``POST /v1/jobs`` — submit a cell/sweep/replay/selftest job
* ``GET /v1/jobs/{id}`` — job status + collected results
* ``GET /v1/jobs/{id}/events`` — chunked NDJSON event stream
* ``DELETE /v1/jobs/{id}`` — cancel (queued: dequeue; running: reap)
* ``POST /v1/traces`` — upload a ``.vpt`` trace into the spool
* ``GET /v1/queue`` — queue depths and admission statistics
* ``GET /metrics`` — obs catalogue + ``serve.*`` series, text format
* ``GET /healthz`` — liveness / draining state

Back-pressure is explicit: a full queue answers 429 with a JSON
``retry_after_seconds`` and a ``Retry-After`` header; a draining server
answers 503 the same way.  Shutdown is graceful by default — admission
closes, in-flight jobs finish, then the workers stop.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.metrics import CATALOGUE, MetricsRegistry
from repro.serve.protocol import (
    TERMINAL_STATUSES,
    JobRequest,
    ProtocolError,
    job_event,
    parse_job_request,
    settings_to_dict,
)
from repro.serve.queue import AdmissionError, FairPriorityQueue
from repro.serve.workers import ShardPool

logger = logging.getLogger(__name__)

#: (method, path template) -> handler name.  ``{id}`` matches one path
#: segment.  SERVING.md's "Endpoints" table is checked against this
#: mapping (both directions) by ``tools/doccheck.py serving-docs``.
ROUTES: Dict[Tuple[str, str], str] = {
    ("POST", "/v1/jobs"): "submit_job",
    ("GET", "/v1/jobs/{id}"): "job_status",
    ("GET", "/v1/jobs/{id}/events"): "job_events",
    ("DELETE", "/v1/jobs/{id}"): "cancel_job",
    ("POST", "/v1/traces"): "upload_trace",
    ("GET", "/v1/queue"): "queue_status",
    ("GET", "/metrics"): "metrics",
    ("GET", "/healthz"): "healthz",
}

#: Events kept per job for late stream subscribers; beyond this the
#: oldest obs events are dropped (a progress marker records the gap).
MAX_JOB_EVENTS = 50_000


@dataclass
class ServeConfig:
    """Every serving knob, used by both the CLI and the test fixtures."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read ServeServer.port after start()
    shards: int = 2
    #: SweepEngine fan-out *inside* each shard (multi-cell jobs).
    engine_jobs: int = 1
    cache_dir: Optional[str] = None
    #: Upload spool + obs event-stream scratch space.
    spool_dir: str = ".serve-spool"
    queue_capacity: int = 64
    per_client_capacity: int = 16
    #: Applied when a job carries no timeout of its own (None = no limit).
    default_timeout_seconds: Optional[float] = None
    #: Graceful drain gives in-flight jobs this long before reaping.
    drain_timeout_seconds: float = 30.0
    max_body_bytes: int = 64 * 1024 * 1024
    #: Allow ``trace:<path>`` cells to name server-local files directly
    #: (in addition to uploaded handles).
    allow_local_traces: bool = True

    def validate(self) -> None:
        """Raise ConfigurationError on out-of-range knobs."""
        if self.shards < 1:
            raise ConfigurationError(
                f"shards {self.shards} must be >= 1",
                field="shards", value=self.shards,
            )
        if self.engine_jobs < 1:
            raise ConfigurationError(
                f"engine_jobs {self.engine_jobs} must be >= 1",
                field="engine_jobs", value=self.engine_jobs,
            )
        if self.max_body_bytes < 1:
            raise ConfigurationError(
                f"max_body_bytes {self.max_body_bytes} must be >= 1",
                field="max_body_bytes", value=self.max_body_bytes,
            )


@dataclass
class JobRecord:
    """Server-side state of one submitted job."""

    job_id: str
    request: JobRequest
    status: str = "queued"
    shard: Optional[int] = None
    events: List[Dict] = field(default_factory=list)
    results: List[Dict] = field(default_factory=list)
    dropped_events: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Wakes event-stream subscribers when a new event lands.
    wake: asyncio.Event = field(default_factory=asyncio.Event)
    timeout_handle: Optional[asyncio.TimerHandle] = None
    obs_trace_path: Optional[str] = None
    obs_tail_task: Optional[asyncio.Task] = None

    def terminal(self) -> bool:
        """Whether the job reached a terminal status."""
        return self.status in TERMINAL_STATUSES


def _prom_name(full_name: str) -> str:
    """Render a catalogue metric name in Prometheus exposition syntax."""
    base, _, labels = full_name.partition("[")
    flat = base.replace(".", "_")
    if not labels:
        return flat
    pairs = ",".join(
        f'{key}="{value}"'
        for key, value in (part.split("=", 1)
                           for part in labels.rstrip("]").split(","))
    )
    return f"{flat}{{{pairs}}}"


class ServeServer:
    """The long-running translation-as-a-service front-end."""

    def __init__(self, config: ServeConfig) -> None:
        config.validate()
        self.config = config
        self.registry = MetricsRegistry()
        self.registry.add_collector(self._collect_gauges)
        self.queue = FairPriorityQueue(
            capacity=config.queue_capacity,
            per_client_capacity=config.per_client_capacity,
        )
        self.pool = ShardPool(
            config.shards,
            on_message=self._on_worker_message,
            on_worker_death=self._on_worker_death,
        )
        self.jobs: Dict[str, JobRecord] = {}
        self._uploads: Dict[str, str] = {}
        self._job_counter = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatch_wake = asyncio.Event()
        self._dispatch_task: Optional[asyncio.Task] = None
        self.draining = False
        self._stopped = asyncio.Event()
        #: Accumulated SweepEngine disk-cache stats across all jobs.
        self.cache_hits = 0
        self.cache_misses = 0
        #: Obs metric records aggregated from jobs run with metrics=True.
        self._obs_aggregate: Dict[str, Dict] = {}

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, spawn the shards, start dispatching."""
        os.makedirs(self.config.spool_dir, exist_ok=True)
        if self.config.cache_dir:
            os.makedirs(self.config.cache_dir, exist_ok=True)
        await self.pool.start()
        self._dispatch_task = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port,
        )
        logger.info("repro.serve listening on http://%s:%d",
                    self.config.host, self.port)

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` ephemeral binds)."""
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until :meth:`drain` or :meth:`stop` completes."""
        await self._stopped.wait()

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` (or a completed drain) has run."""
        return self._stopped.is_set()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight, stop.

        Queued jobs still run; jobs that outlive
        ``drain_timeout_seconds`` are reaped like a timeout.
        """
        if self.draining:
            return
        self.draining = True
        logger.info("draining: %d queued, %d in flight",
                    len(self.queue), self.pool.busy_count)
        deadline = time.monotonic() + self.config.drain_timeout_seconds
        while (len(self.queue) or self.pool.busy_count) and \
                time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        for shard in self.pool.shards:
            if shard.busy:
                job = self.jobs.get(shard.job_id)
                shard.kill()
                self.registry.counter("serve.worker_restarts").inc()
                if job is not None:
                    self._finish_job(job, "timeout", job_event(
                        "timeout", job.job_id, reason="drain deadline",
                    ))
        await self.stop()

    async def stop(self) -> None:
        """Hard stop: close the socket and the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            await asyncio.gather(self._dispatch_task, return_exceptions=True)
        await self.pool.stop()
        self._stopped.set()

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """Parse one request, route it, always close the connection."""
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, raw_path, _version = (
                    request_line.decode("latin-1").split(None, 2)
                )
            except ValueError:
                await self._respond(writer, 400,
                                    {"error": "malformed request line"})
                return
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > self.config.max_body_bytes:
                await self._respond(writer, 413, {
                    "error": f"body of {length} bytes exceeds the "
                             f"{self.config.max_body_bytes}-byte limit",
                })
                return
            body = await reader.readexactly(length) if length else b""
            path = raw_path.split("?", 1)[0]
            handler, params = self._route(method, path)
            if handler is None:
                await self._respond(writer, 404, {
                    "error": f"no route for {method} {path}",
                    "routes": sorted(f"{m} {p}" for m, p in ROUTES),
                })
                return
            await getattr(self, f"_handle_{handler}")(
                writer, body, headers, **params
            )
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except Exception:  # noqa: BLE001 - a bad connection must not kill the loop
            logger.exception("unhandled error serving a connection")
            try:
                await self._respond(writer, 500, {"error": "internal error"})
            except (ConnectionResetError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    def _route(self, method: str, path: str):
        """Match (method, path) against :data:`ROUTES`."""
        segments = [s for s in path.split("/") if s]
        for (route_method, template), handler in ROUTES.items():
            if method != route_method:
                continue
            parts = [s for s in template.split("/") if s]
            if len(parts) != len(segments):
                continue
            params = {}
            for part, segment in zip(parts, segments):
                if part == "{id}":
                    params["job_id"] = segment
                elif part != segment:
                    break
            else:
                self.registry.counter(
                    "serve.requests", route=f"{route_method} {template}"
                ).inc()
                return handler, params
        return None, {}

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: object, content_type: str = "application/json",
                       extra_headers: Optional[Dict[str, str]] = None) -> None:
        """Send a complete (non-streaming) response and flush it."""
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = payload
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 409: "Conflict", 413: "Payload Too Large",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # -- handlers ------------------------------------------------------

    async def _handle_healthz(self, writer, body, headers) -> None:
        """Liveness: reports draining state and shard health."""
        await self._respond(writer, 200, {
            "status": "draining" if self.draining else "ok",
            "shards": [{"index": s.index, "pid": s.pid, "busy": s.busy,
                        "restarts": s.restarts} for s in self.pool.shards],
            "jobs": len(self.jobs),
        })

    async def _handle_queue_status(self, writer, body, headers) -> None:
        """Queue depth, in-flight count and admission statistics."""
        await self._respond(writer, 200, {
            "depth": len(self.queue),
            "inflight": self.pool.busy_count,
            "capacity": self.queue.capacity,
            "per_client_capacity": self.queue.per_client_capacity,
            "pushed": self.queue.pushed,
            "popped": self.queue.popped,
            "rejected": self.queue.rejected,
            "retry_after_hint": self.queue.retry_after_hint(),
        })

    async def _handle_metrics(self, writer, body, headers) -> None:
        """Prometheus-style text exposition of serve.* plus obs metrics."""
        lines: List[str] = []
        snapshot = self.registry.snapshot()
        merged = dict(self._obs_aggregate)
        merged.update(snapshot)  # serve.* always wins over aggregates
        for full_name in sorted(merged):
            record = merged[full_name]
            spec = CATALOGUE.get(full_name.split("[", 1)[0])
            name = _prom_name(full_name)
            if spec is not None:
                lines.append(f"# HELP {name.split('{', 1)[0]} "
                             f"{spec.description}")
                lines.append(f"# TYPE {name.split('{', 1)[0]} "
                             f"{'gauge' if record['kind'] == 'gauge' else 'counter'}")
            if record["kind"] == "histogram":
                lines.append(f"{name.split('{', 1)[0]}_count {record['count']}")
                lines.append(f"{name.split('{', 1)[0]}_sum {record['sum']}")
                for label, count in record.get("bins", {}).items():
                    lines.append(
                        f"{name.split('{', 1)[0]}_bin{{bin=\"{label}\"}} {count}"
                    )
            else:
                lines.append(f"{name} {record['value']}")
        await self._respond(writer, 200, "\n".join(lines) + "\n",
                            content_type="text/plain; version=0.0.4")

    async def _handle_submit_job(self, writer, body, headers) -> None:
        """Validate, admit and enqueue one job submission."""
        if self.draining:
            self.registry.counter(
                "serve.admission_rejections", reason="draining"
            ).inc()
            await self._respond(writer, 503, {
                "error": "server is draining",
                "retry_after_seconds": self.config.drain_timeout_seconds,
            }, extra_headers={
                "Retry-After": str(int(self.config.drain_timeout_seconds)),
            })
            return
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except ValueError as exc:
            await self._respond(writer, 400,
                                {"error": f"body is not JSON: {exc}"})
            return
        try:
            request = parse_job_request(payload, self._resolve_trace)
        except ProtocolError as exc:
            await self._respond(writer, 400, {
                "error": exc.message, "context": exc.context,
            })
            return
        self._job_counter += 1
        job_id = f"job-{self._job_counter}"
        record = JobRecord(job_id=job_id, request=request,
                           submitted_at=time.monotonic())
        try:
            depth = self.queue.push(job_id, request.client, request.priority,
                                    record)
        except AdmissionError as exc:
            self.registry.counter(
                "serve.admission_rejections",
                reason=exc.context.get("reason", "unknown"),
            ).inc()
            retry_after = exc.context.get("retry_after_seconds", 1.0)
            await self._respond(writer, 429, {
                "error": exc.message,
                "reason": exc.context.get("reason"),
                "retry_after_seconds": retry_after,
            }, extra_headers={"Retry-After": str(int(max(1, retry_after)))})
            return
        self.jobs[job_id] = record
        self._append_event(record, job_event(
            "queued", job_id, position=depth, priority=request.priority,
        ))
        self._dispatch_wake.set()
        await self._respond(writer, 202, {
            "job": job_id,
            "status_url": f"/v1/jobs/{job_id}",
            "events_url": f"/v1/jobs/{job_id}/events",
            "queue_position": depth,
        })

    async def _handle_job_status(self, writer, body, headers, job_id) -> None:
        """Status + collected per-cell results for one job."""
        record = self.jobs.get(job_id)
        if record is None:
            await self._respond(writer, 404,
                                {"error": f"unknown job {job_id!r}"})
            return
        await self._respond(writer, 200, {
            "job": record.job_id,
            "status": record.status,
            "shard": record.shard,
            "request": record.request.describe(),
            "events_seen": len(record.events) + record.dropped_events,
            "results": record.results,
        })

    async def _handle_job_events(self, writer, body, headers, job_id) -> None:
        """Chunked NDJSON stream: full history, then live events."""
        record = self.jobs.get(job_id)
        if record is None:
            await self._respond(writer, 404,
                                {"error": f"unknown job {job_id!r}"})
            return
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        try:
            while True:
                while sent < len(record.events):
                    line = (json.dumps(record.events[sent], sort_keys=True)
                            + "\n").encode("utf-8")
                    writer.write(b"%x\r\n%s\r\n" % (len(line), line))
                    sent += 1
                    self.registry.counter("serve.streamed_events").inc()
                await writer.drain()
                if record.terminal() and sent >= len(record.events):
                    break
                record.wake.clear()
                # Re-check under the cleared flag to close the race
                # between the length test and the wait.
                if sent < len(record.events) or record.terminal():
                    continue
                await record.wake.wait()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionResetError, OSError):
            pass  # subscriber went away; the job is unaffected

    async def _handle_cancel_job(self, writer, body, headers, job_id) -> None:
        """Cancel a queued job (dequeue) or a running one (reap worker)."""
        record = self.jobs.get(job_id)
        if record is None:
            await self._respond(writer, 404,
                                {"error": f"unknown job {job_id!r}"})
            return
        if record.terminal():
            await self._respond(writer, 409, {
                "error": f"job {job_id} already {record.status}",
                "status": record.status,
            })
            return
        reaped = False
        if record.status == "queued":
            self.queue.remove(job_id)
        else:
            shard = self.pool.shard_for_job(job_id)
            if shard is not None:
                shard.kill()
                self.registry.counter("serve.worker_restarts").inc()
                reaped = True
        self.registry.counter("serve.jobs_cancelled").inc()
        self._finish_job(record, "cancelled", job_event(
            "cancelled", job_id, reaped_worker=reaped,
        ))
        self._dispatch_wake.set()
        await self._respond(writer, 200, {
            "job": job_id, "status": "cancelled", "reaped_worker": reaped,
        })

    async def _handle_upload_trace(self, writer, body, headers) -> None:
        """Accept a ``.vpt`` body, validate it, admit it into the spool."""
        from repro.traces.format import validate_trace

        if not body:
            await self._respond(writer, 400,
                                {"error": "empty body (expected .vpt bytes)"})
            return
        digest = hashlib.sha256(body).hexdigest()
        handle = f"sha256:{digest[:16]}"
        path = os.path.join(self.config.spool_dir, f"upload-{digest[:16]}.vpt")
        if handle not in self._uploads:
            tmp_path = path + ".tmp"
            with open(tmp_path, "wb") as spool:
                spool.write(body)
            report = validate_trace(tmp_path)
            if not report.ok:
                os.unlink(tmp_path)
                await self._respond(writer, 400, {
                    "error": "uploaded trace failed validation",
                    "problems": report.problems,
                })
                return
            os.replace(tmp_path, path)
            self._uploads[handle] = path
            self.registry.counter("serve.trace_uploads").inc()
        with_reader = self._uploads[handle]
        from repro.traces.format import TraceReader

        with TraceReader(with_reader) as reader:
            await self._respond(writer, 200, {
                "trace": f"trace:{handle}",
                "records": reader.total_values,
                "chunks": reader.chunks,
                "content_id": reader.content_id,
            })

    # -- job plumbing --------------------------------------------------

    def _resolve_trace(self, handle: str) -> str:
        """Map a ``trace:`` cell name to a readable spool or local path."""
        if handle in self._uploads:
            return self._uploads[handle]
        if self.config.allow_local_traces and os.path.exists(handle):
            return handle
        raise ProtocolError(
            f"trace:{handle} is neither an uploaded trace nor a readable "
            f"server-local file", field="cells",
        )

    def _append_event(self, record: JobRecord, event: Dict) -> None:
        """Append to the job's history (bounded) and wake subscribers."""
        if len(record.events) >= MAX_JOB_EVENTS:
            record.events.pop(0)
            record.dropped_events += 1
        record.events.append(event)
        record.wake.set()

    async def _dispatch_loop(self) -> None:
        """Move queued jobs onto idle shards, forever."""
        while True:
            await self._dispatch_wake.wait()
            self._dispatch_wake.clear()
            while True:
                shard = self.pool.idle_shard()
                if shard is None:
                    break
                popped = self.queue.pop()
                if popped is None:
                    break
                _job_id, record = popped
                self._start_job(record, shard)

    def _start_job(self, record: JobRecord, shard) -> None:
        """Ship one job to a shard and arm its timeout."""
        request = record.request
        record.status = "running"
        record.shard = shard.index
        record.started_at = time.monotonic()
        shard.job_id = record.job_id
        payload: Dict[str, object] = {
            "op": "job",
            "job": record.job_id,
            "kind": request.kind,
        }
        if request.kind == "selftest":
            payload["duration"] = request.duration_seconds
        else:
            obs_spec: Optional[Dict[str, object]] = None
            if request.events_sample_every is not None:
                record.obs_trace_path = os.path.join(
                    self.config.spool_dir, f"obs-{record.job_id}.jsonl"
                )
                obs_spec = {
                    "metrics": request.metrics,
                    "trace_path": record.obs_trace_path,
                    "sample_every": request.events_sample_every,
                }
            elif request.metrics:
                obs_spec = {"metrics": True, "trace_path": None}
            payload.update({
                "cells": [list(cell) for cell in request.cells],
                "settings": settings_to_dict(request.settings),
                "overrides": dict(request.overrides),
                "obs": obs_spec,
                "cache_dir": self.config.cache_dir,
                "engine_jobs": self.config.engine_jobs,
            })
        shard.send(payload)
        self._append_event(record, job_event(
            "started", record.job_id, shard=shard.index, pid=shard.pid,
        ))
        if record.obs_trace_path is not None:
            record.obs_tail_task = asyncio.get_running_loop().create_task(
                self._tail_obs_trace(record)
            )
        timeout = record.request.timeout_seconds
        if timeout is None:
            timeout = self.config.default_timeout_seconds
        if timeout is not None:
            record.timeout_handle = asyncio.get_running_loop().call_later(
                timeout, self._on_job_timeout, record.job_id,
            )

    def _on_job_timeout(self, job_id: str) -> None:
        """Deadline fired: reap the worker if the job is still running."""
        record = self.jobs.get(job_id)
        if record is None or record.terminal():
            return
        shard = self.pool.shard_for_job(job_id)
        if shard is not None:
            shard.kill()
            self.registry.counter("serve.worker_restarts").inc()
        else:
            self.queue.remove(job_id)
        self.registry.counter("serve.job_timeouts").inc()
        self._finish_job(record, "timeout", job_event(
            "timeout", job_id,
            after_seconds=record.request.timeout_seconds
            or self.config.default_timeout_seconds,
        ))
        self._dispatch_wake.set()

    def _finish_job(self, record: JobRecord, status: str,
                    final_event: Dict) -> None:
        """Terminal transition: stamp, account, emit, release the timer."""
        if record.terminal():
            return
        record.status = status
        record.finished_at = time.monotonic()
        if record.started_at is not None:
            self.queue.observe_job_seconds(
                record.finished_at - record.started_at
            )
        if record.timeout_handle is not None:
            record.timeout_handle.cancel()
            record.timeout_handle = None
        self._append_event(record, final_event)

    # -- worker messages -----------------------------------------------

    def _on_worker_message(self, shard_index: int, message: Dict) -> None:
        """React to one message from a worker pipe (runs in the loop)."""
        record = self.jobs.get(message.get("job", ""))
        if record is None or record.terminal():
            return  # late message from a cancelled/reaped job
        kind = message.get("type")
        if kind == "cell":
            record.results.append({
                "cell": message["cell"], "result": message["result"],
            })
            self._append_event(record, job_event(
                "cell_result", record.job_id,
                cell=message["cell"], result=message["result"],
            ))
            metrics = message["result"].get("fields", {}).get("metrics") or {}
            if metrics:
                self._merge_obs_snapshot(metrics)
        elif kind == "progress":
            self._append_event(record, job_event(
                "progress", record.job_id, tick=message.get("tick"),
            ))
        elif kind == "done":
            cache = message.get("cache")
            if cache:
                self.cache_hits += cache.get("hits", 0)
                self.cache_misses += cache.get("misses", 0)
            self._release_shard(record)
            self.registry.counter("serve.jobs_completed").inc()
            self._finish_job(record, "done", job_event(
                "done", record.job_id,
                cells=len(record.results),
                elapsed_seconds=round(
                    time.monotonic() - (record.started_at or 0.0), 3
                ),
                cache=cache,
            ))
        elif kind == "error":
            self._release_shard(record)
            self.registry.counter("serve.jobs_failed").inc()
            self._finish_job(record, "error", job_event(
                "error", record.job_id,
                error=message.get("error"),
                message=message.get("message"),
                context=message.get("context", {}),
            ))

    def _release_shard(self, record: JobRecord) -> None:
        """Mark the job's shard idle and kick the dispatcher."""
        shard = self.pool.shard_for_job(record.job_id)
        if shard is not None:
            shard.job_id = None
        self._dispatch_wake.set()

    def _on_worker_death(self, shard_index: int, job_id: Optional[str]) -> None:
        """A worker died mid-job without being reaped deliberately."""
        self.registry.counter("serve.worker_restarts").inc()
        record = self.jobs.get(job_id or "")
        if record is not None and not record.terminal():
            self.registry.counter("serve.jobs_failed").inc()
            self._finish_job(record, "error", job_event(
                "error", record.job_id, error="WorkerDied",
                message=f"worker process on shard {shard_index} died",
                context={"shard": shard_index},
            ))
        self._dispatch_wake.set()

    async def _tail_obs_trace(self, record: JobRecord) -> None:
        """Stream the worker's JSONL obs trace into ``obs_event`` events.

        The file grows while the job runs; the tail follows it and stops
        once the job is terminal and the remainder is consumed.  The
        spool file is deleted afterwards.
        """
        path = record.obs_trace_path
        handle = None
        buffered = ""
        try:
            while True:
                if handle is None and os.path.exists(path):
                    handle = open(path, "r", encoding="utf-8")
                if handle is not None:
                    buffered += handle.read()
                    while "\n" in buffered:
                        line, buffered = buffered.split("\n", 1)
                        if not line.strip():
                            continue
                        try:
                            data = json.loads(line)
                        except ValueError:
                            continue  # torn tail of an in-progress write
                        self._append_event(record, job_event(
                            "obs_event", record.job_id, data=data,
                        ))
                if record.terminal():
                    break
                await asyncio.sleep(0.05)
        finally:
            if handle is not None:
                handle.close()
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- metrics -------------------------------------------------------

    def _collect_gauges(self, registry: MetricsRegistry) -> None:
        """Snapshot-time serve gauges (queue depth, in-flight, cache)."""
        registry.gauge("serve.queue_depth").set(len(self.queue))
        registry.gauge("serve.inflight_jobs").set(self.pool.busy_count)
        lookups = self.cache_hits + self.cache_misses
        registry.gauge("serve.cache_hit_ratio").set(
            self.cache_hits / lookups if lookups else 0.0
        )

    def _merge_obs_snapshot(self, snapshot: Dict[str, Dict]) -> None:
        """Fold one job's obs metric snapshot into the /metrics aggregate.

        Counters and histograms accumulate across jobs; gauges keep the
        latest value — matching how a scrape-based system would see a
        fleet of short-lived runs.
        """
        for name, incoming in snapshot.items():
            current = self._obs_aggregate.get(name)
            if current is None or incoming["kind"] == "gauge":
                self._obs_aggregate[name] = json.loads(json.dumps(incoming))
            elif incoming["kind"] == "counter":
                current["value"] += incoming["value"]
            elif incoming["kind"] == "histogram":
                current["count"] += incoming["count"]
                current["sum"] += incoming["sum"]
                bins = current.setdefault("bins", {})
                for label, count in incoming.get("bins", {}).items():
                    bins[label] = bins.get(label, 0) + count
