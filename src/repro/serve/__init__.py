"""Translation as a service: the async experiment/replay server.

The package turns the sweep engine into a long-running service:
clients ``POST`` experiment cells, figure sweeps and uploaded ``.vpt``
trace replays as JSON; a sharded pool of worker processes resolves them
through the *same* :class:`~repro.experiments.engine.SweepEngine` fan-out
and disk cache a direct ``run_cells`` call uses — so a served cell is
byte-identical to a script-driven one and shares its cache entry — and
progress, per-cell results and obs events stream back as chunked NDJSON.

Layers (one module each, bottom-up):

``protocol``
    Request validation and the event schema.  Everything is checked at
    admission time, including dry-building every cell's
    ``SimulationConfig``, so workers never see malformed jobs.
``queue``
    :class:`~repro.serve.queue.FairPriorityQueue` — bounded, prioritised,
    client-fair admission with ``retry_after`` back-pressure hints.
``workers``
    :class:`~repro.serve.workers.ShardPool` — long-lived worker
    processes the server can reap (cancellation, timeouts) and respawn.
``server``
    :class:`~repro.serve.server.ServeServer` — the asyncio HTTP
    front-end, event streaming, ``/metrics`` and graceful drain.
``client``
    :class:`~repro.serve.client.ServeClient` — stdlib blocking client
    plus the ``python -m repro.serve.client`` CLI.

Run ``python -m repro.serve --port 8400`` to boot one; ``SERVING.md`` is
the full wire reference.
"""

from repro.serve.protocol import (
    EVENT_TYPES,
    JOB_KINDS,
    JOB_STATUSES,
    PRIORITIES,
    TERMINAL_STATUSES,
    JobRequest,
    ProtocolError,
    parse_job_request,
)
from repro.serve.queue import AdmissionError, FairPriorityQueue
from repro.serve.server import ROUTES, ServeConfig, ServeServer
from repro.serve.workers import ShardPool, WorkerShard


def __getattr__(name):
    """Lazy client exports: keep ``python -m repro.serve.client`` free of
    the runpy double-import warning while preserving
    ``from repro.serve import ServeClient``."""
    if name in ("ServeClient", "ServeClientError"):
        from repro.serve import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdmissionError",
    "EVENT_TYPES",
    "FairPriorityQueue",
    "JOB_KINDS",
    "JOB_STATUSES",
    "JobRequest",
    "PRIORITIES",
    "ProtocolError",
    "ROUTES",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeServer",
    "ShardPool",
    "TERMINAL_STATUSES",
    "WorkerShard",
    "parse_job_request",
]
