"""``python -m repro.serve`` — boot the translation service.

Runs :class:`~repro.serve.server.ServeServer` in the foreground until
SIGTERM/SIGINT, then drains gracefully: admission closes (503 with a
retry hint), queued and in-flight jobs finish (bounded by
``--drain-timeout``), workers shut down, and the process exits 0.  A
second signal skips the drain and stops immediately.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import signal
import sys
from typing import List, Optional

from repro.common.errors import MEHPTError
from repro.serve.server import ServeConfig, ServeServer


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve translation experiments, figure sweeps and "
                    "trace replays over HTTP (stdlib only).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback only)")
    parser.add_argument("--port", type=int, default=8400,
                        help="TCP port (0 = ephemeral, printed at boot)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker processes executing jobs")
    parser.add_argument("--engine-jobs", type=int, default=1,
                        help="SweepEngine fan-out inside each shard")
    parser.add_argument("--cache-dir", default=None,
                        help="sweep-engine disk cache (shared with direct "
                             "runs; omit to disable disk caching)")
    parser.add_argument("--spool-dir", default=".serve-spool",
                        help="trace uploads and obs event spools")
    parser.add_argument("--queue-capacity", type=int, default=64,
                        help="total queued jobs before 429s")
    parser.add_argument("--per-client-capacity", type=int, default=16,
                        help="queued jobs one client may hold")
    parser.add_argument("--default-timeout", type=float, default=None,
                        help="seconds before an untimed job is reaped "
                             "(default: no limit)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        help="seconds the shutdown drain waits for "
                             "in-flight jobs")
    parser.add_argument("--no-local-traces", action="store_true",
                        help="only uploaded traces may be replayed "
                             "(reject trace:<server-path> cells)")
    parser.add_argument("--log-level", default="info",
                        choices=["debug", "info", "warning", "error"])
    return parser


async def _run(config: ServeConfig) -> None:
    """Boot the server and wire signals to the graceful drain."""
    server = ServeServer(config)
    await server.start()
    print(f"repro.serve listening on http://{config.host}:{server.port}",
          flush=True)
    loop = asyncio.get_running_loop()
    drains = 0

    def on_signal() -> None:
        nonlocal drains
        drains += 1
        if drains == 1:
            loop.create_task(server.drain())
        else:  # second signal: stop now
            loop.create_task(server.stop())

    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, on_signal)
    await server.serve_forever()


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, validate the config, run until shutdown."""
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        engine_jobs=args.engine_jobs,
        cache_dir=args.cache_dir,
        spool_dir=args.spool_dir,
        queue_capacity=args.queue_capacity,
        per_client_capacity=args.per_client_capacity,
        default_timeout_seconds=args.default_timeout,
        drain_timeout_seconds=args.drain_timeout,
        allow_local_traces=not args.no_local_traces,
    )
    try:
        asyncio.run(_run(config))
    except MEHPTError as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
