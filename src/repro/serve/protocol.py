"""Request/response schema of the translation service.

Everything a client can send and everything the server can stream back
is defined here, as plain JSON-safe dictionaries validated up front —
the full wire reference lives in ``SERVING.md``, whose endpoint and
event tables are checked two-way against this module and
:data:`repro.serve.server.ROUTES` by ``tools/doccheck.py serving-docs``.

A submission is parsed into a :class:`JobRequest`: the sweep ``kind``
(``perf``, ``memory`` or ``datacenter`` — exactly the kinds the sweep
engine resolves — plus the diagnostics-only ``selftest``), the grid
``cells``, the
:class:`~repro.experiments.runner.ExperimentSettings` fields, scalar
``SimulationConfig`` overrides, and the serving knobs (priority, client
identity, timeout, event streaming).  Validation is eager and complete:
every cell's config is *constructed* via ``settings.config(...)`` at
parse time, so a request that would crash a worker process is rejected
with a 400 before it ever reaches the queue.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, MEHPTError
from repro.experiments.engine import TRACE_APP_PREFIX
from repro.experiments.runner import ExperimentSettings
from repro.workloads import workload_names

#: Job kinds the service accepts.  ``perf``, ``memory`` and
#: ``datacenter`` are the sweep engine's kinds; ``selftest`` runs a
#: worker-side sleep for drain, timeout and cancellation diagnostics
#: (documented in SERVING.md).
JOB_KINDS = ("perf", "memory", "datacenter", "selftest")

#: Priorities: 0 = interactive, 1 = normal (default), 2 = batch.
PRIORITIES = (0, 1, 2)

#: Terminal job statuses (no further events will be streamed).
TERMINAL_STATUSES = ("done", "error", "cancelled", "timeout")

#: All job statuses a client can observe via ``GET /v1/jobs/{id}``.
JOB_STATUSES = ("queued", "running") + TERMINAL_STATUSES

#: Every event type the server may stream on ``GET /v1/jobs/{id}/events``.
#: SERVING.md's "Event stream" table is checked against this tuple.
EVENT_TYPES = (
    "queued", "started", "progress", "cell_result", "obs_event",
    "done", "error", "cancelled", "timeout",
)

#: ExperimentSettings fields a request may set (``apps`` is implied by
#: the cells themselves and deliberately not accepted).
SETTINGS_FIELDS = (
    "scale", "trace_length", "seed", "fmfi", "base_cycles_per_access",
    "warmup_fraction",
)

#: Override values must be JSON scalars — exactly the engine's
#: disk-cacheable types, so a served cell and a direct engine call share
#: one cache key.  (The server adds non-scalar obs overrides itself for
#: event-streaming jobs; clients cannot.)
_SCALAR_TYPES = (bool, int, float, str, type(None))


class ProtocolError(MEHPTError):
    """A malformed or invalid request (mapped to HTTP 400)."""


@dataclass(frozen=True)
class JobRequest:
    """One validated job submission, ready for the queue.

    ``cells`` hold resolved ``trace:`` paths (uploads are translated to
    their spool location before validation).  ``events_sample_every``
    being non-None marks an event-streaming job: the worker runs with a
    JSONL trace sink and the server tails it back to the client.
    """

    kind: str
    cells: Tuple[Tuple[str, str, bool], ...]
    settings: ExperimentSettings
    overrides: Dict[str, object]
    client: str = "anonymous"
    priority: int = 1
    timeout_seconds: Optional[float] = None
    #: None = no obs event streaming; N = trace_sample_every for the run.
    events_sample_every: Optional[int] = None
    #: Collect the obs metric catalogue into results (and the server's
    #: aggregate /metrics exposition).
    metrics: bool = False
    #: selftest only: how long the worker sleeps.
    duration_seconds: float = 0.0

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary used in status responses."""
        return {
            "kind": self.kind,
            "cells": [list(cell) for cell in self.cells],
            "client": self.client,
            "priority": self.priority,
            "timeout_seconds": self.timeout_seconds,
            "events": self.events_sample_every,
            "metrics": self.metrics,
        }


def _require(condition: bool, message: str, **context) -> None:
    """Raise :class:`ProtocolError` with ``context`` unless ``condition``."""
    if not condition:
        raise ProtocolError(message, **context)


def _parse_cells(payload: object, trace_resolver) -> List[Tuple[str, str, bool]]:
    """Validate the ``cells`` array and resolve ``trace:`` app names."""
    _require(isinstance(payload, list) and payload,
             "cells must be a non-empty array", field="cells")
    known = set(workload_names())
    cells: List[Tuple[str, str, bool]] = []
    for index, entry in enumerate(payload):
        _require(isinstance(entry, dict),
                 f"cells[{index}] must be an object", field="cells")
        unknown = set(entry) - {"app", "organization", "thp"}
        _require(not unknown,
                 f"cells[{index}] has unknown keys {sorted(unknown)}",
                 field="cells")
        app = entry.get("app")
        organization = entry.get("organization")
        thp = entry.get("thp", False)
        _require(isinstance(app, str) and app,
                 f"cells[{index}].app must be a workload or trace name",
                 field="cells")
        _require(isinstance(thp, bool),
                 f"cells[{index}].thp must be a boolean", field="cells")
        if app.startswith(TRACE_APP_PREFIX):
            app = TRACE_APP_PREFIX + trace_resolver(
                app[len(TRACE_APP_PREFIX):]
            )
        else:
            _require(app in known,
                     f"cells[{index}].app {app!r} is not a registered "
                     f"workload (upload a trace or use one of "
                     f"{sorted(known)})", field="cells")
        # Organization validity is enforced by SimulationConfig below;
        # check the type here so the error names the cell.
        _require(isinstance(organization, str) and organization,
                 f"cells[{index}].organization must be a string",
                 field="cells")
        cells.append((app, organization, thp))
    return cells


def _parse_settings(payload: object) -> ExperimentSettings:
    """Build ``ExperimentSettings`` from the request's settings object."""
    if payload is None:
        return ExperimentSettings()
    _require(isinstance(payload, dict), "settings must be an object",
             field="settings")
    unknown = set(payload) - set(SETTINGS_FIELDS)
    _require(not unknown,
             f"settings has unknown fields {sorted(unknown)} "
             f"(accepted: {list(SETTINGS_FIELDS)})", field="settings")
    for name, value in payload.items():
        _require(isinstance(value, (int, float)) and not isinstance(value, bool),
                 f"settings.{name} must be a number", field="settings")
    try:
        return ExperimentSettings(**payload)
    except (ConfigurationError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid settings: {exc}", field="settings") from exc


def _parse_overrides(payload: object, kind: str = "perf") -> Dict[str, object]:
    """Validate config overrides: known scalar fields only.

    ``datacenter`` jobs may additionally pass ``dc_*`` machine-model
    knobs (see :class:`~repro.sim.datacenter.simulator.DatacenterParams`);
    those are validated against the params dataclass here, and kept out
    of the per-cell ``SimulationConfig`` dry-build by the caller.
    """
    if payload is None:
        return {}
    _require(isinstance(payload, dict), "overrides must be an object",
             field="overrides")
    from repro.sim.config import SimulationConfig
    from repro.sim.datacenter import DC_PREFIX

    allowed = {f.name for f in dataclasses.fields(SimulationConfig)}
    # Serving-internal knobs a request must not smuggle in directly.
    for reserved in ("obs", "fault_plan", "recovery", "trace_file"):
        allowed.discard(reserved)
    overrides: Dict[str, object] = {}
    dc_overrides: Dict[str, object] = {}
    for name, value in payload.items():
        if kind == "datacenter" and name.startswith(DC_PREFIX):
            _require(isinstance(value, _SCALAR_TYPES),
                     f"overrides.{name} must be a JSON scalar",
                     field="overrides")
            dc_overrides[name] = value
            overrides[name] = value
            continue
        _require(name in allowed,
                 f"overrides.{name} is not an overridable SimulationConfig "
                 f"field", field="overrides")
        _require(isinstance(value, _SCALAR_TYPES),
                 f"overrides.{name} must be a JSON scalar", field="overrides")
        overrides[name] = value
    if dc_overrides:
        from repro.sim.datacenter import DatacenterParams

        try:
            DatacenterParams.from_overrides(dc_overrides)
        except ConfigurationError as exc:
            raise ProtocolError(
                f"invalid datacenter overrides: {exc}", field="overrides"
            ) from exc
    return overrides


def parse_job_request(payload: object, trace_resolver=None) -> JobRequest:
    """Validate one ``POST /v1/jobs`` body into a :class:`JobRequest`.

    ``trace_resolver`` maps an uploaded trace handle (or a literal path,
    when the server allows it) to a readable ``.vpt`` path; it raises
    :class:`ProtocolError` for unknown handles.  Every cell's
    ``SimulationConfig`` is constructed here so organization names,
    scale, FMFI and every override are checked before admission.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    kind = payload.get("kind", "perf")
    _require(kind in JOB_KINDS, f"kind {kind!r} not in {list(JOB_KINDS)}",
             field="kind")
    client = payload.get("client", "anonymous")
    _require(isinstance(client, str) and client,
             "client must be a non-empty string", field="client")
    priority = payload.get("priority", 1)
    _require(priority in PRIORITIES,
             f"priority {priority!r} not in {list(PRIORITIES)}",
             field="priority")
    timeout = payload.get("timeout_seconds")
    if timeout is not None:
        _require(isinstance(timeout, (int, float)) and not isinstance(timeout, bool)
                 and timeout > 0,
                 "timeout_seconds must be a positive number", field="timeout_seconds")
        timeout = float(timeout)
    metrics = payload.get("metrics", False)
    _require(isinstance(metrics, bool), "metrics must be a boolean",
             field="metrics")

    if kind == "selftest":
        duration = payload.get("duration_seconds", 0.0)
        _require(isinstance(duration, (int, float)) and not isinstance(duration, bool)
                 and 0 <= duration <= 600,
                 "duration_seconds must be a number in [0, 600]",
                 field="duration_seconds")
        return JobRequest(
            kind=kind, cells=(), settings=ExperimentSettings(), overrides={},
            client=client, priority=priority, timeout_seconds=timeout,
            duration_seconds=float(duration),
        )

    resolver = trace_resolver if trace_resolver is not None else _reject_traces
    cells = _parse_cells(payload.get("cells"), resolver)
    settings = _parse_settings(payload.get("settings"))
    overrides = _parse_overrides(payload.get("overrides"), kind)

    events = payload.get("events")
    sample_every: Optional[int] = None
    if events is not None:
        _require(isinstance(events, dict), "events must be an object",
                 field="events")
        unknown = set(events) - {"sample_every"}
        _require(not unknown, f"events has unknown keys {sorted(unknown)}",
                 field="events")
        sample_every = events.get("sample_every", 1)
        _require(isinstance(sample_every, int) and not isinstance(sample_every, bool)
                 and sample_every >= 1,
                 "events.sample_every must be an integer >= 1", field="events")

    # Dry-build every cell's config: organization names, overrides and
    # settings all validate here (ConfigurationError -> 400).  The dc_*
    # machine-model knobs were already validated above and are not
    # SimulationConfig fields, so they stay out of the dry-build.
    config_overrides = {
        name: value for name, value in overrides.items()
        if not name.startswith("dc_")
    } if kind == "datacenter" else overrides
    for app, organization, thp in cells:
        try:
            settings.config(organization, thp, **config_overrides)
        except ConfigurationError as exc:
            raise ProtocolError(
                f"invalid cell ({app}, {organization}, thp={thp}): {exc}",
            ) from exc

    return JobRequest(
        kind=kind, cells=tuple(cells), settings=settings, overrides=overrides,
        client=client, priority=priority, timeout_seconds=timeout,
        events_sample_every=sample_every, metrics=metrics,
    )


def _reject_traces(handle: str) -> str:
    """Default resolver: no upload store configured."""
    raise ProtocolError(
        f"trace:{handle} cannot be resolved (no trace store configured)",
        field="cells",
    )


def job_event(event: str, job_id: str, **payload) -> Dict[str, object]:
    """Build one stream event (NDJSON line) with a checked type."""
    if event not in EVENT_TYPES:
        raise ConfigurationError(
            f"unknown stream event type {event!r}", field="event", value=event
        )
    record: Dict[str, object] = {"event": event, "job": job_id}
    record.update(payload)
    return record


def settings_to_dict(settings: ExperimentSettings) -> Dict[str, object]:
    """The JSON-safe settings fields (worker-side reconstruction)."""
    return {name: getattr(settings, name) for name in SETTINGS_FIELDS}
