"""Sharded worker pool: long-lived processes running the sweep engine.

Each :class:`WorkerShard` owns one OS process executing
:func:`_shard_main`: a loop that receives job payloads over a
``multiprocessing`` pipe, resolves every cell through a
:class:`~repro.experiments.engine.SweepEngine` — the *same* fan-out and
disk cache a direct ``run_cells`` call uses, so a served cell and a
script-driven cell share one cache key and one result byte-for-byte —
and streams per-cell results back as they complete.

Process lifecycle is the point of the shard layer:

* **Isolation.** A crashing or wedged job takes down only its shard's
  process; the pool reports the death, respawns the worker, and the
  other shards never notice.
* **Reaping.** Cancellation and timeouts cannot interrupt a running
  simulation cooperatively, so :meth:`WorkerShard.kill` terminates the
  process outright and respawns it — the ``serve.worker_restarts``
  counter records every such reap.
* **Fan-out reuse.** A multi-cell job is resolved in groups of
  ``engine_jobs`` cells; each group runs through ``SweepEngine``'s own
  ``ProcessPoolExecutor``, so a figure sweep submitted to one shard
  still fans out across cores while streaming group-by-group results.

The asyncio side never blocks: pipe reads run on executor threads and
feed messages back into the event loop via an ``on_message`` callback.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import time
from typing import Callable, Dict, List, Optional

logger = logging.getLogger(__name__)

#: Seconds a graceful stop waits for a worker to drain before terminating.
_STOP_GRACE_SECONDS = 5.0


def _run_sweep_job(payload: Dict, conn) -> None:
    """Resolve one perf/memory job cell-group by cell-group (worker side)."""
    from repro.experiments.engine import SweepEngine
    from repro.experiments.runner import ExperimentSettings
    from repro.sim.results import result_to_record

    settings = ExperimentSettings(**payload["settings"])
    overrides = dict(payload["overrides"])
    obs_spec = payload.get("obs")
    if obs_spec is not None:
        from repro.obs import ObservabilityConfig

        overrides["obs"] = ObservabilityConfig(
            metrics=obs_spec.get("metrics", False),
            trace_path=obs_spec.get("trace_path"),
            trace_sample_every=obs_spec.get("sample_every", 1),
        )
    engine = SweepEngine(
        jobs=payload.get("engine_jobs", 1),
        cache_dir=payload.get("cache_dir"),
        use_cache=payload.get("cache_dir") is not None,
    )
    cells = [tuple(cell) for cell in payload["cells"]]
    group_size = max(1, payload.get("engine_jobs", 1))
    for start in range(0, len(cells), group_size):
        group = cells[start:start + group_size]
        resolved = engine.run_cells(payload["kind"], settings, group, overrides)
        for cell in group:
            conn.send({
                "type": "cell",
                "job": payload["job"],
                "cell": list(cell),
                "result": result_to_record(resolved[cell]),
            })
    conn.send({
        "type": "done",
        "job": payload["job"],
        "cache": engine.cache_stats(),
    })


def _run_selftest_job(payload: Dict, conn) -> None:
    """Sleep in one-second ticks, reporting progress (worker side)."""
    deadline = time.monotonic() + payload.get("duration", 0.0)
    tick = 0
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        time.sleep(min(1.0, remaining))
        tick += 1
        conn.send({"type": "progress", "job": payload["job"], "tick": tick})
    conn.send({"type": "done", "job": payload["job"], "cache": None})


def _shard_main(conn) -> None:
    """Worker-process entry point: serve jobs until told to stop.

    Every library error is caught and reported as a structured
    ``error`` message — the process survives bad jobs; only a kill by
    the parent (cancellation, timeout) or a hard crash ends it.
    """
    import signal

    # The parent owns shutdown; a terminal's Ctrl-C must not race it.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            return
        if payload.get("op") == "stop":
            conn.close()
            return
        try:
            if payload["kind"] == "selftest":
                _run_selftest_job(payload, conn)
            else:
                _run_sweep_job(payload, conn)
        except Exception as exc:  # noqa: BLE001 - reported, never fatal
            conn.send({
                "type": "error",
                "job": payload.get("job", "?"),
                "error": type(exc).__name__,
                "message": str(exc),
                "context": getattr(exc, "context", {}),
            })


class WorkerShard:
    """One worker process plus its pipe and busy/idle bookkeeping."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[multiprocessing.Process] = None
        self.conn = None
        #: Job currently executing on this shard (None = idle).
        self.job_id: Optional[str] = None
        self.restarts = 0
        #: Set while a deliberate kill is in flight so the reader does
        #: not report the death as a crash.
        self.expect_death = False

    def spawn(self) -> None:
        """Start (or restart) the worker process with a fresh pipe."""
        parent_conn, child_conn = multiprocessing.Pipe()
        self.process = multiprocessing.Process(
            target=_shard_main, args=(child_conn,), daemon=True,
            name=f"repro-serve-shard-{self.index}",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    @property
    def pid(self) -> Optional[int]:
        """The worker process id (None before the first spawn)."""
        return self.process.pid if self.process is not None else None

    @property
    def busy(self) -> bool:
        """Whether a job is executing on this shard."""
        return self.job_id is not None

    def send(self, payload: Dict) -> None:
        """Ship one job payload to the worker (cheap; never blocks long)."""
        self.conn.send(payload)

    def kill(self) -> None:
        """Terminate the worker process and respawn it (reaping).

        Used for cancellation and timeouts: the simulation cannot be
        interrupted cooperatively, so the process is reaped and the
        shard restarted.  The caller owns marking the job's fate.
        """
        self.expect_death = True
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join()
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        self.restarts += 1
        self.job_id = None
        self.spawn()

    def stop(self) -> None:
        """Graceful shutdown: ask the loop to exit, then join."""
        try:
            self.conn.send({"op": "stop"})
        except (OSError, ValueError):
            pass
        if self.process is not None:
            self.process.join(timeout=_STOP_GRACE_SECONDS)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join()
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class ShardPool:
    """The asyncio-facing pool of :class:`WorkerShard` processes.

    ``on_message(shard_index, message)`` runs in the event loop for
    every worker message; ``on_worker_death(shard_index, job_id)`` runs
    when a worker dies *unexpectedly* while a job was in flight (the
    pool has already respawned the shard by then).
    """

    def __init__(
        self,
        shards: int,
        on_message: Callable[[int, Dict], None],
        on_worker_death: Callable[[int, Optional[str]], None],
    ) -> None:
        self.shards: List[WorkerShard] = [WorkerShard(i) for i in range(shards)]
        self._on_message = on_message
        self._on_worker_death = on_worker_death
        self._readers: List[asyncio.Task] = []
        self._stopping = False

    async def start(self) -> None:
        """Spawn every shard and start its pipe-reader task."""
        for shard in self.shards:
            shard.spawn()
            self._readers.append(
                asyncio.get_running_loop().create_task(self._read_loop(shard))
            )

    async def _read_loop(self, shard: WorkerShard) -> None:
        """Forward worker messages into the loop; handle worker death."""
        loop = asyncio.get_running_loop()
        while not self._stopping:
            conn = shard.conn
            try:
                message = await loop.run_in_executor(None, conn.recv)
            except (EOFError, OSError):
                if self._stopping:
                    return
                if shard.expect_death:
                    # Deliberate kill: the killer already respawned the
                    # process; just re-attach to the fresh pipe.
                    shard.expect_death = False
                    continue
                dead_job = shard.job_id
                shard.job_id = None
                shard.restarts += 1
                logger.warning(
                    "shard %d worker died (job %s); respawning",
                    shard.index, dead_job,
                )
                shard.spawn()
                self._on_worker_death(shard.index, dead_job)
                continue
            self._on_message(shard.index, message)

    def idle_shard(self) -> Optional[WorkerShard]:
        """Any idle shard, lowest index first (deterministic placement)."""
        for shard in self.shards:
            if not shard.busy:
                return shard
        return None

    def shard_for_job(self, job_id: str) -> Optional[WorkerShard]:
        """The shard currently executing ``job_id``, if any."""
        for shard in self.shards:
            if shard.job_id == job_id:
                return shard
        return None

    @property
    def busy_count(self) -> int:
        """Shards with a job in flight."""
        return sum(1 for shard in self.shards if shard.busy)

    @property
    def total_restarts(self) -> int:
        """Worker processes reaped or crashed since start."""
        return sum(shard.restarts for shard in self.shards)

    async def stop(self) -> None:
        """Stop reader tasks and shut every worker down."""
        self._stopping = True
        for shard in self.shards:
            shard.stop()
        for reader in self._readers:
            reader.cancel()
        await asyncio.gather(*self._readers, return_exceptions=True)
        self._readers.clear()
