"""Stdlib client for the translation service (plus a tiny CLI).

:class:`ServeClient` wraps ``http.client`` — no third-party HTTP stack —
and mirrors the endpoint table in ``SERVING.md`` one method per route.
Streaming uses the chunked NDJSON decoding that ``http.client`` performs
transparently: :meth:`ServeClient.events` yields one decoded event dict
per line as the server emits them.

The module doubles as a command-line client (used by the CI smoke job
and the ``examples/serving_client.py`` walkthrough)::

    python -m repro.serve.client --port 8400 health
    python -m repro.serve.client --port 8400 submit '{"kind": "perf", ...}'
    python -m repro.serve.client --port 8400 run '{"kind": "perf", ...}'
    python -m repro.serve.client --port 8400 upload traces/app.vpt
    python -m repro.serve.client --port 8400 events job-1
    python -m repro.serve.client --port 8400 cancel job-1
    python -m repro.serve.client --port 8400 metrics
"""

from __future__ import annotations

import http.client
import json
import sys
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import MEHPTError
from repro.serve.protocol import TERMINAL_STATUSES

#: Event types that end a stream (mirror of the terminal job statuses).
_TERMINAL_EVENTS = set(TERMINAL_STATUSES)


class ServeClientError(MEHPTError):
    """A non-2xx response from the service.

    ``context`` carries the HTTP ``status`` and the decoded ``body``;
    for 429/503 rejections ``retry_after_seconds`` is surfaced too.
    """


class ServeClient:
    """A blocking client for one ``repro.serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8400,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 content_type: str = "application/json") -> Tuple[int, object]:
        """One request/response exchange; JSON-decodes JSON responses."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Content-Type": content_type} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            if response.getheader("Content-Type", "").startswith(
                    "application/json"):
                payload: object = json.loads(raw.decode("utf-8"))
            else:
                payload = raw.decode("utf-8")
            return response.status, payload
        finally:
            conn.close()

    def _checked(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 content_type: str = "application/json") -> object:
        """Like :meth:`_request` but raises on non-2xx."""
        status, payload = self._request(method, path, body, content_type)
        if not 200 <= status < 300:
            context: Dict[str, object] = {"status": status, "body": payload}
            if isinstance(payload, dict):
                for key in ("retry_after_seconds", "reason"):
                    if payload.get(key) is not None:
                        context[key] = payload[key]
            message = (payload.get("error", str(payload))
                       if isinstance(payload, dict) else str(payload))
            raise ServeClientError(f"HTTP {status}: {message}", **context)
        return payload

    # -- one method per route ------------------------------------------

    def health(self) -> Dict:
        """``GET /healthz``."""
        return self._checked("GET", "/healthz")

    def queue(self) -> Dict:
        """``GET /v1/queue``."""
        return self._checked("GET", "/v1/queue")

    def metrics(self) -> str:
        """``GET /metrics`` (raw text exposition)."""
        return self._checked("GET", "/metrics")

    def submit(self, payload: Dict) -> Dict:
        """``POST /v1/jobs`` — returns the admission receipt.

        Raises :class:`ServeClientError` with ``retry_after_seconds`` in
        ``context`` when the queue pushes back (429) or the server is
        draining (503).
        """
        return self._checked(
            "POST", "/v1/jobs",
            json.dumps(payload).encode("utf-8"),
        )

    def status(self, job_id: str) -> Dict:
        """``GET /v1/jobs/{id}``."""
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict:
        """``DELETE /v1/jobs/{id}``."""
        return self._checked("DELETE", f"/v1/jobs/{job_id}")

    def upload_trace(self, path: str) -> Dict:
        """``POST /v1/traces`` — upload a ``.vpt`` file, get its handle."""
        with open(path, "rb") as trace:
            body = trace.read()
        return self._checked("POST", "/v1/traces", body,
                             content_type="application/octet-stream")

    def events(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[Dict]:
        """``GET /v1/jobs/{id}/events`` — yield decoded NDJSON events.

        The iterator ends when the server closes the stream (after the
        job's terminal event).  ``timeout`` bounds each read, not the
        whole stream.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout,
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read().decode("utf-8")
                raise ServeClientError(
                    f"HTTP {response.status} on event stream: {raw}",
                    status=response.status,
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    # -- conveniences --------------------------------------------------

    def wait(self, job_id: str,
             on_event=None) -> Tuple[Dict, List[Dict]]:
        """Follow the event stream to completion.

        Returns ``(terminal_event, cell_results)``; ``on_event`` (if
        given) is called with every streamed event as it arrives.
        """
        terminal: Optional[Dict] = None
        results: List[Dict] = []
        for event in self.events(job_id):
            if on_event is not None:
                on_event(event)
            if event.get("event") == "cell_result":
                results.append({"cell": event["cell"],
                                "result": event["result"]})
            if event.get("event") in _TERMINAL_EVENTS:
                terminal = event
        if terminal is None:
            raise ServeClientError(
                f"event stream for {job_id} ended without a terminal event",
            )
        return terminal, results

    def run(self, payload: Dict,
            on_event=None) -> Tuple[Dict, List[Dict]]:
        """Submit and wait: the one-call path scripts usually want."""
        receipt = self.submit(payload)
        return self.wait(receipt["job"], on_event=on_event)

    def submit_with_retry(self, payload: Dict, attempts: int = 5) -> Dict:
        """Submit, honouring back-pressure by sleeping ``retry_after``.

        The polite client loop SERVING.md documents: on 429, wait the
        server's hint and retry, up to ``attempts`` tries.
        """
        for attempt in range(attempts):
            try:
                return self.submit(payload)
            except ServeClientError as exc:
                retry_after = exc.context.get("retry_after_seconds")
                if exc.context.get("status") != 429 or retry_after is None \
                        or attempt == attempts - 1:
                    raise
                time.sleep(float(retry_after))
        raise AssertionError("unreachable")  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    """The command-line client (see the module docstring for verbs)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="Command-line client for the repro.serve service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8400)
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-request socket timeout (seconds)")
    sub = parser.add_subparsers(dest="verb", required=True)
    sub.add_parser("health", help="GET /healthz")
    sub.add_parser("queue", help="GET /v1/queue")
    sub.add_parser("metrics", help="GET /metrics")
    p_submit = sub.add_parser("submit", help="POST /v1/jobs (JSON argument)")
    p_submit.add_argument("payload", help="job JSON, or @file to read one")
    p_run = sub.add_parser("run",
                           help="submit, stream events, print results")
    p_run.add_argument("payload", help="job JSON, or @file to read one")
    p_status = sub.add_parser("status", help="GET /v1/jobs/{id}")
    p_status.add_argument("job")
    p_events = sub.add_parser("events", help="stream GET /v1/jobs/{id}/events")
    p_events.add_argument("job")
    p_cancel = sub.add_parser("cancel", help="DELETE /v1/jobs/{id}")
    p_cancel.add_argument("job")
    p_upload = sub.add_parser("upload", help="POST /v1/traces from a file")
    p_upload.add_argument("path")
    args = parser.parse_args(argv)

    client = ServeClient(args.host, args.port, timeout=args.timeout)

    def load_payload(text: str) -> Dict:
        if text.startswith("@"):
            with open(text[1:], "r", encoding="utf-8") as handle:
                return json.load(handle)
        return json.loads(text)

    try:
        if args.verb == "health":
            print(json.dumps(client.health(), indent=2, sort_keys=True))
        elif args.verb == "queue":
            print(json.dumps(client.queue(), indent=2, sort_keys=True))
        elif args.verb == "metrics":
            sys.stdout.write(client.metrics())
        elif args.verb == "submit":
            print(json.dumps(client.submit(load_payload(args.payload)),
                             indent=2, sort_keys=True))
        elif args.verb == "run":
            terminal, results = client.run(
                load_payload(args.payload),
                on_event=lambda e: print(json.dumps(e, sort_keys=True)),
            )
            if terminal.get("event") != "done":
                return 1
        elif args.verb == "status":
            print(json.dumps(client.status(args.job), indent=2,
                             sort_keys=True))
        elif args.verb == "events":
            for event in client.events(args.job):
                print(json.dumps(event, sort_keys=True))
        elif args.verb == "cancel":
            print(json.dumps(client.cancel(args.job), indent=2,
                             sort_keys=True))
        elif args.verb == "upload":
            print(json.dumps(client.upload_trace(args.path), indent=2,
                             sort_keys=True))
        return 0
    except ServeClientError as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        return 1
    except (ConnectionRefusedError, OSError) as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
