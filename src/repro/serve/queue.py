"""Bounded priority queue with per-client fairness and back-pressure.

The admission policy of the service, kept separate from both HTTP and
the worker pool so it can be tested as a plain data structure:

* **Priority.**  Three levels (0 interactive, 1 normal, 2 batch); a
  lower level is always drained before a higher one.
* **Fairness.**  Within one priority level, clients are drained
  round-robin: each pop takes the next client's oldest job, so a client
  enqueueing 100 jobs cannot starve a client enqueueing one.  The rotor
  advances past the popped client, making the schedule independent of
  submission bursts.
* **Back-pressure.**  The queue is bounded twice — a total capacity and
  a per-client share.  Either bound being hit raises
  :class:`AdmissionError` with a ``retry_after_seconds`` hint derived
  from the observed service rate; the server maps it to HTTP 429 plus a
  ``Retry-After`` header instead of letting the backlog grow without
  bound.

The structure is not thread-safe by design: the server drives it from a
single asyncio event loop.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, MEHPTError


class AdmissionError(MEHPTError):
    """The queue refused a job (mapped to HTTP 429).

    ``context`` carries ``reason`` (``queue_full`` or ``client_full``)
    and ``retry_after_seconds`` — the server surfaces both to clients.
    """


class FairPriorityQueue:
    """The bounded, client-fair, prioritised admission queue.

    Entries are opaque job objects; the queue only needs each job's
    ``client`` and ``priority`` at :meth:`push` time and a ``job_id``
    for targeted removal (cancellation of queued jobs).
    """

    def __init__(
        self,
        capacity: int = 64,
        per_client_capacity: int = 16,
        priorities: int = 3,
        default_job_seconds: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"capacity {capacity} must be >= 1",
                field="capacity", value=capacity,
            )
        if per_client_capacity < 1 or per_client_capacity > capacity:
            raise ConfigurationError(
                f"per_client_capacity {per_client_capacity} must be in "
                f"[1, capacity]", field="per_client_capacity",
                value=per_client_capacity,
            )
        self.capacity = capacity
        self.per_client_capacity = per_client_capacity
        #: lanes[priority][client] -> deque of (job_id, job) in FIFO order.
        self._lanes: List["OrderedDict[str, Deque[Tuple[str, object]]]"] = [
            OrderedDict() for _ in range(priorities)
        ]
        self._depth = 0
        self._per_client: Dict[str, int] = {}
        #: Exponential moving average of job service seconds, fed by the
        #: server as jobs finish; seeds the retry-after estimate.
        self._ema_job_seconds = default_job_seconds
        self.pushed = 0
        self.popped = 0
        self.rejected = 0

    # -- admission -----------------------------------------------------

    def push(self, job_id: str, client: str, priority: int, job: object) -> int:
        """Admit one job or raise :class:`AdmissionError`.

        Returns the queue depth *after* admission (clients see their
        position in the ``queued`` event).
        """
        if self._depth >= self.capacity:
            self.rejected += 1
            raise AdmissionError(
                f"queue is full ({self._depth}/{self.capacity} jobs)",
                reason="queue_full",
                retry_after_seconds=self.retry_after_hint(),
            )
        held = self._per_client.get(client, 0)
        if held >= self.per_client_capacity:
            self.rejected += 1
            raise AdmissionError(
                f"client {client!r} already holds {held} queued jobs "
                f"(per-client cap {self.per_client_capacity})",
                reason="client_full",
                retry_after_seconds=self.retry_after_hint(client=client),
            )
        lane = self._lanes[priority]
        if client not in lane:
            lane[client] = deque()
        lane[client].append((job_id, job))
        self._per_client[client] = held + 1
        self._depth += 1
        self.pushed += 1
        return self._depth

    # -- draining ------------------------------------------------------

    def pop(self) -> Optional[Tuple[str, object]]:
        """The next job by (priority, client round-robin, FIFO), or None."""
        for lane in self._lanes:
            if not lane:
                continue
            # Round-robin: take the first client's oldest job, then move
            # that client to the back of the rotor (or drop it if empty).
            client, jobs = next(iter(lane.items()))
            job_id, job = jobs.popleft()
            del lane[client]
            if jobs:
                lane[client] = jobs  # re-append at the rotor's tail
            self._account_removal(client)
            self.popped += 1
            return job_id, job
        return None

    def remove(self, job_id: str) -> Optional[object]:
        """Remove a specific queued job (cancellation), or None if absent."""
        for lane in self._lanes:
            for client, jobs in lane.items():
                for index, (queued_id, job) in enumerate(jobs):
                    if queued_id == job_id:
                        del jobs[index]
                        if not jobs:
                            del lane[client]
                        self._account_removal(client)
                        return job
        return None

    def _account_removal(self, client: str) -> None:
        self._depth -= 1
        remaining = self._per_client.get(client, 1) - 1
        if remaining:
            self._per_client[client] = remaining
        else:
            self._per_client.pop(client, None)

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return self._depth

    def depth_for(self, client: str) -> int:
        """Queued jobs currently held by ``client``."""
        return self._per_client.get(client, 0)

    def observe_job_seconds(self, seconds: float) -> None:
        """Feed one completed job's service time into the EMA (alpha 0.3)."""
        if seconds >= 0:
            self._ema_job_seconds += 0.3 * (seconds - self._ema_job_seconds)

    def retry_after_hint(self, client: Optional[str] = None) -> float:
        """Seconds a rejected client should wait before retrying.

        ``queue_full``: time to drain the whole backlog at the observed
        service rate.  ``client_full``: time to drain the client's own
        share.  Never less than one second — sub-second retry storms are
        exactly what back-pressure exists to prevent.
        """
        backlog = self._per_client.get(client, 0) if client else self._depth
        return max(1.0, round(backlog * self._ema_job_seconds, 1))
