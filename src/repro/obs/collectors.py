"""Snapshot-time collectors: copy component counters into the registry.

The simulator's components already count everything the paper's figures
need (walker cycles, cuckoo kick histograms, allocator footprints);
observing them costs nothing until a snapshot is taken.  This module
registers one collector per component on a built
:class:`~repro.sim.config.SimulatedSystem`; each collector runs inside
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` and copies the
component's state into catalogue-validated metrics.

Everything here is duck-typed against the component attributes (``stats``
objects, lifetime counters) rather than against the classes, so the
module imports nothing from the simulator and stays a leaf.

All byte quantities are published at full-scale equivalents, matching
``MemoryFootprintResult`` (the allocator already accounts at ``scale x``;
table and way bytes are multiplied back here).
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry


def register_system_metrics(registry: MetricsRegistry, system) -> None:
    """Register collectors for every instrumented component of ``system``."""
    scale = system.config.scale
    _register_alloc(registry, system.allocator.stats)
    _register_tlb(registry, system.tlb)
    _register_walker(registry, system.walker)
    _register_kernel(registry, system.address_space.totals)
    _register_degradation(registry, system.degradation)
    if system.config.organization == "radix":
        _register_radix_tables(registry, system.page_tables, scale)
    else:
        _register_hashed_tables(registry, system.page_tables, scale)
        if system.config.organization == "mehpt":
            _register_mehpt(registry, system.page_tables, scale)


def _register_alloc(registry: MetricsRegistry, stats) -> None:
    def collect(reg: MetricsRegistry) -> None:
        reg.counter("alloc.allocations").set_total(stats.allocations)
        reg.counter("alloc.frees").set_total(stats.frees)
        reg.counter("alloc.cycles").set_total(stats.cycles)
        reg.counter("alloc.failed_allocations").set_total(stats.failed_allocations)
        reg.gauge("alloc.current_bytes").set(stats.current_bytes)
        reg.gauge("alloc.peak_bytes").set(stats.peak_bytes)
        reg.gauge("alloc.max_contiguous_bytes").set(stats.max_contiguous_bytes)

    registry.add_collector(collect)


def _register_tlb(registry: MetricsRegistry, tlb) -> None:
    def collect(reg: MetricsRegistry) -> None:
        reg.counter("tlb.translations").set_total(tlb.translations)
        reg.counter("tlb.l1_hits").set_total(tlb.l1_hits)
        reg.counter("tlb.l2_hits").set_total(tlb.l2_hits)
        reg.counter("tlb.walks").set_total(tlb.walks)
        reg.counter("tlb.faults").set_total(tlb.faults)

    registry.add_collector(collect)


def _register_walker(registry: MetricsRegistry, walker) -> None:
    def collect(reg: MetricsRegistry) -> None:
        reg.counter("walker.walks").set_total(walker.walks)
        reg.counter("walker.walk_cycles").set_total(walker.total_cycles)
        reg.counter("walker.memory_accesses").set_total(walker.total_accesses)
        if hasattr(walker, "cwt_memory_reads"):
            reg.counter("walker.cwt_memory_reads").set_total(
                walker.cwt_memory_reads
            )
        if hasattr(walker, "l2p_hidden_accesses"):
            reg.counter("l2p.hidden_accesses").set_total(
                walker.l2p_hidden_accesses
            )
            reg.counter("l2p.exposed_cycles").set_total(
                walker.l2p_exposed_cycles
            )

    registry.add_collector(collect)


def _register_kernel(registry: MetricsRegistry, totals) -> None:
    def collect(reg: MetricsRegistry) -> None:
        reg.counter("kernel.faults").set_total(totals.faults)
        reg.counter("kernel.fault_cycles").set_total(totals.cycles)
        reg.counter("kernel.pt_alloc_cycles").set_total(totals.pt_alloc_cycles)
        reg.counter("kernel.data_alloc_cycles").set_total(totals.data_alloc_cycles)
        reg.counter("kernel.reinsert_cycles").set_total(totals.reinsert_cycles)
        reg.counter("kernel.kicks").set_total(totals.kicks)
        reg.counter("kernel.pages_mapped_4k").set_total(totals.pages_mapped_4k)
        reg.counter("kernel.pages_mapped_2m").set_total(totals.pages_mapped_2m)

    registry.add_collector(collect)


def _register_degradation(registry: MetricsRegistry, log) -> None:
    def collect(reg: MetricsRegistry) -> None:
        for kind, count in sorted(log.counts().items()):
            reg.counter("faults.events", kind=kind).set_total(count)
        reg.counter("faults.recovery_cycles").set_total(log.recovery_cycles)

    registry.add_collector(collect)


def _register_radix_tables(registry: MetricsRegistry, tables, scale: int) -> None:
    def collect(reg: MetricsRegistry) -> None:
        reg.gauge("radix.table_bytes").set(tables.table_bytes() * scale)

    registry.add_collector(collect)


def _register_hashed_tables(registry: MetricsRegistry, tables, scale: int) -> None:
    def collect(reg: MetricsRegistry) -> None:
        for page_size, clustered in tables.tables.items():
            table = clustered.table
            stats = table.stats
            reg.counter("cuckoo.inserts", size=page_size).set_total(stats.inserts)
            reg.counter("cuckoo.lookups", size=page_size).set_total(stats.lookups)
            reg.counter("cuckoo.rehash_steps", size=page_size).set_total(
                stats.rehash_steps
            )
            reg.counter("cuckoo.rehash_conflicts", size=page_size).set_total(
                stats.rehash_conflicts
            )
            reg.counter("cuckoo.eager_migrations", size=page_size).set_total(
                stats.eager_migrations
            )
            reg.histogram("cuckoo.kick_depth", size=page_size).set_from_bins(
                stats.kick_histogram
            )
            reg.gauge("cuckoo.occupancy", size=page_size).set(table.occupancy())
            reg.gauge("cuckoo.total_bytes", size=page_size).set(
                table.total_bytes() * scale
            )
            for way in table.ways:
                labels = {"size": page_size, "way": way.index}
                reg.gauge("cuckoo.way_occupancy", **labels).set(way.occupancy())
                reg.gauge("cuckoo.way_bytes", **labels).set(
                    way.total_bytes() * scale
                )
                reg.counter("cuckoo.way_upsizes", **labels).set_total(way.upsizes)
                reg.counter("cuckoo.way_downsizes", **labels).set_total(
                    way.downsizes
                )
                reg.counter("cuckoo.way_inplace_upsizes", **labels).set_total(
                    way.inplace_upsizes
                )
                reg.counter("cuckoo.way_rollbacks", **labels).set_total(
                    way.rollbacks
                )
                reg.counter("cuckoo.way_rehash_relocated", **labels).set_total(
                    way.rehash_relocated
                )

    registry.add_collector(collect)


def _register_mehpt(registry: MetricsRegistry, tables, scale: int) -> None:
    def collect(reg: MetricsRegistry) -> None:
        reg.gauge("l2p.entries_used").set(tables.l2p_entries_used())
        for page_size, count in tables.chunk_transitions.items():
            reg.counter("mehpt.chunk_transitions", size=page_size).set_total(count)
            for way in tables.tables[page_size].table.ways:
                reg.gauge("mehpt.chunk_bytes", size=page_size, way=way.index).set(
                    way.storage.chunk_bytes * scale
                )

    registry.add_collector(collect)
