"""Run manifests: provenance sidecars for cached sweep results.

Every cell the sweep engine computes and stores on disk gets a
``<key>.manifest.json`` file next to its ``<key>.json`` record, answering
"where did this number come from?" without re-running anything: the cache
key and schema version that produced it, the cell coordinates and the
methodology fingerprint, the seed, how long the cell took on which host,
and the run's metric snapshot (empty unless the run was built with an
:class:`~repro.obs.ObservabilityConfig`).

Manifests are *write-only* from the engine's point of view:
:class:`~repro.experiments.engine.ResultCache` never reads them, so a
missing or stale manifest can never invalidate a result record.  The
``host``/``elapsed_seconds``/``written_at`` fields are deliberately kept
out of the result records themselves — results stay byte-reproducible,
provenance lives here.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from typing import Dict, Tuple

#: Bump when the manifest layout changes.  Independent of the result
#: cache schema: manifests are advisory and never gate cache hits.
MANIFEST_SCHEMA_VERSION = 1


def manifest_path(directory: str, key: str) -> str:
    """The manifest file accompanying cache record ``<key>.json``.

    The ``.manifest.json`` suffix sorts *after* the record (``'j' <
    'm'``) and never collides with a record name (keys are hex digests).
    """
    return os.path.join(directory, f"{key}.manifest.json")


def build_manifest(
    *,
    key: str,
    kind: str,
    cell: Tuple[str, str, bool],
    cache_schema: int,
    settings: Dict[str, object],
    seed: int,
    elapsed_seconds: float,
    metrics: Dict[str, Dict],
) -> Dict[str, object]:
    """Assemble one manifest record (plain JSON-safe dict)."""
    app, organization, thp = cell
    return {
        "manifest_schema": MANIFEST_SCHEMA_VERSION,
        "cache_schema": cache_schema,
        "key": key,
        "kind": kind,
        "cell": {"app": app, "organization": organization, "thp": thp},
        "settings": dict(settings),
        "seed": seed,
        "elapsed_seconds": round(elapsed_seconds, 6),
        "host": platform.node(),
        "python": platform.python_version(),
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "metrics": metrics,
    }


def write_manifest(path: str, manifest: Dict[str, object]) -> None:
    """Atomically write ``manifest`` (temp file + ``os.replace``)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, sort_keys=True, indent=2)
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def read_manifest(path: str) -> Dict[str, object]:
    """Load one manifest; raises ``OSError``/``ValueError`` on damage."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
