"""Rebuild the differential performance model from a trace, and report.

``repro.obs.report`` closes the loop between the paper's Figure 9 and
the event stream: given a JSONL trace recorded by
:class:`~repro.obs.trace.JsonlTraceSink`, it re-derives every term of

    cpa = base + translation_cycles / accesses
               + (pt_alloc + reinsert + l2p_exposed + rehash_moves)
                 / fullscale_accesses

from events alone (see :mod:`repro.sim.results` for the model) and
cross-checks each term against the values the simulator itself computed,
which ride along in the ``run_end`` event.

How each term is rebuilt:

* **translation** — the sum of ``tlb_miss`` cycle costs after
  ``measure_start`` (L1 hits are free; the fixed L2-hit cost times the
  measured L2-hit count from ``run_end`` covers the L2 tier).
* **pt_alloc** — the page-table allocation baseline carried by
  ``run_start`` plus every ``fault_serviced`` event's ``pt_alloc_cycles``
  bill (radix bills are per-fault at scaled counts, so they multiply by
  the footprint scale instead).
* **reinsert / l2p_exposed** — the ``fault_serviced`` kick bills times
  the model constants from ``run_start``.
* **rehash_moves** — ``run_end``'s relocated-entry count times the
  per-entry move cost.

``fault_serviced`` and the resize/run lifecycle events are always
emitted, so the OS-side terms are exact at any ``trace_sample_every``;
``tlb_miss`` is sampled, so the translation term is exact at
``sample_every == 1`` and a scaled estimate above that (the report says
which).

Usage::

    python -m repro.obs.report TRACE.jsonl [--json]
    python -m repro.obs.report --record APP ORG [--thp] --out TRACE.jsonl

The ``--record`` mode runs one Figure-9 cell with tracing enabled (the
``run_all`` methodology defaults), writes the trace, then reports on it.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.obs.trace import (
    EVENT_FAULT_SERVICED,
    EVENT_MEASURE_START,
    EVENT_RUN_END,
    EVENT_RUN_START,
    EVENT_TLB_MISS,
    first_of_kind,
    read_jsonl,
)

#: Cross-check tolerance: the reconstruction repeats the simulator's own
#: float arithmetic in a different order, so agreement is near-exact.
_REL_TOL = 1e-9
_ABS_TOL = 1e-6


def attribute(events: List[Dict]) -> Dict[str, object]:
    """Per-term cycle attribution for one recorded run.

    ``events`` is the parsed stream of one run (see
    :func:`~repro.obs.trace.read_jsonl`).  Raises
    :class:`~repro.common.errors.ConfigurationError` when the stream has
    no ``run_start`` — nothing can be attributed without the model
    constants it carries.
    """
    run_start = first_of_kind(events, EVENT_RUN_START)
    if run_start is None:
        raise ConfigurationError(
            "trace contains no run_start event; was it recorded by "
            "TranslationSimulator with tracing enabled?"
        )
    run_end = first_of_kind(events, EVENT_RUN_END)
    organization = run_start["organization"]
    scale = run_start["scale"]
    sample_every = int(run_start.get("sample_every", 1))

    # The measured window is everything after measure_start in stream
    # order (stream order is emission order; cycle stamps can tie).
    measure_index: Optional[int] = None
    for i, event in enumerate(events):
        if event["kind"] == EVENT_MEASURE_START:
            measure_index = i
            break
    measured = events[measure_index + 1:] if measure_index is not None else []

    tlb_miss_cycles = sum(
        e["cycles"] for e in measured if e["kind"] == EVENT_TLB_MISS
    ) * sample_every
    l2_hits = run_end["l2_hits"] if run_end is not None else 0
    translation = tlb_miss_cycles + l2_hits * run_start["l2_hit_cycles"]

    # Fault bills span the whole run (warmup faults allocate page-table
    # memory too), matching the simulator's cumulative totals.
    fault_events = [e for e in events if e["kind"] == EVENT_FAULT_SERVICED]
    pt_fault_cycles = sum(e["pt_alloc_cycles"] for e in fault_events)
    kicks = sum(e["kicks"] for e in fault_events)
    data_alloc = sum(e["data_alloc_cycles"] for e in fault_events)

    rehash_moves = 0.0
    if organization == "radix":
        pt_alloc = pt_fault_cycles * scale
        reinsert = 0.0
        l2p_exposed = 0.0
    else:
        pt_alloc = run_start["pt_alloc_cycles_at_start"] + pt_fault_cycles
        reinsert = sum(e["reinsert_cycles"] for e in fault_events) * scale
        relocated = run_end["relocated_entries"] if run_end is not None else 0
        rehash_moves = relocated * scale * run_start["rehash_entry_cycles"]
        l2p_exposed = (
            kicks * scale * run_start["l2p_cycles"]
            if organization == "mehpt"
            else 0.0
        )

    events_done = run_end["events_done"] if run_end is not None else 0
    accesses = (
        max(0, events_done - run_start["warmup_events"])
        * run_start["page_repeats"]
    )
    base = run_start["base_cycles_per_access"]
    fullscale = run_start["fullscale_accesses"]
    translation_cpa = translation / accesses if accesses else 0.0
    os_cycles = pt_alloc + reinsert + l2p_exposed + rehash_moves
    os_cpa = os_cycles / fullscale if fullscale else 0.0

    attribution: Dict[str, object] = {
        "workload": run_start["workload"],
        "organization": organization,
        "thp": run_start["thp"],
        "scale": scale,
        "sample_every": sample_every,
        "exact": sample_every == 1,
        "events": len(events),
        "faults": len(fault_events),
        "accesses": accesses,
        "terms": {
            "base_cpa": base,
            "translation_cycles": translation,
            "translation_cpa": translation_cpa,
            "pt_alloc_cycles": pt_alloc,
            "reinsert_cycles": reinsert,
            "l2p_exposed_cycles": l2p_exposed,
            "rehash_move_cycles": rehash_moves,
            "os_cpa": os_cpa,
            "cycles_per_access": base + translation_cpa + os_cpa,
        },
        "excluded_terms": {
            "fault_overhead_cycles": (
                len(fault_events) * run_start["fault_overhead_cycles"]
            ),
            "data_alloc_cycles": data_alloc,
        },
    }
    if run_end is not None:
        attribution["crosscheck"] = _crosscheck(
            attribution["terms"], run_end, exact_translation=sample_every == 1
        )
    return attribution


def _crosscheck(
    terms: Dict[str, float], run_end: Dict, exact_translation: bool
) -> Dict[str, Dict]:
    """Compare each rebuilt term with the simulator's run_end value."""
    checked = {}
    for name in (
        "translation_cycles",
        "pt_alloc_cycles",
        "reinsert_cycles",
        "l2p_exposed_cycles",
        "rehash_move_cycles",
    ):
        rebuilt = terms[name]
        simulator = run_end[name]
        sampled = name == "translation_cycles" and not exact_translation
        checked[name] = {
            "events": rebuilt,
            "simulator": simulator,
            "match": (
                "sampled-estimate"
                if sampled
                else math.isclose(
                    rebuilt, simulator, rel_tol=_REL_TOL, abs_tol=_ABS_TOL
                )
            ),
        }
    return checked


def format_report(attribution: Dict[str, object]) -> str:
    """Human-readable rendering of one attribution."""
    terms = attribution["terms"]
    lines = [
        "run: {workload} / {organization} / thp={thp} (scale {scale})".format(
            **attribution
        ),
        "events: {events}  faults: {faults}  accesses: {accesses}  "
        "sample_every: {sample_every}{note}".format(
            note="" if attribution["exact"] else "  (translation is an estimate)",
            **attribution,
        ),
        "",
        "cycles-per-access attribution (the Figure 9 model):",
        f"  base                 {terms['base_cpa']:14.4f}",
        f"  translation          {terms['translation_cpa']:14.4f}"
        f"   ({terms['translation_cycles']:.0f} cycles)",
        f"  pt_alloc             {terms['pt_alloc_cycles']:14.0f} cycles",
        f"  reinsert             {terms['reinsert_cycles']:14.0f} cycles",
        f"  l2p_exposed          {terms['l2p_exposed_cycles']:14.0f} cycles",
        f"  rehash_moves         {terms['rehash_move_cycles']:14.0f} cycles",
        f"  os (differential)    {terms['os_cpa']:14.4f}",
        f"  cycles_per_access    {terms['cycles_per_access']:14.4f}",
    ]
    excluded = attribution["excluded_terms"]
    lines.append(
        "excluded from the model: fault_overhead={:.0f}  data_alloc={:.0f}".format(
            excluded["fault_overhead_cycles"], excluded["data_alloc_cycles"]
        )
    )
    crosscheck = attribution.get("crosscheck")
    if crosscheck:
        lines.append("")
        lines.append("cross-check against the simulator's run_end event:")
        for name, check in crosscheck.items():
            lines.append(
                f"  {name:22s} events={check['events']:.2f}  "
                f"simulator={check['simulator']:.2f}  match={check['match']}"
            )
    return "\n".join(lines)


def record_cell(
    app: str,
    organization: str,
    thp: bool,
    out: str,
    sample_every: int = 1,
    **settings_overrides,
) -> None:
    """Run one Figure-9 cell with JSONL tracing on, writing ``out``.

    Uses the ``run_all`` methodology defaults
    (:class:`~repro.experiments.runner.ExperimentSettings`) so the
    recorded cell matches the headline sweep.
    """
    # Imported here, not at module top: repro.obs is a leaf package the
    # simulator imports; pulling the experiment stack in at import time
    # would make that circular.
    from repro.experiments.runner import ExperimentSettings
    from repro.obs import ObservabilityConfig
    from repro.sim.simulator import TranslationSimulator
    from repro.workloads import get_workload

    settings = ExperimentSettings(**settings_overrides)
    workload = get_workload(app, scale=settings.scale, seed=settings.seed)
    config = settings.config(
        organization,
        thp,
        obs=ObservabilityConfig(
            trace_path=out, trace_sample_every=sample_every
        ),
    )
    simulator = TranslationSimulator(
        workload,
        config,
        trace_length=settings.trace_length,
        warmup_fraction=settings.warmup_fraction,
    )
    simulator.run()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Attribute per-phase translation cycles from a JSONL trace.",
    )
    parser.add_argument("trace", nargs="?", help="JSONL trace to analyse")
    parser.add_argument(
        "--json", action="store_true", help="emit the attribution as JSON"
    )
    parser.add_argument(
        "--record",
        nargs=2,
        metavar=("APP", "ORG"),
        help="record one Figure-9 cell with tracing on before reporting",
    )
    parser.add_argument("--thp", action="store_true", help="record with THP on")
    parser.add_argument("--out", help="trace path for --record")
    parser.add_argument(
        "--sample-every",
        type=int,
        default=1,
        help="trace_sample_every for --record (default 1: exact)",
    )
    parser.add_argument("--scale", type=int, help="footprint scale for --record")
    parser.add_argument(
        "--trace-length", type=int, help="trace length for --record"
    )
    args = parser.parse_args(argv)

    if args.record:
        if not args.out:
            parser.error("--record requires --out TRACE.jsonl")
        app, organization = args.record
        overrides = {}
        if args.scale is not None:
            overrides["scale"] = args.scale
        if args.trace_length is not None:
            overrides["trace_length"] = args.trace_length
        record_cell(
            app,
            organization,
            args.thp,
            args.out,
            sample_every=args.sample_every,
            **overrides,
        )
        trace_path = args.out
    elif args.trace:
        trace_path = args.trace
    else:
        parser.error("give a TRACE.jsonl to analyse, or --record APP ORG --out")

    attribution = attribute(read_jsonl(trace_path))
    if args.json:
        print(json.dumps(attribution, indent=2, sort_keys=True))
    else:
        print(format_report(attribution))
    crosscheck = attribution.get("crosscheck", {})
    failed = any(check["match"] is False for check in crosscheck.values())
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
