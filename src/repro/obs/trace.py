"""Structured event tracing: typed events, sampling, and trace sinks.

Events are flat dictionaries with three reserved keys — ``kind`` (one of
the ``EVENT_*`` constants), ``cycle`` (the monotonic simulated-cycle
timestamp supplied by the :class:`~repro.obs.Observability` clock) and
``seq`` (a per-run sequence number that orders events sharing a cycle).
Everything else is event-specific payload.  Wall-clock time never
appears in an event: two runs with the same seed produce byte-identical
JSONL traces, which ``tests/test_obs_trace.py`` asserts.

Sampling: high-frequency kinds (:data:`SAMPLED_KINDS` — TLB misses,
walk start/end, cuckoo kicks) are kept only every
``trace_sample_every``-th occurrence *of that kind*; structural events
(run boundaries, faults serviced, resizes, chunk transitions, injected
faults) are always emitted, since their count is bounded by the run, not
by the trace length.

Sinks implement the :class:`TraceSink` protocol (``emit`` + ``close``).
:class:`JsonlTraceSink` writes one sorted-key JSON object per line;
:class:`RingBufferTraceSink` keeps the last *N* events in memory for
tests and interactive use.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

# -- event kinds -------------------------------------------------------

#: Run lifecycle: emitted once, carries the model constants the report
#: tool needs (organization, scale, per-event cycle costs).
EVENT_RUN_START = "run_start"
#: Warmup boundary: measurement (and cycle attribution) starts here.
EVENT_MEASURE_START = "measure_start"
#: Run lifecycle: emitted once, carries the simulator's own term values
#: so a reconstruction can cross-check itself.
EVENT_RUN_END = "run_end"

#: A translation missed every TLB level and paid visible cycles.
EVENT_TLB_MISS = "tlb_miss"
#: A page walk began (sampled; pairs with walk_end via ``walk``).
EVENT_WALK_START = "walk_start"
#: A page walk finished, with its latency breakdown.
EVENT_WALK_END = "walk_end"
#: An insertion displaced entries (payload counts the kicks).
EVENT_CUCKOO_KICK = "cuckoo_kick"

#: A page fault was serviced (payload carries the fault's cycle bill).
EVENT_FAULT_SERVICED = "fault_serviced"
#: A table way began resizing.
EVENT_RESIZE_BEGIN = "resize_begin"
#: A resize finished and the old storage was released.
EVENT_RESIZE_COMMIT = "resize_commit"
#: An in-flight resize was abandoned atomically.
EVENT_RESIZE_ROLLBACK = "resize_rollback"
#: ME-HPT moved a way to a different chunk size (out-of-place).
EVENT_CHUNK_TRANSITION = "chunk_transition"
#: The fault-injection plan fired at an instrumented site.
EVENT_FAULT_INJECTED = "fault_injected"

#: A TLB shootdown broadcast IPIs to every core that touched the
#: address space (payload carries the core count and cycle bill).
EVENT_TLB_SHOOTDOWN = "tlb_shootdown"
#: Page-table nodes/chunks were copied or re-homed to another socket
#: (Mitosis-style replication or migrate-on-first-touch).
EVENT_PT_MIGRATION = "pt_migration"
#: A tenant forked, exec'd, or exited in the datacenter churn model.
EVENT_PROCESS_LIFECYCLE = "process_lifecycle"

#: Kinds subject to ``trace_sample_every`` down-sampling.
SAMPLED_KINDS = frozenset({
    EVENT_TLB_MISS, EVENT_WALK_START, EVENT_WALK_END, EVENT_CUCKOO_KICK,
})

#: Every kind a conforming trace may contain.
ALL_KINDS = frozenset({
    EVENT_RUN_START, EVENT_MEASURE_START, EVENT_RUN_END,
    EVENT_TLB_MISS, EVENT_WALK_START, EVENT_WALK_END, EVENT_CUCKOO_KICK,
    EVENT_FAULT_SERVICED, EVENT_RESIZE_BEGIN, EVENT_RESIZE_COMMIT,
    EVENT_RESIZE_ROLLBACK, EVENT_CHUNK_TRANSITION, EVENT_FAULT_INJECTED,
    EVENT_TLB_SHOOTDOWN, EVENT_PT_MIGRATION, EVENT_PROCESS_LIFECYCLE,
})


class TraceSink:
    """Protocol for trace destinations.

    Implementations receive fully-formed event dicts (``kind``,
    ``cycle``, ``seq``, payload) in emission order and must not mutate
    them.
    """

    def emit(self, event: Dict[str, object]) -> None:
        """Accept one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; further emits are undefined."""


class JsonlTraceSink(TraceSink):
    """Writes events as one sorted-key JSON object per line.

    Sorted keys plus the absence of wall-clock fields make the file a
    deterministic function of (config, seed): suitable for diffing two
    runs directly.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self.events_written = 0

    def emit(self, event: Dict[str, object]) -> None:
        self._fh.write(json.dumps(event, sort_keys=True))
        self._fh.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class RingBufferTraceSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        self.capacity = capacity
        self._buffer: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self.events_seen = 0

    def emit(self, event: Dict[str, object]) -> None:
        self._buffer.append(event)
        self.events_seen += 1

    def close(self) -> None:
        """Retention is in-memory only; nothing to flush."""

    @property
    def events(self) -> List[Dict[str, object]]:
        """The retained events, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self._buffer)


class Tracer:
    """Stamps, samples and routes events to a sink.

    ``clock`` is read through the owning :class:`~repro.obs.Observability`
    object (the simulator advances it); the tracer only appends ``cycle``
    and ``seq`` and applies per-kind sampling.
    """

    def __init__(self, sink: TraceSink, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError("trace_sample_every must be >= 1")
        self.sink = sink
        self.sample_every = sample_every
        self.seq = 0
        self._kind_counts: Dict[str, int] = {}

    def emit(self, kind: str, cycle: int, **payload) -> None:
        """Emit one event, honouring sampling for high-frequency kinds."""
        if kind in SAMPLED_KINDS:
            seen = self._kind_counts.get(kind, 0)
            self._kind_counts[kind] = seen + 1
            if seen % self.sample_every:
                return
        event: Dict[str, object] = {"kind": kind, "cycle": cycle, "seq": self.seq}
        event.update(payload)
        self.seq += 1
        self.sink.emit(event)

    def close(self) -> None:
        """Close the underlying sink."""
        self.sink.close()


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a JSONL trace file back into a list of event dicts."""
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def filter_kind(events: List[Dict[str, object]], kind: str) -> List[Dict[str, object]]:
    """The subset of ``events`` with the given kind, in order."""
    return [event for event in events if event.get("kind") == kind]


def first_of_kind(events: List[Dict[str, object]], kind: str) -> Optional[Dict[str, object]]:
    """The first event of ``kind``, or None."""
    for event in events:
        if event.get("kind") == kind:
            return event
    return None
