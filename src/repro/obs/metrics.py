"""The metrics registry: named counters, gauges and histograms.

Every number the observability layer can report is declared **once**, in
:data:`CATALOGUE`, with its kind, unit, owning module and description.
Components obtain metric instances from a :class:`MetricsRegistry`
(optionally with labels, e.g. the page size of a cuckoo table); the
registry refuses names that are not in the catalogue, so the catalogue,
the code and ``OBSERVABILITY.md`` cannot silently drift apart — the
docs-consistency check in :mod:`repro.obs.doccheck` closes the loop on
the documentation side.

Two usage styles:

* **Live metrics** — hot paths hold a metric object and update it per
  event (only the walk-latency histogram does this; the update is one
  dict increment).
* **Collectors** — components register a callback via
  :meth:`MetricsRegistry.add_collector` that copies their existing
  counters into the registry when a snapshot is taken.  This is the
  default style: the simulator already counts everything the paper's
  figures need, so observing it costs nothing until
  :meth:`MetricsRegistry.snapshot` runs.

Snapshots are plain JSON-safe dictionaries (string keys throughout) so
they round-trip bit-exactly through the sweep engine's disk cache —
``tests/test_obs_metrics.py`` asserts registry → result → disk → load
equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigurationError

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """Catalogue entry: what a metric means and who owns it."""

    kind: str
    unit: str
    owner: str
    description: str


#: Every metric name the layer may register, with unit/owner/description.
#: ``OBSERVABILITY.md``'s metric catalogue is checked against this table
#: (both directions) by :mod:`repro.obs.doccheck`.
CATALOGUE: Dict[str, MetricSpec] = {
    # -- simulator (repro.sim.simulator) --------------------------------
    "sim.trace_events": MetricSpec(
        KIND_COUNTER, "events", "repro.sim.simulator",
        "Trace events simulated, including the warmup window."),
    "sim.accesses": MetricSpec(
        KIND_COUNTER, "accesses", "repro.sim.simulator",
        "Measured-window accesses (trace events x page repeats)."),
    "sim.translation_cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.sim.simulator",
        "Translation cycles accumulated in the measured window."),
    "sim.populated_pages": MetricSpec(
        KIND_COUNTER, "pages", "repro.sim.simulator",
        "Pages demand-faulted by populate_tables."),
    # -- TLB hierarchy (repro.mmu.hierarchy) ----------------------------
    "tlb.translations": MetricSpec(
        KIND_COUNTER, "translations", "repro.mmu.hierarchy",
        "Translations requested from the TLB hierarchy."),
    "tlb.l1_hits": MetricSpec(
        KIND_COUNTER, "hits", "repro.mmu.hierarchy",
        "Translations satisfied by an L1 DTLB (zero visible latency)."),
    "tlb.l2_hits": MetricSpec(
        KIND_COUNTER, "hits", "repro.mmu.hierarchy",
        "Translations satisfied by an L2 DTLB."),
    "tlb.walks": MetricSpec(
        KIND_COUNTER, "walks", "repro.mmu.hierarchy",
        "Full TLB misses that invoked the page walker."),
    "tlb.faults": MetricSpec(
        KIND_COUNTER, "faults", "repro.mmu.hierarchy",
        "Walks that found no mapping (page faults followed)."),
    # -- page walkers (repro.ecpt.walker / repro.radix.walker) ----------
    "walker.walks": MetricSpec(
        KIND_COUNTER, "walks", "repro.ecpt.walker",
        "Page walks performed by the organization's walker."),
    "walker.walk_cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.ecpt.walker",
        "Total walk latency, including MMU cache lookups."),
    "walker.memory_accesses": MetricSpec(
        KIND_COUNTER, "accesses", "repro.ecpt.walker",
        "Walk references that reached the cache hierarchy."),
    "walker.walk_latency": MetricSpec(
        KIND_HISTOGRAM, "cycles", "repro.ecpt.walker",
        "Per-walk latency distribution (power-of-two bins)."),
    "walker.cwt_memory_reads": MetricSpec(
        KIND_COUNTER, "reads", "repro.ecpt.walker",
        "Cuckoo Walk Table lines read from memory on CWC misses."),
    # -- L2P indirection (repro.core.walker / repro.core.l2p) -----------
    "l2p.hidden_accesses": MetricSpec(
        KIND_COUNTER, "accesses", "repro.core.walker",
        "L2P accesses fully overlapped with the CWC lookup."),
    "l2p.exposed_cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.core.walker",
        "Cycles the L2P added on paths where it could not be hidden."),
    "l2p.entries_used": MetricSpec(
        KIND_GAUGE, "entries", "repro.core.l2p",
        "Valid L2P entries across every way and page size (Figure 14)."),
    # -- elastic cuckoo tables (repro.hashing.cuckoo), labelled by size -
    "cuckoo.inserts": MetricSpec(
        KIND_COUNTER, "inserts", "repro.hashing.cuckoo",
        "Insertions into one page size's cuckoo table."),
    "cuckoo.lookups": MetricSpec(
        KIND_COUNTER, "lookups", "repro.hashing.cuckoo",
        "Lookups against one page size's cuckoo table."),
    "cuckoo.rehash_steps": MetricSpec(
        KIND_COUNTER, "steps", "repro.hashing.cuckoo",
        "Gradual-rehash steps performed across all resizes."),
    "cuckoo.rehash_conflicts": MetricSpec(
        KIND_COUNTER, "conflicts", "repro.hashing.cuckoo",
        "Rehashed entries whose target slot was occupied (cuckooed on)."),
    "cuckoo.eager_migrations": MetricSpec(
        KIND_COUNTER, "migrations", "repro.hashing.cuckoo",
        "Stop-the-world migrations (chunk-size transitions)."),
    "cuckoo.kick_depth": MetricSpec(
        KIND_HISTOGRAM, "kicks", "repro.hashing.cuckoo",
        "Cuckoo re-insertions per operation (Figure 16's distribution)."),
    "cuckoo.occupancy": MetricSpec(
        KIND_GAUGE, "ratio", "repro.hashing.cuckoo",
        "Final occupancy of one page size's table."),
    "cuckoo.total_bytes": MetricSpec(
        KIND_GAUGE, "bytes", "repro.hashing.cuckoo",
        "Final physical bytes of one page size's table (scaled run)."),
    "cuckoo.way_occupancy": MetricSpec(
        KIND_GAUGE, "ratio", "repro.hashing.cuckoo",
        "Final occupancy of one way."),
    "cuckoo.way_bytes": MetricSpec(
        KIND_GAUGE, "bytes", "repro.hashing.cuckoo",
        "Final physical bytes of one way (Figure 12, scaled run)."),
    "cuckoo.way_upsizes": MetricSpec(
        KIND_COUNTER, "resizes", "repro.hashing.cuckoo",
        "Upsizes of one way over the run (Figure 11)."),
    "cuckoo.way_downsizes": MetricSpec(
        KIND_COUNTER, "resizes", "repro.hashing.cuckoo",
        "Downsizes of one way over the run."),
    "cuckoo.way_inplace_upsizes": MetricSpec(
        KIND_COUNTER, "resizes", "repro.hashing.cuckoo",
        "Upsizes of one way that grew storage in place."),
    "cuckoo.way_rollbacks": MetricSpec(
        KIND_COUNTER, "rollbacks", "repro.hashing.cuckoo",
        "In-flight resizes of one way abandoned atomically."),
    "cuckoo.way_rehash_relocated": MetricSpec(
        KIND_COUNTER, "entries", "repro.hashing.cuckoo",
        "Entries physically moved by one way's gradual rehashes (Fig 13)."),
    # -- ME-HPT specifics (repro.core.mehpt) ----------------------------
    "mehpt.chunk_transitions": MetricSpec(
        KIND_COUNTER, "transitions", "repro.core.mehpt",
        "Out-of-place chunk-size transitions for one page size."),
    "mehpt.chunk_bytes": MetricSpec(
        KIND_GAUGE, "bytes", "repro.core.mehpt",
        "Final chunk size of one way's storage."),
    # -- radix baseline (repro.radix.table) ------------------------------
    "radix.table_bytes": MetricSpec(
        KIND_GAUGE, "bytes", "repro.radix.table",
        "Radix page-table node bytes (scaled run)."),
    # -- page-table allocator (repro.mem.allocator) ----------------------
    "alloc.allocations": MetricSpec(
        KIND_COUNTER, "allocations", "repro.mem.allocator",
        "Page-table allocations charged to the cost model."),
    "alloc.frees": MetricSpec(
        KIND_COUNTER, "frees", "repro.mem.allocator",
        "Page-table allocations released."),
    "alloc.cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.mem.allocator",
        "Allocation (and recovery backoff) cycles, full-scale equivalent."),
    "alloc.current_bytes": MetricSpec(
        KIND_GAUGE, "bytes", "repro.mem.allocator",
        "Live page-table bytes at snapshot time, full-scale equivalent."),
    "alloc.peak_bytes": MetricSpec(
        KIND_GAUGE, "bytes", "repro.mem.allocator",
        "Peak page-table bytes, full-scale equivalent."),
    "alloc.max_contiguous_bytes": MetricSpec(
        KIND_GAUGE, "bytes", "repro.mem.allocator",
        "Largest single contiguous request (Figure 8's quantity)."),
    "alloc.failed_allocations": MetricSpec(
        KIND_COUNTER, "failures", "repro.mem.allocator",
        "Allocation attempts that failed (before any retry succeeded)."),
    # -- kernel fault handler (repro.kernel.address_space) ---------------
    "kernel.faults": MetricSpec(
        KIND_COUNTER, "faults", "repro.kernel.address_space",
        "Page faults serviced by the address space."),
    "kernel.fault_cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.kernel.address_space",
        "Total fault-service cycles (overhead + allocations + kicks)."),
    "kernel.pt_alloc_cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.kernel.address_space",
        "Page-table allocation cycles charged inside fault handling."),
    "kernel.data_alloc_cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.kernel.address_space",
        "Data-frame allocation cycles (reported, non-differential)."),
    "kernel.reinsert_cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.kernel.address_space",
        "OS cycles spent on cuckoo re-insertions during faults."),
    "kernel.kicks": MetricSpec(
        KIND_COUNTER, "kicks", "repro.kernel.address_space",
        "Cuckoo re-insertions caused by fault-path insertions."),
    "kernel.pages_mapped_4k": MetricSpec(
        KIND_COUNTER, "pages", "repro.kernel.address_space",
        "4KB pages mapped by demand faults."),
    "kernel.pages_mapped_2m": MetricSpec(
        KIND_COUNTER, "pages", "repro.kernel.address_space",
        "2MB pages mapped by demand faults (THP)."),
    # -- trace capture/replay (repro.traces.format) ----------------------
    "traces.records_written": MetricSpec(
        KIND_COUNTER, "records", "repro.traces.format",
        "VPN records encoded into .vpt trace chunks."),
    "traces.records_read": MetricSpec(
        KIND_COUNTER, "records", "repro.traces.format",
        "VPN records decoded from .vpt trace chunks."),
    "traces.chunks_written": MetricSpec(
        KIND_COUNTER, "chunks", "repro.traces.format",
        "Trace chunks encoded, checksummed and flushed."),
    "traces.chunks_read": MetricSpec(
        KIND_COUNTER, "chunks", "repro.traces.format",
        "Trace chunks read and CRC-verified."),
    "traces.checksum_failures": MetricSpec(
        KIND_COUNTER, "failures", "repro.traces.format",
        "Chunk CRC32 mismatches detected by readers and validate."),
    # -- fault injection / degradation (repro.faults.log) ----------------
    "faults.events": MetricSpec(
        KIND_COUNTER, "events", "repro.faults.log",
        "Degradation events recorded, labelled by kind."),
    "faults.recovery_cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.faults.log",
        "Cycles spent in recovery paths (retries, rollbacks, fallbacks)."),
    # -- adversarial fuzzing (repro.fuzz) --------------------------------
    "fuzz.scenarios_run": MetricSpec(
        KIND_COUNTER, "scenarios", "repro.fuzz.runner",
        "Adversarial scenarios executed across organizations."),
    "fuzz.failures_found": MetricSpec(
        KIND_COUNTER, "scenarios", "repro.fuzz.runner",
        "Scenarios whose aggregate classification was not 'ok'."),
    "fuzz.divergence_checks": MetricSpec(
        KIND_COUNTER, "checks", "repro.fuzz.runner",
        "Scalar-vs-vectorized engine comparisons run on scenario traces."),
    "fuzz.minimizer_evals": MetricSpec(
        KIND_COUNTER, "evaluations", "repro.fuzz.minimize",
        "Candidate traces the delta-debugging minimizer re-validated."),
    "fuzz.minimizer_records_removed": MetricSpec(
        KIND_COUNTER, "records", "repro.fuzz.minimize",
        "Trace records removed by successful minimizations."),
    "fuzz.corpus_replays": MetricSpec(
        KIND_COUNTER, "entries", "repro.fuzz.corpus",
        "Reproducer corpus entries replayed and re-classified."),
    "fuzz.corpus_mismatches": MetricSpec(
        KIND_COUNTER, "entries", "repro.fuzz.corpus",
        "Corpus replays whose classification drifted from the manifest."),
    # -- translation service (repro.serve) -------------------------------
    "serve.requests": MetricSpec(
        KIND_COUNTER, "requests", "repro.serve.server",
        "HTTP requests handled, labelled by route."),
    "serve.queue_depth": MetricSpec(
        KIND_GAUGE, "jobs", "repro.serve.queue",
        "Jobs admitted and waiting for a worker shard."),
    "serve.admission_rejections": MetricSpec(
        KIND_COUNTER, "jobs", "repro.serve.queue",
        "Submissions refused with back-pressure, labelled by reason."),
    "serve.inflight_jobs": MetricSpec(
        KIND_GAUGE, "jobs", "repro.serve.workers",
        "Jobs currently executing on worker shards."),
    "serve.jobs_completed": MetricSpec(
        KIND_COUNTER, "jobs", "repro.serve.server",
        "Jobs that finished and streamed a final done event."),
    "serve.jobs_failed": MetricSpec(
        KIND_COUNTER, "jobs", "repro.serve.server",
        "Jobs that ended with a structured error event."),
    "serve.jobs_cancelled": MetricSpec(
        KIND_COUNTER, "jobs", "repro.serve.server",
        "Jobs cancelled by clients (queued or reaped mid-run)."),
    "serve.job_timeouts": MetricSpec(
        KIND_COUNTER, "jobs", "repro.serve.server",
        "Jobs whose execution deadline expired (worker reaped)."),
    "serve.worker_restarts": MetricSpec(
        KIND_COUNTER, "restarts", "repro.serve.workers",
        "Worker processes reaped (cancel/timeout) or respawned after a crash."),
    "serve.cache_hit_ratio": MetricSpec(
        KIND_GAUGE, "ratio", "repro.serve.server",
        "Sweep-engine disk-cache hits / lookups across all served jobs."),
    "serve.trace_uploads": MetricSpec(
        KIND_COUNTER, "uploads", "repro.serve.server",
        "Validated .vpt traces accepted into the upload spool."),
    "serve.streamed_events": MetricSpec(
        KIND_COUNTER, "events", "repro.serve.server",
        "Progress/result/obs events streamed to event-stream subscribers."),
    # -- NUMA machine model (repro.sim.datacenter) -----------------------
    "numa.walks": MetricSpec(
        KIND_COUNTER, "walks", "repro.sim.datacenter.topology",
        "Page walks completed, labelled by the socket that ran them."),
    "numa.walk_cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.sim.datacenter.topology",
        "Page-walk cycles, labelled by the socket that ran them."),
    "numa.local_dram_accesses": MetricSpec(
        KIND_COUNTER, "accesses", "repro.sim.datacenter.topology",
        "Walk cache-line probes served from the local socket's DRAM."),
    "numa.remote_dram_accesses": MetricSpec(
        KIND_COUNTER, "accesses", "repro.sim.datacenter.topology",
        "Walk cache-line probes that crossed the socket interconnect."),
    "numa.remote_delta_cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.sim.datacenter.topology",
        "Extra cycles paid for remote DRAM over the local latency."),
    "numa.replicated_bytes": MetricSpec(
        KIND_COUNTER, "bytes", "repro.sim.datacenter.replication",
        "Page-table bytes copied to replica sockets (Mitosis-style)."),
    "numa.replica_updates": MetricSpec(
        KIND_COUNTER, "updates", "repro.sim.datacenter.replication",
        "Fault-driven PTE updates mirrored into remote replicas."),
    "numa.migrated_bytes": MetricSpec(
        KIND_COUNTER, "bytes", "repro.sim.datacenter.replication",
        "Page-table bytes re-homed by migrate-on-first-touch."),
    "numa.pool_spill_allocations": MetricSpec(
        KIND_COUNTER, "allocations", "repro.sim.datacenter.topology",
        "Allocations that spilled off the preferred socket's pool."),
    "numa.batch_dram_probes": MetricSpec(
        KIND_COUNTER, "probes", "repro.mmu.walk_batch",
        "DRAM-missing walk lines whose NUMA homes were resolved in batch "
        "(engine diagnostic; stripped from result snapshots so cached "
        "cells stay engine-independent)."),
    "numa.batch_snapshot_rebuilds": MetricSpec(
        KIND_COUNTER, "rebuilds", "repro.mmu.walk_batch",
        "Home-map interval snapshots rebuilt after placement epoch moves "
        "(engine diagnostic; stripped from result snapshots)."),
    "fastpath.quantum_runs": MetricSpec(
        KIND_COUNTER, "quanta", "repro.sim.quantum",
        "Tenant quanta executed by the vectorized quantum engine "
        "(engine diagnostic; stripped from result snapshots)."),
    "fastpath.quantum_accesses": MetricSpec(
        KIND_COUNTER, "accesses", "repro.sim.quantum",
        "Accesses translated through batched per-quantum probes "
        "(engine diagnostic; stripped from result snapshots)."),
    # -- datacenter tenancy (repro.sim.datacenter.simulator) -------------
    "dc.shootdowns": MetricSpec(
        KIND_COUNTER, "shootdowns", "repro.sim.datacenter.shootdown",
        "TLB shootdown broadcasts (exit, churn, migration, resize batches)."),
    "dc.shootdown_ipis": MetricSpec(
        KIND_COUNTER, "ipis", "repro.sim.datacenter.shootdown",
        "Inter-processor interrupts delivered by shootdown broadcasts."),
    "dc.shootdown_cycles": MetricSpec(
        KIND_COUNTER, "cycles", "repro.sim.datacenter.shootdown",
        "Cycles charged for shootdowns (initiator + per-IPI cost)."),
    "dc.context_switches": MetricSpec(
        KIND_COUNTER, "switches", "repro.sim.datacenter.simulator",
        "Tenant context switches performed by the per-socket scheduler."),
    "dc.forks": MetricSpec(
        KIND_COUNTER, "forks", "repro.sim.datacenter.simulator",
        "Tenants forked (and exec'd) by the churn model."),
    "dc.exits": MetricSpec(
        KIND_COUNTER, "exits", "repro.sim.datacenter.simulator",
        "Tenants torn down (natural completion or churn kill)."),
    "dc.pool_alloc_failures": MetricSpec(
        KIND_COUNTER, "failures", "repro.sim.datacenter.simulator",
        "Tenant page-table allocations that failed on every socket."),
}


def format_metric_name(base: str, labels: Optional[Dict[str, object]] = None) -> str:
    """Render ``base`` plus sorted ``labels`` as ``base[k=v,...]``."""
    if not labels:
        return base
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{base}[{inner}]"


def base_name(full_name: str) -> str:
    """Strip the label suffix from a full metric name."""
    return full_name.split("[", 1)[0]


def pow2_bin(value: float) -> str:
    """The power-of-two bucket label covering ``value`` (0 and 1 exact)."""
    if value <= 0:
        return "0"
    bucket = 1
    while bucket < value:
        bucket *= 2
    return str(bucket)


def exact_bin(value: float) -> str:
    """Exact integer bucket label (kick depths are small integers)."""
    return str(int(value))


class Metric:
    """Base class: a named metric bound to its catalogue spec."""

    __slots__ = ("name", "spec")

    def __init__(self, name: str, spec: MetricSpec) -> None:
        self.name = name
        self.spec = spec

    def to_record(self) -> Dict[str, object]:
        """Serialize to the JSON-safe snapshot form."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically-increasing value."""

    __slots__ = ("value",)

    def __init__(self, name: str, spec: MetricSpec) -> None:
        super().__init__(name, spec)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        self.value += amount

    def set_total(self, value: float) -> None:
        """Collector style: overwrite with an externally-kept total."""
        self.value = value

    def to_record(self) -> Dict[str, object]:
        return {"kind": KIND_COUNTER, "unit": self.spec.unit, "value": self.value}


class Gauge(Metric):
    """A point-in-time value that can move in either direction."""

    __slots__ = ("value",)

    def __init__(self, name: str, spec: MetricSpec) -> None:
        super().__init__(name, spec)
        self.value: float = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def to_record(self) -> Dict[str, object]:
        return {"kind": KIND_GAUGE, "unit": self.spec.unit, "value": self.value}


class Histogram(Metric):
    """A binned distribution with string bucket labels.

    ``bucketer`` maps an observed value to its bucket label: ``"exact"``
    for small integers (kick depths), ``"pow2"`` for wide ranges (walk
    latencies).  String labels keep the snapshot JSON-safe without a
    key-conversion step on cache load.
    """

    __slots__ = ("bins", "count", "total", "_bucket")

    def __init__(self, name: str, spec: MetricSpec, bucketer: str = "exact") -> None:
        super().__init__(name, spec)
        if bucketer not in ("exact", "pow2"):
            raise ConfigurationError(
                f"unknown histogram bucketer {bucketer!r}",
                field="bucketer", value=bucketer,
            )
        self.bins: Dict[str, int] = {}
        self.count = 0
        self.total: float = 0
        self._bucket = exact_bin if bucketer == "exact" else pow2_bin

    def observe(self, value: float) -> None:
        """Record one sample."""
        label = self._bucket(value)
        self.bins[label] = self.bins.get(label, 0) + 1
        self.count += 1
        self.total += value

    def observe_bins(self, bins: Dict[int, int]) -> None:
        """Collector style: merge an externally-kept ``{value: count}`` map."""
        for value, count in bins.items():
            label = self._bucket(value)
            self.bins[label] = self.bins.get(label, 0) + count
            self.count += count
            self.total += value * count

    def set_from_bins(self, bins: Dict[int, int]) -> None:
        """Idempotent collector style: *replace* contents with ``bins``.

        Collectors run once per snapshot; replacing (rather than merging)
        keeps repeated snapshots from double-counting.
        """
        self.bins = {}
        self.count = 0
        self.total = 0
        self.observe_bins(bins)

    def mean(self) -> float:
        """Mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_record(self) -> Dict[str, object]:
        return {
            "kind": KIND_HISTOGRAM,
            "unit": self.spec.unit,
            "bins": {label: self.bins[label] for label in sorted(self.bins)},
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Creates, validates and snapshots the run's metrics.

    Metric names must exist in :data:`CATALOGUE` with a matching kind;
    labels (``registry.counter("cuckoo.inserts", size="4K")``) create
    independent instances under ``name[size=4K]``-style full names.
    Collectors added with :meth:`add_collector` run once per
    :meth:`snapshot`, in registration order, so component counters are
    copied in deterministically.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- creation -----------------------------------------------------

    def _get_or_create(self, name: str, kind: str, factory, /, **labels) -> Metric:
        spec = CATALOGUE.get(name)
        if spec is None:
            raise ConfigurationError(
                f"metric {name!r} is not in the repro.obs catalogue",
                field="name", value=name,
            )
        if spec.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {spec.kind}, not a {kind}",
                field="name", value=name,
            )
        full = format_metric_name(name, labels)
        metric = self._metrics.get(full)
        if metric is None:
            metric = factory(full, spec)
            self._metrics[full] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter ``name`` (labels select an instance)."""
        return self._get_or_create(name, KIND_COUNTER, Counter, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, KIND_GAUGE, Gauge, **labels)

    def histogram(self, name: str, bucketer: str = "exact", **labels) -> Histogram:
        """Get or create the histogram ``name`` with the given bucketer."""
        return self._get_or_create(
            name, KIND_HISTOGRAM,
            lambda full, spec: Histogram(full, spec, bucketer=bucketer),
            **labels,
        )

    # -- collection -----------------------------------------------------

    def add_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback that fills metrics at snapshot time."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector once."""
        for collector in self._collectors:
            collector(self)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Collect, then serialize every metric to a JSON-safe dict.

        The result is sorted by full metric name and built from native
        JSON types only, so it survives the sweep engine's disk cache
        bit-exactly.
        """
        self.collect()
        return {
            name: self._metrics[name].to_record()
            for name in sorted(self._metrics)
        }

    def base_names(self) -> List[str]:
        """Sorted catalogue-level names with at least one instance."""
        return sorted({base_name(full) for full in self._metrics})

    def __contains__(self, full_name: str) -> bool:
        return full_name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)
