"""repro.obs — zero-cost-when-disabled observability.

The layer has three parts, built here and documented end-to-end in
``OBSERVABILITY.md``:

* :mod:`repro.obs.metrics` — a catalogue-validated
  :class:`~repro.obs.metrics.MetricsRegistry` whose snapshot rides
  inside ``MemoryFootprintResult``/``PerformanceResult`` and therefore
  through the sweep engine's disk cache.
* :mod:`repro.obs.trace` — typed, sampled, sim-cycle-stamped event
  traces through a :class:`~repro.obs.trace.TraceSink` (JSONL file or
  in-memory ring buffer).
* :mod:`repro.obs.manifest` / :mod:`repro.obs.report` — run manifests
  next to engine cache entries, and the CLI that turns a JSONL trace
  back into the differential model's cycle terms.

The **zero-cost contract**: a simulated system built without an
:class:`ObservabilityConfig` carries ``obs = None`` and every
instrumentation site is guarded by ``if obs is not None`` (or the
component never received the object at all).  Disabled runs execute the
same arithmetic as before this layer existed — the byte-identity test
in ``tests/test_obs_trace.py`` and the ``run_all --fast`` report check
both pin this down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.obs.metrics import CATALOGUE, MetricsRegistry, MetricSpec
from repro.obs.trace import (
    ALL_KINDS,
    EVENT_CHUNK_TRANSITION,
    EVENT_CUCKOO_KICK,
    EVENT_FAULT_INJECTED,
    EVENT_FAULT_SERVICED,
    EVENT_MEASURE_START,
    EVENT_PROCESS_LIFECYCLE,
    EVENT_PT_MIGRATION,
    EVENT_RESIZE_BEGIN,
    EVENT_RESIZE_COMMIT,
    EVENT_RESIZE_ROLLBACK,
    EVENT_RUN_END,
    EVENT_RUN_START,
    EVENT_TLB_MISS,
    EVENT_TLB_SHOOTDOWN,
    EVENT_WALK_END,
    EVENT_WALK_START,
    SAMPLED_KINDS,
    JsonlTraceSink,
    RingBufferTraceSink,
    Tracer,
    TraceSink,
)

__all__ = [
    "ObservabilityConfig",
    "Observability",
    "MetricsRegistry",
    "MetricSpec",
    "CATALOGUE",
    "TraceSink",
    "JsonlTraceSink",
    "RingBufferTraceSink",
    "Tracer",
    "ALL_KINDS",
    "SAMPLED_KINDS",
    "EVENT_RUN_START",
    "EVENT_MEASURE_START",
    "EVENT_RUN_END",
    "EVENT_TLB_MISS",
    "EVENT_WALK_START",
    "EVENT_WALK_END",
    "EVENT_CUCKOO_KICK",
    "EVENT_FAULT_SERVICED",
    "EVENT_RESIZE_BEGIN",
    "EVENT_RESIZE_COMMIT",
    "EVENT_RESIZE_ROLLBACK",
    "EVENT_CHUNK_TRANSITION",
    "EVENT_FAULT_INJECTED",
    "EVENT_TLB_SHOOTDOWN",
    "EVENT_PT_MIGRATION",
    "EVENT_PROCESS_LIFECYCLE",
]


@dataclass(frozen=True)
class ObservabilityConfig:
    """How much to observe.  Absent (None) means observe nothing.

    ``metrics``
        Build a :class:`~repro.obs.metrics.MetricsRegistry` and snapshot
        it into the run's result object.
    ``trace_path`` / ``trace_buffer``
        Route events to a JSONL file at ``trace_path``, or to an
        in-memory ring buffer of ``trace_buffer`` events.  At most one;
        neither means no tracing.
    ``trace_sample_every``
        Keep every N-th event of the high-frequency kinds
        (:data:`~repro.obs.trace.SAMPLED_KINDS`).  1 keeps everything —
        required for exact cycle attribution by ``repro.obs.report``.
    """

    metrics: bool = True
    trace_path: Optional[str] = None
    trace_buffer: Optional[int] = None
    trace_sample_every: int = 1

    def validate(self) -> None:
        """Raise ConfigurationError on contradictory settings."""
        if self.trace_path is not None and self.trace_buffer is not None:
            raise ConfigurationError(
                "trace_path and trace_buffer are mutually exclusive",
                field="trace_buffer", value=self.trace_buffer,
            )
        if self.trace_buffer is not None and self.trace_buffer < 1:
            raise ConfigurationError(
                "trace_buffer must be >= 1",
                field="trace_buffer", value=self.trace_buffer,
            )
        if self.trace_sample_every < 1:
            raise ConfigurationError(
                "trace_sample_every must be >= 1",
                field="trace_sample_every", value=self.trace_sample_every,
            )


class Observability:
    """The live observability context threaded through one system build.

    Holds the metrics registry, the (optional) tracer, and the
    simulated-cycle clock that stamps events.  Components receive this
    object (or None) at construction; the simulator advances
    :attr:`cycle` as it accounts time.
    """

    def __init__(self, config: ObservabilityConfig) -> None:
        config.validate()
        self.config = config
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.metrics else None
        )
        self.tracer: Optional[Tracer] = None
        self.ring: Optional[RingBufferTraceSink] = None
        if config.trace_path is not None:
            self.tracer = Tracer(
                JsonlTraceSink(config.trace_path),
                sample_every=config.trace_sample_every,
            )
        elif config.trace_buffer is not None:
            self.ring = RingBufferTraceSink(config.trace_buffer)
            self.tracer = Tracer(
                self.ring, sample_every=config.trace_sample_every,
            )
        #: Monotonic simulated-cycle clock; the simulator advances it.
        self.cycle: int = 0

    # -- tracing -------------------------------------------------------

    def emit(self, kind: str, **payload) -> None:
        """Emit a trace event stamped with the current simulated cycle."""
        if self.tracer is not None:
            self.tracer.emit(kind, self.cycle, **payload)

    def advance_clock(self, cycle: int) -> None:
        """Move the clock forward to ``cycle`` (never backwards)."""
        if cycle > self.cycle:
            self.cycle = cycle

    def close(self) -> None:
        """Flush and close the trace sink, if any."""
        if self.tracer is not None:
            self.tracer.close()

    # -- metrics -------------------------------------------------------

    def snapshot_metrics(self) -> Dict[str, Dict[str, object]]:
        """Collect and serialize the registry ({} when metrics are off)."""
        if self.registry is None:
            return {}
        return self.registry.snapshot()


def build_observability(config: Optional[ObservabilityConfig]) -> Optional[Observability]:
    """None-propagating constructor used by ``repro.sim.config.build``."""
    if config is None:
        return None
    return Observability(config)
