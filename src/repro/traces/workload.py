"""`TraceWorkload`: a recorded or imported trace as a first-class workload.

Implements the :class:`~repro.workloads.base.Workload` surface the
simulator, the sweep engine and the experiment drivers consume —
``spec``, ``vma_layout()``, ``trace()``, ``page_set()``,
``unscale_bytes()``, ``describe()`` — backed by a ``.vpt`` file instead
of a synthetic generator.  Recorded traces rebuild the original
:class:`~repro.workloads.base.WorkloadSpec` from the file header, so a
replayed run is byte-identical to the live generator; imported traces
synthesize a neutral spec from the stream's footprint statistics.

Registry integration: ``get_workload("trace:/path/to/file.vpt")``
returns a :class:`TraceWorkload`, so trace files drop into
``SimulationConfig``, sweeps and experiments wherever an application
name is accepted.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import GB
from repro.traces.format import TraceMeta, TraceReader
from repro.traces.record import spec_from_dict
from repro.workloads.base import PAGES_PER_BLOCK, AccessPattern, WorkloadSpec
from repro.workloads.registry import TRACE_PREFIX

__all__ = ["TRACE_PREFIX", "TraceWorkload", "synthesize_vma_layout"]

#: Gap (in 4KB pages) above which distinct footprint runs become
#: separate VMAs when a trace carries no recorded layout.
VMA_GAP_PAGES = 4096


def synthesize_vma_layout(
    distinct_vpns: np.ndarray, name: str
) -> List[Tuple[int, int, str]]:
    """Cluster a sorted distinct-VPN set into padded VMA ranges.

    Imported traces (CSV, lackey) have no recorded address-space map;
    grouping the footprint wherever gaps exceed :data:`VMA_GAP_PAGES`
    keeps the synthesized VMAs tight instead of spanning the whole
    64-bit hole between, say, heap and stack references.
    """
    if distinct_vpns.size == 0:
        raise ConfigurationError("cannot synthesize VMAs for an empty trace")
    gaps = np.flatnonzero(np.diff(distinct_vpns) > VMA_GAP_PAGES)
    starts = np.concatenate(([0], gaps + 1))
    ends = np.concatenate((gaps, [distinct_vpns.size - 1]))
    layout = []
    for i, (lo, hi) in enumerate(zip(starts, ends)):
        first, last = int(distinct_vpns[lo]), int(distinct_vpns[hi])
        layout.append((first, last - first + 1, f"{name}-vma{i}"))
    return layout


class TraceWorkload:
    """A workload whose access stream comes from a ``.vpt`` trace file.

    ``scale`` and ``seed`` mirror the recording (stored in the trace
    header), **not** the caller's sweep settings: the stream is fixed,
    so replaying it under a different ``scale`` would silently compare
    a full-scale trace against rescaled tables.  Callers that need the
    recorded provenance read it from here.
    """

    def __init__(self, path: str, registry=None, loop: bool = False) -> None:
        if not os.path.exists(path):
            raise ConfigurationError(
                f"trace file {path!r} does not exist", field="path", value=path
            )
        self.path = path
        self.loop = loop
        self._registry = registry
        with TraceReader(path) as reader:
            self.meta: TraceMeta = reader.meta
            self.total_values = reader.total_values
            self._min_vpn = reader.min_vpn
            self._max_vpn = reader.max_vpn
        self.scale = self.meta.scale
        self.seed = self.meta.seed
        self._page_set: Optional[np.ndarray] = None
        if self.meta.workload is not None:
            self.spec = spec_from_dict(self.meta.workload)
        else:
            self.spec = self._synthesize_spec()

    def _synthesize_spec(self) -> WorkloadSpec:
        """A neutral spec for imported traces (no recorded generator)."""
        name = self.meta.extra.get("name") or os.path.splitext(
            os.path.basename(self.path)
        )[0]
        distinct = int(
            self.meta.extra.get("distinct_pages")
            or (self._span_pages() if self.total_values else 1)
        )
        return WorkloadSpec(
            name=str(name),
            kind="trace",
            data_gb=max(distinct, 1) * 4096 / GB,
            touched_blocks=max(1, distinct // PAGES_PER_BLOCK),
            density=1.0,
            thp_coverage=float(self.meta.extra.get("thp_coverage", 0.0)),
            pattern=AccessPattern(
                uniform=1.0,
                page_repeats=int(self.meta.extra.get("page_repeats", 1)),
            ),
            fullscale_accesses=float(
                self.meta.extra.get("fullscale_accesses", self.total_values)
            ),
            description=f"imported trace ({self.meta.source})",
        )

    def _span_pages(self) -> int:
        if self._min_vpn is None or self._max_vpn is None:
            return 1
        return self._max_vpn - self._min_vpn + 1

    # -- observability ---------------------------------------------------

    def bind_observability(self, obs) -> None:
        """Adopt a run's metrics registry (``SimulationConfig.build``)."""
        if obs is not None and getattr(obs, "registry", None) is not None:
            self._registry = obs.registry

    # -- Workload interface ----------------------------------------------

    def vma_layout(self) -> List[Tuple[int, int, str]]:
        """The recorded layout, or one synthesized from the footprint."""
        if self.meta.vma_layout:
            return [
                (int(start), int(pages), str(name))
                for start, pages, name in self.meta.vma_layout
            ]
        return synthesize_vma_layout(self.page_set(), self.spec.name)

    def trace(self, length: int, seed_offset: int = 0) -> np.ndarray:
        """The first ``length`` recorded VPNs (``seed_offset`` ignored).

        Byte-identity with the live generator holds when ``length``
        equals the recorded length; shorter requests replay a prefix and
        longer ones require ``loop=True`` at construction.
        """
        with TraceReader(self.path, registry=self._registry) as reader:
            return reader.read(length, loop=self.loop)

    def trace_chunks(self, length: int, chunk_values: int = 65536, seed_offset: int = 0):
        """Stream the first ``length`` recorded VPNs chunk by chunk.

        The vectorized engine's entry point: yields the trace in file-
        chunk-sized int64 arrays straight off the reader, so a
        multi-million-record replay never materializes the stream
        (``chunk_values`` is accepted for signature compatibility with
        :meth:`~repro.workloads.base.Workload.trace_chunks`; the file's
        own chunking is used).  ``seed_offset`` is ignored, as in
        :meth:`trace`.
        """
        del chunk_values, seed_offset
        with TraceReader(self.path, registry=self._registry) as reader:
            yield from reader.iter_window(length, loop=self.loop)

    def page_set(self) -> np.ndarray:
        """Sorted distinct VPNs the trace touches (cached after first use)."""
        if self._page_set is None:
            with TraceReader(self.path, registry=self._registry) as reader:
                self._page_set = reader.page_set()
        return self._page_set

    def unscale_bytes(self, nbytes: int) -> int:
        """Convert a scaled measurement back to full-scale bytes."""
        return nbytes * self.scale

    def describe(self) -> str:
        """One line: source file, record count, footprint provenance."""
        return (
            f"{self.spec.name}: trace replay of {self.total_values} records "
            f"from {self.path} (source={self.meta.source}, "
            f"recorded at 1/{self.scale} scale, seed {self.seed})"
        )
