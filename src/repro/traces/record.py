"""Recording synthetic workload access streams into ``.vpt`` traces.

:func:`record_workload` captures the exact VPN stream a registered
:class:`~repro.workloads.base.Workload` would feed the simulator —
``workload.trace(length)`` — together with everything replay needs to be
byte-identical: the full :class:`~repro.workloads.base.WorkloadSpec`
(name, THP coverage, access-pattern repeats, full-scale access count),
the instantiation seed and scale, and the VMA layout.  Replaying the
resulting file through :class:`~repro.traces.workload.TraceWorkload`
at the same ``trace_length`` reproduces the live generator's
:class:`~repro.sim.results.PerformanceResult` exactly, for all three
page-table organizations.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.traces.format import DEFAULT_CHUNK_VALUES, TraceMeta, TraceWriter
from repro.workloads.base import AccessPattern, Workload, WorkloadSpec


def spec_to_dict(spec: WorkloadSpec) -> dict:
    """Flatten a :class:`WorkloadSpec` (and its pattern) to JSON-safe form."""
    return asdict(spec)


def spec_from_dict(raw: dict) -> WorkloadSpec:
    """Rebuild a :class:`WorkloadSpec` recorded by :func:`spec_to_dict`."""
    fields = dict(raw)
    pattern = fields.pop("pattern", None)
    if not isinstance(pattern, dict):
        raise ConfigurationError(
            "recorded workload spec has no access pattern",
            field="pattern", value=pattern,
        )
    return WorkloadSpec(pattern=AccessPattern(**pattern), **fields)


def record_workload(
    workload: Workload,
    length: int,
    path: str,
    seed_offset: int = 0,
    chunk_values: int = DEFAULT_CHUNK_VALUES,
    registry=None,
) -> TraceMeta:
    """Capture ``workload``'s access stream to a ``.vpt`` file.

    The stream is generated exactly as the simulator would
    (``workload.trace(length, seed_offset)``) and written chunk-by-chunk;
    returns the metadata stored in the file's header.
    """
    if length < 1:
        raise ConfigurationError(
            f"length {length} must be >= 1", field="length", value=length
        )
    meta = TraceMeta(
        source="synthetic",
        workload=spec_to_dict(workload.spec),
        seed=workload.seed,
        scale=workload.scale,
        vma_layout=[list(vma) for vma in workload.vma_layout()],
        extra={"seed_offset": seed_offset, "recorded_length": length},
    )
    stream = workload.trace(length, seed_offset=seed_offset)
    with TraceWriter(
        path, meta=meta, chunk_values=chunk_values, registry=registry
    ) as writer:
        for start in range(0, len(stream), chunk_values):
            writer.append(stream[start : start + chunk_values])
    return meta


def record_named_workload(
    name: str,
    length: int,
    path: str,
    scale: int = 16,
    seed: int = 12345,
    seed_offset: int = 0,
    chunk_values: int = DEFAULT_CHUNK_VALUES,
    registry=None,
) -> Optional[TraceMeta]:
    """Record a registry workload by name (the CLI's ``record`` verb)."""
    from repro.workloads.registry import get_workload

    workload = get_workload(name, scale=scale, seed=seed)
    return record_workload(
        workload, length, path,
        seed_offset=seed_offset, chunk_values=chunk_values, registry=registry,
    )
