"""``python -m repro.traces`` — the trace-subsystem command line.

Subcommands::

    record     capture a registered workload's access stream to a .vpt
    info       print a trace's header metadata and footer statistics
    validate   scan every chunk (CRCs, counts, bounds); exit 1 if corrupt
    convert    import an external dump (csv address list, valgrind lackey)
    transform  truncate / footprint-rescale / interleave traces

Examples::

    python -m repro.traces record -w GUPS -n 200000 -o gups.vpt --scale 64
    python -m repro.traces info gups.vpt
    python -m repro.traces validate gups.vpt
    python -m repro.traces convert --format lackey lackey.out -o app.vpt
    python -m repro.traces transform a.vpt b.vpt -o mix.vpt --granularity 2048
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.errors import MEHPTError
from repro.traces.format import (
    DEFAULT_CHUNK_VALUES,
    TraceReader,
    validate_trace,
)
from repro.traces.importers import import_csv, import_lackey
from repro.traces.record import record_named_workload
from repro.traces.transform import transform_trace


def _cmd_record(args: argparse.Namespace) -> int:
    """Record a registry workload's VPN stream to a ``.vpt`` file."""
    meta = record_named_workload(
        args.workload, args.length, args.output,
        scale=args.scale, seed=args.seed, chunk_values=args.chunk_values,
    )
    print(
        f"recorded {args.length} references of {args.workload} "
        f"(scale 1/{meta.scale}, seed {meta.seed}) -> {args.output}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    """Print header metadata and footer statistics for a trace."""
    with TraceReader(args.trace) as reader:
        meta = reader.meta
        print(f"trace:        {args.trace}")
        print(f"source:       {meta.source}")
        if meta.workload is not None:
            print(f"workload:     {meta.workload.get('name')} "
                  f"(scale 1/{meta.scale}, seed {meta.seed})")
        print(f"records:      {reader.total_values}")
        print(f"chunks:       {reader.chunks}")
        print(f"vpn range:    [{reader.min_vpn}, {reader.max_vpn}]")
        print(f"page shift:   {meta.page_shift}")
        print(f"content id:   {reader.content_id}")
        if meta.vma_layout:
            print(f"vma layout:   {len(meta.vma_layout)} region(s)")
        for key in sorted(meta.extra):
            print(f"extra.{key}: {meta.extra[key]}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Exhaustively validate a trace; non-zero exit when corrupt."""
    report = validate_trace(args.trace)
    print(report.summary())
    for problem in report.problems:
        print(f"  problem: {problem}")
    return 0 if report.ok else 1


def _cmd_convert(args: argparse.Namespace) -> int:
    """Import an external address dump into the ``.vpt`` format."""
    importer = import_csv if args.format == "csv" else import_lackey
    kwargs = dict(
        name=args.name or ("stdin" if args.input == "-" else args.input),
        page_shift=args.page_shift,
        chunk_values=args.chunk_values,
    )
    if args.format == "lackey":
        kwargs["include_instructions"] = args.include_instructions
    if args.input == "-":
        stats = importer(sys.stdin, args.output, **kwargs)
    else:
        with open(args.input, "r", encoding="utf-8", errors="replace") as lines:
            stats = importer(lines, args.output, **kwargs)
    print(f"imported {args.input} -> {args.output}: {stats.summary()}")
    return 0


def _cmd_transform(args: argparse.Namespace) -> int:
    """Apply truncate/rescale/interleave and write a derived trace."""
    rescale = None
    if args.rescale:
        try:
            numer, denom = (int(part) for part in args.rescale.split("/", 1))
        except ValueError:
            print(f"--rescale wants NUMER/DENOM, got {args.rescale!r}")
            return 2
        rescale = (numer, denom)
    total = transform_trace(
        args.inputs, args.output,
        truncate=args.truncate,
        rescale=rescale,
        interleave_granularity=args.granularity,
        separate_regions=not args.shared_regions,
        chunk_values=args.chunk_values,
    )
    print(f"wrote {total} records -> {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.traces",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_chunk_values(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--chunk-values", type=int, default=DEFAULT_CHUNK_VALUES,
            help="records per chunk (default %(default)s)",
        )

    rec = sub.add_parser("record", help="capture a synthetic workload")
    rec.add_argument("-w", "--workload", required=True,
                     help="registry workload name (e.g. GUPS)")
    rec.add_argument("-n", "--length", type=int, required=True,
                     help="references to record")
    rec.add_argument("-o", "--output", required=True, help="output .vpt path")
    rec.add_argument("--scale", type=int, default=16,
                     help="footprint divisor, power of two (default 16)")
    rec.add_argument("--seed", type=int, default=12345)
    add_chunk_values(rec)
    rec.set_defaults(func=_cmd_record)

    info = sub.add_parser("info", help="print trace metadata and stats")
    info.add_argument("trace")
    info.set_defaults(func=_cmd_info)

    val = sub.add_parser("validate", help="scan all chunks for corruption")
    val.add_argument("trace")
    val.set_defaults(func=_cmd_validate)

    conv = sub.add_parser("convert", help="import an external address dump")
    conv.add_argument("input", help="source dump file ('-' reads stdin)")
    conv.add_argument("-o", "--output", required=True, help="output .vpt path")
    conv.add_argument("--format", choices=("csv", "lackey"), required=True)
    conv.add_argument("--name", default="", help="workload name to record")
    conv.add_argument("--page-shift", type=int, default=12,
                      help="address -> VPN shift (default 12 = 4KB pages)")
    conv.add_argument("--include-instructions", action="store_true",
                      help="lackey only: keep instruction fetches")
    add_chunk_values(conv)
    conv.set_defaults(func=_cmd_convert)

    tra = sub.add_parser("transform", help="truncate/rescale/interleave")
    tra.add_argument("inputs", nargs="+", help="input .vpt trace(s)")
    tra.add_argument("-o", "--output", required=True, help="output .vpt path")
    tra.add_argument("--truncate", type=int, default=None,
                     help="keep only the first N records")
    tra.add_argument("--rescale", default="",
                     help="footprint factor NUMER/DENOM (e.g. 1/2)")
    tra.add_argument("--granularity", type=int, default=4096,
                     help="interleave quantum in records (default 4096)")
    tra.add_argument("--shared-regions", action="store_true",
                     help="interleave without shifting inputs apart")
    add_chunk_values(tra)
    tra.set_defaults(func=_cmd_transform)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed (e.g. `info ... | head`): exit quietly.
        return 0
    except (MEHPTError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
