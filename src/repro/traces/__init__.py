"""repro.traces — binary address-trace capture, import, and replay.

The subsystem turns the simulator into a proper trace-driven harness:

* :mod:`repro.traces.format` — the chunked ``.vpt`` container
  (delta/varint VPNs, per-chunk CRC32, footer index) with streaming
  :class:`TraceWriter` / :class:`TraceReader` that never hold the full
  stream in memory.
* :mod:`repro.traces.record` — capture any registered synthetic
  workload's access stream, plus the spec/seed metadata replay needs.
* :mod:`repro.traces.workload` — :class:`TraceWorkload`, a recorded or
  imported trace behind the standard ``Workload`` interface;
  ``get_workload("trace:<path>")`` resolves to it, so traces drop into
  ``SimulationConfig``, the sweep engine and the experiments unchanged.
* :mod:`repro.traces.importers` — CSV address lists and valgrind
  lackey output, normalized to VPNs with footprint stats.
* :mod:`repro.traces.transform` — lazy truncate / footprint-rescale /
  N-way interleave over readers.
* ``python -m repro.traces`` — ``record`` / ``info`` / ``validate`` /
  ``convert`` / ``transform`` CLI.

One recorded trace replays bit-exactly across ME-HPT, ECPT and radix
configurations (guaranteed-identical inputs), and external traces
become first-class workloads.  The sweep engine keys trace-backed cells
on the trace's *content hash*, so renaming a file never invalidates its
cached results.
"""

from repro.traces.format import (
    DEFAULT_CHUNK_VALUES,
    TraceMeta,
    TraceReader,
    TraceValidation,
    TraceWriter,
    trace_content_id,
    validate_trace,
)
from repro.traces.importers import ImportStats, import_csv, import_lackey
from repro.traces.record import record_named_workload, record_workload
from repro.traces.transform import (
    interleave_streams,
    rescale_stream,
    transform_trace,
    truncate_stream,
)
from repro.traces.workload import TRACE_PREFIX, TraceWorkload

__all__ = [
    "DEFAULT_CHUNK_VALUES",
    "TraceMeta",
    "TraceReader",
    "TraceValidation",
    "TraceWriter",
    "trace_content_id",
    "validate_trace",
    "ImportStats",
    "import_csv",
    "import_lackey",
    "record_named_workload",
    "record_workload",
    "interleave_streams",
    "rescale_stream",
    "transform_trace",
    "truncate_stream",
    "TRACE_PREFIX",
    "TraceWorkload",
]
