"""Importers turning external address dumps into ``.vpt`` traces.

Two formats cover the common capture paths:

* :func:`import_csv` — one byte address per line (hex ``0x...`` or
  decimal), optionally followed by comma-separated extras that are
  ignored; ``#`` comments and blank lines are skipped.  The lowest
  common denominator most tracing scripts can emit.
* :func:`import_lackey` — ``valgrind --tool=lackey --trace-mem=yes``
  output (``I``/``L``/``S``/``M`` records with hex addresses), the
  cheapest way to capture a real program's reference stream without a
  simulator.  Instruction fetches are dropped by default.

Both stream line batches through address → VPN normalization
(``vpn = address >> page_shift``) into a :class:`TraceWriter`, track
footprint statistics (records, distinct pages, min/max VPN) and store
them — plus a synthesized VMA layout — in the trace header, so the
import replays through :class:`~repro.traces.workload.TraceWorkload`
without rescanning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

import numpy as np

from repro.common.errors import ConfigurationError, TraceFormatError
from repro.traces.format import DEFAULT_CHUNK_VALUES, TraceMeta, TraceWriter
from repro.traces.workload import synthesize_vma_layout

#: Lines parsed per batch (bounds importer memory like chunks bound I/O).
BATCH_LINES = 65536

#: Lackey record tags: data loads/stores/modifies, instruction fetches.
_LACKEY_DATA = {"L", "S", "M"}
_LACKEY_ALL = _LACKEY_DATA | {"I"}


@dataclass
class ImportStats:
    """What an importer saw: volume, footprint, and skipped lines."""

    records: int = 0
    distinct_pages: int = 0
    skipped_lines: int = 0
    min_vpn: Optional[int] = None
    max_vpn: Optional[int] = None

    def summary(self) -> str:
        """One human-readable stats line (the CLI prints this)."""
        span = (
            self.max_vpn - self.min_vpn + 1
            if self.min_vpn is not None and self.max_vpn is not None
            else 0
        )
        return (
            f"{self.records} records, {self.distinct_pages} distinct pages "
            f"over a {span}-page span, {self.skipped_lines} line(s) skipped"
        )


class _StreamingImport:
    """Shared batching core: buffer addresses, flush VPN batches, track stats."""

    def __init__(self, writer: TraceWriter, page_shift: int) -> None:
        self.writer = writer
        self.page_shift = page_shift
        self.stats = ImportStats()
        self._distinct: Set[int] = set()
        self._batch: List[int] = []

    def add(self, address: int) -> None:
        """Queue one byte address; flushes automatically per batch."""
        self._batch.append(address)
        if len(self._batch) >= BATCH_LINES:
            self.flush()

    def flush(self) -> None:
        """Normalize the queued addresses to VPNs and write them out."""
        if not self._batch:
            return
        vpns = np.array(self._batch, dtype=np.int64) >> np.int64(self.page_shift)
        self._batch = []
        self.writer.append(vpns)
        self.stats.records += int(vpns.size)
        low, high = int(vpns.min()), int(vpns.max())
        self.stats.min_vpn = (
            low if self.stats.min_vpn is None else min(self.stats.min_vpn, low)
        )
        self.stats.max_vpn = (
            high if self.stats.max_vpn is None else max(self.stats.max_vpn, high)
        )
        self._distinct.update(int(v) for v in np.unique(vpns))

    def distinct_array(self) -> np.ndarray:
        """The accumulated distinct VPNs, sorted."""
        return np.array(sorted(self._distinct), dtype=np.int64)


def _finish_import(
    state: _StreamingImport, writer: TraceWriter, name: str
) -> ImportStats:
    """Flush, fill in footprint metadata, seal the file."""
    state.flush()
    stats = state.stats
    if stats.records == 0:
        writer.close()
        raise TraceFormatError(
            f"import produced no records for {writer.path}", path=writer.path
        )
    stats.distinct_pages = len(state._distinct)
    writer.meta.extra.update(
        {
            "name": name,
            "records": stats.records,
            "distinct_pages": stats.distinct_pages,
            "skipped_lines": stats.skipped_lines,
        }
    )
    writer.meta.vma_layout = [
        list(vma) for vma in synthesize_vma_layout(state.distinct_array(), name)
    ]
    writer.close()
    return stats


def _parse_address(token: str) -> Optional[int]:
    """Parse a hex (0x-prefixed) or decimal byte address; None if not one."""
    try:
        return int(token, 0)
    except ValueError:
        return None


def import_csv(
    lines: Iterable[str],
    path: str,
    name: str = "csv-import",
    page_shift: int = 12,
    chunk_values: int = DEFAULT_CHUNK_VALUES,
    registry=None,
) -> ImportStats:
    """Import a CSV/plain address list into a ``.vpt`` trace at ``path``.

    ``lines`` is any iterable of text lines (an open file streams);
    only the first comma-separated column is read.  Unparseable lines
    are counted as skipped rather than failing the import.
    """
    _check_page_shift(page_shift)
    writer = TraceWriter(
        path,
        meta=TraceMeta(source="csv", page_shift=page_shift),
        chunk_values=chunk_values,
        registry=registry,
    )
    state = _StreamingImport(writer, page_shift)
    for line in lines:
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        address = _parse_address(text.split(",", 1)[0].strip())
        if address is None or address < 0:
            state.stats.skipped_lines += 1
            continue
        state.add(address)
    return _finish_import(state, writer, name)


def import_lackey(
    lines: Iterable[str],
    path: str,
    name: str = "lackey-import",
    page_shift: int = 12,
    include_instructions: bool = False,
    chunk_values: int = DEFAULT_CHUNK_VALUES,
    registry=None,
) -> ImportStats:
    """Import ``valgrind --tool=lackey --trace-mem=yes`` output.

    Records look like ``I  0023c790,2`` (instruction fetch) and
    `` S 04eaffa0,8`` / `` L ...`` / `` M ...`` (data store/load/modify);
    valgrind's own ``==pid==`` chatter is skipped.  By default only data
    references are kept — instruction fetches hit separate iTLBs the
    simulator does not model — pass ``include_instructions`` to keep
    them.
    """
    _check_page_shift(page_shift)
    wanted = _LACKEY_ALL if include_instructions else _LACKEY_DATA
    writer = TraceWriter(
        path,
        meta=TraceMeta(source="lackey", page_shift=page_shift),
        chunk_values=chunk_values,
        registry=registry,
    )
    state = _StreamingImport(writer, page_shift)
    for line in lines:
        text = line.strip()
        if not text or text.startswith("=="):
            continue
        parts = text.split(None, 1)
        if len(parts) != 2 or parts[0] not in _LACKEY_ALL:
            state.stats.skipped_lines += 1
            continue
        if parts[0] not in wanted:
            continue
        address = _parse_address("0x" + parts[1].split(",", 1)[0].strip())
        if address is None:
            state.stats.skipped_lines += 1
            continue
        state.add(address)
    return _finish_import(state, writer, name)


def _check_page_shift(page_shift: int) -> None:
    if not 0 < page_shift < 32:
        raise ConfigurationError(
            f"page_shift {page_shift} is implausible (expected ~12)",
            field="page_shift", value=page_shift,
        )
