"""The ``.vpt`` binary address-trace container: codec, writer, reader.

A ``.vpt`` file stores a stream of virtual page numbers (VPNs) compactly
and verifiably:

* **Header** — magic ``VPT1``, format version, and a JSON metadata blob
  (see :class:`TraceMeta`) describing where the stream came from: the
  recorded :class:`~repro.workloads.base.WorkloadSpec` and seed for
  synthetic captures, the source file and page shift for imports, the
  transform pipeline for derived traces.
* **Chunks** — runs of up to ``chunk_values`` VPNs, delta-encoded
  against the previous record, zigzag-mapped, and varint-packed (LEB128
  style, 7 bits per byte).  Consecutive VPNs in real reference streams
  are close together, so most deltas fit in one or two bytes.  Every
  chunk carries its record count and a CRC32 of its payload.
* **Footer + trailer** — a JSON index of ``(offset, count, payload_len,
  crc32, prev_vpn)`` per chunk plus stream totals (record count,
  min/max VPN, a SHA-256 over all encoded payloads), then a fixed-size
  trailer locating the footer.  The ``prev_vpn`` anchor makes each chunk
  independently decodable, which :func:`validate_trace` and future
  random access rely on.

:class:`TraceWriter` and :class:`TraceReader` stream: neither ever holds
more than one chunk of VPNs in memory, so multi-gigabyte traces replay
with O(chunk) peak footprint.  Both optionally report into a
:class:`~repro.obs.metrics.MetricsRegistry` via the ``traces.*``
catalogue metrics.

The encoder/decoder are fully vectorized over numpy arrays — a chunk is
encoded with ~10 masked passes (one per possible varint byte) and
decoded with one ``np.add.reduceat`` over 7-bit groups — so recording
and replaying multi-million-reference traces stays I/O bound.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, TraceFormatError

#: Leading file magic ("Virtual Page Trace", format 1).
MAGIC = b"VPT1"
#: Trailing magic closing the fixed-size trailer.
TRAILER_MAGIC = b"VPTE"
#: Current container version; readers reject anything newer.
FORMAT_VERSION = 1
#: Default records per chunk (64K VPNs ~ a few hundred KB encoded).
DEFAULT_CHUNK_VALUES = 65536

_HEADER_FMT = "<HHI"  # version, flags, meta_len
_CHUNK_FMT = "<III"  # count, payload_len, crc32
_TRAILER_FMT = "<QI"  # footer_offset, footer_len
_CHUNK_HEADER_BYTES = struct.calcsize(_CHUNK_FMT)
_TRAILER_BYTES = struct.calcsize(_TRAILER_FMT) + len(TRAILER_MAGIC)

#: Longest legal varint for a 64-bit zigzag value (ceil(64 / 7)).
_MAX_VARINT_BYTES = 10


@dataclass
class TraceMeta:
    """Provenance and replay metadata carried in the ``.vpt`` header.

    ``source`` names the producer (``synthetic``, ``csv``, ``lackey``,
    ``transform``); ``workload`` holds the recorded
    :class:`~repro.workloads.base.WorkloadSpec` as a plain dict (None
    for imports); ``vma_layout`` is the address-space layout replay
    should install, as ``[start_vpn, pages, name]`` triples; ``extra``
    is free-form (importer stats, transform pipelines).
    """

    source: str = "unknown"
    workload: Optional[Dict[str, Any]] = None
    seed: int = 0
    scale: int = 1
    page_shift: int = 12
    vma_layout: Optional[List[List[Any]]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize to the canonical (sorted-keys) header JSON."""
        payload = {
            "source": self.source,
            "workload": self.workload,
            "seed": self.seed,
            "scale": self.scale,
            "page_shift": self.page_shift,
            "vma_layout": self.vma_layout,
            "extra": self.extra,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, blob: str) -> "TraceMeta":
        """Rebuild from header JSON, tolerating unknown future fields."""
        raw = json.loads(blob)
        return cls(
            source=raw.get("source", "unknown"),
            workload=raw.get("workload"),
            seed=raw.get("seed", 0),
            scale=raw.get("scale", 1),
            page_shift=raw.get("page_shift", 12),
            vma_layout=raw.get("vma_layout"),
            extra=raw.get("extra", {}),
        )


# -- varint codec ----------------------------------------------------------


def encode_vpn_chunk(vpns: np.ndarray, prev_vpn: int) -> bytes:
    """Delta + zigzag + varint encode one chunk of VPNs.

    ``prev_vpn`` anchors the first delta (0 for the first chunk of a
    stream, the preceding chunk's last VPN otherwise).  Vectorized: one
    masked pass per varint byte position.
    """
    values = np.ascontiguousarray(vpns, dtype=np.int64)
    if values.ndim != 1 or values.size == 0:
        raise ConfigurationError(
            "encode_vpn_chunk needs a non-empty 1-D array",
            field="vpns", value=values.shape,
        )
    deltas = np.empty(values.size, dtype=np.int64)
    deltas[0] = values[0] - prev_vpn
    np.subtract(values[1:], values[:-1], out=deltas[1:])
    # Zigzag: sign bit moves to bit 0 so small negative deltas stay small.
    zig = ((deltas << 1) ^ (deltas >> 63)).view(np.uint64)
    nbytes = np.ones(zig.size, dtype=np.int64)
    for group in range(1, _MAX_VARINT_BYTES):
        nbytes += (zig >= np.uint64(1) << np.uint64(7 * group)).astype(np.int64)
    starts = np.zeros(zig.size, dtype=np.int64)
    np.cumsum(nbytes[:-1], out=starts[1:])
    out = np.zeros(int(starts[-1] + nbytes[-1]), dtype=np.uint8)
    for group in range(_MAX_VARINT_BYTES):
        mask = nbytes > group
        if not mask.any():
            break
        septet = (zig[mask] >> np.uint64(7 * group)) & np.uint64(0x7F)
        cont = (nbytes[mask] - 1 > group).astype(np.uint8) << 7
        out[starts[mask] + group] = septet.astype(np.uint8) | cont
    return out.tobytes()


def decode_vpn_chunk(payload: bytes, count: int, prev_vpn: int) -> np.ndarray:
    """Decode one chunk back to absolute VPNs (inverse of the encoder).

    Raises :class:`~repro.common.errors.TraceFormatError` when the
    payload does not contain exactly ``count`` well-formed varints.
    """
    raw = np.frombuffer(payload, dtype=np.uint8)
    if raw.size == 0:
        raise TraceFormatError("empty chunk payload", count=count)
    terminal = (raw & 0x80) == 0
    ends = np.flatnonzero(terminal)
    if ends.size != count:
        raise TraceFormatError(
            f"chunk decodes to {ends.size} records, header says {count}",
            expected=count, decoded=int(ends.size),
        )
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if int(lengths.max()) > _MAX_VARINT_BYTES or int(ends[-1]) != raw.size - 1:
        raise TraceFormatError(
            "malformed varint run in chunk", longest=int(lengths.max()),
        )
    group = np.arange(raw.size, dtype=np.int64) - np.repeat(starts, lengths)
    septets = (raw & 0x7F).astype(np.uint64) << (np.uint64(7) * group.astype(np.uint64))
    zig = np.add.reduceat(septets, starts)
    deltas = (zig >> np.uint64(1)).view(np.int64) ^ -(zig & np.uint64(1)).view(np.int64)
    vpns = np.cumsum(deltas)
    vpns += prev_vpn
    return vpns


# -- writer ----------------------------------------------------------------


class TraceWriter:
    """Streaming ``.vpt`` writer: append VPNs, close to seal the footer.

    Usable as a context manager.  Buffers at most one chunk of records;
    every full chunk is encoded, checksummed and flushed immediately, so
    peak memory is O(``chunk_values``) regardless of trace length.
    """

    def __init__(
        self,
        path: str,
        meta: Optional[TraceMeta] = None,
        chunk_values: int = DEFAULT_CHUNK_VALUES,
        registry=None,
    ) -> None:
        if chunk_values < 1:
            raise ConfigurationError(
                f"chunk_values {chunk_values} must be >= 1",
                field="chunk_values", value=chunk_values,
            )
        self.path = path
        self.meta = meta if meta is not None else TraceMeta()
        self.chunk_values = chunk_values
        self._registry = registry
        self._handle: Optional[BinaryIO] = open(path, "wb")
        self._pending: List[np.ndarray] = []
        self._pending_count = 0
        self._prev_vpn = 0
        self._index: List[List[int]] = []
        self.total_values = 0
        self._min_vpn: Optional[int] = None
        self._max_vpn: Optional[int] = None
        self._payload_sha = hashlib.sha256()
        meta_blob = self.meta.to_json().encode("utf-8")
        self._handle.write(MAGIC)
        self._handle.write(struct.pack(_HEADER_FMT, FORMAT_VERSION, 0, len(meta_blob)))
        self._handle.write(meta_blob)

    # -- appending ------------------------------------------------------

    def append(self, vpns) -> None:
        """Append an array (or iterable) of VPNs to the stream."""
        if self._handle is None:
            raise TraceFormatError("writer is closed", path=self.path)
        values = np.asarray(vpns, dtype=np.int64).ravel()
        if values.size == 0:
            return
        self._pending.append(values)
        self._pending_count += values.size
        while self._pending_count >= self.chunk_values:
            buffered = np.concatenate(self._pending)
            self._write_chunk(buffered[: self.chunk_values])
            rest = buffered[self.chunk_values:]
            self._pending = [rest] if rest.size else []
            self._pending_count = int(rest.size)

    def _write_chunk(self, values: np.ndarray) -> None:
        """Encode, checksum and flush one chunk."""
        payload = encode_vpn_chunk(values, self._prev_vpn)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        offset = self._handle.tell()
        self._handle.write(struct.pack(_CHUNK_FMT, values.size, len(payload), crc))
        self._handle.write(payload)
        self._index.append(
            [offset, int(values.size), len(payload), crc, self._prev_vpn]
        )
        self._payload_sha.update(payload)
        self._prev_vpn = int(values[-1])
        self.total_values += int(values.size)
        low, high = int(values.min()), int(values.max())
        self._min_vpn = low if self._min_vpn is None else min(self._min_vpn, low)
        self._max_vpn = high if self._max_vpn is None else max(self._max_vpn, high)
        if self._registry is not None:
            self._registry.counter("traces.chunks_written").inc()
            self._registry.counter("traces.records_written").inc(int(values.size))

    # -- sealing --------------------------------------------------------

    def close(self) -> None:
        """Flush the partial chunk, write footer and trailer (idempotent)."""
        if self._handle is None:
            return
        if self._pending_count:
            self._write_chunk(np.concatenate(self._pending))
            self._pending = []
            self._pending_count = 0
        footer = {
            "total_values": self.total_values,
            "chunks": self._index,
            "min_vpn": self._min_vpn,
            "max_vpn": self._max_vpn,
            "payload_sha256": self._payload_sha.hexdigest(),
            # Metadata is sealed here too: importers and recorders fill in
            # footprint stats and synthesized layouts while streaming, after
            # the header copy has already hit the disk.  Readers prefer this
            # copy, so late-bound updates to ``writer.meta`` stick.
            "meta": json.loads(self.meta.to_json()),
        }
        blob = json.dumps(footer, sort_keys=True, separators=(",", ":")).encode("utf-8")
        footer_offset = self._handle.tell()
        self._handle.write(blob)
        self._handle.write(struct.pack(_TRAILER_FMT, footer_offset, len(blob)))
        self._handle.write(TRAILER_MAGIC)
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- reader ----------------------------------------------------------------


def _read_header(handle: BinaryIO, path: str) -> TraceMeta:
    """Parse and check the header; leaves ``handle`` after the meta blob."""
    lead = handle.read(len(MAGIC) + struct.calcsize(_HEADER_FMT))
    if not lead:
        # An empty file deserves a sharper diagnosis than "bad magic":
        # it is the classic symptom of an interrupted capture or a
        # touch(1)-created placeholder.
        raise TraceFormatError(
            f"{path} is empty (0 bytes) — not a .vpt trace; was the "
            f"capture interrupted before the header was written?",
            path=path, size=0,
        )
    if len(lead) < len(MAGIC) + struct.calcsize(_HEADER_FMT) or lead[:4] != MAGIC:
        raise TraceFormatError(f"{path} is not a .vpt trace (bad magic)", path=path)
    version, _flags, meta_len = struct.unpack(_HEADER_FMT, lead[4:])
    if version > FORMAT_VERSION:
        raise TraceFormatError(
            f"{path} uses format version {version}, newest supported is "
            f"{FORMAT_VERSION}", path=path, version=version,
        )
    meta_blob = handle.read(meta_len)
    if len(meta_blob) != meta_len:
        raise TraceFormatError(f"{path} header is truncated", path=path)
    try:
        return TraceMeta.from_json(meta_blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceFormatError(
            f"{path} carries unparseable metadata: {exc}", path=path,
        ) from exc


def _is_int(value: Any) -> bool:
    """A real integer — bools are excluded (JSON true/false parse as bool)."""
    return isinstance(value, int) and not isinstance(value, bool)


def _validate_footer_schema(
    footer: Any, path: str, footer_offset: int, file_size: int
) -> Dict[str, Any]:
    """Check the parsed footer's shape before anything indexes into it.

    Garbage that *parses* as JSON (fuzzed files, partial overwrites) must
    surface as :class:`TraceFormatError` with file-offset context, never
    as a ``TypeError``/``ValueError`` leaking from chunk iteration.
    """
    if not isinstance(footer, dict):
        raise TraceFormatError(
            f"{path} footer at offset {footer_offset} is a JSON "
            f"{type(footer).__name__}, not an object",
            path=path, footer_offset=footer_offset,
        )
    if "chunks" not in footer or "total_values" not in footer:
        raise TraceFormatError(
            f"{path} footer at offset {footer_offset} is incomplete",
            path=path, footer_offset=footer_offset,
        )
    total = footer["total_values"]
    if not _is_int(total) or total < 0:
        raise TraceFormatError(
            f"{path} footer total_values {total!r} is not a non-negative "
            f"integer", path=path, footer_offset=footer_offset,
        )
    chunks = footer["chunks"]
    if not isinstance(chunks, list):
        raise TraceFormatError(
            f"{path} footer chunk index is a {type(chunks).__name__}, "
            f"not a list", path=path, footer_offset=footer_offset,
        )
    data_end = footer_offset
    for chunk_no, entry in enumerate(chunks):
        if not isinstance(entry, (list, tuple)) or len(entry) != 5:
            raise TraceFormatError(
                f"{path} footer chunk {chunk_no} entry is malformed "
                f"(want [offset, count, payload_len, crc32, prev_vpn], "
                f"got {entry!r})",
                path=path, footer_offset=footer_offset, chunk=chunk_no,
            )
        offset, count, payload_len, crc, prev_vpn = entry
        if not all(_is_int(v) for v in (offset, count, payload_len, crc, prev_vpn)):
            raise TraceFormatError(
                f"{path} footer chunk {chunk_no} entry holds non-integer "
                f"fields: {entry!r}",
                path=path, footer_offset=footer_offset, chunk=chunk_no,
            )
        if offset < 0 or count < 1 or payload_len < 1 or not 0 <= crc < 1 << 32:
            raise TraceFormatError(
                f"{path} footer chunk {chunk_no} entry is out of range: "
                f"offset={offset} count={count} payload_len={payload_len} "
                f"crc={crc}",
                path=path, footer_offset=footer_offset, chunk=chunk_no,
            )
        if offset + _CHUNK_HEADER_BYTES + payload_len > data_end:
            raise TraceFormatError(
                f"{path} footer chunk {chunk_no} points past the data "
                f"region (offset {offset} + {payload_len} payload bytes "
                f"vs footer at {footer_offset})",
                path=path, footer_offset=footer_offset, chunk=chunk_no,
            )
    for key in ("min_vpn", "max_vpn"):
        value = footer.get(key)
        if value is not None and not _is_int(value):
            raise TraceFormatError(
                f"{path} footer {key} {value!r} is not an integer",
                path=path, footer_offset=footer_offset,
            )
    sealed = footer.get("meta")
    if sealed is not None and not isinstance(sealed, dict):
        raise TraceFormatError(
            f"{path} footer sealed metadata is a "
            f"{type(sealed).__name__}, not an object",
            path=path, footer_offset=footer_offset,
        )
    return footer


def _read_footer(handle: BinaryIO, path: str) -> Dict[str, Any]:
    """Parse the trailer-located footer index from an open trace file."""
    handle.seek(0, os.SEEK_END)
    size = handle.tell()
    if size < _TRAILER_BYTES:
        raise TraceFormatError(f"{path} has no trailer (truncated?)", path=path)
    handle.seek(size - _TRAILER_BYTES)
    trailer = handle.read(_TRAILER_BYTES)
    if trailer[-len(TRAILER_MAGIC):] != TRAILER_MAGIC:
        raise TraceFormatError(
            f"{path} has no trailer magic — unsealed or truncated trace",
            path=path,
        )
    try:
        footer_offset, footer_len = struct.unpack(
            _TRAILER_FMT, trailer[: struct.calcsize(_TRAILER_FMT)]
        )
    except struct.error as exc:  # pragma: no cover - length is fixed above
        raise TraceFormatError(
            f"{path} trailer is undecodable: {exc}", path=path,
        ) from exc
    if footer_offset + footer_len > size - _TRAILER_BYTES:
        raise TraceFormatError(
            f"{path} footer location is corrupt (offset {footer_offset} + "
            f"{footer_len} bytes vs {size}-byte file)",
            path=path, footer_offset=footer_offset,
        )
    handle.seek(footer_offset)
    blob = handle.read(footer_len)
    try:
        footer = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceFormatError(
            f"{path} footer at offset {footer_offset} is unparseable: {exc}",
            path=path, footer_offset=footer_offset,
        ) from exc
    return _validate_footer_schema(footer, path, footer_offset, size)


class TraceReader:
    """Streaming ``.vpt`` reader with per-chunk CRC verification.

    Opens the header and footer eagerly (both are small);
    :meth:`iter_chunks` then yields one decoded numpy array per chunk,
    never materializing the full stream — peak memory is O(chunk).
    Usable as a context manager and re-iterable (each ``iter_chunks``
    call restarts from the first chunk).
    """

    def __init__(self, path: str, registry=None) -> None:
        self.path = path
        self._registry = registry
        self._handle: Optional[BinaryIO] = open(path, "rb")
        try:
            self.meta = _read_header(self._handle, path)
            self._footer = _read_footer(self._handle, path)
            # The footer carries the sealed metadata (the header copy is a
            # snapshot from when the writer was opened; see TraceWriter.close).
            sealed = self._footer.get("meta")
            if sealed is not None:
                self.meta = TraceMeta.from_json(json.dumps(sealed))
        except Exception:
            self._handle.close()
            self._handle = None
            raise
        self.total_values: int = int(self._footer["total_values"])
        self.min_vpn: Optional[int] = self._footer.get("min_vpn")
        self.max_vpn: Optional[int] = self._footer.get("max_vpn")
        self.chunks: int = len(self._footer["chunks"])

    @property
    def content_id(self) -> str:
        """SHA-256 over all encoded chunk payloads (rename-stable)."""
        return str(self._footer.get("payload_sha256", ""))

    def iter_chunks(self, verify: bool = True) -> Iterator[np.ndarray]:
        """Yield each chunk as a decoded int64 VPN array, in order.

        With ``verify`` (the default) every chunk's CRC32 is recomputed;
        a mismatch increments ``traces.checksum_failures`` and raises
        :class:`~repro.common.errors.TraceFormatError`.
        """
        if self._handle is None:
            raise TraceFormatError("reader is closed", path=self.path)
        for chunk_no, entry in enumerate(self._footer["chunks"]):
            offset, count, payload_len, crc, prev_vpn = entry
            self._handle.seek(offset)
            header = self._handle.read(_CHUNK_HEADER_BYTES)
            if len(header) != _CHUNK_HEADER_BYTES:
                raise TraceFormatError(
                    f"{self.path} chunk {chunk_no} header is truncated",
                    path=self.path, chunk=chunk_no,
                )
            h_count, h_len, h_crc = struct.unpack(_CHUNK_FMT, header)
            if (h_count, h_len, h_crc) != (count, payload_len, crc):
                self._count_checksum_failure()
                raise TraceFormatError(
                    f"{self.path} chunk {chunk_no} header disagrees with the "
                    f"footer index", path=self.path, chunk=chunk_no,
                )
            payload = self._handle.read(payload_len)
            if len(payload) != payload_len:
                raise TraceFormatError(
                    f"{self.path} chunk {chunk_no} payload is truncated",
                    path=self.path, chunk=chunk_no,
                )
            if verify and (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                self._count_checksum_failure()
                raise TraceFormatError(
                    f"{self.path} chunk {chunk_no} failed its CRC32 check",
                    path=self.path, chunk=chunk_no,
                )
            vpns = decode_vpn_chunk(payload, count, prev_vpn)
            if self._registry is not None:
                self._registry.counter("traces.chunks_read").inc()
                self._registry.counter("traces.records_read").inc(int(count))
            yield vpns

    def _count_checksum_failure(self) -> None:
        if self._registry is not None:
            self._registry.counter("traces.checksum_failures").inc()

    def __iter__(self) -> Iterator[int]:
        """Yield individual VPNs as Python ints (chunked underneath)."""
        for chunk in self.iter_chunks():
            for vpn in chunk:
                yield int(vpn)

    def iter_window(
        self, length: Optional[int] = None, loop: bool = False
    ) -> Iterator[np.ndarray]:
        """Stream the first ``length`` VPNs as chunk-sized arrays.

        The streaming counterpart of :meth:`read`: the concatenation of
        the yielded arrays equals ``read(length, loop)``, but peak
        memory stays O(chunk) — this is how the simulator replays
        multi-million-record traces without materializing them.  The
        same length/loop validation applies (asking for more records
        than the trace holds requires ``loop``).
        """
        want = self.total_values if length is None else int(length)
        if want < 0:
            raise ConfigurationError(
                f"length {length} must be >= 0", field="length", value=length
            )
        if want > self.total_values and not loop:
            raise ConfigurationError(
                f"trace {self.path} holds {self.total_values} records, "
                f"{want} requested (pass loop=True to wrap)",
                field="length", value=want,
            )
        if want and self.total_values == 0:
            raise ConfigurationError(
                f"trace {self.path} is empty", field="length", value=want
            )
        have = 0
        while have < want:
            for chunk in self.iter_chunks():
                take = min(chunk.size, want - have)
                yield chunk[:take]
                have += take
                if have >= want:
                    break

    def read(self, length: Optional[int] = None, loop: bool = False) -> np.ndarray:
        """Materialize up to ``length`` VPNs (all of them when None).

        This is the one deliberately non-streaming entry point — the
        trace-driven simulator consumes a whole window at once.  With
        ``loop`` the stream restarts from the beginning until ``length``
        records are produced; without it, asking for more records than
        the trace holds raises :class:`ConfigurationError`.
        """
        parts: List[np.ndarray] = list(self.iter_window(length, loop=loop))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def page_set(self) -> np.ndarray:
        """Sorted distinct VPNs, accumulated chunk-by-chunk."""
        distinct: Optional[np.ndarray] = None
        for chunk in self.iter_chunks():
            uniq = np.unique(chunk)
            distinct = uniq if distinct is None else np.union1d(distinct, uniq)
        if distinct is None:
            return np.empty(0, dtype=np.int64)
        return distinct

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- validation and identity ----------------------------------------------


@dataclass
class TraceValidation:
    """Outcome of :func:`validate_trace`: totals plus every problem found."""

    path: str
    ok: bool
    total_values: int = 0
    chunks: int = 0
    checksum_failures: int = 0
    problems: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One human-readable status line."""
        status = "OK" if self.ok else "CORRUPT"
        return (
            f"{self.path}: {status} — {self.total_values} records in "
            f"{self.chunks} chunks, {self.checksum_failures} checksum "
            f"failure(s), {len(self.problems)} problem(s)"
        )


def validate_trace(path: str, registry=None) -> TraceValidation:
    """Exhaustively check a trace: structure, checksums, counts, bounds.

    Unlike :meth:`TraceReader.iter_chunks` (which raises on the first bad
    chunk), validation scans the whole file and reports every problem,
    so a partially corrupted trace can still be triaged.
    """
    report = TraceValidation(path=path, ok=True)
    try:
        reader = TraceReader(path, registry=registry)
    except (TraceFormatError, OSError) as exc:
        report.ok = False
        report.problems.append(str(exc))
        return report
    report.chunks = reader.chunks
    seen = 0
    low: Optional[int] = None
    high: Optional[int] = None
    sha = hashlib.sha256()
    with reader:
        for chunk_no, entry in enumerate(reader._footer["chunks"]):
            offset, count, payload_len, crc, prev_vpn = entry
            reader._handle.seek(offset + _CHUNK_HEADER_BYTES)
            payload = reader._handle.read(payload_len)
            sha.update(payload)
            if len(payload) != payload_len:
                report.problems.append(f"chunk {chunk_no}: truncated payload")
                continue
            if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                report.checksum_failures += 1
                report.problems.append(f"chunk {chunk_no}: CRC32 mismatch")
                if registry is not None:
                    registry.counter("traces.checksum_failures").inc()
                continue
            try:
                vpns = decode_vpn_chunk(payload, count, prev_vpn)
            except TraceFormatError as exc:
                report.problems.append(f"chunk {chunk_no}: {exc}")
                continue
            seen += int(vpns.size)
            low = int(vpns.min()) if low is None else min(low, int(vpns.min()))
            high = int(vpns.max()) if high is None else max(high, int(vpns.max()))
        if not report.problems:
            if seen != reader.total_values:
                report.problems.append(
                    f"footer claims {reader.total_values} records, chunks "
                    f"decode to {seen}"
                )
            if reader.total_values and (low, high) != (reader.min_vpn, reader.max_vpn):
                report.problems.append(
                    f"footer bounds ({reader.min_vpn}, {reader.max_vpn}) "
                    f"disagree with decoded bounds ({low}, {high})"
                )
            if reader.content_id and sha.hexdigest() != reader.content_id:
                report.problems.append("payload SHA-256 disagrees with footer")
    report.total_values = seen
    report.ok = not report.problems
    return report


#: Digest cache keyed by (realpath, size, mtime_ns) — re-stat, not re-read.
_CONTENT_ID_CACHE: Dict[Tuple[str, int, int], str] = {}


def trace_content_id(path: str) -> str:
    """The trace's rename-stable content digest (from the footer).

    Used by the sweep engine to key trace-backed cells on *what the
    trace contains* rather than where it lives — moving or renaming the
    file keeps its cached results valid.  Cheap: only the header and
    footer are read, and repeat calls are memoised against the file's
    (size, mtime) identity.
    """
    stat = os.stat(path)
    cache_key = (os.path.realpath(path), stat.st_size, stat.st_mtime_ns)
    cached = _CONTENT_ID_CACHE.get(cache_key)
    if cached is not None:
        return cached
    with TraceReader(path) as reader:
        digest = reader.content_id
        if not digest:
            raise TraceFormatError(
                f"{path} footer carries no content digest", path=path
            )
    _CONTENT_ID_CACHE[cache_key] = digest
    return digest
