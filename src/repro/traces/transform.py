"""Lazy trace transforms: truncate, footprint-rescale, interleave.

Transforms are generator functions over *chunk streams* (iterators of
int64 numpy arrays, the shape :meth:`TraceReader.iter_chunks` yields),
so they compose without materializing the stream:

    chunks = reader.iter_chunks()
    chunks = rescale_stream(chunks, 1, 2, base_vpn=base)   # halve footprint
    chunks = truncate_stream(chunks, 1_000_000)            # first 1M refs
    write_stream(out_path, chunks, meta)

:func:`interleave_streams` merges N traces round-robin at a reference
granularity to emulate a multi-programmed mix — each input is shifted
into its own VPN region by default, the way distinct processes occupy
disjoint address-space slices.

:func:`transform_trace` wires the three together for the CLI: it opens
the inputs, composes the requested pipeline, derives the output
metadata (including a transformed VMA layout) and writes the result.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.traces.format import (
    DEFAULT_CHUNK_VALUES,
    TraceMeta,
    TraceReader,
    TraceWriter,
)

#: VPN stride between interleaved inputs (2^36 pages = 256TB of VA per
#: process slice — far above any single trace's span).
INTERLEAVE_REGION_STRIDE = 1 << 36

ChunkStream = Iterator[np.ndarray]


def truncate_stream(chunks: Iterable[np.ndarray], limit: int) -> ChunkStream:
    """Pass through the first ``limit`` records, then stop."""
    if limit < 1:
        raise ConfigurationError(
            f"truncate limit {limit} must be >= 1", field="limit", value=limit
        )
    remaining = limit
    for chunk in chunks:
        if chunk.size >= remaining:
            yield chunk[:remaining]
            return
        remaining -= chunk.size
        yield chunk


def rescale_stream(
    chunks: Iterable[np.ndarray], numer: int, denom: int, base_vpn: int = 0
) -> ChunkStream:
    """Rescale the footprint: ``vpn' = base + (vpn - base) * numer // denom``.

    ``numer/denom < 1`` compresses the footprint (more page reuse, the
    small-input regime of Figure 15); ``> 1`` spreads it out.  The
    access *order* is untouched — only the page set is remapped, so
    locality structure survives the rescale.
    """
    if numer < 1 or denom < 1:
        raise ConfigurationError(
            f"rescale factor {numer}/{denom} must be positive",
            field="rescale", value=(numer, denom),
        )
    for chunk in chunks:
        yield base_vpn + (chunk - base_vpn) * numer // denom


def rescale_vpn(vpn: int, numer: int, denom: int, base_vpn: int = 0) -> int:
    """Apply :func:`rescale_stream`'s mapping to one VPN (layout math)."""
    return base_vpn + (vpn - base_vpn) * numer // denom


def _rechunk(chunks: Iterable[np.ndarray], size: int) -> ChunkStream:
    """Re-slice a chunk stream into blocks of exactly ``size`` records."""
    pending: List[np.ndarray] = []
    buffered = 0
    for chunk in chunks:
        pending.append(chunk)
        buffered += chunk.size
        while buffered >= size:
            merged = np.concatenate(pending)
            yield merged[:size]
            rest = merged[size:]
            pending = [rest] if rest.size else []
            buffered = int(rest.size)
    if buffered:
        yield np.concatenate(pending)


def interleave_streams(
    streams: Sequence[Iterable[np.ndarray]],
    granularity: int = 4096,
    separate_regions: bool = True,
) -> ChunkStream:
    """Round-robin ``granularity``-record blocks from N chunk streams.

    Emulates a multi-programmed mix on one simulated core: each input
    contributes a scheduling quantum of references in turn; exhausted
    inputs drop out and the rest keep rotating.  With
    ``separate_regions`` input *i* is shifted by ``i *``
    :data:`INTERLEAVE_REGION_STRIDE` so the merged trace looks like
    distinct processes rather than one process revisiting shared pages.
    """
    if len(streams) < 2:
        raise ConfigurationError(
            "interleave needs at least two input traces",
            field="streams", value=len(streams),
        )
    if granularity < 1:
        raise ConfigurationError(
            f"granularity {granularity} must be >= 1",
            field="granularity", value=granularity,
        )
    blocks = [iter(_rechunk(stream, granularity)) for stream in streams]
    offsets = [
        interleave_offset(i) if separate_regions else 0
        for i in range(len(streams))
    ]
    live = list(range(len(blocks)))
    while live:
        finished = []
        for idx in live:
            block = next(blocks[idx], None)
            if block is None:
                finished.append(idx)
                continue
            yield block + offsets[idx]
        live = [idx for idx in live if idx not in finished]


def interleave_offset(index: int) -> int:
    """The VPN shift applied to interleave input ``index``."""
    return index * INTERLEAVE_REGION_STRIDE


def write_stream(
    path: str,
    chunks: Iterable[np.ndarray],
    meta: TraceMeta,
    chunk_values: int = DEFAULT_CHUNK_VALUES,
    registry=None,
) -> int:
    """Drain a chunk stream into a new ``.vpt`` file; returns the count."""
    with TraceWriter(
        path, meta=meta, chunk_values=chunk_values, registry=registry
    ) as writer:
        for chunk in chunks:
            writer.append(chunk)
    # close() flushed the partial chunk, so the total is now final.
    return writer.total_values


def transform_trace(
    inputs: Sequence[str],
    output: str,
    truncate: Optional[int] = None,
    rescale: Optional[Sequence[int]] = None,
    interleave_granularity: int = 4096,
    separate_regions: bool = True,
    chunk_values: int = DEFAULT_CHUNK_VALUES,
    registry=None,
) -> int:
    """Compose the requested transforms over ``inputs`` and write ``output``.

    One input: truncate and/or rescale apply directly.  Several inputs:
    they are interleaved first, then truncated/rescaled.  The output
    metadata records the pipeline and carries a correspondingly
    transformed VMA layout, so the result replays like any other trace.
    """
    if not inputs:
        raise ConfigurationError("transform needs at least one input trace")
    readers = [TraceReader(p, registry=registry) for p in inputs]
    try:
        pipeline: List[str] = []
        layout: List[List[object]] = []
        if len(readers) == 1:
            chunks: ChunkStream = readers[0].iter_chunks()
            layout = [list(v) for v in (readers[0].meta.vma_layout or [])]
        else:
            chunks = interleave_streams(
                [r.iter_chunks() for r in readers],
                granularity=interleave_granularity,
                separate_regions=separate_regions,
            )
            pipeline.append(
                f"interleave(n={len(readers)}, granularity="
                f"{interleave_granularity}, separate={separate_regions})"
            )
            for i, reader in enumerate(readers):
                shift = interleave_offset(i) if separate_regions else 0
                for start, pages, name in reader.meta.vma_layout or []:
                    layout.append([int(start) + shift, int(pages), f"mix{i}-{name}"])
        base_vpn = min(
            (r.min_vpn for r in readers if r.min_vpn is not None), default=0
        )
        if rescale is not None:
            numer, denom = int(rescale[0]), int(rescale[1])
            chunks = rescale_stream(chunks, numer, denom, base_vpn=base_vpn)
            pipeline.append(f"rescale({numer}/{denom}, base={base_vpn})")
            layout = [
                [
                    rescale_vpn(int(start), numer, denom, base_vpn),
                    max(1, int(pages) * numer // denom),
                    name,
                ]
                for start, pages, name in layout
            ]
        if truncate is not None:
            chunks = truncate_stream(chunks, truncate)
            pipeline.append(f"truncate({truncate})")
        first = readers[0].meta
        meta = TraceMeta(
            source="transform",
            workload=first.workload if len(readers) == 1 else None,
            seed=first.seed,
            scale=first.scale,
            page_shift=first.page_shift,
            vma_layout=layout or None,
            extra={
                "pipeline": pipeline,
                "inputs": [r.content_id for r in readers],
            },
        )
        return write_stream(
            output, chunks, meta, chunk_values=chunk_values, registry=registry
        )
    finally:
        for reader in readers:
            reader.close()
