"""Elastic Cuckoo Page Tables (ECPT) — the state-of-the-art HPT baseline.

This is the design of Skarlatos et al. (ASPLOS'20) that the paper
improves on: per-process, per-page-size 3-way cuckoo HPTs whose ways live
in *contiguous* physical memory, resized all-ways-at-once and out of
place with gradual rehashing.

* :mod:`repro.ecpt.tables` — the per-page-size tables and the kernel-facing
  page-table interface.
* :mod:`repro.ecpt.cwt` — Cuckoo Walk Tables (which page sizes map a VA
  region) and the Cuckoo Walk Caches (CWCs) that cache them in the MMU.
* :mod:`repro.ecpt.walker` — the parallel-probe hardware walker.
"""

from repro.ecpt.cwt import CuckooWalkCache, CuckooWalkTable
from repro.ecpt.tables import EcptPageTables
from repro.ecpt.walker import EcptWalker

__all__ = ["EcptPageTables", "CuckooWalkTable", "CuckooWalkCache", "EcptWalker"]
