"""The ECPT hardware walker: CWC-guided parallel probes.

On a TLB miss (Figure 7 of the paper):

1. The MMU probes the PMD-CWC and PUD-CWC in parallel (4-cycle round
   trip) to learn which page sizes map the faulting region.
2. On a CWC miss, the Cuckoo Walk Tables are read from memory (one
   parallel memory reference) and the CWCs are filled.
3. The ways of the candidate page tables are probed *in parallel* — the
   key property of HPTs: latency is the max, not the sum, of the probes.
   Rehash-pointer comparisons (for in-flight resizes) are register
   operations and add no latency.

The same walker drives ME-HPT (:class:`repro.core.walker.MeHptWalker`
subclasses it); there the L2P lookup is overlapped with the CWC access
(Section V-D) and so adds no visible latency on this path.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from repro.ecpt.cwt import CuckooWalkCache
from repro.ecpt.tables import HashedPageTableSet
from repro.mem.cache import CacheHierarchy
from repro.mmu.walk import WalkResult
from repro.obs.trace import EVENT_WALK_END, EVENT_WALK_START

#: Probe order: a bigger page size wins if both map a region (they cannot
#: overlap for the same VA, but stale smaller entries are shadowed).
_PROBE_ORDER = ("1G", "2M", "4K")


class EcptWalker:
    """Walks a :class:`HashedPageTableSet` with CWC guidance."""

    def __init__(
        self,
        tables: HashedPageTableSet,
        cache_hierarchy: CacheHierarchy,
        pmd_cwc_entries: int = 16,
        pud_cwc_entries: int = 2,
        cwc_cycles: int = 4,
        obs=None,
    ) -> None:
        self.tables = tables
        self.caches = cache_hierarchy
        self.pmd_cwc = CuckooWalkCache(tables.pmd_cwt, pmd_cwc_entries, cwc_cycles)
        self.pud_cwc = CuckooWalkCache(tables.pud_cwt, pud_cwc_entries, cwc_cycles)
        tables.cwc_listeners.extend([self.pmd_cwc, self.pud_cwc])
        self.cwc_cycles = cwc_cycles
        self.walks = 0
        self.total_cycles = 0
        self.total_accesses = 0
        self.cwt_memory_reads = 0
        #: Optional repro.obs.Observability: walk_start/walk_end events
        #: plus a live per-walk latency histogram (pow2 bins).
        self.obs = obs
        self.walk_latency = None
        if obs is not None and obs.registry is not None:
            self.walk_latency = obs.registry.histogram(
                "walker.walk_latency", bucketer="pow2"
            )

    # -- the walk ---------------------------------------------------------

    def walk(self, vpn: int) -> WalkResult:
        """Translate ``vpn`` with full cycle accounting.

        The PMD-CWC gives a *precise* per-2MB-region answer; the PUD-CWC
        gives a *coarse* per-1GB answer that may list extra page sizes
        (costing extra parallel probes, never correctness).  On a double
        CWC miss the walker reads the PUD-CWT from memory — a structure
        two orders of magnitude smaller than a radix PMD level, so its
        few lines stay cache-hot; this is what keeps an HPT walk at one
        memory-latency even when the MMU caches miss.  When the coarse
        entry is ambiguous (both 4KB and 2MB present), the PMD-CWT entry
        is fetched in parallel for precision.
        """
        if self.obs is not None:
            self.obs.emit(EVENT_WALK_START, walk=self.walks, vpn=vpn)
        cycles = self.cwc_cycles  # both CWCs probed in parallel
        accesses = 0
        candidate_sizes, cwt_lines = self._resolve_candidates(vpn)
        if cwt_lines:
            cycles += self.caches.access_parallel(cwt_lines)
            accesses += len(cwt_lines)
            self.cwt_memory_reads += len(cwt_lines)
        if not candidate_sizes:
            # Nothing maps this region: fault without probing the HPTs.
            self._account(cycles, accesses)
            return WalkResult(None, None, cycles, accesses)
        probe_lines: List[int] = []
        for page_size in candidate_sizes:
            probe_lines.extend(self.tables.tables[page_size].probe_line_addrs(vpn))
        cycles += self.caches.access_parallel(probe_lines)
        accesses += len(probe_lines)
        extra = self._extra_probe_cycles(vpn, candidate_sizes)
        cycles += extra
        for page_size in _PROBE_ORDER:
            if page_size not in candidate_sizes:
                continue
            ppn = self.tables.tables[page_size].translate(vpn)
            if ppn is not None:
                self._account(cycles, accesses)
                return WalkResult(ppn, page_size, cycles, accesses)
        self._account(cycles, accesses)
        return WalkResult(None, None, cycles, accesses)

    def _resolve_candidates(self, vpn: int):
        """CWC/CWT resolution for one walk: the candidate page sizes plus
        the CWT cache lines read from memory (empty on a CWC hit).

        Performs the real CWC lookups and fills — the batched walk engine
        shares this method so its CWC hit/miss sequence and fill contents
        are identical to the scalar walker's.  The caller charges the
        returned lines to the cache hierarchy.
        """
        pmd_sizes = self.pmd_cwc.lookup(vpn)
        pud_sizes = self.pud_cwc.lookup(vpn)
        lines: List[int] = []
        if pmd_sizes is not None:
            candidate_sizes = frozenset(pmd_sizes) | frozenset(
                s for s in (pud_sizes or frozenset()) if s == "1G"
            )
            if pud_sizes is None and "1G" in self.tables.pud_cwt.sizes_for(vpn):
                # Rare: a 1GB page not visible to the PMD side; take the
                # coarse path to be safe.
                candidate_sizes = candidate_sizes | frozenset(["1G"])
        elif pud_sizes is not None:
            candidate_sizes = frozenset(pud_sizes)
        else:
            coarse = self.tables.pud_cwt.sizes_for(vpn)
            lines.append(self.tables.pud_cwt.line_addr(vpn))
            ambiguous = len(coarse - frozenset(["1G"])) > 1
            if ambiguous:
                lines.append(self.tables.pmd_cwt.line_addr(vpn))
            self.pud_cwc.fill(vpn, coarse)
            if ambiguous:
                precise = self.tables.pmd_cwt.sizes_for(vpn)
                self.pmd_cwc.fill(vpn, precise)
                candidate_sizes = frozenset(precise) | frozenset(
                    s for s in coarse if s == "1G"
                )
            else:
                candidate_sizes = frozenset(coarse)
        return candidate_sizes, lines

    def _extra_probe_cycles(self, vpn: int, sizes: FrozenSet[str]) -> int:
        """Hook for subclasses (ME-HPT adds visible L2P latency here)."""
        return 0

    def _account(self, cycles: int, accesses: int) -> None:
        if self.obs is not None:
            self.obs.emit(
                EVENT_WALK_END, walk=self.walks, cycles=cycles, accesses=accesses,
            )
            if self.walk_latency is not None:
                self.walk_latency.observe(cycles)
        self.walks += 1
        self.total_cycles += cycles
        self.total_accesses += accesses

    def mean_walk_cycles(self) -> float:
        return self.total_cycles / self.walks if self.walks else 0.0
