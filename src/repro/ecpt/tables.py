"""Kernel-facing hashed page tables: the shared set and the ECPT build.

:class:`HashedPageTableSet` bundles one
:class:`~repro.hashing.clustered.ClusteredHashedPageTable` per page size
(4KB, 2MB, 1GB) together with the Cuckoo Walk Tables the walker needs and
the memory accounting the evaluation reports.  The ECPT baseline and
ME-HPT both subclass it; they differ only in how the underlying cuckoo
tables are constructed (storage layout, resize policy, chunk ladder).

:class:`EcptPageTables` is the baseline: contiguous ways, all-way
out-of-place resizing — each upsize allocates a fresh contiguous region
twice the way size, which is where the 64MB contiguous allocations of
Table I come from.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng, make_rng
from repro.faults.log import DegradationLog
from repro.faults.plan import FaultPlan
from repro.hashing.clustered import ClusteredHashedPageTable, MapResult
from repro.hashing.cuckoo import ElasticCuckooTable, ElasticWay
from repro.hashing.hashes import HashFamily
from repro.hashing.policies import AllWayResizePolicy
from repro.hashing.storage import ContiguousStorage
from repro.mem.allocator import AllocationStats, CostModelAllocator

PAGE_SIZES = ("4K", "2M", "1G")

#: Table III: initial HPT of 128 entries x 3 ways for each page size.
DEFAULT_INITIAL_SLOTS = 128
DEFAULT_WAYS = 3


class HashedPageTableSet:
    """Per-process hashed page tables for all supported page sizes."""

    def __init__(
        self,
        tables: Dict[str, ClusteredHashedPageTable],
        allocation_stats: AllocationStats,
        pmd_cwt=None,
        pud_cwt=None,
    ) -> None:
        missing = set(PAGE_SIZES) - set(tables)
        if missing:
            raise ConfigurationError(f"missing page sizes: {sorted(missing)}")
        self.tables = tables
        self.allocation_stats = allocation_stats
        # CWTs are created lazily to avoid import cycles in subclasses that
        # pass none (pure capacity experiments need no walker machinery).
        if pmd_cwt is None or pud_cwt is None:
            from repro.ecpt.cwt import CuckooWalkTable

            pmd_cwt = pmd_cwt or CuckooWalkTable("pmd")
            pud_cwt = pud_cwt or CuckooWalkTable("pud")
        self.pmd_cwt = pmd_cwt
        self.pud_cwt = pud_cwt
        #: Walker-owned CWCs register here for invalidation on CWT changes.
        self.cwc_listeners: list = []
        self.peak_total_bytes = self.total_bytes()

    # -- kernel API -------------------------------------------------------

    def map(self, vpn: int, ppn: int, page_size: str = "4K") -> MapResult:
        """Insert a translation; updates CWTs and memory accounting."""
        result = self.tables[page_size].map(vpn, ppn)
        if page_size in ("4K", "2M"):
            if self.pmd_cwt.add(vpn, page_size):
                self._invalidate_cwcs(self.pmd_cwt, vpn)
        if self.pud_cwt.add(vpn, page_size):
            self._invalidate_cwcs(self.pud_cwt, vpn)
        self._track_peak()
        return result

    def unmap(self, vpn: int, page_size: str = "4K") -> bool:
        """Remove a translation; updates CWTs."""
        present = self.tables[page_size].unmap(vpn)
        if present:
            if page_size in ("4K", "2M"):
                if self.pmd_cwt.remove(vpn, page_size):
                    self._invalidate_cwcs(self.pmd_cwt, vpn)
            if self.pud_cwt.remove(vpn, page_size):
                self._invalidate_cwcs(self.pud_cwt, vpn)
        return present

    def translate(self, vpn: int) -> Optional[Tuple[int, str]]:
        """Functional translation (no timing): (ppn, page_size) or None."""
        for page_size in ("1G", "2M", "4K"):
            ppn = self.tables[page_size].translate(vpn)
            if ppn is not None:
                return ppn, page_size
        return None

    # -- accounting ------------------------------------------------------

    def total_bytes(self) -> int:
        """Current page-table memory across all page sizes."""
        return sum(table.total_bytes() for table in self.tables.values())

    def max_contiguous_bytes(self) -> int:
        """Largest contiguous allocation the page tables ever required."""
        return self.allocation_stats.max_contiguous_bytes

    def allocation_cycles(self) -> float:
        """Cycles spent allocating (and zeroing) page-table memory."""
        return self.allocation_stats.cycles

    def kick_histogram(self) -> Counter:
        """Merged cuckoo re-insertion histogram across page sizes (Fig 16)."""
        merged: Counter = Counter()
        for table in self.tables.values():
            merged.update(table.table.stats.kick_histogram)
        return merged

    def upsizes_per_way(self, page_size: str) -> list:
        """Upsize counts per way for one page size's HPT (Fig 11)."""
        return [way.upsizes for way in self.tables[page_size].table.ways]

    def way_bytes(self, page_size: str) -> list:
        """Current physical bytes of each way (Fig 12)."""
        return [way.total_bytes() for way in self.tables[page_size].table.ways]

    def moved_fractions(self, page_size: str) -> list:
        """Per-way fraction of rehashed entries physically moved (Fig 13)."""
        return [way.moved_fraction() for way in self.tables[page_size].table.ways]

    def total_relocated_entries(self) -> int:
        """Entries physically moved by rehashing, across all page sizes.

        This is the data-movement cost of resizing that in-place resizing
        halves (Section VII-E3); the performance model charges it.
        """
        return sum(
            way.rehash_relocated
            for table in self.tables.values()
            for way in table.table.ways
        )

    def drain(self) -> None:
        """Finish all in-flight resizes (used by tests and teardown)."""
        for table in self.tables.values():
            table.table.drain()

    def check_invariants(self) -> None:
        """Verify every page size's cuckoo table (and its storages).

        Subclasses extend this with their own structures (ME-HPT adds the
        L2P table).  Raises
        :class:`~repro.common.errors.SimulationError` on violation.
        """
        for table in self.tables.values():
            table.table.check_invariants()

    def _track_peak(self) -> None:
        total = self.total_bytes()
        if total > self.peak_total_bytes:
            self.peak_total_bytes = total

    def _invalidate_cwcs(self, cwt, vpn: int) -> None:
        for cwc in self.cwc_listeners:
            if cwc.cwt is cwt:
                cwc.invalidate(vpn)


class EcptPageTables(HashedPageTableSet):
    """The ECPT baseline: contiguous ways, all-way out-of-place resizing."""

    def __init__(
        self,
        allocator: Optional[CostModelAllocator] = None,
        rng: Optional[DeterministicRng] = None,
        ways: int = DEFAULT_WAYS,
        initial_slots: int = DEFAULT_INITIAL_SLOTS,
        hash_seed: int = 0,
        upsize_threshold: float = 0.6,
        downsize_threshold: float = 0.2,
        rehashes_per_insert: int = 2,
        allow_downsize: bool = True,
        page_sizes: Iterable[str] = PAGE_SIZES,
        fault_plan: Optional[FaultPlan] = None,
        degradation: Optional[DegradationLog] = None,
        obs=None,
    ) -> None:
        rng = make_rng(rng)
        self.allocator = allocator if allocator is not None else CostModelAllocator()
        tables: Dict[str, ClusteredHashedPageTable] = {}
        for size_index, page_size in enumerate(page_sizes):
            family = HashFamily(seed=hash_seed * 31 + size_index)
            alloc = self.allocator

            def factory(way_index: int, slots: int, _alloc=alloc):
                return ContiguousStorage(slots, allocator=_alloc)

            way_objs = [
                ElasticWay(
                    w,
                    family.function(w),
                    ContiguousStorage(initial_slots, allocator=alloc),
                )
                for w in range(ways)
            ]
            policy = AllWayResizePolicy(
                upsize_threshold=upsize_threshold,
                downsize_threshold=downsize_threshold,
                min_way_slots=initial_slots,
                allow_downsize=allow_downsize,
            )
            table = ElasticCuckooTable(
                way_objs,
                policy,
                factory,
                rng=rng.fork(salt=size_index),
                rehashes_per_insert=rehashes_per_insert,
                fault_plan=fault_plan,
                degradation=degradation,
                obs=obs,
                obs_label=page_size,
            )
            tables[page_size] = ClusteredHashedPageTable(page_size, table)
        super().__init__(tables, self.allocator.stats)
