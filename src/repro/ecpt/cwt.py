"""Cuckoo Walk Tables (CWTs) and Cuckoo Walk Caches (CWCs).

With one HPT per page size, a TLB miss could require probing every way of
every page size (9 locations with 3 ways x 3 sizes).  ECPT avoids this
with CWTs: software tables recording, per VA region, which page sizes map
pages there.  Small MMU caches over them — the CWCs of Table III
(PMD-CWC: 16 entries, PUD-CWC: 2 entries, 4-cycle round trip) — make the
common case a single parallel probe of the right table(s).

We model the CWTs functionally (region -> page-size set, with per-size
refcounts for correct unmapping) but give each region entry a synthetic
cache-line address so CWC misses cost a real memory reference, as in the
original design.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional

from repro.common.errors import ConfigurationError

#: VPN shift defining each CWT's region granularity.
REGION_SHIFT = {"pmd": 9, "pud": 18}

#: CWT entries clustered per cache line (they are small bitmasks).
_ENTRIES_PER_LINE = 8

_cwt_bases = itertools.count(1)


class CuckooWalkTable:
    """A software CWT at PMD (2MB) or PUD (1GB) region granularity."""

    def __init__(self, granularity: str) -> None:
        if granularity not in REGION_SHIFT:
            raise ConfigurationError(f"unknown CWT granularity {granularity!r}")
        self.granularity = granularity
        self.region_shift = REGION_SHIFT[granularity]
        self._counts: Dict[int, Dict[str, int]] = {}
        self._line_base = next(_cwt_bases) << 34

    def _region(self, vpn: int) -> int:
        return vpn >> self.region_shift

    def add(self, vpn: int, page_size: str, pages: int = 1) -> bool:
        """Record ``pages`` new ``page_size`` mappings in ``vpn``'s region.

        Returns True when the region's page-size *set* changed (so MMU
        caches of this entry must be invalidated).
        """
        region = self._counts.setdefault(self._region(vpn), {})
        changed = page_size not in region
        region[page_size] = region.get(page_size, 0) + pages
        return changed

    def remove(self, vpn: int, page_size: str, pages: int = 1) -> bool:
        """Forget ``pages`` ``page_size`` mappings in ``vpn``'s region.

        Returns True when the region's page-size set changed.
        """
        key = self._region(vpn)
        region = self._counts.get(key)
        if region is None or region.get(page_size, 0) < pages:
            raise ConfigurationError(
                f"CWT underflow for region {key:#x} size {page_size}"
            )
        region[page_size] -= pages
        changed = region[page_size] == 0
        if changed:
            del region[page_size]
        if not region:
            del self._counts[key]
        return changed

    def sizes_for(self, vpn: int) -> FrozenSet[str]:
        """Page sizes with at least one mapping in ``vpn``'s region."""
        region = self._counts.get(self._region(vpn))
        if not region:
            return frozenset()
        return frozenset(region)

    def line_addr(self, vpn: int) -> int:
        """Synthetic cache-line address of the region's CWT entry."""
        return self._line_base + (self._region(vpn) // _ENTRIES_PER_LINE)

    def __len__(self) -> int:
        return len(self._counts)


class CuckooWalkCache:
    """A fully-associative LRU MMU cache over one CWT."""

    def __init__(self, cwt: CuckooWalkTable, entries: int, hit_cycles: int = 4) -> None:
        self.cwt = cwt
        self.capacity = entries
        self.hit_cycles = hit_cycles
        self._tags: List[int] = []
        self._values: Dict[int, FrozenSet[str]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, vpn: int) -> Optional[FrozenSet[str]]:
        """Return the cached page-size set for the region, or None on miss."""
        tag = vpn >> self.cwt.region_shift
        if tag in self._values:
            if self._tags[0] != tag:
                self._tags.remove(tag)
                self._tags.insert(0, tag)
            self.hits += 1
            return self._values[tag]
        self.misses += 1
        return None

    def fill(self, vpn: int, sizes: FrozenSet[str]) -> None:
        tag = vpn >> self.cwt.region_shift
        if tag in self._values:
            self._values[tag] = sizes
            return
        self._tags.insert(0, tag)
        self._values[tag] = sizes
        if len(self._tags) > self.capacity:
            evicted = self._tags.pop()
            del self._values[evicted]

    def invalidate(self, vpn: int) -> None:
        """Drop the region's entry (the OS updated the CWT)."""
        tag = vpn >> self.cwt.region_shift
        if tag in self._values:
            self._tags.remove(tag)
            del self._values[tag]

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
