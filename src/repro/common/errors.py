"""Exception hierarchy for the ME-HPT reproduction.

Every error raised by the library derives from :class:`MEHPTError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class MEHPTError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(MEHPTError):
    """A simulation or structure parameter is invalid or inconsistent."""


class OutOfMemoryError(MEHPTError):
    """The modelled physical memory has no free frames left."""


class ContiguousAllocationError(OutOfMemoryError):
    """A contiguous allocation failed due to fragmentation.

    The paper observes (Section III) that above 0.7 FMFI the Linux kernel
    cannot find 64MB of contiguous memory and the ECPT runs crash; this
    exception models that failure mode.
    """

    def __init__(self, size_bytes: int, fmfi: float) -> None:
        super().__init__(
            f"cannot allocate {size_bytes} contiguous bytes at FMFI {fmfi:.2f}"
        )
        self.size_bytes = size_bytes
        self.fmfi = fmfi


class TableFullError(MEHPTError):
    """A cuckoo insertion exceeded the re-insertion bound with no resize possible."""


class L2POverflowError(MEHPTError):
    """An HPT way needs more chunks than the L2P table can point to.

    This signals that the way must transition to the next larger chunk size
    (Section IV-B of the paper); it escaping to user code means the chunk
    ladder was exhausted.
    """


class TranslationFault(MEHPTError):
    """An address translation was attempted for an unmapped virtual page."""


class SimulationError(MEHPTError):
    """The trace-driven simulator reached an inconsistent state."""
