"""Exception hierarchy for the ME-HPT reproduction.

Every error raised by the library derives from :class:`MEHPTError` so that
callers can catch library failures without masking programming errors.

Errors carry *structured context* (way index, page size, chunk size,
attempt count, ...) in :attr:`MEHPTError.context` so that degradation
logs and multiprocessing workers can report what failed without parsing
message strings.  All errors round-trip through :mod:`pickle` — the
simulator's multiprocessing paths propagate them across process
boundaries.
"""

from __future__ import annotations

from typing import Any, Dict


class MEHPTError(Exception):
    """Base class for all errors raised by :mod:`repro`.

    ``context`` holds optional structured fields describing where the
    failure happened (e.g. ``way_index``, ``page_size``, ``chunk_bytes``,
    ``attempt``).  Subclasses with bespoke constructors override
    ``__reduce__`` so pickling preserves their attributes.
    """

    def __init__(self, message: str = "", **context: Any) -> None:
        super().__init__(message)
        self.context: Dict[str, Any] = dict(context)

    @property
    def message(self) -> str:
        return self.args[0] if self.args else ""

    def __repr__(self) -> str:
        parts = [repr(self.message)]
        parts.extend(f"{key}={value!r}" for key, value in sorted(self.context.items()))
        return f"{type(self).__name__}({', '.join(parts)})"

    def __reduce__(self):
        # (callable, args, state): state is applied to __dict__ on load,
        # restoring ``context`` and any subclass attributes.
        return (type(self), (self.message,), self.__dict__.copy())


class ConfigurationError(MEHPTError):
    """A simulation or structure parameter is invalid or inconsistent."""


class OutOfMemoryError(MEHPTError):
    """The modelled physical memory has no free frames left."""


class ContiguousAllocationError(OutOfMemoryError):
    """A contiguous allocation failed due to fragmentation.

    The paper observes (Section III) that above 0.7 FMFI the Linux kernel
    cannot find 64MB of contiguous memory and the ECPT runs crash; this
    exception models that failure mode.

    ``transient`` distinguishes injected transient failures (retryable —
    the kernel's next compaction attempt may succeed) from the model's
    permanent failure rule; recovery policies only retry transient ones.
    """

    #: Permanent by default; :class:`TransientAllocationError` overrides.
    transient = False

    def __init__(self, size_bytes: int, fmfi: float, attempt: int = 0) -> None:
        super().__init__(
            f"cannot allocate {size_bytes} contiguous bytes at FMFI {fmfi:.2f}",
            size_bytes=size_bytes,
            fmfi=fmfi,
            attempt=attempt,
        )
        self.size_bytes = size_bytes
        self.fmfi = fmfi
        self.attempt = attempt

    def __reduce__(self):
        return (type(self), (self.size_bytes, self.fmfi, self.attempt))


class TransientAllocationError(ContiguousAllocationError):
    """An injected, retryable allocation failure (fault injection).

    Raised by :class:`~repro.faults.FaultPlan` hooks to model momentary
    allocation pressure; recovery policies retry these with backoff,
    while plain :class:`ContiguousAllocationError` aborts immediately.
    """

    transient = True


class TableFullError(MEHPTError):
    """A cuckoo insertion exceeded the re-insertion bound with no resize possible."""


class L2POverflowError(MEHPTError):
    """An HPT way needs more chunks than the L2P table can point to.

    This signals that the way must transition to the next larger chunk size
    (Section IV-B of the paper); it escaping to user code means the chunk
    ladder was exhausted.
    """


class TranslationFault(MEHPTError):
    """An address translation was attempted for an unmapped virtual page."""


class TraceFormatError(MEHPTError):
    """A binary address-trace file is malformed, truncated, or corrupt.

    Raised by :mod:`repro.traces` when a ``.vpt`` file fails structural
    checks (bad magic, unsupported version, missing footer) or content
    checks (per-chunk CRC mismatch, record-count drift).  ``context``
    carries the failing ``path`` and, for chunk-level failures, the
    ``chunk`` index.
    """


class SimulationError(MEHPTError):
    """The trace-driven simulator reached an inconsistent state."""
