"""Size units and power-of-two arithmetic.

All sizes in the reproduction are plain integers in bytes.  Page-table
structures are sized in powers of two, so this module centralises the
power-of-two helpers that the hashing, chunking, and resizing code use.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB
TB: int = 1024 * GB
PB: int = 1024 * TB

#: Base page size of the modelled x86-64 machine.
PAGE_4K: int = 4 * KB
#: Huge-page size (PMD leaf).
PAGE_2M: int = 2 * MB
#: Giant-page size (PUD leaf).
PAGE_1G: int = 1 * GB

#: Cache-line size; one clustered HPT slot is one line (8 PTEs of 8 bytes).
CACHE_LINE: int = 64
#: Size of a single page-table entry in bytes.
PTE_SIZE: int = 8
#: Number of PTEs clustered into one HPT slot (Yaniv-Tsafrir clustering).
PTES_PER_SLOT: int = CACHE_LINE // PTE_SIZE


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Return the smallest power of two that is >= ``value`` (min 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def log2_int(value: int) -> int:
    """Return log2 of a power-of-two ``value``; raise otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of power-of-two ``alignment``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to the previous multiple of ``alignment``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return value & ~(alignment - 1)


def format_bytes(value: int) -> str:
    """Render a byte count with a human-readable unit, e.g. ``64MB``.

    Exact unit multiples render without a decimal point so that table
    output matches the paper's style (``8KB``, ``1MB``, ``64MB``).
    """
    for unit, name in ((PB, "PB"), (TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if value >= unit:
            scaled = value / unit
            if value % unit == 0:
                return f"{value // unit}{name}"
            return f"{scaled:.2f}{name}"
    return f"{value}B"
