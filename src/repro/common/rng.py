"""Deterministic random-number helpers.

All stochastic choices in the reproduction (cuckoo way selection, weighted
insertion, workload generation, fragmentation patterns) flow through
:class:`DeterministicRng` so that every experiment is reproducible from a
single seed.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with the helpers the library needs.

    Thin wrapper over :class:`random.Random`; exists so call sites never
    touch the global ``random`` module and so weighted selection has one
    well-tested implementation.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, salt: int) -> "DeterministicRng":
        """Return an independent stream derived from this seed and ``salt``.

        Forking lets one experiment seed drive many components without the
        components' consumption patterns perturbing each other.
        """
        return DeterministicRng(hash((self.seed, salt)) & 0xFFFFFFFFFFFFFFFF)

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Return a uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Return a uniformly random element of ``seq``."""
        return self._random.choice(seq)

    def shuffle(self, seq: list) -> None:
        """Shuffle ``seq`` in place."""
        self._random.shuffle(seq)

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Return an index sampled proportionally to ``weights``.

        Implements the paper's weighted-random insertion primitive: draw a
        uniform number in [0, total) and walk the cumulative weights.  All
        weights must be non-negative and at least one must be positive.
        """
        total = 0.0
        for weight in weights:
            if weight < 0:
                raise ValueError(f"negative weight {weight}")
            total += weight
        if total <= 0.0:
            raise ValueError("all weights are zero")
        point = self._random.random() * total
        cumulative = 0.0
        last_positive = 0
        for index, weight in enumerate(weights):
            if weight > 0:
                last_positive = index
            cumulative += weight
            if point < cumulative:
                return index
        # Floating-point round-off can leave point == cumulative; return the
        # last index that had positive weight.
        return last_positive

    def sample_zipf(self, n: int, alpha: float = 1.0) -> int:
        """Return an index in [0, n) with a Zipf-like skew.

        Used by workload generators to model skewed page popularity.  The
        implementation uses inverse-CDF sampling over the harmonic weights,
        computed lazily per (n, alpha) and cached.
        """
        key = (n, alpha)
        cache = getattr(self, "_zipf_cache", None)
        if cache is None:
            cache = {}
            self._zipf_cache = cache
        cdf = cache.get(key)
        if cdf is None:
            weights = [1.0 / ((i + 1) ** alpha) for i in range(n)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for weight in weights:
                acc += weight / total
                cdf.append(acc)
            cache[key] = cdf
        point = self._random.random()
        # Binary search the CDF.
        low, high = 0, n - 1
        while low < high:
            mid = (low + high) // 2
            if cdf[mid] < point:
                low = mid + 1
            else:
                high = mid
        return low

    def py_random(self) -> random.Random:
        """Expose the underlying :class:`random.Random` for bulk generation."""
        return self._random

    def numpy_seed(self) -> int:
        """Return a 32-bit seed suitable for :class:`numpy.random.Generator`."""
        return self.seed & 0x7FFFFFFF


def make_rng(seed_or_rng: Optional[object], default_seed: int = 0) -> DeterministicRng:
    """Coerce ``seed_or_rng`` (None, int, or DeterministicRng) to an RNG."""
    if seed_or_rng is None:
        return DeterministicRng(default_seed)
    if isinstance(seed_or_rng, DeterministicRng):
        return seed_or_rng
    if isinstance(seed_or_rng, int):
        return DeterministicRng(seed_or_rng)
    raise TypeError(f"expected None, int, or DeterministicRng, got {type(seed_or_rng)!r}")
