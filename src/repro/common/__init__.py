"""Shared low-level utilities for the ME-HPT reproduction.

This package holds the pieces every other subsystem relies on: size and
cycle units (:mod:`repro.common.units`), the exception hierarchy
(:mod:`repro.common.errors`), and deterministic random-number helpers
(:mod:`repro.common.rng`).
"""

from repro.common.errors import (
    ContiguousAllocationError,
    L2POverflowError,
    MEHPTError,
    OutOfMemoryError,
    SimulationError,
    TableFullError,
    TransientAllocationError,
)
from repro.common.rng import DeterministicRng
from repro.common.units import (
    GB,
    KB,
    MB,
    PB,
    TB,
    align_down,
    align_up,
    format_bytes,
    is_power_of_two,
    log2_int,
    next_power_of_two,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "align_down",
    "align_up",
    "format_bytes",
    "is_power_of_two",
    "log2_int",
    "next_power_of_two",
    "DeterministicRng",
    "MEHPTError",
    "ContiguousAllocationError",
    "TransientAllocationError",
    "OutOfMemoryError",
    "TableFullError",
    "L2POverflowError",
    "SimulationError",
]
