"""The versioned on-disk reproducer corpus.

``corpus/`` holds minimized (or deliberately small) failing scenario
traces plus ``manifest.json``:

.. code-block:: json

    {
      "version": 1,
      "entries": [
        {
          "name": "frag-ecpt-abort",
          "trace": "frag-ecpt-abort.vpt",
          "sha256": "...",
          "records": 9000,
          "failure_class": "abort:contiguous",
          "affected_orgs": ["ecpt"],
          "scenario": { ... full Scenario.to_dict() ... },
          "notes": "..."
        }
      ]
    }

The manifest is the contract: :func:`replay_corpus` re-runs every entry
through all three organizations (scalar *and* vectorized engines — the
divergence check always runs on reproducers) and asserts the recorded
failure class and affected organizations still hold.  A hash mismatch,
a class drift, or a new divergence all fail the replay — that is the CI
``fuzz-smoke`` gate.  ``version`` gates forward compatibility: readers
refuse manifests newer than they understand.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.fuzz.runner import ScenarioOutcome, run_scenario
from repro.fuzz.scenario import Scenario
from repro.sim.config import ORGANIZATIONS

#: Current manifest schema version; readers reject anything newer.
CORPUS_VERSION = 1

MANIFEST_NAME = "manifest.json"


def file_sha256(path: str) -> str:
    """Streaming SHA-256 of a file's bytes."""
    sha = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            sha.update(block)
    return sha.hexdigest()


@dataclass
class CorpusEntry:
    """One checked-in reproducer: trace, provenance, expected outcome."""

    name: str
    trace: str
    sha256: str
    records: int
    failure_class: str
    affected_orgs: List[str]
    scenario: Dict[str, Any]
    notes: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace": self.trace,
            "sha256": self.sha256,
            "records": self.records,
            "failure_class": self.failure_class,
            "affected_orgs": list(self.affected_orgs),
            "scenario": self.scenario,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "CorpusEntry":
        try:
            return cls(
                name=str(raw["name"]),
                trace=str(raw["trace"]),
                sha256=str(raw["sha256"]),
                records=int(raw["records"]),
                failure_class=str(raw["failure_class"]),
                affected_orgs=[str(o) for o in raw["affected_orgs"]],
                scenario=dict(raw["scenario"]),
                notes=str(raw.get("notes", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"corpus entry is malformed: {exc!r}", field="entry", value=raw,
            ) from exc


def manifest_path(corpus_dir: str) -> str:
    return os.path.join(corpus_dir, MANIFEST_NAME)


def load_manifest(corpus_dir: str) -> List[CorpusEntry]:
    """Read and schema-check the manifest; entries come back name-sorted."""
    path = manifest_path(corpus_dir)
    if not os.path.exists(path):
        raise ConfigurationError(
            f"no corpus manifest at {path}", field="corpus_dir", value=corpus_dir,
        )
    with open(path, "r", encoding="utf-8") as handle:
        try:
            raw = json.load(handle)
        except ValueError as exc:
            raise ConfigurationError(
                f"corpus manifest {path} is unparseable: {exc}",
                field="manifest", value=path,
            ) from exc
    version = raw.get("version")
    if not isinstance(version, int) or version > CORPUS_VERSION:
        raise ConfigurationError(
            f"corpus manifest version {version!r} is newer than supported "
            f"({CORPUS_VERSION})", field="version", value=version,
        )
    entries = [CorpusEntry.from_dict(entry) for entry in raw.get("entries", [])]
    return sorted(entries, key=lambda e: e.name)


def _write_manifest(corpus_dir: str, entries: Sequence[CorpusEntry]) -> None:
    payload = {
        "version": CORPUS_VERSION,
        "entries": [e.to_dict() for e in sorted(entries, key=lambda e: e.name)],
    }
    path = manifest_path(corpus_dir)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")
    os.replace(tmp, path)


def add_entry(
    corpus_dir: str,
    name: str,
    trace_path: str,
    scenario: Scenario,
    failure_class: str,
    affected_orgs: Sequence[str],
    notes: str = "",
) -> CorpusEntry:
    """Copy a reproducer into the corpus and record it in the manifest.

    Re-adding an existing name replaces its entry (and trace file), so
    re-minimized reproducers update in place.
    """
    os.makedirs(corpus_dir, exist_ok=True)
    dest_name = f"{name}.vpt"
    dest = os.path.join(corpus_dir, dest_name)
    if os.path.abspath(trace_path) != os.path.abspath(dest):
        shutil.copyfile(trace_path, dest)
    from repro.traces.format import TraceReader

    with TraceReader(dest) as reader:
        records = reader.total_values
    entry = CorpusEntry(
        name=name,
        trace=dest_name,
        sha256=file_sha256(dest),
        records=records,
        failure_class=failure_class,
        affected_orgs=sorted(affected_orgs),
        scenario=scenario.to_dict(),
        notes=notes,
    )
    try:
        entries = [e for e in load_manifest(corpus_dir) if e.name != name]
    except ConfigurationError:
        entries = []
    entries.append(entry)
    _write_manifest(corpus_dir, entries)
    return entry


@dataclass
class ReplayResult:
    """One corpus entry's replay verdict."""

    name: str
    expected_class: str
    got_class: str
    expected_orgs: List[str]
    got_orgs: List[str]
    ok: bool
    detail: str = ""
    outcome: Optional[ScenarioOutcome] = None


def replay_entry(
    corpus_dir: str,
    entry: CorpusEntry,
    orgs: Sequence[str] = ORGANIZATIONS,
    check_divergence: bool = True,
    registry=None,
) -> ReplayResult:
    """Re-run one entry and compare against its recorded outcome."""
    trace = os.path.join(corpus_dir, entry.trace)
    if registry is not None:
        registry.counter("fuzz.corpus_replays").inc()
    if not os.path.exists(trace):
        return ReplayResult(
            entry.name, entry.failure_class, "missing",
            entry.affected_orgs, [], ok=False,
            detail=f"trace file {entry.trace} is missing",
        )
    digest = file_sha256(trace)
    if digest != entry.sha256:
        return ReplayResult(
            entry.name, entry.failure_class, "corrupt",
            entry.affected_orgs, [], ok=False,
            detail=f"sha256 {digest} != manifest {entry.sha256}",
        )
    scenario = Scenario.from_dict(entry.scenario)
    outcome = run_scenario(
        scenario, trace_path=trace, orgs=orgs,
        check_divergence=check_divergence, probe_downsize=False,
        registry=registry,
    )
    got_orgs = sorted(outcome.affected_orgs)
    ok = (
        outcome.failure_class == entry.failure_class
        and got_orgs == sorted(entry.affected_orgs)
    )
    result = ReplayResult(
        entry.name, entry.failure_class, outcome.failure_class,
        entry.affected_orgs, got_orgs, ok=ok, outcome=outcome,
    )
    if not ok:
        result.detail = (
            f"expected {entry.failure_class}/{sorted(entry.affected_orgs)}, "
            f"got {outcome.failure_class}/{got_orgs}"
        )
        if registry is not None:
            registry.counter("fuzz.corpus_mismatches").inc()
    return result


def replay_corpus(
    corpus_dir: str,
    orgs: Sequence[str] = ORGANIZATIONS,
    check_divergence: bool = True,
    registry=None,
) -> List[ReplayResult]:
    """Replay every manifest entry; deterministic order (name-sorted)."""
    return [
        replay_entry(
            corpus_dir, entry, orgs=orgs,
            check_divergence=check_divergence, registry=registry,
        )
        for entry in load_manifest(corpus_dir)
    ]
