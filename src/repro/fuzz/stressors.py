"""The adversarial stressor catalogue: seeded VPN-stream generators.

Each stressor is a named recipe for one kind of memory behavior the
paper's machinery must survive:

* ``fragmentation_storm`` — a dense footprint under pathological FMFI,
  pushing ECPT's contiguous way doublings into the >0.7-FMFI failure
  region (Section III) while ME-HPT pays chunked-allocation overheads;
* ``churn`` — mmap/munmap-style working-set migration: successive VA
  windows are faulted in and abandoned, growing the tables across many
  disjoint VMAs (numaPTE's churn failure shape);
* ``oscillation`` — footprint grow→shrink→grow: accesses expand over the
  full footprint, collapse to a hot core, and expand again, stressing
  downsizing and per-way balance (the fuzz runner's downsize probe
  drives the same phases through map/unmap);
* ``collision_cluster`` — VPNs whose blocks collide in the *actual*
  :mod:`repro.hashing` way functions, synthesized by scanning candidate
  blocks against the same ``mix64`` way seeds the simulator will use,
  so a handful of buckets absorb the whole footprint and kick chains /
  emergency resizes dominate;
* ``l2p_overflow`` — a footprint that outgrows a deliberately shortened
  chunk ladder, driving the >64-entry L2P pressure path to
  :class:`~repro.common.errors.L2POverflowError`;
* ``tenant_storm`` — datacenter-shaped tenancy churn: generations of
  per-tenant VA windows spawn, run hot, and die, while re-touch bursts
  revisit dead tenants' windows so stale mappings stay resident (the
  access shape :mod:`repro.sim.datacenter` schedules across sockets).

A stressor contributes two things: a deterministic VPN stream (a pure
function of its forked RNG and parameters) and a set of
:class:`~repro.sim.config.SimulationConfig` overrides (e.g. the storm's
FMFI, the overflow's shortened ladder).  Scenarios compose stressors by
weight; see :mod:`repro.fuzz.scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import KB
from repro.hashing.hashes import HashFamily, mix64, mix64_array
from repro.workloads.base import DATA_VMA_BASE, PAGES_PER_BLOCK

#: Maximum candidate blocks the collision scan examines per call; bounds
#: generation time regardless of how aggressive the parameters are.
MAX_COLLISION_SCAN_BLOCKS = 16_000_000


def _dense_pages(blocks: int, base_block: int = DATA_VMA_BASE // PAGES_PER_BLOCK) -> np.ndarray:
    """All 8 pages of ``blocks`` consecutive HPT blocks, as VPNs."""
    block_ids = np.arange(base_block, base_block + blocks, dtype=np.int64)
    return (block_ids[:, None] * PAGES_PER_BLOCK + np.arange(PAGES_PER_BLOCK)).ravel()


def fragmentation_storm(rng: np.random.Generator, n: int, params: Mapping[str, Any]) -> np.ndarray:
    """Uniform traffic over a dense footprint sized to force big doublings.

    The footprint is chosen so the 4KB ways double into the
    contiguous-allocation failure region once FMFI (the ``fmfi``
    override) exceeds the paper's 0.7 threshold.
    """
    pages = _dense_pages(int(params.get("blocks", 2048)))
    return pages[rng.integers(0, pages.size, size=n)]


def _fragmentation_overrides(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {"fmfi": float(params.get("fmfi", 0.78))}


def churn(rng: np.random.Generator, n: int, params: Mapping[str, Any]) -> np.ndarray:
    """Working-set migration across disjoint VA windows.

    The stream visits ``windows`` successive windows of
    ``window_blocks`` blocks each, separated by VMA-splitting gaps; a
    ``revisit`` fraction of each phase's accesses lands in earlier
    windows so abandoned mappings stay live in the tables.
    """
    windows = int(params.get("windows", 6))
    window_blocks = int(params.get("window_blocks", 512))
    revisit = float(params.get("revisit", 0.25))
    if windows < 1 or window_blocks < 1:
        raise ConfigurationError(
            f"churn needs windows >= 1 and window_blocks >= 1 "
            f"(got {windows}, {window_blocks})"
        )
    # Window stride leaves a multi-VMA gap (> the synthesizer's 4096-page
    # threshold) between working sets.
    stride_blocks = window_blocks * 4 + 1024
    base_block = DATA_VMA_BASE // PAGES_PER_BLOCK
    window_pages = [
        _dense_pages(window_blocks, base_block + w * stride_blocks)
        for w in range(windows)
    ]
    out = np.empty(n, dtype=np.int64)
    bounds = np.linspace(0, n, windows + 1).astype(np.int64)
    for w in range(windows):
        lo, hi = int(bounds[w]), int(bounds[w + 1])
        size = hi - lo
        if size <= 0:
            continue
        pages = window_pages[w]
        phase = pages[rng.integers(0, pages.size, size=size)]
        if w > 0 and revisit > 0.0:
            mask = rng.random(size) < revisit
            if mask.any():
                old = np.concatenate(window_pages[:w])
                phase[mask] = old[rng.integers(0, old.size, size=int(mask.sum()))]
        out[lo:hi] = phase
    return out


def oscillation(rng: np.random.Generator, n: int, params: Mapping[str, Any]) -> np.ndarray:
    """Footprint grow→shrink→grow phases over one dense region.

    Odd phases collapse to the first ``core_fraction`` of the footprint;
    even phases span all of it.  Composed with ``allow_downsize`` (the
    override this stressor contributes) the shrink phases starve the
    outer pages, and the runner's downsize probe replays the same phase
    structure through explicit map/unmap calls.
    """
    blocks = int(params.get("blocks", 2048))
    phases = int(params.get("phases", 5))
    core_fraction = float(params.get("core_fraction", 0.125))
    if phases < 1 or not 0.0 < core_fraction <= 1.0:
        raise ConfigurationError(
            f"oscillation needs phases >= 1 and core_fraction in (0, 1] "
            f"(got {phases}, {core_fraction})"
        )
    pages = _dense_pages(blocks)
    core = pages[: max(1, int(pages.size * core_fraction))]
    out = np.empty(n, dtype=np.int64)
    bounds = np.linspace(0, n, phases + 1).astype(np.int64)
    for p in range(phases):
        lo, hi = int(bounds[p]), int(bounds[p + 1])
        size = hi - lo
        if size <= 0:
            continue
        pool = pages if p % 2 == 0 else core
        out[lo:hi] = pool[rng.integers(0, pool.size, size=size)]
    return out


def _oscillation_overrides(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {"allow_downsize": True}


def collision_blocks(
    sim_seed: int,
    mask_bits: int,
    buckets: int,
    max_blocks: int,
    scan_blocks: int,
    constrained_ways: int,
) -> np.ndarray:
    """Blocks whose 4KB-table hashes collide into a few buckets per way.

    Scans candidate block numbers (starting at the data VMA base, so the
    VPNs look like ordinary heap addresses) and keeps those whose hash,
    under the *actual* per-way ``mix64`` seeds the simulator derives
    from ``sim_seed``, lands in the first ``buckets`` slots of a
    ``2**mask_bits``-slot way — for each of the first
    ``constrained_ways`` ways.  The survivors saturate those buckets at
    every table size up to the mask, forcing kick chains and emergency
    resizes.  Fully vectorized; bounded by
    :data:`MAX_COLLISION_SCAN_BLOCKS`.
    """
    mask = 1 << mask_bits
    if not 1 <= buckets <= mask:
        raise ConfigurationError(
            f"collision buckets {buckets} must be in [1, 2**mask_bits={mask}]"
        )
    if not 1 <= constrained_ways <= 3:
        raise ConfigurationError(
            f"constrained_ways {constrained_ways} must be in [1, 3]"
        )
    # size_index 0 = the 4KB table (PAGE_SIZES ordering in ecpt.tables).
    family = HashFamily(seed=sim_seed * 31 + 0)
    way_seeds = [mix64(family.seed * 1000003 + w + 1) for w in range(constrained_ways)]
    scan = min(int(scan_blocks), MAX_COLLISION_SCAN_BLOCKS)
    base = DATA_VMA_BASE // PAGES_PER_BLOCK
    found = []
    have = 0
    step = 2_000_000
    for start in range(0, scan, step):
        cand = np.arange(base + start, base + min(start + step, scan), dtype=np.int64)
        keep = np.ones(cand.size, dtype=bool)
        for ws in way_seeds:
            h = mix64_array(cand, ws)
            keep &= (h & np.uint64(mask - 1)) < np.uint64(buckets)
        hits = cand[keep]
        if hits.size:
            found.append(hits)
            have += hits.size
        if have >= max_blocks:
            break
    if not found:
        raise ConfigurationError(
            f"collision scan found no blocks (mask_bits={mask_bits}, "
            f"buckets={buckets}, scan_blocks={scan}); widen the buckets or "
            f"lower mask_bits"
        )
    return np.concatenate(found)[:max_blocks]


def collision_cluster(rng: np.random.Generator, n: int, params: Mapping[str, Any]) -> np.ndarray:
    """Uniform traffic over a hash-colliding footprint (see above).

    ``sim_seed`` must match the :class:`SimulationConfig` seed the
    scenario runs with — the scenario generator injects it.
    """
    blocks = collision_blocks(
        sim_seed=int(params.get("sim_seed", 12345)),
        mask_bits=int(params.get("mask_bits", 8)),
        buckets=int(params.get("buckets", 8)),
        max_blocks=int(params.get("max_blocks", 1024)),
        scan_blocks=int(params.get("scan_blocks", 4_000_000)),
        constrained_ways=int(params.get("constrained_ways", 2)),
    )
    pages = (blocks[:, None] * PAGES_PER_BLOCK + np.arange(PAGES_PER_BLOCK)).ravel()
    return pages[rng.integers(0, pages.size, size=n)]


def l2p_overflow(rng: np.random.Generator, n: int, params: Mapping[str, Any]) -> np.ndarray:
    """A steadily growing footprint against a shortened chunk ladder.

    The contributed overrides pin ME-HPT to 8KB chunks with a small
    ``max_chunks_per_way``, so way growth exhausts the ladder and
    surfaces :class:`~repro.common.errors.L2POverflowError` as a
    recorded abort.
    """
    pages = _dense_pages(int(params.get("blocks", 4096)))
    # Mostly a sequential sweep (monotonic way growth), salted with
    # uniform revisits so the stream is not purely cold faults.
    out = np.empty(n, dtype=np.int64)
    sweep = pages[np.arange(n, dtype=np.int64) * pages.size // max(n, 1) % pages.size]
    out[:] = sweep
    mask = rng.random(n) < float(params.get("revisit", 0.3))
    if mask.any():
        out[mask] = pages[rng.integers(0, pages.size, size=int(mask.sum()))]
    return out


def _l2p_overrides(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "chunk_sizes": (8 * KB,),
        "max_chunks_per_way": int(params.get("max_chunks_per_way", 8)),
    }


def tenant_storm(rng: np.random.Generator, n: int, params: Mapping[str, Any]) -> np.ndarray:
    """Tenancy churn: generations of per-tenant windows spawn and die.

    The stream is split into ``generations`` epochs.  In each epoch
    every one of ``tenants`` slots owns a fresh dense window of
    ``window_blocks`` blocks (the previous generation's tenants have
    "exited"); accesses land uniformly across the live windows, and a
    ``retouch`` fraction of each later epoch bursts back into dead
    tenants' windows, keeping their abandoned mappings hot in the
    tables — the fork/exec/exit churn shape the datacenter simulator
    schedules, expressed as a single-address-space stream the fuzz
    harness can replay through every organization.
    """
    tenants = int(params.get("tenants", 4))
    generations = int(params.get("generations", 4))
    window_blocks = int(params.get("window_blocks", 256))
    retouch = float(params.get("retouch", 0.2))
    if tenants < 1 or generations < 1 or window_blocks < 1:
        raise ConfigurationError(
            f"tenant_storm needs tenants, generations and window_blocks >= 1 "
            f"(got {tenants}, {generations}, {window_blocks})"
        )
    if not 0.0 <= retouch < 1.0:
        raise ConfigurationError(
            f"tenant_storm retouch {retouch} must be in [0, 1)"
        )
    # Same multi-VMA gap rule as ``churn``: strides keep every window in
    # its own VMA so spawn/exit churn really grows disjoint mappings.
    stride_blocks = window_blocks * 4 + 1024
    base_block = DATA_VMA_BASE // PAGES_PER_BLOCK
    gen_pages = [
        np.concatenate([
            _dense_pages(
                window_blocks,
                base_block + (gen * tenants + slot) * stride_blocks,
            )
            for slot in range(tenants)
        ])
        for gen in range(generations)
    ]
    out = np.empty(n, dtype=np.int64)
    bounds = np.linspace(0, n, generations + 1).astype(np.int64)
    for gen in range(generations):
        lo, hi = int(bounds[gen]), int(bounds[gen + 1])
        size = hi - lo
        if size <= 0:
            continue
        live = gen_pages[gen]
        phase = live[rng.integers(0, live.size, size=size)]
        if gen > 0 and retouch > 0.0:
            mask = rng.random(size) < retouch
            if mask.any():
                dead = np.concatenate(gen_pages[:gen])
                phase[mask] = dead[rng.integers(0, dead.size, size=int(mask.sum()))]
        out[lo:hi] = phase
    return out


def _no_overrides(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {}


@dataclass(frozen=True)
class Stressor:
    """One catalogue entry: a generator plus its config contribution."""

    name: str
    generate: Callable[[np.random.Generator, int, Mapping[str, Any]], np.ndarray]
    overrides: Callable[[Mapping[str, Any]], Dict[str, Any]]
    description: str


#: The stressor catalogue, keyed by name (the ``StressorSpec.name`` domain).
STRESSORS: Dict[str, Stressor] = {
    "fragmentation_storm": Stressor(
        "fragmentation_storm", fragmentation_storm, _fragmentation_overrides,
        "dense footprint under pathological FMFI (contiguous-alloc pressure)",
    ),
    "churn": Stressor(
        "churn", churn, _no_overrides,
        "mmap/munmap-style working-set migration across disjoint VMAs",
    ),
    "oscillation": Stressor(
        "oscillation", oscillation, _oscillation_overrides,
        "footprint grow-shrink-grow phases (downsize / per-way balance)",
    ),
    "collision_cluster": Stressor(
        "collision_cluster", collision_cluster, _no_overrides,
        "VPNs hash-colliding in the real way functions (kick storms)",
    ),
    "l2p_overflow": Stressor(
        "l2p_overflow", l2p_overflow, _l2p_overrides,
        "footprint growth against a shortened chunk ladder (L2P pressure)",
    ),
    "tenant_storm": Stressor(
        "tenant_storm", tenant_storm, _no_overrides,
        "tenancy churn: per-tenant windows spawn/die with re-touch bursts",
    ),
}


def get_stressor(name: str) -> Stressor:
    """Look up a catalogue entry; unknown names fail with the full menu."""
    stressor = STRESSORS.get(name)
    if stressor is None:
        raise ConfigurationError(
            f"unknown stressor {name!r} (not in {tuple(sorted(STRESSORS))})",
            field="name", value=name,
        )
    return stressor
