"""Delta-debugging trace minimization for failing scenarios.

Given a scenario, its generated trace, and the failure class the run
produced, :func:`minimize_trace` shrinks the record stream while
re-validating after every candidate that the *same* failure class still
trips — never assuming monotonicity, only keeping reductions the
predicate confirms.  Two phases, matching the failure shapes the
stressors produce:

1. **Chunk-level bisection** — exponential probing then binary search
   for the shortest failing prefix at chunk granularity, refined to
   record granularity.  Aborts (allocation failures, L2P exhaustion,
   planted faults) are prefix-triggered, so this alone typically lands
   within a few records of minimal.
2. **Record-level shrink** — greedy interior segment removal: halves,
   then quarters, and so on of the surviving stream are dropped
   whenever the predicate still fails without them.

Every evaluation writes a candidate ``.vpt`` and re-runs the scenario's
affected organizations, so the reproducer that comes out is validated
end-to-end, not inferred.  The whole procedure is deterministic: the
same scenario, trace and budget produce an identical reproducer (the
determinism acceptance test covers this).
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.fuzz.runner import CLASS_OK, ScenarioOutcome, run_scenario
from repro.fuzz.scenario import Scenario
from repro.sim.config import ORGANIZATIONS
from repro.traces.format import TraceReader, TraceWriter

#: Default evaluation budget: each evaluation is a full (short) run of
#: the affected organizations, so the budget bounds wall-clock directly.
DEFAULT_MAX_EVALS = 64

#: Chunk granularity for the bisection phase.
DEFAULT_CHUNK_RECORDS = 1024


@dataclass
class MinimizationResult:
    """What the minimizer did: sizes, evaluations, and the reproducer."""

    scenario: Scenario
    failure_class: str
    original_records: int
    minimized_records: int
    evals: int
    trace_path: str
    #: The outcome of the final validation run over the reproducer.
    final_outcome: Optional[ScenarioOutcome] = None

    @property
    def shrink_ratio(self) -> float:
        if self.original_records == 0:
            return 1.0
        return self.minimized_records / self.original_records

    def summary(self) -> str:
        return (
            f"{self.scenario.name}: {self.original_records} -> "
            f"{self.minimized_records} records "
            f"({self.shrink_ratio:.2%}) in {self.evals} evals, "
            f"class {self.failure_class}"
        )


class _Evaluator:
    """Writes candidate traces and re-checks the failure predicate."""

    def __init__(
        self,
        scenario: Scenario,
        failure_class: str,
        orgs: Sequence[str],
        workdir: str,
        max_evals: int,
        registry=None,
    ) -> None:
        self.scenario = scenario
        self.failure_class = failure_class
        self.orgs = tuple(orgs)
        self.workdir = workdir
        self.max_evals = max_evals
        self.registry = registry
        self.evals = 0

    def budget_left(self) -> bool:
        return self.evals < self.max_evals

    def still_fails(self, stream: np.ndarray) -> bool:
        """True when ``stream`` still trips the recorded failure class."""
        if stream.size == 0:
            return False
        if not self.budget_left():
            return False
        self.evals += 1
        if self.registry is not None:
            self.registry.counter("fuzz.minimizer_evals").inc()
        path = os.path.join(self.workdir, "candidate.vpt")
        self._write(stream, path)
        outcome = run_scenario(
            self.scenario, trace_path=path, orgs=self.orgs,
            check_divergence=False, probe_downsize=False,
        )
        return outcome.failure_class == self.failure_class

    def _write(self, stream: np.ndarray, path: str) -> None:
        meta = self.scenario.trace_meta()
        meta.source = "fuzz-min"
        with TraceWriter(path, meta=meta) as writer:
            writer.append(stream)


def _shortest_failing_prefix(
    stream: np.ndarray, ev: _Evaluator, chunk: int
) -> np.ndarray:
    """Exponential probe + binary search, chunk-level then record-level."""
    n = stream.size
    # Exponential probing at chunk granularity finds a failing prefix.
    probe = chunk
    hi = n
    while probe < n and ev.budget_left():
        if ev.still_fails(stream[:probe]):
            hi = probe
            break
        probe *= 2
    # Binary search between the last passing probe and the failing bound.
    lo = 0 if hi <= chunk else hi // 2
    while hi - lo > 1 and ev.budget_left():
        mid = (lo + hi) // 2
        if ev.still_fails(stream[:mid]):
            hi = mid
        else:
            lo = mid
    return stream[:hi]


def _greedy_segment_removal(stream: np.ndarray, ev: _Evaluator) -> np.ndarray:
    """Drop interior segments (halves, quarters, ...) that aren't needed."""
    current = stream
    segments = 2
    while segments <= min(current.size, 16) and ev.budget_left():
        bounds = np.linspace(0, current.size, segments + 1).astype(np.int64)
        removed_any = False
        # Iterate back-to-front so surviving indices stay valid.
        for s in range(segments - 1, -1, -1):
            if current.size <= 1 or not ev.budget_left():
                break
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            if hi - lo >= current.size:
                continue
            candidate = np.concatenate([current[:lo], current[hi:]])
            if candidate.size and ev.still_fails(candidate):
                current = candidate
                removed_any = True
                break  # segment bounds are stale; recompute
        if not removed_any:
            segments *= 2
    return current


def minimize_trace(
    scenario: Scenario,
    trace_path: str,
    failure_class: str,
    out_path: str,
    orgs: Optional[Sequence[str]] = None,
    max_evals: int = DEFAULT_MAX_EVALS,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    registry=None,
) -> MinimizationResult:
    """Shrink ``trace_path`` to a reproducer that still trips ``failure_class``.

    ``orgs`` defaults to all three organizations; passing just the
    affected ones makes each evaluation proportionally cheaper.  The
    reproducer is written to ``out_path`` with provenance (the scenario,
    the original trace's record count) in its header, and validated one
    final time — the returned result carries that outcome.
    """
    if failure_class == CLASS_OK:
        raise ConfigurationError(
            "cannot minimize an 'ok' outcome — nothing to reproduce",
            field="failure_class", value=failure_class,
        )
    if max_evals < 4:
        raise ConfigurationError(
            f"max_evals {max_evals} is too small to bisect anything",
            field="max_evals", value=max_evals,
        )
    run_orgs = tuple(orgs) if orgs else ORGANIZATIONS
    with TraceReader(trace_path) as reader:
        stream = reader.read()
    workdir = tempfile.mkdtemp(prefix="fuzz-min-")
    ev = _Evaluator(scenario, failure_class, run_orgs, workdir, max_evals,
                    registry=registry)

    if not ev.still_fails(stream):
        raise ConfigurationError(
            f"scenario {scenario.name!r} does not reproduce class "
            f"{failure_class!r} on the given trace (over orgs {run_orgs})",
            field="failure_class", value=failure_class,
        )

    shrunk = _shortest_failing_prefix(stream, ev, chunk_records)
    shrunk = _greedy_segment_removal(shrunk, ev)

    meta = scenario.trace_meta()
    meta.source = "fuzz-min"
    meta.extra["minimized_from_records"] = int(stream.size)
    meta.extra["failure_class"] = failure_class
    with TraceWriter(out_path, meta=meta) as writer:
        writer.append(shrunk)
    final = run_scenario(
        scenario, trace_path=out_path, orgs=run_orgs,
        check_divergence=True, probe_downsize=False, registry=registry,
    )
    if final.failure_class != failure_class:
        raise ConfigurationError(
            f"minimized reproducer classifies as {final.failure_class!r}, "
            f"expected {failure_class!r} — minimizer invariant broken",
            field="failure_class", value=final.failure_class,
        )
    if registry is not None:
        registry.counter("fuzz.minimizer_records_removed").inc(
            int(stream.size - shrunk.size)
        )
    return MinimizationResult(
        scenario=scenario,
        failure_class=failure_class,
        original_records=int(stream.size),
        minimized_records=int(shrunk.size),
        evals=ev.evals,
        trace_path=out_path,
        final_outcome=final,
    )
