"""Adversarial scenario fuzzing: stressors, runner, minimizer, corpus.

The robustness subsystem built on top of the trace container
(:mod:`repro.traces`), the fault plans (:mod:`repro.faults`) and the
simulator (:mod:`repro.sim`):

* :mod:`repro.fuzz.stressors` — the seeded stressor catalogue;
* :mod:`repro.fuzz.scenario` — weighted stressor compositions, their
  deterministic ``.vpt`` generation, and named presets;
* :mod:`repro.fuzz.runner` — execution across organizations and outcome
  classification (graceful aborts, invariant violations, non-graceful
  crashes, engine divergence, cycle blowups);
* :mod:`repro.fuzz.minimize` — delta-debugging trace minimization;
* :mod:`repro.fuzz.corpus` — the versioned on-disk reproducer corpus
  replayed by CI and the resilience sweep.

``python -m repro.fuzz`` exposes ``generate`` / ``run`` / ``minimize``
/ ``replay-corpus``; see FUZZING.md for the full contract.
"""

from repro.fuzz.corpus import (
    CorpusEntry,
    ReplayResult,
    add_entry,
    load_manifest,
    replay_corpus,
)
from repro.fuzz.minimize import MinimizationResult, minimize_trace
from repro.fuzz.runner import (
    CLASS_CYCLE_BLOWUP,
    CLASS_DIVERGENCE,
    CLASS_INVARIANT,
    CLASS_NON_GRACEFUL,
    CLASS_OK,
    OrgOutcome,
    ScenarioOutcome,
    classify_failure_reason,
    run_scenario,
)
from repro.fuzz.scenario import (
    PRESETS,
    Scenario,
    StressorSpec,
    make_preset,
    preset_names,
)
from repro.fuzz.stressors import STRESSORS, Stressor, get_stressor

__all__ = [
    "CLASS_CYCLE_BLOWUP",
    "CLASS_DIVERGENCE",
    "CLASS_INVARIANT",
    "CLASS_NON_GRACEFUL",
    "CLASS_OK",
    "CorpusEntry",
    "MinimizationResult",
    "OrgOutcome",
    "PRESETS",
    "ReplayResult",
    "STRESSORS",
    "Scenario",
    "ScenarioOutcome",
    "Stressor",
    "StressorSpec",
    "add_entry",
    "classify_failure_reason",
    "get_stressor",
    "load_manifest",
    "make_preset",
    "minimize_trace",
    "preset_names",
    "replay_corpus",
    "run_scenario",
]
