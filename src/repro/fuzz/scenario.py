"""Adversarial scenarios: seeded stressor compositions and their traces.

A :class:`Scenario` names a weighted mix of :mod:`repro.fuzz.stressors`
entries plus the :class:`~repro.sim.config.SimulationConfig` overrides
and optional :class:`~repro.faults.plan.FaultPlan` the run composes
with.  Everything is a pure function of the scenario's fields:

* **trace generation** — each stressor draws from an RNG forked from
  ``SeedSequence([seed, index, crc32(name)])`` and produces its
  weight-proportional share of the records; the shares are interleaved
  in fixed-size slices.  The same scenario therefore always writes a
  byte-identical ``.vpt`` file (the determinism acceptance test).
* **config assembly** — stressor override contributions merge in
  catalogue order, the scenario's own ``overrides`` win, and the result
  is validated against the real ``SimulationConfig`` fields so a typo'd
  override fails loudly instead of being ignored.

Scenarios round-trip through JSON (the corpus manifest embeds them), and
:data:`PRESETS` holds the named recipes the CLI and CI budgets draw from.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fuzz.stressors import get_stressor
from repro.sim.config import ORGANIZATIONS, SimulationConfig
from repro.traces.format import TraceMeta, TraceWriter

#: Records per interleave slice when mixing stressor streams.
INTERLEAVE_SLICE = 512

#: Config fields scenarios may override (everything except the wiring
#: fields the runner owns: organization, trace_file, fault_plan, obs).
_RESERVED_OVERRIDES = ("organization", "trace_file", "fault_plan", "obs", "recovery")
_CONFIG_FIELDS = tuple(
    f.name for f in dataclasses.fields(SimulationConfig)
    if f.name not in _RESERVED_OVERRIDES
)


@dataclass(frozen=True)
class StressorSpec:
    """One stressor reference inside a scenario: name, weight, parameters."""

    name: str
    weight: float = 1.0
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        get_stressor(self.name)  # unknown names fail at construction
        if not self.weight > 0.0:
            raise ConfigurationError(
                f"stressor {self.name!r} weight {self.weight} must be > 0",
                field="weight", value=self.weight,
            )

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @classmethod
    def make(cls, name: str, weight: float = 1.0, **params: Any) -> "StressorSpec":
        return cls(name=name, weight=weight, params=tuple(sorted(params.items())))


@dataclass(frozen=True)
class Scenario:
    """A complete adversarial run recipe (JSON round-trippable)."""

    name: str
    seed: int = 0
    scale: int = 512
    trace_length: int = 12000
    #: The SimulationConfig seed — also the hash seed collision stressors
    #: synthesize against, so the collisions are real at run time.
    sim_seed: int = 12345
    stressors: Tuple[StressorSpec, ...] = ()
    overrides: Tuple[Tuple[str, Any], ...] = ()
    #: Serialized FaultSpec dicts (see FaultSpec.to_dict); empty = no plan.
    fault_specs: Tuple[Tuple[Tuple[str, Any], ...], ...] = ()
    fault_seed: int = 0
    invariant_check_every: int = 0
    #: cycles-per-access ratio vs the radix baseline above which a
    #: surviving run is classified as a cycle-budget blowup.
    blowup_threshold: float = 2.0
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.stressors:
            raise ConfigurationError(
                f"scenario {self.name!r} has no stressors", field="stressors",
            )
        if self.trace_length < 1:
            raise ConfigurationError(
                f"trace_length {self.trace_length} must be >= 1",
                field="trace_length", value=self.trace_length,
            )
        for key, _value in self.overrides:
            if key not in _CONFIG_FIELDS:
                raise ConfigurationError(
                    f"scenario {self.name!r} overrides unknown config field "
                    f"{key!r} (valid: {_CONFIG_FIELDS})",
                    field="overrides", value=key,
                )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "scale": self.scale,
            "trace_length": self.trace_length,
            "sim_seed": self.sim_seed,
            "stressors": [
                {"name": s.name, "weight": s.weight, "params": s.params_dict()}
                for s in self.stressors
            ],
            "overrides": dict(self.overrides),
            "fault_specs": [dict(spec) for spec in self.fault_specs],
            "fault_seed": self.fault_seed,
            "invariant_check_every": self.invariant_check_every,
            "blowup_threshold": self.blowup_threshold,
            "notes": self.notes,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "Scenario":
        if not isinstance(raw, Mapping):
            raise ConfigurationError(
                f"scenario must be a JSON object, got {type(raw).__name__}",
                field="scenario", value=raw,
            )
        stressors = tuple(
            StressorSpec(
                name=str(s["name"]),
                weight=float(s.get("weight", 1.0)),
                params=tuple(sorted(dict(s.get("params", {})).items())),
            )
            for s in raw.get("stressors", ())
        )
        return cls(
            name=str(raw.get("name", "unnamed")),
            seed=int(raw.get("seed", 0)),
            scale=int(raw.get("scale", 512)),
            trace_length=int(raw.get("trace_length", 12000)),
            sim_seed=int(raw.get("sim_seed", 12345)),
            stressors=stressors,
            overrides=tuple(sorted(dict(raw.get("overrides", {})).items())),
            fault_specs=tuple(
                tuple(sorted(dict(spec).items()))
                for spec in raw.get("fault_specs", ())
            ),
            fault_seed=int(raw.get("fault_seed", 0)),
            invariant_check_every=int(raw.get("invariant_check_every", 0)),
            blowup_threshold=float(raw.get("blowup_threshold", 2.0)),
            notes=str(raw.get("notes", "")),
        )

    @classmethod
    def from_json(cls, blob: str) -> "Scenario":
        try:
            raw = json.loads(blob)
        except ValueError as exc:
            raise ConfigurationError(
                f"scenario JSON is unparseable: {exc}", field="scenario",
            ) from exc
        return cls.from_dict(raw)

    # -- derived objects -------------------------------------------------

    def with_seed(self, seed: int) -> "Scenario":
        return dataclasses.replace(self, seed=seed)

    def build_fault_plan(self) -> Optional[FaultPlan]:
        """The composed fault plan, rebuilt from the serialized specs."""
        if not self.fault_specs:
            return None
        specs = [FaultSpec.from_dict(dict(spec)) for spec in self.fault_specs]
        return FaultPlan(specs, seed=self.fault_seed)

    def merged_overrides(self) -> Dict[str, Any]:
        """Stressor override contributions, then the scenario's own."""
        merged: Dict[str, Any] = {}
        for spec in self.stressors:
            merged.update(get_stressor(spec.name).overrides(spec.params_dict()))
        merged.update(dict(self.overrides))
        # JSON round-trips tuples as lists; SimulationConfig wants tuples.
        if "chunk_sizes" in merged:
            merged["chunk_sizes"] = tuple(merged["chunk_sizes"])
        return merged

    def config_for(self, organization: str, trace_path: str) -> SimulationConfig:
        """The SimulationConfig this scenario runs ``organization`` with."""
        if organization not in ORGANIZATIONS:
            raise ConfigurationError(
                f"organization {organization!r} not in {ORGANIZATIONS}",
                field="organization", value=organization,
            )
        kwargs = self.merged_overrides()
        kwargs.setdefault("scale", self.scale)
        kwargs.setdefault("seed", self.sim_seed)
        kwargs.setdefault("invariant_check_every", self.invariant_check_every)
        return SimulationConfig(
            organization=organization,
            trace_file=trace_path,
            fault_plan=self.build_fault_plan(),
            **kwargs,
        )

    # -- trace generation ------------------------------------------------

    def _stressor_streams(self) -> List[np.ndarray]:
        """Each stressor's weight-proportional share of the records."""
        weights = np.array([s.weight for s in self.stressors], dtype=np.float64)
        shares = weights / weights.sum()
        counts = np.floor(shares * self.trace_length).astype(np.int64)
        # Largest-remainder top-up so the counts sum exactly.
        remainder = self.trace_length - int(counts.sum())
        order = np.argsort(-(shares * self.trace_length - counts), kind="stable")
        for i in range(remainder):
            counts[order[i % len(order)]] += 1
        streams = []
        for index, spec in enumerate(self.stressors):
            n = int(counts[index])
            if n == 0:
                streams.append(np.empty(0, dtype=np.int64))
                continue
            digest = zlib.crc32(spec.name.encode("utf-8")) & 0x7FFFFFFF
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, index, digest])
            )
            params = spec.params_dict()
            params.setdefault("sim_seed", self.sim_seed)
            stream = get_stressor(spec.name).generate(rng, n, params)
            stream = np.asarray(stream, dtype=np.int64)
            if stream.size != n:
                raise ConfigurationError(
                    f"stressor {spec.name!r} produced {stream.size} records, "
                    f"asked for {n}", field="stressor", value=spec.name,
                )
            streams.append(stream)
        return streams

    def generate_stream(self) -> np.ndarray:
        """The scenario's full VPN stream: sliced round-robin interleave."""
        streams = self._stressor_streams()
        if len(streams) == 1:
            return streams[0]
        out = np.empty(self.trace_length, dtype=np.int64)
        cursors = [0] * len(streams)
        pos = 0
        while pos < self.trace_length:
            progressed = False
            for i, stream in enumerate(streams):
                take = min(INTERLEAVE_SLICE, stream.size - cursors[i])
                if take <= 0:
                    continue
                out[pos : pos + take] = stream[cursors[i] : cursors[i] + take]
                cursors[i] += take
                pos += take
                progressed = True
            if not progressed:  # pragma: no cover - counts sum to length
                break
        return out

    def trace_meta(self) -> TraceMeta:
        return TraceMeta(
            source="fuzz",
            seed=self.sim_seed,
            scale=self.scale,
            extra={"generator": "repro.fuzz", "scenario": self.to_dict()},
        )

    def generate_trace(self, path: str, registry=None) -> TraceMeta:
        """Write the scenario's ``.vpt`` trace (byte-identical per seed)."""
        meta = self.trace_meta()
        with TraceWriter(path, meta=meta, registry=registry) as writer:
            writer.append(self.generate_stream())
        return meta


def scenario_from_trace_meta(meta: TraceMeta) -> Optional[Scenario]:
    """Recover the generating scenario embedded in a fuzz trace header."""
    raw = meta.extra.get("scenario") if meta.extra else None
    if raw is None:
        return None
    return Scenario.from_dict(raw)


# -- named presets ---------------------------------------------------------


def _preset_frag_abort(seed: int) -> Scenario:
    return Scenario(
        name="frag-storm",
        seed=seed,
        trace_length=12000,
        stressors=(StressorSpec.make("fragmentation_storm", blocks=2048, fmfi=0.78),),
        notes="dense doublings at FMFI 0.78: ECPT aborts, ME-HPT pays chunked costs",
    )


def _preset_l2p(seed: int) -> Scenario:
    return Scenario(
        name="l2p-ladder",
        seed=seed,
        trace_length=8000,
        stressors=(StressorSpec.make("l2p_overflow", blocks=4096),),
        notes="8KB-only ladder with 8 chunks/way: ME-HPT L2P exhaustion",
    )


def _preset_collision(seed: int) -> Scenario:
    return Scenario(
        name="collision-cluster",
        seed=seed,
        trace_length=12000,
        blowup_threshold=1.5,
        stressors=(StressorSpec.make("collision_cluster", mask_bits=8, buckets=8,
                                     max_blocks=1024),),
        notes="2-way mix64 collisions into 8 buckets: kick/emergency-resize storm",
    )


def _preset_churn_oscillation(seed: int) -> Scenario:
    return Scenario(
        name="churn-oscillation",
        seed=seed,
        trace_length=12000,
        invariant_check_every=2048,
        stressors=(
            StressorSpec.make("churn", windows=6, window_blocks=512, weight=1.0),
            StressorSpec.make("oscillation", blocks=2048, phases=5, weight=1.0),
        ),
        notes="VMA churn interleaved with footprint oscillation, invariants on",
    )


def _preset_planted_fault(seed: int) -> Scenario:
    return Scenario(
        name="planted-fault",
        seed=seed,
        trace_length=20000,
        stressors=(StressorSpec.make("fragmentation_storm", blocks=2048, fmfi=0.5),),
        overrides=(("fmfi", 0.5),),
        fault_specs=(
            tuple(sorted(
                FaultSpec(
                    "contiguous_alloc", every=3, min_bytes=2 * 1024 * 1024
                ).to_dict().items()
            )),
        ),
        fault_seed=99,
        notes=(
            "injected permanent contiguous-alloc failure on the 3rd way "
            "doubling of at least 2MB (build-time allocations are below "
            "the min_bytes gate, so the abort lands inside the trace loop)"
        ),
    )


def _preset_tenant_storm(seed: int) -> Scenario:
    return Scenario(
        name="tenant-storm",
        seed=seed,
        trace_length=12000,
        invariant_check_every=2048,
        stressors=(
            StressorSpec.make("tenant_storm", tenants=4, generations=4,
                              window_blocks=256, retouch=0.2),
        ),
        notes=(
            "datacenter tenancy churn: generations of per-tenant windows "
            "spawn and die with re-touch bursts into dead windows"
        ),
    )


#: Named scenario recipes: the corpus seeds, the CLI's --preset domain,
#: and the CI fuzz budgets all draw from here.
PRESETS: Dict[str, Any] = {
    "frag-storm": _preset_frag_abort,
    "l2p-ladder": _preset_l2p,
    "collision-cluster": _preset_collision,
    "churn-oscillation": _preset_churn_oscillation,
    "planted-fault": _preset_planted_fault,
    "tenant-storm": _preset_tenant_storm,
}


def make_preset(name: str, seed: int = 0) -> Scenario:
    """Instantiate a preset scenario at ``seed``."""
    factory = PRESETS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown preset {name!r} (not in {tuple(sorted(PRESETS))})",
            field="preset", value=name,
        )
    return factory(seed)


def preset_names() -> Sequence[str]:
    return tuple(sorted(PRESETS))
