"""Scenario execution and outcome classification.

:func:`run_scenario` replays one generated trace through the requested
page-table organizations and classifies what each one did:

* ``ok`` — completed inside the cycle budget;
* ``abort:contiguous`` / ``abort:l2p`` / ``abort:table_full`` /
  ``abort:other`` — a *graceful* abort: the simulator recorded the
  failure (``result.failed``) instead of crashing;
* ``invariant_violation`` — ``check_invariants()`` tripped
  (:class:`~repro.common.errors.SimulationError` escaped the run);
* ``non_graceful`` — any other exception: the exact bug class the
  fuzzer exists to find;
* ``divergence`` — the scalar and vectorized engines disagreed on the
  same trace;
* ``cycle_blowup`` — the run completed but spent more than
  ``scenario.blowup_threshold`` times the radix baseline's cycles per
  access.

The per-organization classes aggregate (worst first) into the
scenario's failure class and affected-organization list — the corpus
manifest records and later re-asserts both.  Scenarios whose stressor
mix includes ``oscillation`` additionally run a downsize probe: the
grow→shrink→grow phases are driven through explicit map/unmap calls
against a fresh ME-HPT build with downsizing enabled, with invariant
checks between phases.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.fuzz.scenario import Scenario
from repro.sim.config import ORGANIZATIONS
from repro.sim.results import PerformanceResult
from repro.sim.simulator import TranslationSimulator
from repro.traces.format import TraceReader

CLASS_OK = "ok"
CLASS_ABORT_CONTIGUOUS = "abort:contiguous"
CLASS_ABORT_L2P = "abort:l2p"
CLASS_ABORT_TABLE_FULL = "abort:table_full"
CLASS_ABORT_OTHER = "abort:other"
CLASS_INVARIANT = "invariant_violation"
CLASS_NON_GRACEFUL = "non_graceful"
CLASS_DIVERGENCE = "divergence"
CLASS_CYCLE_BLOWUP = "cycle_blowup"

#: Aggregation order: earlier entries are worse and win the scenario class.
CLASS_SEVERITY = (
    CLASS_NON_GRACEFUL,
    CLASS_INVARIANT,
    CLASS_DIVERGENCE,
    CLASS_ABORT_OTHER,
    CLASS_ABORT_TABLE_FULL,
    CLASS_ABORT_L2P,
    CLASS_ABORT_CONTIGUOUS,
    CLASS_CYCLE_BLOWUP,
    CLASS_OK,
)


def classify_failure_reason(reason: str) -> str:
    """Map a recorded abort reason onto a graceful-abort class.

    The simulator stores ``str(exc)`` for the three ABORT_ERRORS; the
    message vocabularies are disjoint (``contiguous`` for the paper's
    allocation failure, ``chunk``/``ladder`` for L2P exhaustion,
    ``stuck`` for a wedged cuckoo table).
    """
    text = reason.lower()
    if "contiguous" in text:
        return CLASS_ABORT_CONTIGUOUS
    if "ladder" in text or "chunk" in text:
        return CLASS_ABORT_L2P
    if "stuck" in text:
        return CLASS_ABORT_TABLE_FULL
    return CLASS_ABORT_OTHER


@dataclass
class OrgOutcome:
    """What one organization did with the scenario's trace."""

    organization: str
    failure_class: str
    failed: bool = False
    failure_reason: str = ""
    cycles_per_access: float = 0.0
    blowup_ratio: float = 0.0
    detail: str = ""
    divergence_checked: bool = False


@dataclass
class ScenarioOutcome:
    """The classified result of one scenario across organizations."""

    scenario: Scenario
    trace_path: str
    outcomes: Dict[str, OrgOutcome] = field(default_factory=dict)
    downsize_probe: str = ""

    @property
    def failure_class(self) -> str:
        """The worst per-organization class (see CLASS_SEVERITY)."""
        classes = {o.failure_class for o in self.outcomes.values()}
        if self.downsize_probe and self.downsize_probe != CLASS_OK:
            classes.add(self.downsize_probe)
        for cls in CLASS_SEVERITY:
            if cls in classes:
                return cls
        return CLASS_OK

    @property
    def affected_orgs(self) -> Tuple[str, ...]:
        return tuple(
            org for org in sorted(self.outcomes)
            if self.outcomes[org].failure_class != CLASS_OK
        )

    def summary(self) -> str:
        parts = [
            f"{org}={self.outcomes[org].failure_class}"
            for org in sorted(self.outcomes)
        ]
        if self.downsize_probe:
            parts.append(f"downsize_probe={self.downsize_probe}")
        return f"{self.scenario.name}[seed={self.scenario.seed}]: " + " ".join(parts)


def _safe_cpa(result: PerformanceResult) -> float:
    if result.accesses <= 0:
        return float("inf")
    return result.cycles_per_access()


def _comparable(result: PerformanceResult) -> dict:
    """A PerformanceResult as a plain dict for engine-parity comparison."""
    return dataclasses.asdict(result)


def _run_engine(
    scenario: Scenario, organization: str, trace_path: str,
    trace_length: int, engine: str,
) -> PerformanceResult:
    config = scenario.config_for(organization, trace_path)
    config.engine = engine
    sim = TranslationSimulator(None, config, trace_length=trace_length)
    return sim.run()


def run_org(
    scenario: Scenario,
    organization: str,
    trace_path: str,
    trace_length: int,
    baseline_cpa: Optional[float] = None,
    check_divergence: bool = False,
    registry=None,
) -> OrgOutcome:
    """Run one organization over the trace and classify its outcome."""
    try:
        result = _run_engine(
            scenario, organization, trace_path, trace_length, "auto"
        )
    except SimulationError as exc:
        return OrgOutcome(
            organization, CLASS_INVARIANT, failed=True, detail=repr(exc),
        )
    except ConfigurationError:
        # A malformed scenario is the caller's bug, not a finding.
        raise
    except Exception as exc:  # noqa: BLE001 - non-graceful *is* the finding
        return OrgOutcome(
            organization, CLASS_NON_GRACEFUL, failed=True,
            detail=f"{type(exc).__name__}: {exc}",
        )

    outcome = OrgOutcome(
        organization,
        CLASS_OK,
        failed=result.failed,
        failure_reason=result.failure_reason,
        cycles_per_access=_safe_cpa(result),
    )
    if result.failed:
        outcome.failure_class = classify_failure_reason(result.failure_reason)
    elif baseline_cpa is not None and baseline_cpa > 0.0:
        outcome.blowup_ratio = outcome.cycles_per_access / baseline_cpa
        if (
            organization != "radix"
            and outcome.blowup_ratio >= scenario.blowup_threshold
        ):
            outcome.failure_class = CLASS_CYCLE_BLOWUP
            outcome.detail = (
                f"{outcome.cycles_per_access:.1f} cycles/access vs radix "
                f"{baseline_cpa:.1f} ({outcome.blowup_ratio:.2f}x >= "
                f"{scenario.blowup_threshold}x)"
            )

    if check_divergence:
        outcome.divergence_checked = True
        if registry is not None:
            registry.counter("fuzz.divergence_checks").inc()
        try:
            scalar = _run_engine(
                scenario, organization, trace_path, trace_length, "scalar"
            )
            vectorized = _run_engine(
                scenario, organization, trace_path, trace_length, "vectorized"
            )
        except SimulationError as exc:
            outcome.failure_class = CLASS_INVARIANT
            outcome.detail = repr(exc)
            return outcome
        except Exception as exc:  # noqa: BLE001
            outcome.failure_class = CLASS_NON_GRACEFUL
            outcome.detail = f"{type(exc).__name__}: {exc}"
            return outcome
        if _comparable(scalar) != _comparable(vectorized):
            outcome.failure_class = CLASS_DIVERGENCE
            outcome.detail = "scalar and vectorized engines disagree"
    return outcome


def downsize_probe(scenario: Scenario, trace_path: str) -> Tuple[str, str]:
    """Drive grow→shrink→grow through map/unmap on a fresh ME-HPT build.

    The trace-driven simulator only ever inserts; downsizing needs
    deletions.  This probe replays the oscillation phase structure as
    explicit operations — map the footprint, unmap down to the core,
    re-map — with ``check_invariants()`` between phases, and reports the
    same class vocabulary as the trace runs.
    """
    config = scenario.config_for("mehpt", trace_path)
    config.allow_downsize = True
    try:
        system = config.build()
        tables = system.page_tables
        pages = system.workload.page_set()
        # Bound the probe so it stays a probe, not a second simulation.
        pages = pages[:8192]
        core = pages[: max(1, pages.size // 8)]
        for ppn, vpn in enumerate(pages.tolist()):
            tables.map(vpn, ppn)
        tables.check_invariants()
        for vpn in pages[core.size:].tolist():
            tables.unmap(vpn)
        tables.check_invariants()
        for ppn, vpn in enumerate(pages[core.size:].tolist()):
            tables.map(vpn, ppn + pages.size)
        tables.check_invariants()
    except SimulationError as exc:
        return CLASS_INVARIANT, repr(exc)
    except ConfigurationError:
        raise
    except Exception as exc:  # noqa: BLE001
        if type(exc).__name__ in (
            "ContiguousAllocationError", "TableFullError", "L2POverflowError"
        ):
            return classify_failure_reason(str(exc)), str(exc)
        return CLASS_NON_GRACEFUL, f"{type(exc).__name__}: {exc}"
    return CLASS_OK, ""


def run_scenario(
    scenario: Scenario,
    trace_path: Optional[str] = None,
    orgs: Sequence[str] = ORGANIZATIONS,
    check_divergence: bool = False,
    probe_downsize: Optional[bool] = None,
    registry=None,
    workdir: Optional[str] = None,
) -> ScenarioOutcome:
    """Generate (if needed) and run one scenario; classify every org.

    ``trace_path`` may point at an existing trace (corpus replay, a
    minimized reproducer); otherwise the scenario's trace is generated
    into ``workdir`` (a temp directory by default).  The radix baseline
    runs first when requested so hashed organizations get a blowup
    denominator.
    """
    if trace_path is None:
        base = workdir if workdir is not None else tempfile.mkdtemp(prefix="fuzz-")
        trace_path = os.path.join(
            base, f"{scenario.name}-seed{scenario.seed}.vpt"
        )
        scenario.generate_trace(trace_path, registry=registry)
    with TraceReader(trace_path) as reader:
        trace_length = reader.total_values
    if trace_length < 1:
        raise ConfigurationError(
            f"trace {trace_path} is empty", field="trace_path", value=trace_path
        )

    if registry is not None:
        registry.counter("fuzz.scenarios_run").inc()

    outcome = ScenarioOutcome(scenario=scenario, trace_path=trace_path)
    ordered = [org for org in ("radix", "ecpt", "mehpt") if org in orgs]
    ordered += [org for org in orgs if org not in ordered]
    baseline_cpa: Optional[float] = None
    for org in ordered:
        result = run_org(
            scenario, org, trace_path, trace_length,
            baseline_cpa=baseline_cpa,
            check_divergence=check_divergence,
            registry=registry,
        )
        outcome.outcomes[org] = result
        if org == "radix" and result.failure_class == CLASS_OK:
            baseline_cpa = result.cycles_per_access

    wants_probe = probe_downsize if probe_downsize is not None else any(
        spec.name == "oscillation" for spec in scenario.stressors
    )
    if wants_probe and "mehpt" in orgs:
        probe_class, probe_detail = downsize_probe(scenario, trace_path)
        outcome.downsize_probe = probe_class
        if probe_detail:
            outcome.outcomes["mehpt"].detail = (
                outcome.outcomes["mehpt"].detail or probe_detail
            )

    if registry is not None and outcome.failure_class != CLASS_OK:
        registry.counter("fuzz.failures_found").inc()
    return outcome
