"""``python -m repro.fuzz`` — the adversarial fuzzing CLI.

Verbs:

* ``generate`` — materialize a scenario's ``.vpt`` trace (and a JSON
  sidecar of the scenario itself) from a preset or a scenario file;
* ``run`` — run seeded scenario variants through the organizations,
  print the classification table, optionally minimizing every failure
  into an output directory (the nightly CI budget);
* ``minimize`` — shrink one failing trace to a reproducer;
* ``replay-corpus`` — replay the checked-in corpus and exit non-zero on
  any drift (the PR CI gate).

Examples::

    python -m repro.fuzz generate --preset frag-storm --seed 3 --out /tmp/s.vpt
    python -m repro.fuzz run --preset all --seeds 4 --divergence
    python -m repro.fuzz minimize --scenario s.json --trace s.vpt \\
        --failure-class abort:contiguous --out repro.vpt
    python -m repro.fuzz replay-corpus --corpus corpus/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.common.errors import MEHPTError
from repro.fuzz.corpus import add_entry, replay_corpus
from repro.fuzz.minimize import minimize_trace
from repro.fuzz.runner import CLASS_OK, run_scenario
from repro.fuzz.scenario import Scenario, make_preset, preset_names
from repro.sim.config import ORGANIZATIONS


def _load_scenario(args: argparse.Namespace) -> Scenario:
    if getattr(args, "scenario", None):
        with open(args.scenario, "r", encoding="utf-8") as handle:
            scenario = Scenario.from_json(handle.read())
    else:
        scenario = make_preset(args.preset, seed=args.seed)
    if getattr(args, "seed", None) is not None:
        scenario = scenario.with_seed(args.seed)
    return scenario


def _scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", help="scenario JSON file (alternative to --preset)"
    )
    parser.add_argument(
        "--preset", choices=list(preset_names()),
        help="named preset scenario",
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")


def _require_recipe(args: argparse.Namespace, parser: argparse.ArgumentParser) -> None:
    if not args.scenario and not args.preset:
        parser.error("one of --scenario / --preset is required")


def _cmd_generate(args: argparse.Namespace) -> int:
    scenario = _load_scenario(args)
    meta = scenario.generate_trace(args.out)
    sidecar = os.path.splitext(args.out)[0] + ".scenario.json"
    with open(sidecar, "w", encoding="utf-8") as handle:
        handle.write(scenario.to_json() + "\n")
    print(
        f"{args.out}: {scenario.trace_length} records, scenario "
        f"{scenario.name!r} seed {scenario.seed} (source={meta.source}); "
        f"scenario JSON at {sidecar}"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    base = _load_scenario(args)
    orgs = args.orgs.split(",") if args.orgs else list(ORGANIZATIONS)
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
    failures = 0
    for i in range(args.seeds):
        scenario = base.with_seed(base.seed + i)
        outcome = run_scenario(
            scenario, orgs=orgs, check_divergence=args.divergence,
            workdir=args.out_dir,
        )
        print(outcome.summary())
        if outcome.failure_class == CLASS_OK:
            continue
        failures += 1
        if args.minimize and args.out_dir:
            os.makedirs(args.out_dir, exist_ok=True)
            out = os.path.join(
                args.out_dir, f"{scenario.name}-seed{scenario.seed}-min.vpt"
            )
            result = minimize_trace(
                scenario, outcome.trace_path, outcome.failure_class, out,
                orgs=list(outcome.affected_orgs) or orgs,
            )
            print("  minimized:", result.summary())
            if args.corpus:
                # The manifest records what the *reproducer* does across
                # the full organization set (the replay contract), which
                # can be narrower than the original trace's outcome.
                replay = run_scenario(
                    scenario, trace_path=out, orgs=orgs,
                    check_divergence=True, probe_downsize=False,
                )
                entry = add_entry(
                    args.corpus,
                    f"{scenario.name}-seed{scenario.seed}",
                    out, scenario, replay.failure_class,
                    replay.affected_orgs,
                    notes="minimized by python -m repro.fuzz run",
                )
                print(f"  corpus: added {entry.name} ({entry.records} records)")
    print(f"{args.seeds} scenario(s), {failures} with findings")
    if args.fail_on_findings and failures:
        return 1
    return 0


def _cmd_minimize(args: argparse.Namespace) -> int:
    scenario = _load_scenario(args)
    orgs = args.orgs.split(",") if args.orgs else None
    result = minimize_trace(
        scenario, args.trace, args.failure_class, args.out,
        orgs=orgs, max_evals=args.max_evals,
    )
    print(result.summary())
    return 0


def _cmd_replay_corpus(args: argparse.Namespace) -> int:
    orgs = args.orgs.split(",") if args.orgs else list(ORGANIZATIONS)
    results = replay_corpus(
        args.corpus, orgs=orgs, check_divergence=not args.no_divergence,
    )
    bad = 0
    for result in results:
        status = "ok" if result.ok else f"MISMATCH ({result.detail})"
        print(f"{result.name}: {result.expected_class} -> {status}")
        if not result.ok:
            bad += 1
    print(f"{len(results)} corpus entries replayed, {bad} mismatch(es)")
    return 1 if bad else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Adversarial scenario fuzzer for the ME-HPT reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="write a scenario's .vpt trace")
    _scenario_args(p_gen)
    p_gen.add_argument("--out", required=True, help="output .vpt path")
    p_gen.set_defaults(func=_cmd_generate, needs_recipe=True)

    p_run = sub.add_parser("run", help="run seeded scenario variants")
    _scenario_args(p_run)
    p_run.add_argument("--seeds", type=int, default=1,
                       help="number of consecutive seeds to run")
    p_run.add_argument("--orgs", help="comma-separated organizations")
    p_run.add_argument("--divergence", action="store_true",
                       help="run scalar and vectorized engines and compare")
    p_run.add_argument("--minimize", action="store_true",
                       help="minimize every failing scenario")
    p_run.add_argument("--out-dir", help="directory for traces/reproducers")
    p_run.add_argument("--corpus", help="corpus dir to add reproducers to")
    p_run.add_argument("--fail-on-findings", action="store_true",
                       help="exit 1 when any scenario has a finding")
    p_run.set_defaults(func=_cmd_run, needs_recipe=True)

    p_min = sub.add_parser("minimize", help="shrink a failing trace")
    _scenario_args(p_min)
    p_min.add_argument("--trace", required=True, help="failing .vpt trace")
    p_min.add_argument("--failure-class", required=True,
                       help="expected class, e.g. abort:contiguous")
    p_min.add_argument("--out", required=True, help="reproducer output path")
    p_min.add_argument("--orgs", help="comma-separated organizations")
    p_min.add_argument("--max-evals", type=int, default=64)
    p_min.set_defaults(func=_cmd_minimize, needs_recipe=True)

    p_rep = sub.add_parser("replay-corpus", help="replay the reproducer corpus")
    p_rep.add_argument("--corpus", default="corpus", help="corpus directory")
    p_rep.add_argument("--orgs", help="comma-separated organizations")
    p_rep.add_argument("--no-divergence", action="store_true",
                       help="skip the scalar/vectorized comparison")
    p_rep.set_defaults(func=_cmd_replay_corpus, needs_recipe=False)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "needs_recipe", False):
        _require_recipe(args, parser)
    try:
        return args.func(args)
    except (MEHPTError, OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
