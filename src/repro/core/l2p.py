"""The Logical-to-Physical (L2P) table (Sections IV-A, V-A, V-C).

The L2P table is a small MMU-resident indirection table: on a page walk,
the hash key is divided by the chunk size to select an L2P entry, whose
contents point to the physical chunk; the remainder indexes within the
chunk (Figure 2b).  Because chunk sizes are powers of two this is a shift
and a mask in hardware.

Capacity and layout (Figure 6): per way, three 32-entry subtables — one
per page size — laid out contiguously with the 1GB subtable in the middle
(least likely to be used).  The 4KB and 2MB subtables grow toward the
middle and may *steal* the 1GB subtable's entries; a displaced 1GB entry
takes the most significant entry of the 2MB subtable.  The net capacity
rule is: each subtable can reach at most ``2x32 = 64`` entries, and one
way-group's three subtables can use at most ``3x32 = 96`` together.

With 3 ways and 3 page sizes the whole table has 288 entries; at 33 bits
per chunk base pointer that is 1.16KB of MMU state.  On a context switch
the OS saves/restores only the *valid* entries, so the cost scales with
usage (Figure 14 reports the usage; Section V-C the cost).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.hashing.storage import ChunkBudget

PAGE_SIZES = ("4K", "2M", "1G")

#: Table III / Section V-A parameters.
ENTRIES_PER_SUBTABLE = 32
#: Stealing lets one subtable absorb exactly one neighbour's entries.
MAX_STEAL_FACTOR = 2
#: Bits stored per entry (chunk base pointer for a 46-bit PA, 8KB aligned).
ENTRY_BITS = 33


class L2PSubtable(ChunkBudget):
    """One (way, page size) subtable; acts as a storage chunk budget.

    Reservation succeeds when both the per-subtable limit (32 entries,
    or 64 with stealing) and the way-group limit (96 entries across the
    three page sizes) hold.
    """

    def __init__(self, group: "_WayGroup", page_size: str) -> None:
        self.group = group
        self.page_size = page_size
        self.in_use = 0
        self.peak_in_use = 0

    @property
    def capacity_alone(self) -> int:
        return ENTRIES_PER_SUBTABLE

    @property
    def capacity_with_steal(self) -> int:
        return ENTRIES_PER_SUBTABLE * MAX_STEAL_FACTOR

    def reserve(self, count: int) -> bool:
        if count < 0:
            raise ConfigurationError("cannot reserve a negative entry count")
        if self.in_use + count > self.capacity_with_steal:
            return False
        if self.group.in_use() + count > self.group.capacity():
            return False
        self.in_use += count
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        return True

    def release(self, count: int) -> None:
        if count > self.in_use:
            raise ConfigurationError(
                f"releasing {count} entries but only {self.in_use} in use"
            )
        self.in_use -= count

    @property
    def stealing(self) -> bool:
        """Whether this subtable currently uses stolen neighbour entries."""
        return self.in_use > ENTRIES_PER_SUBTABLE


class _WayGroup:
    """The three subtables of one way, sharing 96 physical entries."""

    def __init__(self) -> None:
        self.subtables: Dict[str, L2PSubtable] = {
            page_size: L2PSubtable(self, page_size) for page_size in PAGE_SIZES
        }

    def in_use(self) -> int:
        return sum(sub.in_use for sub in self.subtables.values())

    @staticmethod
    def capacity() -> int:
        return ENTRIES_PER_SUBTABLE * len(PAGE_SIZES)


class L2PTable:
    """The full per-process L2P table: ``ways`` way-groups of 96 entries."""

    def __init__(self, ways: int = 3) -> None:
        if ways < 1:
            raise ConfigurationError("L2P table needs at least one way")
        self.ways = ways
        self._groups: List[_WayGroup] = [_WayGroup() for _ in range(ways)]

    def subtable(self, way: int, page_size: str) -> L2PSubtable:
        """The chunk budget for (``way``, ``page_size``)."""
        if page_size not in PAGE_SIZES:
            raise ConfigurationError(f"unknown page size {page_size!r}")
        return self._groups[way].subtables[page_size]

    # -- reporting (Figure 14, Section V-C) --------------------------------

    def entries_used(self) -> int:
        """Valid entries right now, across all ways and page sizes."""
        return sum(group.in_use() for group in self._groups)

    def peak_entries_used(self) -> int:
        """Highest per-subtable usage ever, summed (upper bound on live peak)."""
        return sum(
            sub.peak_in_use
            for group in self._groups
            for sub in group.subtables.values()
        )

    def entries_used_for(self, page_size: str) -> int:
        return sum(group.subtables[page_size].in_use for group in self._groups)

    def total_entries(self) -> int:
        return self.ways * _WayGroup.capacity()

    def table_bits(self) -> int:
        """MMU storage: 288 entries x 33 bits = 1.16KB in the paper."""
        return self.total_entries() * ENTRY_BITS

    def usage_by_subtable(self) -> List[Tuple[int, str, int]]:
        """(way, page_size, in_use) triples for inspection."""
        return [
            (way, page_size, group.subtables[page_size].in_use)
            for way, group in enumerate(self._groups)
            for page_size in PAGE_SIZES
        ]

    def context_switch_cycles(self, cycles_per_entry: int = 4) -> int:
        """Cycles to save+restore the valid entries on a context switch.

        Only in-use entries are transferred (they cluster at the subtable
        extremes, Section V-C), once out and once in.
        """
        return 2 * self.entries_used() * cycles_per_entry

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the capacity rules of Section V-A.

        Every subtable must hold ``0 <= in_use <= 64`` entries (32 plus at
        most one stolen neighbour subtable), ``peak_in_use`` must dominate
        ``in_use``, and each way-group's three subtables must fit in its 96
        physical entries.  Raises
        :class:`~repro.common.errors.SimulationError` with structured
        context on violation.
        """
        for way, group in enumerate(self._groups):
            for page_size, sub in group.subtables.items():
                if not 0 <= sub.in_use <= sub.capacity_with_steal:
                    raise SimulationError(
                        "L2P subtable usage outside [0, 2x32]",
                        component="l2p", way=way, page_size=page_size,
                        in_use=sub.in_use, limit=sub.capacity_with_steal,
                    )
                if sub.peak_in_use < sub.in_use:
                    raise SimulationError(
                        "L2P subtable peak below current usage",
                        component="l2p", way=way, page_size=page_size,
                        in_use=sub.in_use, peak_in_use=sub.peak_in_use,
                    )
            if group.in_use() > group.capacity():
                raise SimulationError(
                    "L2P way-group exceeds its 96 physical entries",
                    component="l2p", way=way,
                    in_use=group.in_use(), capacity=group.capacity(),
                )
