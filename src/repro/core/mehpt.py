"""ME-HPT page tables: all four techniques assembled (Section IV).

:class:`MeHptPageTables` wires the generic elastic cuckoo engine into the
paper's design:

* ways live on :class:`~repro.hashing.storage.ChunkedStorage` whose chunk
  budget is the L2P subtable for that (way, page size) — technique (i),
  the **L2P table**;
* the storage starts at the smallest ladder chunk and the out-of-place
  factory moves up the ladder when the L2P budget is exhausted —
  technique (ii), **dynamically-changing chunk sizes**;
* ordinary upsizes/downsizes extend/shrink the chunked storage and rehash
  with the one-extra-bit rule — technique (iii), **in-place resizing**;
* the resize policy is per-way with the balance rule and weighted-random
  insertion — technique (iv), **per-way resizing**.

Each technique has an ablation switch (``enable_inplace``,
``enable_perway``, and the chunk ladder itself) so Figures 10 and 15 can
attribute savings to individual techniques.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.common.errors import (
    ConfigurationError,
    ContiguousAllocationError,
    L2POverflowError,
)
from repro.common.rng import DeterministicRng, make_rng
from repro.common.units import CACHE_LINE
from repro.core.chunks import ChunkLadder
from repro.core.l2p import L2PTable
from repro.faults.log import EVENT_FALLBACK, DegradationLog
from repro.faults.plan import FaultInjectedBudget, FaultPlan
from repro.ecpt.tables import (
    DEFAULT_INITIAL_SLOTS,
    DEFAULT_WAYS,
    PAGE_SIZES,
    HashedPageTableSet,
)
from repro.hashing.clustered import ClusteredHashedPageTable
from repro.hashing.cuckoo import ElasticCuckooTable, ElasticWay
from repro.hashing.hashes import HashFamily
from repro.hashing.policies import AllWayResizePolicy, PerWayResizePolicy
from repro.hashing.storage import ChunkedStorage
from repro.mem.allocator import CostModelAllocator
from repro.obs.trace import EVENT_CHUNK_TRANSITION


class MeHptPageTables(HashedPageTableSet):
    """Per-process ME-HPT page tables for 4KB, 2MB and 1GB pages.

    Parameters beyond the ECPT ones:

    chunk_ladder:
        The chunk-size ladder; ``ChunkLadder((MB,))``-style ladders
        reproduce the fixed-chunk ablations of Figure 15.
    enable_inplace / enable_perway:
        Ablation switches for Sections IV-C / IV-D.  With both off, the
        table behaves like ECPT except for chunked (discontiguous) ways.
    l2p:
        An existing :class:`L2PTable` to share (one per process); created
        internally when omitted.
    """

    def __init__(
        self,
        allocator: Optional[CostModelAllocator] = None,
        rng: Optional[DeterministicRng] = None,
        ways: int = DEFAULT_WAYS,
        initial_slots: int = DEFAULT_INITIAL_SLOTS,
        hash_seed: int = 0,
        upsize_threshold: float = 0.6,
        downsize_threshold: float = 0.2,
        rehashes_per_insert: int = 2,
        allow_downsize: bool = True,
        chunk_ladder: Optional[ChunkLadder] = None,
        enable_inplace: bool = True,
        enable_perway: bool = True,
        l2p: Optional[L2PTable] = None,
        adaptive_policy: Optional["AdaptiveChunkPolicy"] = None,
        page_sizes: Iterable[str] = PAGE_SIZES,
        fault_plan: Optional[FaultPlan] = None,
        degradation: Optional[DegradationLog] = None,
        obs=None,
    ) -> None:
        rng = make_rng(rng)
        self.allocator = allocator if allocator is not None else CostModelAllocator()
        self.ladder = chunk_ladder if chunk_ladder is not None else ChunkLadder()
        self.l2p = l2p if l2p is not None else L2PTable(ways)
        self.fault_plan = fault_plan
        self.degradation = degradation
        #: Optional repro.obs.Observability: chunk-size transitions emit
        #: ``chunk_transition`` trace events.
        self.obs = obs
        self.enable_inplace = enable_inplace
        self.enable_perway = enable_perway
        #: Optional Section V-B heuristic: fragmentation/growth-aware
        #: chunk sizing at transitions (None = the fixed ladder walk).
        self.adaptive_policy = adaptive_policy
        #: Out-of-place chunk-size transitions observed, per page size.
        self.chunk_transitions: Dict[str, int] = {}
        tables: Dict[str, ClusteredHashedPageTable] = {}
        for size_index, page_size in enumerate(page_sizes):
            self.chunk_transitions[page_size] = 0
            tables[page_size] = self._build_table(
                page_size=page_size,
                size_index=size_index,
                rng=rng,
                ways=ways,
                initial_slots=initial_slots,
                hash_seed=hash_seed,
                upsize_threshold=upsize_threshold,
                downsize_threshold=downsize_threshold,
                rehashes_per_insert=rehashes_per_insert,
                allow_downsize=allow_downsize,
            )
        super().__init__(tables, self.allocator.stats)

    # -- construction -----------------------------------------------------

    def _build_table(
        self,
        page_size: str,
        size_index: int,
        rng: DeterministicRng,
        ways: int,
        initial_slots: int,
        hash_seed: int,
        upsize_threshold: float,
        downsize_threshold: float,
        rehashes_per_insert: int,
        allow_downsize: bool,
    ) -> ClusteredHashedPageTable:
        family = HashFamily(seed=hash_seed * 31 + size_index)
        table_ref: Dict[str, ElasticCuckooTable] = {}

        def factory(way_index: int, new_slots: int) -> Optional[ChunkedStorage]:
            return self._resize_storage(
                table_ref["table"], page_size, way_index, new_slots
            )

        way_objs: List[ElasticWay] = []
        for w in range(ways):
            storage = ChunkedStorage(
                initial_slots,
                chunk_bytes=self.ladder.smallest,
                slot_bytes=CACHE_LINE,
                allocator=self.allocator,
                budget=self._budget(w, page_size),
            )
            way_objs.append(ElasticWay(w, family.function(w), storage))
        if self.enable_perway:
            policy = PerWayResizePolicy(
                upsize_threshold=upsize_threshold,
                downsize_threshold=downsize_threshold,
                min_way_slots=initial_slots,
                allow_downsize=allow_downsize,
            )
        else:
            policy = AllWayResizePolicy(
                upsize_threshold=upsize_threshold,
                downsize_threshold=downsize_threshold,
                min_way_slots=initial_slots,
                allow_downsize=allow_downsize,
            )
        table = ElasticCuckooTable(
            way_objs,
            policy,
            factory,
            rng=rng.fork(salt=100 + size_index),
            rehashes_per_insert=rehashes_per_insert,
            inplace_enabled=self.enable_inplace,
            fault_plan=self.fault_plan,
            degradation=self.degradation,
            obs=self.obs,
            obs_label=page_size,
        )
        table_ref["table"] = table
        return ClusteredHashedPageTable(page_size, table)

    def _budget(self, way_index: int, page_size: str):
        """The chunk budget for one (way, page size) — fault-wrapped if armed."""
        budget = self.l2p.subtable(way_index, page_size)
        if self.fault_plan is not None:
            return FaultInjectedBudget(budget, self.fault_plan, self.degradation)
        return budget

    def _resize_storage(
        self,
        table: ElasticCuckooTable,
        page_size: str,
        way_index: int,
        new_slots: int,
    ) -> Optional[ChunkedStorage]:
        """Build the target storage for an out-of-place resize of one way.

        Reaching this point means in-place growth was impossible (the L2P
        budget refused more chunks of the current size) or disabled, so
        pick the chunk size for the new way and try to allocate it while
        the old chunks still exist.  Returning ``None`` tells the engine
        to migrate eagerly: release the old chunks first, then call again.
        """
        way = table.ways[way_index]
        current_chunk = way.storage.chunk_bytes
        way_bytes = new_slots * CACHE_LINE
        if new_slots > way.size and table.inplace_enabled:
            # A true chunk-size transition (Section IV-B): in-place growth
            # failed, so the ladder must move up.
            if self.adaptive_policy is not None:
                at_least = self.adaptive_policy.choose(
                    way_bytes, current_chunk, recent_upsizes=way.upsizes
                )
            else:
                at_least = self.ladder.next_size(current_chunk)
            if at_least is None:
                raise L2POverflowError(
                    f"{page_size} way {way_index} needs {way_bytes} bytes but "
                    f"the chunk ladder is exhausted at {current_chunk}"
                )
        else:
            # Ablation path (in-place disabled) or a downsize: stay at the
            # current chunk size unless the way no longer fits.
            at_least = current_chunk
        chunk_bytes = self.ladder.size_for_way(way_bytes, at_least=at_least)
        while True:
            try:
                storage = ChunkedStorage(
                    new_slots,
                    chunk_bytes=chunk_bytes,
                    slot_bytes=CACHE_LINE,
                    allocator=self.allocator,
                    budget=self._budget(way_index, page_size),
                )
                break
            except ContiguousAllocationError:
                # The chunks themselves failed to allocate (the storage
                # rolled its budget reservation back atomically).  Fall
                # back to a smaller chunk size if one can still cover the
                # way — smaller contiguous requests survive higher
                # fragmentation (the paper's core argument in reverse).
                smaller = self._fallback_chunk(chunk_bytes, way_bytes)
                if smaller is None:
                    raise
                if self.degradation is not None:
                    self.degradation.record(
                        EVENT_FALLBACK, "chunk_alloc",
                        page_size=page_size, way=way_index,
                        from_chunk=chunk_bytes, to_chunk=smaller,
                    )
                chunk_bytes = smaller
            except ConfigurationError:
                # Old + new chunks do not fit the L2P budget simultaneously.
                if table.inplace_enabled:
                    # A genuine chunk transition (the rare one-off): the
                    # engine releases the old way and retries (eager move).
                    return None
                # In-place disabled (ablation): gradual out-of-place needs
                # both generations live, so escalate the chunk size until
                # they fit — exactly the Section VII-D argument for why the
                # size-reducing techniques keep chunks small.
                bigger = self.ladder.next_size(chunk_bytes)
                if bigger is None:
                    return None
                chunk_bytes = bigger
        if chunk_bytes != current_chunk:
            self.chunk_transitions[page_size] += 1
            if self.obs is not None:
                self.obs.emit(
                    EVENT_CHUNK_TRANSITION,
                    page_size=page_size, way=way_index,
                    from_chunk=current_chunk, to_chunk=chunk_bytes,
                )
        return storage

    def _fallback_chunk(self, chunk_bytes: int, way_bytes: int) -> Optional[int]:
        """Largest ladder size below ``chunk_bytes`` that still covers the way."""
        smaller = self.ladder.prev_size(chunk_bytes)
        while smaller is not None:
            needed = self.ladder.chunks_needed(way_bytes, smaller)
            if needed <= self.ladder.max_chunks_per_way:
                return smaller
            smaller = self.ladder.prev_size(smaller)
        return None

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Cuckoo-table invariants plus the L2P capacity rules."""
        super().check_invariants()
        self.l2p.check_invariants()

    # -- reporting ----------------------------------------------------------

    def chunk_bytes_per_way(self, page_size: str) -> List[int]:
        """Current chunk size of each way's storage."""
        return [
            way.storage.chunk_bytes for way in self.tables[page_size].table.ways
        ]

    def l2p_entries_used(self) -> int:
        """Valid L2P entries across every way and page size (Figure 14)."""
        return self.l2p.entries_used()

    def total_chunk_transitions(self) -> int:
        return sum(self.chunk_transitions.values())
