"""ME-HPT — the paper's contribution: memory-efficient hashed page tables.

Four techniques, each its own module:

* :mod:`repro.core.l2p` — the Logical-to-Physical table (Section IV-A):
  a small MMU-resident indirection table that lets an HPT way live in
  discontiguous chunks, with cross-page-size entry stealing (Section V-A).
* :mod:`repro.core.chunks` — dynamically-changing chunk sizes
  (Section IV-B): the 8KB → 1MB → 8MB → 64MB ladder and its transition
  arithmetic.
* :mod:`repro.core.mehpt` — the assembled page tables (in-place resizing
  and per-way resizing are configured here on the generic cuckoo engine;
  Sections IV-C and IV-D), with ablation switches for each technique.
* :mod:`repro.core.walker` — the hardware walker; the L2P access is
  overlapped with the CWC lookup (Section V-D) so it is invisible on
  page walks and only surfaces on OS-driven re-insertions.
"""

from repro.core.chunks import ChunkLadder, DEFAULT_CHUNK_LADDER
from repro.core.l2p import L2PSubtable, L2PTable
from repro.core.mehpt import MeHptPageTables
from repro.core.walker import MeHptWalker

__all__ = [
    "L2PTable",
    "L2PSubtable",
    "ChunkLadder",
    "DEFAULT_CHUNK_LADDER",
    "MeHptPageTables",
    "MeHptWalker",
]
