"""The ME-HPT hardware walker (Section V-D).

The walk path is the ECPT walker's: CWC lookup, then parallel probes of
the candidate HPT ways.  The new element is the L2P indirection — a
shift, an L2P read, and a mask (4 cycles in Table III) to turn a hash key
into a chunk-relative address.

Figure 7: the MMU performs the L2P access *concurrently* with the CWC
lookup and generates all potential chunk addresses; once the CWC decides
which probes to issue, the addresses are ready.  The L2P latency is
therefore hidden on page walks.  The only path where it is exposed is a
cuckoo re-insertion (the CWC is not consulted there), and that path is
OS-driven where a few cycles are noise — we still account for them in
``l2p_exposed_cycles`` so the claim is checkable.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.ecpt.walker import EcptWalker


class MeHptWalker(EcptWalker):
    """ECPT walker plus L2P latency modelling."""

    def __init__(
        self,
        tables,
        cache_hierarchy,
        pmd_cwc_entries: int = 16,
        pud_cwc_entries: int = 2,
        cwc_cycles: int = 4,
        l2p_cycles: int = 4,
        obs=None,
    ) -> None:
        super().__init__(
            tables,
            cache_hierarchy,
            pmd_cwc_entries=pmd_cwc_entries,
            pud_cwc_entries=pud_cwc_entries,
            cwc_cycles=cwc_cycles,
            obs=obs,
        )
        self.l2p_cycles = l2p_cycles
        #: L2P accesses fully overlapped with the CWC lookup (hidden).
        self.l2p_hidden_accesses = 0
        #: Cycles the L2P added on paths where it could not be hidden.
        self.l2p_exposed_cycles = 0

    def _extra_probe_cycles(self, vpn: int, sizes: FrozenSet[str]) -> int:
        # The L2P runs concurrently with the CWC access; the CWC round trip
        # (4 cycles) covers the shift+L2P+mask (4 cycles), so the exposed
        # extra latency on a walk is zero.
        self.l2p_hidden_accesses += 1
        return max(0, self.l2p_cycles - self.cwc_cycles)

    def reinsertion_cycles(self, kicks: int) -> int:
        """Cycles the L2P adds to ``kicks`` OS-driven cuckoo re-insertions.

        Each re-insertion recomputes a chunk address without a CWC access
        in flight, exposing the L2P latency (Section V-D, last paragraph).
        """
        exposed = kicks * self.l2p_cycles
        self.l2p_exposed_cycles += exposed
        return exposed
