"""Adaptive chunk-size selection (the paper's Section V-B future work).

    "The OS could dynamically use heuristics based on the current level
    of fragmentation and the expected final HPT way size. We consider
    this topic future work."

This module implements that heuristic.  At each chunk-size transition,
instead of stepping one rung up the ladder, the policy:

1. **predicts the final way size** from the way's growth history — a way
   that has doubled recently keeps doubling, so the predictor
   extrapolates ``growth_lookahead`` more doublings;
2. **prices each candidate chunk size** as (chunks needed for the
   predicted way) x (per-chunk allocation cycles at the *current* FMFI),
   using the measured Section III cost curve;
3. **filters for safety**: chunk sizes that can fail outright at the
   current fragmentation (64MB above 0.7 FMFI) are excluded;
4. picks the cheapest safe candidate that fits the L2P budget.

The net effect matches the paper's intuition: on a lightly fragmented
machine the policy jumps straight to large chunks (fewer, cheaper-in-
aggregate allocations); on a heavily fragmented one it stays small and
never risks an unserviceable request.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigurationError, L2POverflowError
from repro.core.chunks import ChunkLadder
from repro.mem.alloc_cost import AllocationCostModel


class AdaptiveChunkPolicy:
    """Fragmentation- and growth-aware chunk sizing.

    Parameters
    ----------
    ladder:
        The available chunk sizes and per-way budget.
    cost_model:
        The allocation cost curve (defaults to the paper's measurements).
    fmfi:
        The machine's fragmentation level; may be updated at runtime via
        :attr:`fmfi` as conditions change.
    growth_lookahead:
        Doublings to extrapolate when predicting the final way size.
    scale:
        Footprint scale of the run: costs/failure are evaluated at
        full-scale-equivalent chunk sizes, like the allocators do.
    """

    def __init__(
        self,
        ladder: Optional[ChunkLadder] = None,
        cost_model: Optional[AllocationCostModel] = None,
        fmfi: float = 0.7,
        growth_lookahead: int = 2,
        scale: int = 1,
    ) -> None:
        if growth_lookahead < 0:
            raise ConfigurationError("lookahead cannot be negative")
        self.ladder = ladder if ladder is not None else ChunkLadder()
        self.cost_model = cost_model if cost_model is not None else AllocationCostModel()
        self.fmfi = fmfi
        self.growth_lookahead = growth_lookahead
        self.scale = scale
        self.decisions: List[int] = []

    # -- prediction -----------------------------------------------------

    def predict_final_way_bytes(self, needed_bytes: int, recent_upsizes: int) -> int:
        """Extrapolate the way's final size from its growth momentum.

        A way that has already grown ``recent_upsizes`` times is likely
        mid-ramp; extrapolate up to ``growth_lookahead`` further
        doublings, tempered for ways with little history.
        """
        momentum = min(self.growth_lookahead, max(0, recent_upsizes - 1))
        return needed_bytes << momentum

    # -- selection ---------------------------------------------------------

    def choose(
        self,
        needed_bytes: int,
        current_chunk: int,
        recent_upsizes: int = 0,
    ) -> int:
        """Pick the chunk size for a transition covering ``needed_bytes``.

        Returns a ladder size >= the next rung above ``current_chunk``
        (a transition never shrinks chunks).  Raises
        :class:`L2POverflowError` when no safe size can cover the way.
        """
        floor = self.ladder.next_size(current_chunk)
        if floor is None:
            raise L2POverflowError(
                f"no chunk size above {current_chunk} on the ladder"
            )
        predicted = self.predict_final_way_bytes(needed_bytes, recent_upsizes)
        best_size = None
        best_cost = None
        for size in self.ladder.sizes:
            if size < floor:
                continue
            if self.ladder.chunks_needed(needed_bytes, size) > self.ladder.max_chunks_per_way:
                continue
            if not self.cost_model.can_allocate(size * self.scale, self.fmfi):
                continue  # this size can fail outright at this fragmentation
            chunks = self.ladder.chunks_needed(predicted, size)
            if chunks > self.ladder.max_chunks_per_way:
                # Under-sized for the predicted growth: price in the next
                # transition's rehash by doubling the effective cost.
                penalty = 2.0
                chunks = self.ladder.max_chunks_per_way
            else:
                penalty = 1.0
            cost = chunks * self.cost_model.cycles(size * self.scale, self.fmfi) * penalty
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_size = size
        if best_size is None:
            raise L2POverflowError(
                f"no safe chunk size covers a {needed_bytes}-byte way "
                f"at FMFI {self.fmfi:.2f}"
            )
        self.decisions.append(best_size)
        return best_size
