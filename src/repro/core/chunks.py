"""Dynamically-changing chunk sizes (Section IV-B).

An ME-HPT way is a set of equal-size chunks.  Small applications use
small chunks; when a way outgrows what its L2P subtable can point to at
the current chunk size, the OS transitions to the next larger chunk size:
it allocates fresh (fewer, larger) chunks, rehashes every entry across,
and frees the old chunks — the only out-of-place resize in ME-HPT.

The paper chooses the ladder 8KB, 1MB, 8MB, 64MB (Section V-B); its
applications only ever need the first two.  :class:`ChunkLadder`
encapsulates the ladder and the transition arithmetic so experiments can
swap ladders (e.g. the 1MB-only ablation of Figure 15).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, L2POverflowError
from repro.common.units import KB, MB, is_power_of_two

#: The paper's chunk sizes, smallest first.
DEFAULT_CHUNK_SIZES: Tuple[int, ...] = (8 * KB, 1 * MB, 8 * MB, 64 * MB)


class ChunkLadder:
    """An ordered set of chunk sizes with transition arithmetic.

    Parameters
    ----------
    sizes:
        Chunk sizes in bytes, strictly increasing powers of two.
    max_chunks_per_way:
        How many chunks of one size a way may use before transitioning —
        the L2P subtable capacity *with stealing* (64 in the paper).
    """

    def __init__(
        self,
        sizes: Sequence[int] = DEFAULT_CHUNK_SIZES,
        max_chunks_per_way: int = 64,
    ) -> None:
        if not sizes:
            raise ConfigurationError("chunk ladder cannot be empty")
        ordered = list(sizes)
        if ordered != sorted(set(ordered)):
            raise ConfigurationError("chunk sizes must be strictly increasing")
        for size in ordered:
            if not is_power_of_two(size):
                raise ConfigurationError(f"chunk size {size} is not a power of two")
        self.sizes: List[int] = ordered
        self.max_chunks_per_way = max_chunks_per_way

    @property
    def smallest(self) -> int:
        return self.sizes[0]

    @property
    def largest(self) -> int:
        return self.sizes[-1]

    def next_size(self, current: int) -> Optional[int]:
        """The ladder size after ``current``, or None at the top."""
        try:
            index = self.sizes.index(current)
        except ValueError:
            raise ConfigurationError(f"{current} is not a ladder size") from None
        if index + 1 >= len(self.sizes):
            return None
        return self.sizes[index + 1]

    def prev_size(self, current: int) -> Optional[int]:
        """The ladder size before ``current``, or None at the bottom."""
        try:
            index = self.sizes.index(current)
        except ValueError:
            raise ConfigurationError(f"{current} is not a ladder size") from None
        if index == 0:
            return None
        return self.sizes[index - 1]

    def chunks_needed(self, way_bytes: int, chunk_bytes: int) -> int:
        """Chunks of ``chunk_bytes`` required to hold a way of ``way_bytes``."""
        return max(1, -(-way_bytes // chunk_bytes))

    def max_way_bytes(self, chunk_bytes: int) -> int:
        """Largest way one chunk size supports (Table II, column 2)."""
        return chunk_bytes * self.max_chunks_per_way

    def size_for_way(self, way_bytes: int, at_least: Optional[int] = None) -> int:
        """Smallest ladder size (>= ``at_least``) whose budget covers a way.

        Raises :class:`L2POverflowError` when even the largest chunk size
        cannot cover ``way_bytes`` within ``max_chunks_per_way`` chunks.
        """
        for size in self.sizes:
            if at_least is not None and size < at_least:
                continue
            if self.chunks_needed(way_bytes, size) <= self.max_chunks_per_way:
                return size
        raise L2POverflowError(
            f"a {way_bytes}-byte way exceeds the chunk ladder "
            f"(largest: {self.largest} x {self.max_chunks_per_way})"
        )


#: Shared default instance.
DEFAULT_CHUNK_LADDER = ChunkLadder()
