"""Resize and insertion policies for elastic cuckoo tables.

Two policies are modelled, matching the paper's two designs:

* :class:`AllWayResizePolicy` — the ECPT baseline (Section II-B): one
  occupancy counter for the whole table; crossing the upsize threshold
  doubles *every* way, crossing the downsize threshold halves every way.
  Insertions pick a way uniformly at random.

* :class:`PerWayResizePolicy` — ME-HPT (Section IV-D): per-way occupancy
  counters; a way resizes alone, subject to the balance rule ("the
  candidate way cannot already be larger than another way" on an upsize,
  nor smaller on a downsize, keeping sizes within 2x of each other).
  Insertions are weighted-random with P(way i) = FREE_i / FREE_total, and
  a way that is larger than others and already at the upsize threshold
  gets weight zero.

Both use the occupancy thresholds of Table III: upsize at 0.6, downsize
at 0.2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hashing.cuckoo import ElasticCuckooTable, ElasticWay

#: Table III occupancy thresholds.
DEFAULT_UPSIZE_THRESHOLD = 0.6
DEFAULT_DOWNSIZE_THRESHOLD = 0.2


class ResizePolicy:
    """Base policy: thresholds plus the three hooks the table calls."""

    def __init__(
        self,
        upsize_threshold: float = DEFAULT_UPSIZE_THRESHOLD,
        downsize_threshold: float = DEFAULT_DOWNSIZE_THRESHOLD,
        min_way_slots: int = 128,
        allow_downsize: bool = True,
    ) -> None:
        if not 0.0 < upsize_threshold <= 1.0:
            raise ConfigurationError(f"bad upsize threshold {upsize_threshold}")
        if not 0.0 <= downsize_threshold < upsize_threshold:
            raise ConfigurationError(
                f"downsize threshold {downsize_threshold} must be below "
                f"upsize threshold {upsize_threshold}"
            )
        self.upsize_threshold = upsize_threshold
        self.downsize_threshold = downsize_threshold
        self.min_way_slots = min_way_slots
        self.allow_downsize = allow_downsize

    def choose_insert_way(self, table: "ElasticCuckooTable") -> int:
        raise NotImplementedError

    def check_resize(self, table: "ElasticCuckooTable") -> None:
        raise NotImplementedError

    def emergency_resize(self, table: "ElasticCuckooTable") -> None:
        """Grow the table when a cuckoo kick chain exceeds its bound."""
        raise NotImplementedError


class AllWayResizePolicy(ResizePolicy):
    """ECPT policy: uniform insertion, all ways resize together."""

    def choose_insert_way(self, table: "ElasticCuckooTable") -> int:
        return table.rng.randint(0, table.num_ways - 1)

    def check_resize(self, table: "ElasticCuckooTable") -> None:
        occupancy = table.occupancy()
        if occupancy >= self.upsize_threshold:
            self._upsize_all(table)
        elif (
            self.allow_downsize
            and occupancy <= self.downsize_threshold
            and all(way.size > self.min_way_slots for way in table.ways)
            and not table.resizing()
        ):
            self._downsize_all(table)

    def emergency_resize(self, table: "ElasticCuckooTable") -> None:
        self._upsize_all(table)

    @staticmethod
    def _upsize_all(table: "ElasticCuckooTable") -> None:
        # All ways resize together; if a later way's allocation fails,
        # roll back the ways already started so the table is not left
        # straddling two generations (atomicity of the group resize).
        started = []
        try:
            for way in table.ways:
                table.start_upsize(way)
                started.append(way)
        except Exception:
            for way in reversed(started):
                table.rollback_resize(way)
            raise

    @staticmethod
    def _downsize_all(table: "ElasticCuckooTable") -> None:
        started = []
        try:
            for way in table.ways:
                table.start_downsize(way)
                started.append(way)
        except Exception:
            for way in reversed(started):
                table.rollback_resize(way)
            raise


class PerWayResizePolicy(ResizePolicy):
    """ME-HPT policy: weighted-random insertion, one way resizes at a time."""

    def choose_insert_way(self, table: "ElasticCuckooTable") -> int:
        weights = self.insertion_weights(table)
        if all(weight <= 0 for weight in weights):
            # Every way is full or blocked; fall back to uniform choice and
            # let the kick chain / emergency resize sort it out.
            return table.rng.randint(0, table.num_ways - 1)
        return table.rng.weighted_index(weights)

    def insertion_weights(self, table: "ElasticCuckooTable") -> list:
        """FREE_i / FREE_total weights with the paper's zero-weight rule."""
        sizes = [way.size for way in table.ways]
        weights = []
        for way in table.ways:
            free = max(0, way.size - way.count)
            blocked = (
                way.size > min(s for i, s in enumerate(sizes) if i != way.index)
                and way.occupancy() >= self.upsize_threshold
            )
            weights.append(0.0 if blocked else float(free))
        return weights

    def check_resize(self, table: "ElasticCuckooTable") -> None:
        for way in table.ways:
            if way.occupancy() >= self.upsize_threshold and self._may_upsize(table, way):
                table.start_upsize(way)
        if not self.allow_downsize:
            return
        for way in table.ways:
            if (
                way.occupancy() <= self.downsize_threshold
                and way.size > self.min_way_slots
                and self._may_downsize(table, way)
                and not way.resizing
            ):
                table.start_downsize(way)

    def emergency_resize(self, table: "ElasticCuckooTable") -> None:
        # Grow the fullest way that the balance rule permits; if the rule
        # blocks everything (all equal sizes means nothing is blocked, so
        # this only happens transiently), grow the smallest way.
        candidates = [w for w in table.ways if self._may_upsize(table, w)]
        if not candidates:
            candidates = sorted(table.ways, key=lambda w: w.size)[:1]
        fullest = max(candidates, key=lambda w: w.occupancy())
        table.start_upsize(fullest)

    @staticmethod
    def _may_upsize(table: "ElasticCuckooTable", way: "ElasticWay") -> bool:
        """Balance rule: a way may not upsize past a smaller sibling."""
        return all(way.size <= other.size for other in table.ways if other is not way)

    @staticmethod
    def _may_downsize(table: "ElasticCuckooTable", way: "ElasticWay") -> bool:
        """Balance rule: a way may not downsize below a larger sibling."""
        return all(way.size >= other.size for other in table.ways if other is not way)
