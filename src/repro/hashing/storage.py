"""Slot storage for cuckoo ways: contiguous regions and chunked regions.

The paper's central observation is that a conventional HPT way must live
in one *contiguous* physical region (Figure 2a), while an ME-HPT way is a
collection of fixed-size *chunks* reached through the L2P table
(Figure 2b).  This module models both layouts behind one interface so the
elastic cuckoo table is oblivious to which one it sits on:

* :class:`ContiguousStorage` — one allocation per way; growing is
  impossible in place, forcing out-of-place resizes (the ECPT baseline).
* :class:`ChunkedStorage` — a list of chunks drawn from a
  :class:`ChunkBudget` (the L2P subtable); growing in place appends
  chunks, shrinking releases them, and exhausting the budget signals a
  chunk-size transition.

Storages charge their allocations to an *allocator* object (duck-typed;
see :mod:`repro.mem.allocator`) which models allocation cycle costs and
failure under fragmentation.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.units import is_power_of_two

#: A slot holds a (key, value) tuple or None.
Slot = Optional[Tuple[int, Any]]

#: Storage instances get disjoint synthetic address ranges so the cache
#: model sees distinct lines for distinct physical locations.
_STORAGE_IDS = itertools.count(1)


class ChunkBudget:
    """Interface limiting how many chunks a chunked storage may hold.

    The ME-HPT L2P subtable (:class:`repro.core.l2p.L2PSubtable`)
    implements this; generic users (e.g. the key-value store) can use
    :class:`UnlimitedChunkBudget`.
    """

    def reserve(self, count: int) -> bool:
        """Try to reserve ``count`` more chunk pointers; return success."""
        raise NotImplementedError

    def release(self, count: int) -> None:
        """Return ``count`` chunk pointers to the budget."""
        raise NotImplementedError


class UnlimitedChunkBudget(ChunkBudget):
    """A budget that never runs out (still counts usage for reporting)."""

    def __init__(self) -> None:
        self.in_use = 0

    def reserve(self, count: int) -> bool:
        self.in_use += count
        return True

    def release(self, count: int) -> None:
        if count > self.in_use:
            raise ValueError("releasing more chunks than reserved")
        self.in_use -= count


class _NullAllocator:
    """Allocator used when no cost/capacity modelling is wanted."""

    def alloc(self, nbytes: int) -> int:
        return nbytes

    def free(self, handle: int) -> None:
        pass


NULL_ALLOCATOR = _NullAllocator()


class Storage:
    """Abstract slot array of a cuckoo way.

    Concrete classes define where the slots physically live; the table
    only reads/writes logical slot indices.  ``size_slots`` is the logical
    capacity; during an in-place downsize the physical array may be larger
    until the resize completes and :meth:`shrink_to` is called.
    """

    slot_bytes: int

    def get(self, index: int) -> Slot:
        raise NotImplementedError

    def put(self, index: int, item: Tuple[int, Any]) -> None:
        raise NotImplementedError

    def clear(self, index: int) -> None:
        raise NotImplementedError

    @property
    def size_slots(self) -> int:
        raise NotImplementedError

    def extend_to(self, new_slots: int) -> bool:
        """Grow in place to ``new_slots``; return False if unsupported."""
        raise NotImplementedError

    def shrink_to(self, new_slots: int) -> None:
        """Release physical space above ``new_slots`` (entries must be gone)."""
        raise NotImplementedError

    def total_bytes(self) -> int:
        """Physical bytes currently backing this storage."""
        raise NotImplementedError

    def max_contiguous_bytes(self) -> int:
        """Largest single contiguous allocation this storage ever made."""
        raise NotImplementedError

    def release(self) -> None:
        """Free all physical memory backing this storage."""
        raise NotImplementedError

    def line_addr(self, index: int) -> int:
        """Synthetic cache-line address of slot ``index``.

        Each slot is one cache line (64B clustered entry); storages claim
        disjoint address ranges so the cache model distinguishes them.
        """
        return self._line_base + index

    def line_addr_array(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`line_addr`: the same affine map over an array."""
        return np.int64(self._line_base) + np.asarray(indices, dtype=np.int64)

    def placements(self) -> List[Tuple[int, int, int, Any]]:
        """Physical placement units as ``(base_line, n_lines, nbytes, handle)``.

        One tuple per independently-allocated region — the whole way for
        contiguous storage, one per chunk for chunked storage.  The NUMA
        machine model homes, replicates, and migrates page-table memory
        per unit; released storage reports no placements.
        """
        return []


class ContiguousStorage(Storage):
    """One contiguous allocation per way — the ECPT layout.

    The whole way is a single region of ``slots * slot_bytes`` bytes,
    allocated in one shot.  It cannot grow in place: resizing a way built
    on contiguous storage must allocate a fresh (double-sized) region and
    migrate, which is exactly the ECPT behaviour the paper improves on.
    """

    def __init__(self, slots: int, slot_bytes: int = 64, allocator: Any = None) -> None:
        if not is_power_of_two(slots):
            raise ConfigurationError(f"way size {slots} must be a power of two")
        self.slot_bytes = slot_bytes
        self._allocator = allocator if allocator is not None else NULL_ALLOCATOR
        self._slots: List[Slot] = [None] * slots
        self._handle = self._allocator.alloc(slots * slot_bytes)
        self._released = False
        self._line_base = next(_STORAGE_IDS) << 34

    def get(self, index: int) -> Slot:
        return self._slots[index]

    def put(self, index: int, item: Tuple[int, Any]) -> None:
        self._slots[index] = item

    def clear(self, index: int) -> None:
        self._slots[index] = None

    @property
    def size_slots(self) -> int:
        return len(self._slots)

    def extend_to(self, new_slots: int) -> bool:
        return False

    def shrink_to(self, new_slots: int) -> None:
        raise ConfigurationError("contiguous storage cannot shrink in place")

    def total_bytes(self) -> int:
        return 0 if self._released else len(self._slots) * self.slot_bytes

    def max_contiguous_bytes(self) -> int:
        return len(self._slots) * self.slot_bytes

    def release(self) -> None:
        if not self._released:
            self._allocator.free(self._handle)
            self._released = True
            self._slots = []

    def placements(self) -> List[Tuple[int, int, int, Any]]:
        """The single contiguous region backing the whole way."""
        if self._released:
            return []
        nbytes = len(self._slots) * self.slot_bytes
        return [(self._line_base, len(self._slots), nbytes, self._handle)]

    def check_invariants(self) -> None:
        """Verify the storage's structural invariants."""
        if self._released:
            if self._slots:
                raise SimulationError(
                    "released contiguous storage still holds slots",
                    component="contiguous_storage", slots=len(self._slots),
                )
            return
        if not is_power_of_two(len(self._slots)):
            raise SimulationError(
                "contiguous storage size is not a power of two",
                component="contiguous_storage", slots=len(self._slots),
            )


class ChunkedStorage(Storage):
    """A way made of fixed-size chunks behind a chunk budget — the ME-HPT layout.

    Logical slot ``i`` lives in chunk ``i // slots_per_chunk`` at offset
    ``i % slots_per_chunk`` — the divide/modulo of Figure 2b (a shift and a
    mask in hardware, since the chunk size is a power of two).

    A brand-new way may occupy only part of its first chunk (Figure 3a:
    a 4KB way inside an 8KB chunk), so ``size_slots`` may be smaller than
    the allocated chunk space.  :meth:`extend_to` first fills spare space
    in existing chunks, then reserves more chunk pointers from the budget;
    when the budget refuses, the caller must transition to a bigger chunk
    size with a fresh :class:`ChunkedStorage`.
    """

    def __init__(
        self,
        slots: int,
        chunk_bytes: int,
        slot_bytes: int = 64,
        allocator: Any = None,
        budget: Optional[ChunkBudget] = None,
    ) -> None:
        if not is_power_of_two(slots):
            raise ConfigurationError(f"way size {slots} must be a power of two")
        if not is_power_of_two(chunk_bytes):
            raise ConfigurationError(f"chunk size {chunk_bytes} must be a power of two")
        if chunk_bytes % slot_bytes != 0:
            raise ConfigurationError("chunk size must be a multiple of the slot size")
        self.slot_bytes = slot_bytes
        self.chunk_bytes = chunk_bytes
        self.slots_per_chunk = chunk_bytes // slot_bytes
        self._allocator = allocator if allocator is not None else NULL_ALLOCATOR
        self._budget = budget if budget is not None else UnlimitedChunkBudget()
        self._size_slots = slots
        self._chunks: List[List[Slot]] = []
        self._handles: List[Any] = []
        self._line_base = next(_STORAGE_IDS) << 34
        needed = self._chunks_for(slots)
        if not self._budget.reserve(needed):
            raise ConfigurationError(
                f"chunk budget cannot cover initial way of {slots} slots"
            )
        self._alloc_chunks(needed)
        self._released = False

    def _chunks_for(self, slots: int) -> int:
        return max(1, -(-slots // self.slots_per_chunk))  # ceil division

    def _alloc_chunk(self) -> None:
        self._handles.append(self._allocator.alloc(self.chunk_bytes))
        self._chunks.append([None] * self.slots_per_chunk)

    def _alloc_chunks(self, count: int) -> None:
        """Allocate ``count`` chunks atomically.

        If the allocator fails mid-batch, the chunks already obtained are
        freed and the whole budget reservation for the batch is released
        before the failure propagates, so the storage (and the L2P
        subtable behind the budget) is exactly as it was.
        """
        done = 0
        try:
            for _ in range(count):
                self._alloc_chunk()
                done += 1
        except Exception:
            for _ in range(done):
                self._chunks.pop()
                self._allocator.free(self._handles.pop())
            self._budget.release(count)
            raise

    def get(self, index: int) -> Slot:
        return self._chunks[index // self.slots_per_chunk][index % self.slots_per_chunk]

    def put(self, index: int, item: Tuple[int, Any]) -> None:
        self._chunks[index // self.slots_per_chunk][index % self.slots_per_chunk] = item

    def clear(self, index: int) -> None:
        self._chunks[index // self.slots_per_chunk][index % self.slots_per_chunk] = None

    @property
    def size_slots(self) -> int:
        return self._size_slots

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    def extend_to(self, new_slots: int) -> bool:
        if new_slots < self._size_slots:
            raise ConfigurationError("extend_to cannot shrink; use shrink_to")
        have = len(self._chunks)
        need = self._chunks_for(new_slots)
        extra = need - have
        if extra > 0:
            if not self._budget.reserve(extra):
                return False
            self._alloc_chunks(extra)
        self._size_slots = new_slots
        return True

    def shrink_to(self, new_slots: int) -> None:
        if new_slots > self._size_slots:
            raise ConfigurationError("shrink_to cannot grow; use extend_to")
        need = self._chunks_for(new_slots)
        drop = len(self._chunks) - need
        if drop > 0:
            for _ in range(drop):
                self._chunks.pop()
                self._allocator.free(self._handles.pop())
            self._budget.release(drop)
        self._size_slots = new_slots

    def total_bytes(self) -> int:
        return 0 if self._released else len(self._chunks) * self.chunk_bytes

    def max_contiguous_bytes(self) -> int:
        return self.chunk_bytes

    def release(self) -> None:
        if not self._released:
            for handle in self._handles:
                self._allocator.free(handle)
            self._budget.release(len(self._chunks))
            self._chunks = []
            self._handles = []
            self._released = True

    def placements(self) -> List[Tuple[int, int, int, Any]]:
        """One placement unit per allocated chunk."""
        if self._released:
            return []
        return [
            (
                self._line_base + i * self.slots_per_chunk,
                self.slots_per_chunk,
                self.chunk_bytes,
                self._handles[i],
            )
            for i in range(len(self._chunks))
        ]

    def check_invariants(self) -> None:
        """Verify the storage's structural invariants.

        Checked: one handle per chunk, every chunk exactly
        ``slots_per_chunk`` slots, enough chunks allocated to cover
        ``size_slots``, and (when the budget exposes ``in_use``) at
        least this storage's chunks reserved against the budget.  The
        physical array may legitimately exceed ``size_slots`` — a new
        way inside a larger chunk, or an in-place downsize before
        :meth:`shrink_to` — so no upper bound is enforced.
        """
        if self._released:
            if self._chunks or self._handles:
                raise SimulationError(
                    "released chunked storage still holds chunks",
                    component="chunked_storage", chunks=len(self._chunks),
                )
            return
        if len(self._chunks) != len(self._handles):
            raise SimulationError(
                "chunk/handle count mismatch",
                component="chunked_storage",
                chunks=len(self._chunks), handles=len(self._handles),
            )
        for i, chunk in enumerate(self._chunks):
            if len(chunk) != self.slots_per_chunk:
                raise SimulationError(
                    "chunk has wrong slot count",
                    component="chunked_storage", chunk_index=i,
                    have=len(chunk), want=self.slots_per_chunk,
                )
        if self._chunks_for(self._size_slots) > len(self._chunks):
            raise SimulationError(
                "not enough chunks to cover the logical size",
                component="chunked_storage",
                size_slots=self._size_slots, chunks=len(self._chunks),
                slots_per_chunk=self.slots_per_chunk,
            )
        in_use = getattr(self._budget, "in_use", None)
        if in_use is not None and in_use < len(self._chunks):
            raise SimulationError(
                "chunk budget accounts fewer chunks than allocated",
                component="chunked_storage",
                budget_in_use=in_use, chunks=len(self._chunks),
            )
