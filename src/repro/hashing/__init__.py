"""Generic hashing substrate: hash families, storages, elastic cuckoo tables.

This package implements the hash-table machinery that both the ECPT
baseline and the ME-HPT contribution are built on, exactly as the paper
factors it (Sections II-B and IV):

* :mod:`repro.hashing.hashes` — CRC and 64-bit-mix hash families, one
  independent function per cuckoo way.
* :mod:`repro.hashing.storage` — slot storage: contiguous regions (the
  ECPT layout that needs one large allocation per way) and chunked regions
  (the ME-HPT layout behind an L2P-style chunk budget).
* :mod:`repro.hashing.cuckoo` — the W-way elastic cuckoo table with
  gradual resizing via rehash pointers, supporting out-of-place resizes
  (ECPT) and in-place resizes with the one-extra-hash-bit rule (ME-HPT).
* :mod:`repro.hashing.policies` — when/what to resize: all-way (ECPT) or
  per-way with the balance rule and weighted-random insertion (ME-HPT).

The same machinery also backs the Section VIII generalisations in
:mod:`repro.applications` (key-value store, coherence directory).
"""

from repro.hashing.cuckoo import ElasticCuckooTable, ElasticWay, TableStats
from repro.hashing.hashes import HashFamily, crc32c, mix64
from repro.hashing.policies import AllWayResizePolicy, PerWayResizePolicy, ResizePolicy
from repro.hashing.storage import (
    ChunkBudget,
    ChunkedStorage,
    ContiguousStorage,
    Storage,
    UnlimitedChunkBudget,
)

__all__ = [
    "HashFamily",
    "crc32c",
    "mix64",
    "Storage",
    "ContiguousStorage",
    "ChunkedStorage",
    "ChunkBudget",
    "UnlimitedChunkBudget",
    "ElasticCuckooTable",
    "ElasticWay",
    "TableStats",
    "ResizePolicy",
    "AllWayResizePolicy",
    "PerWayResizePolicy",
]
