"""Hash families for cuckoo ways.

The paper's hardware uses CRC units as the per-way hash functions
(Table III: "Hash functions: CRC, latency 2 cycles").  We provide a
table-driven CRC-32C implementation for fidelity, and a seeded 64-bit
finaliser (splitmix64-style) as the default because it is several times
faster in pure Python while having the same independence properties the
cuckoo analysis needs.

A :class:`HashFamily` hands out one independent function per way; the
elastic resizing scheme requires that a way keep the *same* function
across resizes and only widen/narrow the index mask (Section IV-C).
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

_MASK64 = (1 << 64) - 1

# ---------------------------------------------------------------------------
# CRC-32C (Castagnoli), table-driven.
# ---------------------------------------------------------------------------

_CRC32C_POLY = 0x82F63B78  # reversed Castagnoli polynomial


def _build_crc_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC32C_POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_CRC_TABLE = _build_crc_table()
_CRC_TABLE_NP = np.array(_CRC_TABLE, dtype=np.uint32)


def crc32c(value: int, seed: int = 0) -> int:
    """Return the CRC-32C of the 8-byte little-endian encoding of ``value``.

    ``seed`` perturbs the initial CRC state so that different ways get
    independent functions from the same hardware unit, as real designs do
    by seeding the CRC register.
    """
    crc = (seed ^ 0xFFFFFFFF) & 0xFFFFFFFF
    v = value & _MASK64
    for _ in range(8):
        crc = (crc >> 8) ^ _CRC_TABLE[(crc ^ (v & 0xFF)) & 0xFF]
        v >>= 8
    return crc ^ 0xFFFFFFFF


def crc32c_array(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`crc32c` over a non-negative integer array.

    Element ``i`` equals ``crc32c(int(values[i]), seed)`` exactly: the
    same table-driven byte loop, run on uint32 lanes.  The vectorized
    walk engine uses this to probe cuckoo ways configured with the
    paper-faithful CRC hash family.
    """
    v = values.astype(np.uint64)
    crc = np.full(v.shape, (seed ^ 0xFFFFFFFF) & 0xFFFFFFFF, dtype=np.uint32)
    for _ in range(8):
        byte = (v & np.uint64(0xFF)).astype(np.uint32)
        crc = (crc >> np.uint32(8)) ^ _CRC_TABLE_NP[(crc ^ byte) & np.uint32(0xFF)]
        v = v >> np.uint64(8)
    return crc ^ np.uint32(0xFFFFFFFF)


# ---------------------------------------------------------------------------
# splitmix64-style finaliser.
# ---------------------------------------------------------------------------


def mix64(value: int, seed: int = 0) -> int:
    """Return a 64-bit mix of ``value`` and ``seed``.

    This is the splitmix64 finaliser, a bijective mixer with full
    avalanche; with distinct seeds it yields effectively independent hash
    functions, which is what cuckoo hashing requires of its ways.
    """
    z = (value + seed * 0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def mix64_array(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`mix64` over a non-negative integer array.

    Element ``i`` of the result equals ``mix64(int(values[i]), seed)``
    exactly (uint64 arithmetic wraps mod 2**64 just like the masked
    scalar); the batched THP sizer relies on this bit-identity.
    """
    offset = np.uint64((seed * 0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15) & _MASK64)
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64) + offset
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


class HashFamily:
    """A family of independent hash functions, one per cuckoo way.

    Parameters
    ----------
    seed:
        Family seed; two families with different seeds are independent.
    kind:
        ``"mix64"`` (default, fast) or ``"crc32c"`` (paper-faithful
        hardware CRC).  Both are exposed so tests can cross-check that the
        system behaviour does not depend on the specific function.
    """

    def __init__(self, seed: int = 0, kind: str = "mix64") -> None:
        if kind not in ("mix64", "crc32c"):
            raise ValueError(f"unknown hash kind {kind!r}")
        self.seed = seed
        self.kind = kind

    def function(self, way: int) -> Callable[[int], int]:
        """Return the hash function for ``way`` (a closure over the seed).

        The returned callable carries ``kind`` and ``seed`` attributes so
        :func:`hash_array` can evaluate the same function over a whole
        numpy array bit-exactly.
        """
        way_seed = mix64(self.seed * 1000003 + way + 1)
        if self.kind == "crc32c":
            def crc_fn(key: int, _seed: int = way_seed & 0xFFFFFFFF) -> int:
                low = crc32c(key, _seed)
                high = crc32c(key ^ 0xA5A5A5A5A5A5A5A5, _seed ^ 0x5A5A5A5A)
                return (high << 32) | low

            crc_fn.kind = "crc32c"
            crc_fn.seed = way_seed & 0xFFFFFFFF
            return crc_fn

        def mix_fn(key: int, _seed: int = way_seed) -> int:
            return mix64(key, _seed)

        mix_fn.kind = "mix64"
        mix_fn.seed = way_seed
        return mix_fn

    def functions(self, ways: int) -> List[Callable[[int], int]]:
        """Return hash functions for ``ways`` consecutive ways."""
        return [self.function(w) for w in range(ways)]


def hash_array(fn: Callable[[int], int], values: np.ndarray) -> np.ndarray:
    """Evaluate a :meth:`HashFamily.function` closure over an array.

    Bit-identical to calling ``fn`` element-wise (uint64 result array);
    falls back to a Python loop for callables without the ``kind``/
    ``seed`` attributes, so any ``int -> int`` hash still works.
    """
    kind = getattr(fn, "kind", None)
    if kind == "mix64":
        return mix64_array(values, fn.seed)
    if kind == "crc32c":
        seed = fn.seed
        low = crc32c_array(values, seed).astype(np.uint64)
        flipped = values.astype(np.uint64) ^ np.uint64(0xA5A5A5A5A5A5A5A5)
        high = crc32c_array(flipped, seed ^ 0x5A5A5A5A).astype(np.uint64)
        return (high << np.uint64(32)) | low
    return np.fromiter(
        (fn(int(v)) for v in values.tolist()), dtype=np.uint64, count=values.size
    )
