"""Page-table-entry clustering over an elastic cuckoo table.

Following Yaniv and Tsafrir ("Hash, Don't Cache the Page Table") — and the
ECPT design the paper baselines on — each HPT slot is one 64-byte cache
line holding 8 page-table entries for 8 *contiguous* virtual pages, with
the hash tag compacted into the line.  Clustering restores spatial
locality (one line serves 8 neighbouring pages) and amortises the tag.

:class:`ClusteredHashedPageTable` implements one page size.  Keys into the
underlying cuckoo table are *block numbers* (page number >> 3); values are
8-entry PPN lists.  Both the ECPT baseline and ME-HPT instantiate this
class — they differ only in the storage layout and resize policy of the
cuckoo table underneath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.hashing.cuckoo import ElasticCuckooTable
from repro.hashing.hashes import hash_array

#: log2 of extra page-number bits per page size relative to 4KB pages.
PAGE_SHIFT = {"4K": 0, "2M": 9, "1G": 18}

#: Pages clustered per HPT slot (8 PTEs per 64B line).
PAGES_PER_BLOCK = 8
_BLOCK_SHIFT = 3
_BLOCK_MASK = PAGES_PER_BLOCK - 1


@dataclass
class MapResult:
    """Outcome of mapping one page."""

    new_block: bool  # a new HPT line was inserted (cuckoo insertion)
    kicks: int       # cuckoo re-insertions the insertion caused


class ClusteredHashedPageTable:
    """A hashed page table for one page size, with entry clustering.

    ``vpn`` arguments are always 4KB-granular virtual page numbers; the
    table converts to its own page granularity internally, so the kernel
    can address every organization uniformly.
    """

    def __init__(self, page_size: str, table: ElasticCuckooTable) -> None:
        if page_size not in PAGE_SHIFT:
            raise ConfigurationError(f"unknown page size {page_size!r}")
        self.page_size = page_size
        self.table = table
        self.mapped_pages = 0
        self.peak_bytes = table.total_bytes()

    # -- address math ------------------------------------------------------

    def _page_number(self, vpn: int) -> int:
        return vpn >> PAGE_SHIFT[self.page_size]

    def _split(self, vpn: int):
        page = self._page_number(vpn)
        return page >> _BLOCK_SHIFT, page & _BLOCK_MASK

    def aligned(self, vpn: int) -> bool:
        """Whether ``vpn`` is aligned to this table's page size."""
        return vpn & ((1 << PAGE_SHIFT[self.page_size]) - 1) == 0

    # -- mapping ------------------------------------------------------------

    def map(self, vpn: int, ppn: int) -> MapResult:
        """Map the page containing ``vpn`` to ``ppn``."""
        if not self.aligned(vpn):
            raise ConfigurationError(
                f"vpn {vpn:#x} is not {self.page_size}-aligned"
            )
        block, sub = self._split(vpn)
        entries = self.table.lookup(block)
        if entries is not None:
            if entries[sub] is None:
                self.mapped_pages += 1
            entries[sub] = ppn
            return MapResult(new_block=False, kicks=0)
        entries = [None] * PAGES_PER_BLOCK
        entries[sub] = ppn
        kicks = self.table.insert(block, entries)
        self.mapped_pages += 1
        self._track_peak()
        return MapResult(new_block=True, kicks=kicks)

    def unmap(self, vpn: int) -> bool:
        """Remove the mapping for the page containing ``vpn``."""
        block, sub = self._split(vpn)
        entries = self.table.lookup(block)
        if entries is None or entries[sub] is None:
            return False
        entries[sub] = None
        self.mapped_pages -= 1
        if all(e is None for e in entries):
            self.table.delete(block)
        return True

    # -- translation ---------------------------------------------------------

    def translate(self, vpn: int) -> Optional[int]:
        """Return the PPN mapping the page containing ``vpn``, or None."""
        block, sub = self._split(vpn)
        entries = self.table.lookup(block)
        if entries is None:
            return None
        return entries[sub]

    def probe_line_addrs(self, vpn: int) -> List[int]:
        """Cache-line addresses a hardware lookup probes: one per way.

        The rehash-pointer comparison selects old vs new location per way
        (Section II-B), so exactly W lines are probed regardless of any
        resize in progress.
        """
        block, _sub = self._split(vpn)
        lines = []
        for way in self.table.ways:
            storage, idx = way.locate(way.hash(block))
            lines.append(storage.line_addr(idx))
        return lines

    def probe_line_addrs_batch(self, vpns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`probe_line_addrs` — shape ``(len(vpns), W)``.

        Row ``i`` equals ``probe_line_addrs(int(vpns[i]))``.  Valid only
        while the underlying cuckoo table is not mutated (fault-separated
        segments in the batched walk engine).
        """
        shift = PAGE_SHIFT[self.page_size] + _BLOCK_SHIFT
        blocks = vpns.astype(np.uint64) >> np.uint64(shift)
        cols = [
            way.line_addrs_batch(hash_array(way.hash, blocks))
            for way in self.table.ways
        ]
        return np.stack(cols, axis=1)

    # -- accounting -----------------------------------------------------------

    def total_bytes(self) -> int:
        return self.table.total_bytes()

    def _track_peak(self) -> None:
        total = self.table.total_bytes()
        if total > self.peak_bytes:
            self.peak_bytes = total

    def occupancy(self) -> float:
        return self.table.occupancy()

    def __len__(self) -> int:
        return self.mapped_pages
