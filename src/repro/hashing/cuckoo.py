"""Elastic W-way cuckoo hash table with gradual in-place/out-of-place resizing.

This is the engine under both page-table organizations the paper studies:

* **ECPT baseline** — ways on :class:`~repro.hashing.storage.ContiguousStorage`
  (which cannot grow in place), an all-way resize policy, and therefore
  out-of-place gradual resizes exactly as in Elastic Cuckoo Page Tables.
* **ME-HPT** — ways on :class:`~repro.hashing.storage.ChunkedStorage`, a
  per-way resize policy, and in-place resizes using the paper's
  one-extra-hash-bit rule (Section IV-C): an upsized way keeps its hash
  function and indexes with ``hash & (2*size - 1)``, so an entry either
  stays in place (new bit 0) or moves to ``old_index + old_size`` (bit 1).

Gradual resizing follows Section II-B: each way under resize carries a
*rehash pointer* ``P``; indices below ``P`` form the migrated region and
indices at or above it the live region.  Lookups and inserts pick the old
or new index by comparing the old-mask index against ``P``, so every
operation still probes exactly one slot per way.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.common.errors import (
    ConfigurationError,
    ContiguousAllocationError,
    SimulationError,
    TableFullError,
)
from repro.common.rng import DeterministicRng, make_rng
from repro.common.units import is_power_of_two
from repro.faults.log import (
    EVENT_DEGRADE_OOP,
    EVENT_EAGER_RETRY,
    EVENT_FAULT,
    EVENT_ROLLBACK,
    DegradationLog,
)
from repro.faults.plan import SITE_CUCKOO_KICKS, FaultPlan
from repro.hashing.storage import Storage
from repro.obs.trace import (
    EVENT_CUCKOO_KICK,
    EVENT_RESIZE_BEGIN,
    EVENT_RESIZE_COMMIT,
    EVENT_RESIZE_ROLLBACK,
)

#: Factory signature for out-of-place resize targets.  Called with
#: ``(way_index, new_slots)``; may return ``None`` to request an eager
#: stop-the-world migration (used when a chunk-size transition cannot hold
#: old and new chunks simultaneously).
StorageFactory = Callable[[int, int], Optional[Storage]]


class TableStats:
    """Instrumentation counters for one elastic cuckoo table.

    ``kick_histogram`` maps the number of cuckoo re-insertions caused by
    one insertion or one rehash to its occurrence count — this is exactly
    the distribution of the paper's Figure 16.
    """

    def __init__(self) -> None:
        self.inserts = 0
        self.updates = 0
        self.deletes = 0
        self.lookups = 0
        self.rehash_steps = 0
        self.rehash_conflicts = 0
        self.eager_migrations = 0
        self.kick_histogram: Counter = Counter()

    def record_op_kicks(self, kicks: int) -> None:
        self.kick_histogram[kicks] += 1

    def total_kick_samples(self) -> int:
        return sum(self.kick_histogram.values())

    def mean_kicks(self) -> float:
        samples = self.total_kick_samples()
        if samples == 0:
            return 0.0
        return sum(k * n for k, n in self.kick_histogram.items()) / samples

    def kick_distribution(self, max_kicks: int = 11) -> List[float]:
        """Return P(0 re-insertions) .. P(max_kicks re-insertions)."""
        samples = self.total_kick_samples()
        if samples == 0:
            return [0.0] * (max_kicks + 1)
        dist = []
        for k in range(max_kicks + 1):
            if k == max_kicks:
                count = sum(n for kk, n in self.kick_histogram.items() if kk >= k)
            else:
                count = self.kick_histogram.get(k, 0)
            dist.append(count / samples)
        return dist


class ElasticWay:
    """One way of an elastic cuckoo table.

    A way owns its hash function for the whole table lifetime (required by
    the in-place resize rule), its storage, and its resize state.  ``size``
    is the logical slot count — during a resize it is the *new* size, while
    ``old_size`` retains the previous one until the rehash completes.
    """

    def __init__(self, index: int, hash_fn: Callable[[int], int], storage: Storage) -> None:
        self.index = index
        self.hash = hash_fn
        self.storage = storage
        self.size = storage.size_slots
        self.old_size: Optional[int] = None
        self.old_storage: Optional[Storage] = None
        self.rehash_ptr: Optional[int] = None
        self.direction = 0  # +1 upsizing, -1 downsizing, 0 idle
        self.count = 0
        # Lifetime statistics (Figures 11 and 13).
        self.upsizes = 0
        self.downsizes = 0
        self.inplace_upsizes = 0
        self.rollbacks = 0
        self.rehash_examined = 0
        self.rehash_relocated = 0

    # -- geometry ----------------------------------------------------------

    @property
    def resizing(self) -> bool:
        return self.direction != 0

    def occupancy(self) -> float:
        return self.count / self.size if self.size else 0.0

    def locate(self, h: int) -> Tuple[Storage, int]:
        """Map a hash value to the single (storage, index) slot to probe.

        Implements the paper's lookup rule during resizing: compare the
        old-mask index against the rehash pointer; the live region is
        probed at the old index, the migrated region at the new index.
        """
        if self.direction == 0:
            return self.storage, h & (self.size - 1)
        old_idx = h & (self.old_size - 1)
        if old_idx >= self.rehash_ptr:
            if self.old_storage is not None:
                return self.old_storage, old_idx
            return self.storage, old_idx
        return self.storage, h & (self.size - 1)

    def probe(self, key: int):
        """Return the stored (key, value) tuple for ``key`` or None."""
        storage, idx = self.locate(self.hash(key))
        slot = storage.get(idx)
        if slot is not None and slot[0] == key:
            return slot
        return None

    def line_addrs_batch(self, hashes: np.ndarray) -> np.ndarray:
        """Vectorized ``storage.line_addr(*locate(h))`` over a hash array.

        Element ``i`` equals ``s.line_addr(i)`` for ``s, i = locate(h[i])``.
        Only valid between mutations: the batched walk engine calls this
        inside a fault-separated segment where ``size``/``old_size``/
        ``rehash_ptr``/``direction`` and the storages are all frozen.
        """
        h = hashes.astype(np.uint64)
        if self.direction == 0:
            return self.storage.line_addr_array(
                (h & np.uint64(self.size - 1)).astype(np.int64)
            )
        old_idx = (h & np.uint64(self.old_size - 1)).astype(np.int64)
        new_idx = (h & np.uint64(self.size - 1)).astype(np.int64)
        live = self.old_storage if self.old_storage is not None else self.storage
        return np.where(
            old_idx >= np.int64(self.rehash_ptr),
            live.line_addr_array(old_idx),
            self.storage.line_addr_array(new_idx),
        )

    # -- resize state ------------------------------------------------------

    def begin_resize(self, new_size: int, new_storage: Optional[Storage]) -> None:
        if self.resizing:
            raise ConfigurationError("way is already resizing")
        if not is_power_of_two(new_size):
            raise ConfigurationError(f"new way size {new_size} must be a power of two")
        self.old_size = self.size
        self.size = new_size
        self.rehash_ptr = 0
        self.direction = 1 if new_size > self.old_size else -1
        if new_storage is not None:
            self.old_storage = self.storage
            self.storage = new_storage
        if self.direction > 0:
            self.upsizes += 1
            if new_storage is None:
                self.inplace_upsizes += 1
        else:
            self.downsizes += 1

    def total_bytes(self) -> int:
        total = self.storage.total_bytes()
        if self.old_storage is not None:
            total += self.old_storage.total_bytes()
        return total

    def moved_fraction(self) -> float:
        """Fraction of rehash-examined entries physically relocated (Fig 13)."""
        if self.rehash_examined == 0:
            return 0.0
        return self.rehash_relocated / self.rehash_examined


class ElasticCuckooTable:
    """W-way elastic cuckoo hash table (keys are ints, values arbitrary).

    Parameters
    ----------
    ways:
        The :class:`ElasticWay` objects (hash function + storage each).
    policy:
        A resize policy (:mod:`repro.hashing.policies`) deciding insertion
        way choice and when/which ways resize.
    storage_factory:
        Creates storage for out-of-place resize targets; see
        :data:`StorageFactory`.
    rng:
        Deterministic randomness for way selection.
    max_kicks:
        Cuckoo re-insertion bound before an emergency resize is forced.
    rehashes_per_insert:
        Gradual-rehash work performed per insert per resizing way
        (the paper rehashes "a single entry or a small group of them").
    """

    def __init__(
        self,
        ways: List[ElasticWay],
        policy: "ResizePolicy",
        storage_factory: StorageFactory,
        rng: Optional[DeterministicRng] = None,
        max_kicks: int = 32,
        rehashes_per_insert: int = 2,
        observer: Optional[Any] = None,
        inplace_enabled: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        degradation: Optional[DegradationLog] = None,
        obs: Optional[Any] = None,
        obs_label: str = "",
    ) -> None:
        if len(ways) < 2:
            raise ConfigurationError("cuckoo hashing needs at least 2 ways")
        self.ways = ways
        self.policy = policy
        self.storage_factory = storage_factory
        self.rng = make_rng(rng)
        self.max_kicks = max_kicks
        self.rehashes_per_insert = rehashes_per_insert
        self.observer = observer
        self.fault_plan = fault_plan
        self.degradation = degradation
        #: Optional repro.obs.Observability plus a label (the page size)
        #: identifying this table in trace events, since the table itself
        #: does not know which page size it serves.
        self.obs = obs
        self.obs_label = obs_label
        #: When False (ablation), resizes always go out of place even if
        #: the storage could grow in place.
        self.inplace_enabled = inplace_enabled
        self.stats = TableStats()
        self.count = 0
        self.peak_bytes = self.total_bytes()
        self._emergency_depth = 0

    # -- basic queries -------------------------------------------------

    @property
    def num_ways(self) -> int:
        return len(self.ways)

    def capacity(self) -> int:
        return sum(way.size for way in self.ways)

    def occupancy(self) -> float:
        cap = self.capacity()
        return self.count / cap if cap else 0.0

    def total_bytes(self) -> int:
        return sum(way.total_bytes() for way in self.ways)

    def resizing(self) -> bool:
        return any(way.resizing for way in self.ways)

    def lookup(self, key: int) -> Optional[Any]:
        """Return the value stored under ``key`` or None (W probes)."""
        self.stats.lookups += 1
        for way in self.ways:
            slot = way.probe(key)
            if slot is not None:
                return slot[1]
        return None

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None

    def __len__(self) -> int:
        return self.count

    def items(self):
        """Yield all (key, value) pairs (order unspecified)."""
        for way in self.ways:
            yield from self._way_items(way)

    def _way_items(self, way: ElasticWay):
        seen_storages = []
        if way.old_storage is not None:
            # Live region of the old storage.
            for idx in range(way.rehash_ptr, way.old_size):
                slot = way.old_storage.get(idx)
                if slot is not None:
                    yield slot
            for idx in range(way.size):
                slot = way.storage.get(idx)
                if slot is not None:
                    yield slot
        else:
            limit = max(way.size, way.old_size or 0)
            limit = min(limit, way.storage.size_slots)
            for idx in range(limit):
                slot = way.storage.get(idx)
                if slot is not None:
                    yield slot
        del seen_storages

    # -- mutation --------------------------------------------------------

    def insert(self, key: int, value: Any) -> int:
        """Insert or update ``key``; return the number of cuckoo re-insertions."""
        located = self._find_slot(key)
        if located is not None:
            way, storage, idx = located
            storage.put(idx, (key, value))
            self.stats.updates += 1
            return 0
        self.maintenance()
        way_idx = self.policy.choose_insert_way(self)
        kicks = self._place((key, value), way_idx)
        self.count += 1
        self.stats.inserts += 1
        self.stats.record_op_kicks(kicks)
        if self.obs is not None and kicks:
            self.obs.emit(EVENT_CUCKOO_KICK, table=self.obs_label, kicks=kicks)
        self.policy.check_resize(self)
        self._update_peak()
        return kicks

    def delete(self, key: int) -> bool:
        """Remove ``key``; return True if it was present."""
        located = self._find_slot(key)
        if located is None:
            return False
        way, storage, idx = located
        storage.clear(idx)
        way.count -= 1
        self.count -= 1
        self.stats.deletes += 1
        self.maintenance()
        self.policy.check_resize(self)
        return True

    def maintenance(self, steps: Optional[int] = None) -> None:
        """Perform gradual rehash work on every resizing way."""
        budget = self.rehashes_per_insert if steps is None else steps
        for way in self.ways:
            for _ in range(budget):
                if not way.resizing:
                    break
                self._rehash_one(way)

    def drain(self) -> None:
        """Complete all in-flight resizes immediately."""
        for way in self.ways:
            self.drain_way(way)

    def drain_way(self, way: ElasticWay) -> None:
        while way.resizing:
            self._rehash_one(way)

    # -- resize initiation (called by policies) ---------------------------

    def start_upsize(self, way: ElasticWay) -> None:
        """Double ``way``, in place when its storage allows, else out of place."""
        if way.resizing:
            self.drain_way(way)
        new_size = way.size * 2
        if self.inplace_enabled and self._try_extend(way, new_size):
            way.begin_resize(new_size, None)
            self._notify("on_upsize", way, new_size, True)
            self._emit_resize(
                EVENT_RESIZE_BEGIN, way, new_size=new_size, inplace=True,
            )
        else:
            new_storage = self.storage_factory(way.index, new_size)
            if new_storage is None:
                self._eager_migrate(way, new_size)
            else:
                way.begin_resize(new_size, new_storage)
                self._notify("on_upsize", way, new_size, False)
                self._emit_resize(
                    EVENT_RESIZE_BEGIN, way, new_size=new_size, inplace=False,
                )
        self._update_peak()

    def start_downsize(self, way: ElasticWay) -> None:
        """Halve ``way``; in place when supported, else out of place."""
        if way.resizing:
            self.drain_way(way)
        new_size = way.size // 2
        if self.inplace_enabled and self._can_shrink_in_place(way.storage):
            way.begin_resize(new_size, None)
            self._notify("on_downsize", way, new_size, True)
            self._emit_resize(
                EVENT_RESIZE_BEGIN, way, new_size=new_size, inplace=True,
            )
        else:
            new_storage = self.storage_factory(way.index, new_size)
            if new_storage is None:
                self._eager_migrate(way, new_size)
            else:
                way.begin_resize(new_size, new_storage)
                self._notify("on_downsize", way, new_size, False)
                self._emit_resize(
                    EVENT_RESIZE_BEGIN, way, new_size=new_size, inplace=False,
                )
        self._update_peak()

    @staticmethod
    def _can_shrink_in_place(storage: Storage) -> bool:
        # ChunkedStorage can release trailing chunks; ContiguousStorage cannot.
        from repro.hashing.storage import ChunkedStorage

        return isinstance(storage, ChunkedStorage)

    def _try_extend(self, way: ElasticWay, new_size: int) -> bool:
        """Attempt the in-place extension, degrading on allocation failure.

        ``extend_to`` is atomic (a mid-batch chunk-allocation failure
        rolls the storage back), so when it raises the way is untouched
        and the resize can safely *degrade* to a gradual out-of-place
        resize instead of aborting — the paper's chunked layout never
        needs a large contiguous region, so the out-of-place path remains
        viable when the in-place chunk allocations are failing.
        """
        try:
            return way.storage.extend_to(new_size)
        except ContiguousAllocationError as exc:
            if self.degradation is not None:
                self.degradation.record(
                    EVENT_DEGRADE_OOP, "inplace_extend",
                    way=way.index, new_size=new_size,
                    size_bytes=exc.size_bytes,
                )
            return False

    def rollback_resize(self, way: ElasticWay) -> None:
        """Atomically abandon ``way``'s in-flight resize.

        Restores the pre-resize geometry and re-places every surviving
        item at its old-mask index, cuckooing conflicts into other ways
        (during a partial gradual rehash two keys may share one old
        index: one still in the live region, one already migrated to a
        new index that maps back onto the same old slot).  The table's
        total count is conserved, and :meth:`check_invariants` passes
        afterwards — callers use this to recover from allocation
        failures striking sibling ways mid-resize.
        """
        if not way.resizing:
            return
        items = list(self._way_items(way))
        old_size = way.old_size
        direction = way.direction
        out_of_place = way.old_storage is not None
        if out_of_place:
            way.storage.release()
            way.storage = way.old_storage
            way.old_storage = None
        # Undo the lifetime counters begin_resize charged.
        if direction > 0:
            way.upsizes -= 1
            if not out_of_place:
                way.inplace_upsizes -= 1
        else:
            way.downsizes -= 1
        way.rollbacks += 1
        way.size = old_size
        way.old_size = None
        way.rehash_ptr = None
        way.direction = 0
        for idx in range(way.storage.size_slots):
            way.storage.clear(idx)
        if not out_of_place and direction > 0:
            way.storage.shrink_to(old_size)
        way.count = 0
        for item in items:
            idx = way.hash(item[0]) & (old_size - 1)
            if way.storage.get(idx) is None:
                way.storage.put(idx, item)
                way.count += 1
            else:
                self._place(item, self._other_way(way.index))
        if self.degradation is not None:
            self.degradation.record(
                EVENT_ROLLBACK, "resize",
                way=way.index, size=old_size,
                direction=direction, items=len(items),
            )
        self._emit_resize(
            EVENT_RESIZE_ROLLBACK, way, size=old_size, direction=direction,
            items=len(items),
        )

    # -- internals ---------------------------------------------------------

    def _find_slot(self, key: int):
        for way in self.ways:
            storage, idx = way.locate(way.hash(key))
            slot = storage.get(idx)
            if slot is not None and slot[0] == key:
                return way, storage, idx
        return None

    def _other_way(self, way_idx: int) -> int:
        j = self.rng.randint(0, self.num_ways - 2)
        return j + 1 if j >= way_idx else j

    def _place(self, item: Tuple[int, Any], way_idx: int) -> int:
        """Cuckoo-place ``item`` starting at ``way_idx``; return kick count."""
        if (
            self.fault_plan is not None
            and self.fault_plan.decide(SITE_CUCKOO_KICKS) is not None
        ):
            # Injected kick-bound overrun: behave exactly as if the kick
            # chain had exceeded max_kicks — force an emergency resize,
            # then place into the enlarged index space.
            if self.degradation is not None:
                self.degradation.record(
                    EVENT_FAULT, SITE_CUCKOO_KICKS, way=way_idx,
                )
            self._emergency_resize()
        kicks = 0
        kicks_since_resize = 0
        while True:
            way = self.ways[way_idx]
            storage, idx = way.locate(way.hash(item[0]))
            slot = storage.get(idx)
            if slot is None:
                storage.put(idx, item)
                way.count += 1
                return kicks
            storage.put(idx, item)
            item = slot
            kicks += 1
            kicks_since_resize += 1
            if kicks_since_resize >= self.max_kicks:
                # The kick chain is too long: force the policy to grow the
                # table, then keep kicking the in-flight item into the
                # enlarged index space.
                self._emergency_resize()
                kicks_since_resize = 0
            way_idx = self._other_way(way_idx)

    def _emergency_resize(self) -> None:
        if self._emergency_depth >= 8:
            raise TableFullError(
                f"cuckoo table stuck at occupancy {self.occupancy():.2f} "
                f"after {self._emergency_depth} emergency resizes"
            )
        self._emergency_depth += 1
        try:
            self.policy.emergency_resize(self)
        finally:
            self._emergency_depth -= 1

    def _rehash_one(self, way: ElasticWay) -> None:
        """Move one element across ``way``'s rehash pointer (Section IV-C)."""
        if not way.resizing:
            return
        ptr = way.rehash_ptr
        old_storage = way.old_storage if way.old_storage is not None else way.storage
        item = old_storage.get(ptr)
        way.rehash_ptr += 1
        self.stats.rehash_steps += 1
        if item is not None:
            way.rehash_examined += 1
            h = way.hash(item[0])
            new_idx = h & (way.size - 1)
            stays = way.old_storage is None and new_idx == ptr
            if stays:
                self.stats.record_op_kicks(0)
            else:
                old_storage.clear(ptr)
                way.count -= 1
                way.rehash_relocated += 1
                target = way.storage.get(new_idx)
                if target is None:
                    way.storage.put(new_idx, item)
                    way.count += 1
                    self.stats.record_op_kicks(0)
                else:
                    # Conflict: the rehashed entry claims its slot and the
                    # occupant is cuckooed into a different way (paper,
                    # Figure 5d-f discussion).  The way's count is net
                    # unchanged: the rehashed entry enters, the occupant
                    # leaves.
                    way.storage.put(new_idx, item)
                    self.stats.rehash_conflicts += 1
                    kicks = self._place(target, self._other_way(way.index))
                    self.stats.record_op_kicks(kicks + 1)
        if way.rehash_ptr >= way.old_size:
            self._finish_resize(way)

    def _finish_resize(self, way: ElasticWay) -> None:
        inplace = way.old_storage is None
        if way.old_storage is not None:
            way.old_storage.release()
            way.old_storage = None
        elif way.direction < 0:
            way.storage.shrink_to(way.size)
        way.old_size = None
        way.rehash_ptr = None
        way.direction = 0
        self._notify("on_resize_complete", way, way.size, way.old_storage is None)
        self._emit_resize(
            EVENT_RESIZE_COMMIT, way, size=way.size, inplace=inplace,
            relocated=way.rehash_relocated,
        )

    def _eager_migrate(self, way: ElasticWay, new_size: int) -> None:
        """Stop-the-world migration for chunk-size transitions that cannot
        hold old and new storage simultaneously."""
        items = list(self._way_items(way))
        old_size = way.size
        way.storage.release()
        try:
            new_storage = self.storage_factory(way.index, new_size)
        except ContiguousAllocationError:
            new_storage = None
        if new_storage is None:
            # Even with the old way's space returned, the target size is
            # unallocatable.  Re-create the way at its old size so it
            # survives (the resize is abandoned, not the table).
            new_storage = self.storage_factory(way.index, old_size)
            if new_storage is None:
                raise ConfigurationError(
                    "storage factory failed even after releasing the old way",
                    way=way.index, old_size=old_size, new_size=new_size,
                )
            if self.degradation is not None:
                self.degradation.record(
                    EVENT_EAGER_RETRY, "eager_migrate",
                    way=way.index, old_size=old_size,
                    abandoned_size=new_size,
                )
            new_size = old_size
        way.storage = new_storage
        way.size = new_size
        way.old_size = None
        way.old_storage = None
        way.rehash_ptr = None
        way.direction = 0
        way.count = 0
        self.stats.eager_migrations += 1
        if new_size > old_size:
            way.upsizes += 1
        elif new_size < old_size:
            way.downsizes += 1
        for item in items:
            h = way.hash(item[0])
            idx = h & (new_size - 1)
            slot = way.storage.get(idx)
            if slot is None:
                way.storage.put(idx, item)
                way.count += 1
            else:
                kicks = self._place(item, self._other_way(way.index))
                self.stats.record_op_kicks(kicks)
        self._notify("on_eager_migration", way, new_size, False)
        # An eager migration begins and commits atomically: one commit
        # event with eager=True, no matching resize_begin.
        self._emit_resize(
            EVENT_RESIZE_COMMIT, way, size=new_size, inplace=False, eager=True,
        )

    def _update_peak(self) -> None:
        total = self.total_bytes()
        if total > self.peak_bytes:
            self.peak_bytes = total

    def _notify(self, event: str, way: ElasticWay, new_size: int, inplace: bool) -> None:
        if self.observer is not None:
            handler = getattr(self.observer, event, None)
            if handler is not None:
                handler(way, new_size, inplace)

    def _emit_resize(self, kind: str, way: ElasticWay, **payload) -> None:
        if self.obs is not None:
            self.obs.emit(kind, table=self.obs_label, way=way.index, **payload)

    # -- validation (used by tests) ---------------------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency.

        Raises :class:`~repro.common.errors.SimulationError` with
        structured context on the first violation: per-way and table
        entry counts, power-of-two geometry, rehash-pointer bounds,
        per-storage structural invariants, and reachability of every
        stored key through :meth:`lookup`.
        """
        total = 0
        for way in self.ways:
            way_count = sum(1 for _ in self._way_items(way))
            if way_count != way.count:
                raise SimulationError(
                    "way entry count does not match tracked count",
                    component="cuckoo", way=way.index,
                    counted=way_count, tracked=way.count,
                )
            total += way_count
            if not is_power_of_two(way.size):
                raise SimulationError(
                    "way size is not a power of two",
                    component="cuckoo", way=way.index, size=way.size,
                )
            if way.resizing and not 0 <= way.rehash_ptr <= way.old_size:
                raise SimulationError(
                    "rehash pointer outside the old index space",
                    component="cuckoo", way=way.index,
                    rehash_ptr=way.rehash_ptr, old_size=way.old_size,
                )
            for storage in (way.storage, way.old_storage):
                checker = getattr(storage, "check_invariants", None)
                if checker is not None:
                    checker()
        if total != self.count:
            raise SimulationError(
                "table count does not match sum of way counts",
                component="cuckoo", tracked=self.count, counted=total,
            )
        # Every stored key must be findable via lookup.
        for key, _value in list(self.items()):
            if self.lookup(key) is None:
                raise SimulationError(
                    "stored key unreachable through lookup",
                    component="cuckoo", key=key,
                )
