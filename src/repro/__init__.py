"""repro — a reproduction of "Memory-Efficient Hashed Page Tables" (HPCA'23).

The library implements the paper's full system stack in Python:

* the **ME-HPT** design (:mod:`repro.core`) — L2P indirection table,
  dynamically-changing chunk sizes, in-place resizing, per-way resizing;
* the **ECPT** baseline (:mod:`repro.ecpt`) and the conventional
  **radix-tree** page tables (:mod:`repro.radix`);
* the substrates they run on: the generic elastic cuckoo hashing engine
  (:mod:`repro.hashing`), a physical-memory/fragmentation model
  (:mod:`repro.mem`), TLBs (:mod:`repro.mmu`), and an OS model
  (:mod:`repro.kernel`);
* a trace-driven simulator (:mod:`repro.sim`) with calibrated synthetic
  workloads (:mod:`repro.workloads`), plus one driver per paper
  table/figure (:mod:`repro.experiments`);
* Section VIII/IX generalisations (:mod:`repro.applications`).

Quick taste::

    from repro import MeHptPageTables
    tables = MeHptPageTables()
    tables.map(vpn=0x1000, ppn=0xCAFE, page_size="4K")
    tables.translate(0x1000)   # -> (0xCAFE, "4K")

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.mehpt import MeHptPageTables
from repro.core.walker import MeHptWalker
from repro.ecpt.tables import EcptPageTables
from repro.ecpt.walker import EcptWalker
from repro.radix.table import RadixPageTable
from repro.radix.walker import RadixWalker
from repro.sim.config import SimulationConfig
from repro.sim.simulator import TranslationSimulator
from repro.workloads import get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "MeHptPageTables",
    "MeHptWalker",
    "EcptPageTables",
    "EcptWalker",
    "RadixPageTable",
    "RadixWalker",
    "SimulationConfig",
    "TranslationSimulator",
    "get_workload",
    "workload_names",
    "__version__",
]
