"""Structural graph workloads: a synthetic graph and real traversal traces.

The registry's mixture-based traces capture footprint and locality
*statistics*; this module goes further and generates traces from an
actual in-memory graph representation, the way GraphBIG's kernels touch
memory:

* :class:`SyntheticGraph` — a power-law (preferential-attachment-style)
  graph in CSR form, laid out in virtual memory like a real runtime
  would lay it out: a node-record array, an offsets array, and an edge
  array, each mapped to 4KB pages.
* Trace generators for the four traversal shapes the paper's graph
  suite exercises: BFS (frontier sweeps), DFS (stack walks), PageRank
  (streaming node sweeps with random neighbour gathers), and Triangle
  Counting (pairwise neighbour-list intersections).

Each generator yields 4KB virtual page numbers; the addresses come from
the graph's layout, so spatial locality (CSR neighbours are contiguous)
and irregularity (targets are scattered) emerge rather than being
sampled from tuned mixtures.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.common.errors import ConfigurationError

#: Bytes per node record (labels, degrees, algorithm state) — GraphBIG's
#: property-rich vertices; also yields ~10KB/node total with edges, which
#: matches Table I's 9.3GB for 1M-node inputs.
NODE_RECORD_BYTES = 64
#: Bytes per edge entry (target id + weight).
EDGE_BYTES = 8
PAGE_BYTES = 4096


class SyntheticGraph:
    """A power-law CSR graph with a realistic virtual-memory layout.

    The degree sequence follows a discrete power law (exponent ~2.1,
    typical of scale-free inputs); edge targets are drawn
    preferential-attachment-style, so low-id hub nodes appear in most
    adjacency lists — which is what defeats TLB locality in practice.
    """

    def __init__(
        self,
        nodes: int,
        mean_degree: float = 16.0,
        base_vpn: int = 0x7F00 << 16,
        seed: int = 7,
    ) -> None:
        if nodes < 2:
            raise ConfigurationError("graph needs at least 2 nodes")
        self.nodes = nodes
        self._rng = np.random.default_rng(np.random.SeedSequence([seed, nodes]))
        # Power-law-ish degrees with the requested mean.
        raw = self._rng.pareto(1.1, size=nodes) + 1.0
        degrees = np.minimum(raw * mean_degree / raw.mean(), nodes - 1).astype(np.int64)
        degrees = np.maximum(degrees, 1)
        self.offsets = np.zeros(nodes + 1, dtype=np.int64)
        np.cumsum(degrees, out=self.offsets[1:])
        self.edge_count = int(self.offsets[-1])
        # Preferential-attachment-style targets: squaring a uniform draw
        # skews toward low ids (hubs).
        draws = self._rng.random(self.edge_count)
        self.edges = (draws * draws * nodes).astype(np.int64)
        # Virtual layout: [node records][offsets][edges], page aligned.
        self.base_vpn = base_vpn
        node_pages = -(-nodes * NODE_RECORD_BYTES // PAGE_BYTES)
        offset_pages = -(-(nodes + 1) * 8 // PAGE_BYTES)
        edge_pages = -(-self.edge_count * EDGE_BYTES // PAGE_BYTES)
        self.node_base = base_vpn
        self.offset_base = self.node_base + node_pages
        self.edge_base = self.offset_base + offset_pages
        self.end_vpn = self.edge_base + edge_pages

    # -- address math -----------------------------------------------------

    def node_vpn(self, node: int) -> int:
        return self.node_base + (node * NODE_RECORD_BYTES) // PAGE_BYTES

    def offset_vpn(self, node: int) -> int:
        return self.offset_base + (node * 8) // PAGE_BYTES

    def edge_vpn(self, edge_index: int) -> int:
        return self.edge_base + (edge_index * EDGE_BYTES) // PAGE_BYTES

    def neighbours(self, node: int) -> np.ndarray:
        return self.edges[self.offsets[node] : self.offsets[node + 1]]

    def span_pages(self) -> int:
        return self.end_vpn - self.base_vpn

    # -- traversal traces -------------------------------------------------

    def bfs_trace(self, length: int, source: int = 0) -> np.ndarray:
        """Frontier-queue BFS: visit node, scan its edge list, touch targets."""
        out = np.empty(length, dtype=np.int64)
        pos = 0
        visited = np.zeros(self.nodes, dtype=bool)
        frontier: List[int] = [source]
        visited[source] = True
        while pos < length:
            if not frontier:
                # Restart from an unvisited node (disconnected components).
                remaining = np.flatnonzero(~visited)
                if remaining.size == 0:
                    visited[:] = False
                    remaining = np.arange(self.nodes)
                start = int(remaining[self._rng.integers(0, remaining.size)])
                frontier = [start]
                visited[start] = True
            node = frontier.pop(0)
            pos = self._emit_visit(out, pos, node)
            for target in self.neighbours(node)[:64]:
                if pos >= length:
                    break
                out[pos] = self.node_vpn(int(target))  # check visited flag
                pos += 1
                if not visited[target]:
                    visited[target] = True
                    frontier.append(int(target))
        return out[:length]

    def dfs_trace(self, length: int, source: int = 0) -> np.ndarray:
        """Stack-based DFS: deeper wandering, less frontier locality."""
        out = np.empty(length, dtype=np.int64)
        pos = 0
        visited = np.zeros(self.nodes, dtype=bool)
        stack: List[int] = [source]
        while pos < length:
            if not stack:
                stack = [int(self._rng.integers(0, self.nodes))]
            node = stack.pop()
            if visited[node]:
                continue
            visited[node] = True
            pos = self._emit_visit(out, pos, node)
            for target in self.neighbours(node)[:32]:
                if pos >= length:
                    break
                out[pos] = self.node_vpn(int(target))
                pos += 1
                if not visited[target]:
                    stack.append(int(target))
        return out[:length]

    def pagerank_trace(self, length: int) -> np.ndarray:
        """Streaming sweeps: sequential node/offset reads, random gathers."""
        out = np.empty(length, dtype=np.int64)
        pos = 0
        node = 0
        while pos < length:
            pos = self._emit_visit(out, pos, node)
            for target in self.neighbours(node)[:48]:
                if pos >= length:
                    break
                out[pos] = self.node_vpn(int(target))  # pull rank of target
                pos += 1
            node = (node + 1) % self.nodes
        return out[:length]

    def triangle_trace(self, length: int) -> np.ndarray:
        """Neighbour-list intersections: edge-array heavy, hub-skewed."""
        out = np.empty(length, dtype=np.int64)
        pos = 0
        while pos < length:
            node = int(self._rng.integers(0, self.nodes))
            pos = self._emit_visit(out, pos, node)
            targets = self.neighbours(node)
            for target in targets[:16]:
                if pos >= length:
                    break
                # Scan the target's adjacency list for the intersection.
                start, end = self.offsets[target], self.offsets[target + 1]
                for edge_index in range(int(start), min(int(end), int(start) + 8)):
                    if pos >= length:
                        break
                    out[pos] = self.edge_vpn(edge_index)
                    pos += 1
        return out[:length]

    def _emit_visit(self, out: np.ndarray, pos: int, node: int) -> int:
        """Touch the node record, its offsets entry, and its edge pages."""
        if pos < len(out):
            out[pos] = self.node_vpn(node)
            pos += 1
        if pos < len(out):
            out[pos] = self.offset_vpn(node)
            pos += 1
        start, end = int(self.offsets[node]), int(self.offsets[node + 1])
        for edge_index in range(start, min(end, start + 512), PAGE_BYTES // EDGE_BYTES):
            if pos >= len(out):
                break
            out[pos] = self.edge_vpn(edge_index)
            pos += 1
        return pos


#: Kernel name -> trace method, for dispatching from app names.
TRAVERSALS = {
    "BFS": "bfs_trace",
    "DFS": "dfs_trace",
    "PR": "pagerank_trace",
    "TC": "triangle_trace",
    "BC": "bfs_trace",       # Brandes' BC is BFS-shaped per source
    "CC": "bfs_trace",       # label propagation ~ frontier sweeps
    "DC": "pagerank_trace",  # degree centrality streams node records
    "SSSP": "bfs_trace",     # delta-stepping ~ weighted frontiers
}


def structural_trace(
    app: str, nodes: int, length: int, seed: int = 7, graph: Optional[SyntheticGraph] = None
) -> np.ndarray:
    """A traversal trace for ``app`` over a ``nodes``-node synthetic graph."""
    if app not in TRAVERSALS:
        raise ConfigurationError(f"{app} has no structural traversal")
    graph = graph if graph is not None else SyntheticGraph(nodes, seed=seed)
    return getattr(graph, TRAVERSALS[app])(length)
