"""Synthetic workloads standing in for the paper's eleven applications.

The paper runs GraphBIG (BC, BFS, CC, DC, DFS, PR, SSSP, TC), GUPS,
MUMmer and SysBench under Simics.  We cannot run the binaries, but every
evaluation result depends on two observable properties per application:

1. the **set of virtual pages touched** (footprint size and sparsity),
   which determines page-table sizes, contiguity needs, resize and L2P
   behaviour; and
2. the **access pattern over those pages** (locality, skew), which
   determines TLB miss rates and walk costs.

Each :class:`~repro.workloads.base.Workload` reproduces both knobs,
calibrated against Table I (see :mod:`repro.workloads.registry`), with a
power-of-two ``scale`` divisor for tractable runtimes — power-of-two
table sizing makes the scaling exact (see DESIGN.md).
"""

from repro.workloads.base import AccessPattern, Workload, WorkloadSpec
from repro.workloads.graph import SyntheticGraph, structural_trace
from repro.workloads.kernels import GupsKernel, MummerKernel, SysbenchMemoryKernel
from repro.workloads.registry import (
    ALL_WORKLOADS,
    GRAPH_WORKLOADS,
    TRACE_PREFIX,
    get_workload,
    graph_workload_with_nodes,
    workload_names,
)

__all__ = [
    "Workload",
    "WorkloadSpec",
    "AccessPattern",
    "ALL_WORKLOADS",
    "GRAPH_WORKLOADS",
    "TRACE_PREFIX",
    "get_workload",
    "graph_workload_with_nodes",
    "workload_names",
    "SyntheticGraph",
    "structural_trace",
    "GupsKernel",
    "MummerKernel",
    "SysbenchMemoryKernel",
]
