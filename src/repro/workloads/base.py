"""Workload model: footprint construction and trace generation.

A workload is defined by a :class:`WorkloadSpec` (calibrated constants)
and materialised by :class:`Workload` at a given scale:

* ``page_set()`` — the 4KB virtual pages the application touches, built
  block-first so HPT slot (64B line = 8 pages) occupancy is controlled
  explicitly via ``density``;
* ``trace(length)`` — a virtual-page access trace over that footprint
  following the spec's :class:`AccessPattern` mix.

Traces are numpy arrays of VPNs for speed; the simulator iterates them.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import GB, is_power_of_two

#: 4KB pages per HPT block (one clustered cache line).
PAGES_PER_BLOCK = 8

#: Base VPN where the main data VMA starts (above code/stack).
DATA_VMA_BASE = 0x7F00 << 16


@dataclass(frozen=True)
class AccessPattern:
    """Mixture weights for trace generation (must sum to 1).

    ``sequential`` — streaming runs of consecutive pages;
    ``uniform`` — uniform random pages over the footprint;
    ``zipf`` — skewed popularity (hot structures);
    ``run_length`` — pages per sequential burst;
    ``page_repeats`` — accesses issued per visited page (cache-line
    granularity within a 4KB page: a streaming workload touches a page
    ~64 times, a random-update one ~1-2).  Repeated accesses hit the L1
    TLB and only scale the access count, so the trace stays one event per
    page visit.
    """

    sequential: float = 0.0
    uniform: float = 1.0
    zipf: float = 0.0
    zipf_alpha: float = 0.8
    run_length: int = 32
    page_repeats: int = 1

    def __post_init__(self) -> None:
        total = self.sequential + self.uniform + self.zipf
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"pattern weights sum to {total}, not 1")


@dataclass(frozen=True)
class WorkloadSpec:
    """Calibrated constants for one application (see registry docstring).

    ``touched_blocks`` is the *full-scale* number of distinct HPT blocks
    (64B lines) the application populates; it is chosen so the ECPT way
    size matches Table I.  ``density`` is the fraction of each block's 8
    pages actually touched.  ``thp_coverage`` is the fraction of 2MB
    regions THP backs with huge pages when THP is on.
    """

    name: str
    kind: str
    data_gb: float
    touched_blocks: int
    density: float
    thp_coverage: float
    pattern: AccessPattern
    #: Memory operations in the paper's measured window (the first 550M
    #: instructions per thread — early execution, where the page tables
    #: are still being built, so per-window OS costs are front-loaded).
    fullscale_accesses: float = 80e6
    description: str = ""

    def touched_pages(self) -> int:
        return int(self.touched_blocks * PAGES_PER_BLOCK * self.density)

    def with_blocks(self, touched_blocks: int) -> "WorkloadSpec":
        """A copy with a different footprint (used by Figure 15)."""
        return replace(self, touched_blocks=touched_blocks)


class Workload:
    """A workload instance: footprint and traces at a given scale.

    ``scale`` divides the footprint (power of two); reported sizes in the
    experiments are multiplied back.  The random stream is derived from
    ``seed`` only, so footprints are stable across configurations — the
    same pages fault in under radix, ECPT and ME-HPT.
    """

    def __init__(self, spec: WorkloadSpec, scale: int = 1, seed: int = 12345) -> None:
        if scale < 1 or not is_power_of_two(scale):
            raise ConfigurationError(f"scale {scale} must be a power of two >= 1")
        self.spec = spec
        self.scale = scale
        self.seed = seed
        # zlib.crc32, not hash(): str hashing is randomized per process
        # (PYTHONHASHSEED) and would make footprints nondeterministic.
        name_digest = zlib.crc32(spec.name.encode("utf-8")) & 0x7FFFFFFF
        self._rng = np.random.default_rng(
            np.random.SeedSequence([seed, name_digest])
        )
        self._page_set: Optional[np.ndarray] = None

    # -- footprint -------------------------------------------------------

    @property
    def blocks(self) -> int:
        return max(16, self.spec.touched_blocks // self.scale)

    @property
    def span_pages(self) -> int:
        """Virtual span of the data VMA in 4KB pages.

        Dense workloads have span == touched region; sparse kinds spread
        their blocks over a larger VMA (matching their bigger data_gb).
        """
        touched_span = self.blocks * PAGES_PER_BLOCK
        declared = int(self.spec.data_gb * GB / 4096) // self.scale
        return max(touched_span, min(declared, touched_span * 4))

    def vma_layout(self) -> List[Tuple[int, int, str]]:
        """(start_vpn, pages, name) for the address space."""
        return [(DATA_VMA_BASE, self.span_pages, f"{self.spec.name}-data")]

    def block_set(self) -> np.ndarray:
        """The distinct block numbers (VPN >> 3) the workload populates."""
        span_blocks = self.span_pages // PAGES_PER_BLOCK
        base_block = DATA_VMA_BASE // PAGES_PER_BLOCK
        if self.blocks >= span_blocks:
            chosen = np.arange(span_blocks, dtype=np.int64)
        elif self.blocks * 2 >= span_blocks:
            # Nearly dense: drop a random subset.
            chosen = self._rng.choice(span_blocks, size=self.blocks, replace=False)
        else:
            # Sparse: uniform blocks over the span.
            chosen = self._rng.choice(span_blocks, size=self.blocks, replace=False)
        chosen.sort()
        return chosen + base_block

    def page_set(self) -> np.ndarray:
        """All 4KB VPNs touched, density applied per block, sorted."""
        if self._page_set is not None:
            return self._page_set
        blocks = self.block_set()
        density = self.spec.density
        per_block = max(1, round(PAGES_PER_BLOCK * density))
        if per_block >= PAGES_PER_BLOCK:
            pages = (blocks[:, None] * PAGES_PER_BLOCK + np.arange(PAGES_PER_BLOCK)).ravel()
        else:
            offsets = np.argsort(
                self._rng.random((blocks.size, PAGES_PER_BLOCK)), axis=1
            )[:, :per_block]
            pages = (blocks[:, None] * PAGES_PER_BLOCK + offsets).ravel()
        pages.sort()
        self._page_set = pages
        return pages

    # -- traces ---------------------------------------------------------

    def _trace_runs(self, length: int, seed_offset: int):
        """Yield the trace's constituent bursts, in order.

        One shared generator backs both :meth:`trace` and
        :meth:`trace_chunks`: the random stream is consumed identically,
        so the concatenation of the yielded runs is byte-identical to a
        single materialized trace of the same ``length``.
        """
        pages = self.page_set()
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, seed_offset, len(pages)])
        )
        pattern = self.spec.pattern
        pos = 0
        n = len(pages)
        while pos < length:
            draw = rng.random()
            if draw < pattern.sequential:
                run = min(pattern.run_length, length - pos)
                start = int(rng.integers(0, n))
                idx = (start + np.arange(run)) % n
            elif draw < pattern.sequential + pattern.uniform:
                run = min(64, length - pos)
                idx = rng.integers(0, n, size=run)
            else:
                run = min(64, length - pos)
                # Zipf-ish skew via a power-law index transform.
                u = rng.random(run)
                idx = ((u ** (1.0 / (1.0 - pattern.zipf_alpha * 0.5))) * n).astype(
                    np.int64
                )
                np.clip(idx, 0, n - 1, out=idx)
                # Hash the rank so hot pages are scattered over the VA space.
                idx = (idx * 2654435761) % n
            yield pages[idx]
            pos += run

    def trace(self, length: int, seed_offset: int = 0) -> np.ndarray:
        """Generate ``length`` VPN accesses following the spec's pattern."""
        out = np.empty(length, dtype=np.int64)
        pos = 0
        for burst in self._trace_runs(length, seed_offset):
            out[pos : pos + burst.size] = burst
            pos += burst.size
        return out

    def trace_chunks(self, length: int, chunk_values: int = 65536, seed_offset: int = 0):
        """Yield the same trace as :meth:`trace` in ``chunk_values`` pieces.

        Peak memory is O(``chunk_values``) instead of O(``length``); the
        concatenation of the yielded int64 arrays is byte-identical to
        ``trace(length, seed_offset)``.  Every chunk except possibly the
        last holds exactly ``chunk_values`` VPNs.
        """
        if chunk_values < 1:
            raise ConfigurationError(
                f"chunk_values {chunk_values} must be >= 1",
                field="chunk_values", value=chunk_values,
            )
        pending: List[np.ndarray] = []
        have = 0
        for burst in self._trace_runs(length, seed_offset):
            pending.append(burst)
            have += burst.size
            while have >= chunk_values:
                buffered = np.concatenate(pending)
                yield buffered[:chunk_values]
                rest = buffered[chunk_values:]
                pending = [rest] if rest.size else []
                have = int(rest.size)
        if have:
            yield np.concatenate(pending)

    # -- reporting helpers -------------------------------------------------

    def unscale_bytes(self, nbytes: int) -> int:
        """Convert a scaled measurement back to full-scale bytes."""
        return nbytes * self.scale

    def describe(self) -> str:
        return (
            f"{self.spec.name}: {self.spec.kind}, {self.spec.data_gb}GB data, "
            f"{self.blocks} blocks at 1/{self.scale} scale, "
            f"THP coverage {self.spec.thp_coverage:.0%}"
        )
