"""The eleven evaluated applications, calibrated against Table I.

Calibration rule: the footprint knob (``touched_blocks``) is set so that
the ECPT 4KB-page way grows to exactly the Table I "Page Table Contig.
Mem." value.  With the Table III parameters (3 ways, 64B clustered slots,
0.6 upsize threshold, doubling resizes), an ECPT whose ways reach ``S``
bytes implies a distinct-block count in

    [0.0140625 * S, 0.028125 * S)

(the lower bound triggers the resize to ``S``; the upper bound would
trigger the next one).  We pick ``0.018 * S``, comfortably inside, which
also reproduces the paper's observation that a resize is typically still
in flight at measurement end (the "old+new HPTs coexist 87.3% of the
time").

THP coverage is calibrated from Table I's THP columns: GUPS and SysBench
are fully huge-page backed (their 4KB HPTs never grow with THP,
Fig. 11/12), MUMmer is about half backed, and the graph applications'
irregular heaps gain nothing from THP.
"""

from __future__ import annotations

import difflib
from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.workloads.base import AccessPattern, Workload, WorkloadSpec

#: Workload names starting with this prefix name a ``.vpt`` trace file
#: instead of a synthetic spec: ``get_workload("trace:/runs/gups.vpt")``.
TRACE_PREFIX = "trace:"

#: Trigger-window constant used for calibration (see module docstring).
BLOCKS_PER_WAY_BYTE = 0.018

_GRAPH_PATTERN = AccessPattern(sequential=0.15, uniform=0.55, zipf=0.30, page_repeats=4)
_FRONTIER_PATTERN = AccessPattern(sequential=0.25, uniform=0.50, zipf=0.25, page_repeats=4)
_STREAM_PATTERN = AccessPattern(sequential=0.35, uniform=0.45, zipf=0.20, page_repeats=6)

#: GraphBIG inputs have 1M nodes; Figure 15 rescales these footprints.
GRAPH_REFERENCE_NODES = 1_000_000

ALL_WORKLOADS: Dict[str, WorkloadSpec] = {
    "BC": WorkloadSpec(
        name="BC", kind="graph", data_gb=17.3, touched_blocks=150_000,
        density=0.95, thp_coverage=0.0, pattern=_GRAPH_PATTERN,
        description="Betweenness Centrality (GraphBIG)",
    ),
    "BFS": WorkloadSpec(
        name="BFS", kind="graph", data_gb=9.3, touched_blocks=300_000,
        density=0.95, thp_coverage=0.0, pattern=_FRONTIER_PATTERN,
        description="Breadth-First Search (GraphBIG)",
    ),
    "CC": WorkloadSpec(
        name="CC", kind="graph", data_gb=9.3, touched_blocks=300_000,
        density=0.95, thp_coverage=0.0, pattern=_GRAPH_PATTERN,
        description="Connected Components (GraphBIG)",
    ),
    "DC": WorkloadSpec(
        name="DC", kind="graph", data_gb=9.3, touched_blocks=300_000,
        density=0.95, thp_coverage=0.0, pattern=_STREAM_PATTERN,
        description="Degree Centrality (GraphBIG)",
    ),
    "DFS": WorkloadSpec(
        name="DFS", kind="graph", data_gb=9.0, touched_blocks=300_000,
        density=0.95, thp_coverage=0.0, pattern=_FRONTIER_PATTERN,
        description="Depth-First Search (GraphBIG)",
    ),
    "GUPS": WorkloadSpec(
        name="GUPS", kind="hpc", data_gb=64.0, touched_blocks=1_200_000,
        density=0.6, thp_coverage=1.0,
        pattern=AccessPattern(sequential=0.0, uniform=1.0, zipf=0.0, page_repeats=3),
        fullscale_accesses=40e6,
        description="Random-access updates (HPC Challenge)",
    ),
    "MUMmer": WorkloadSpec(
        name="MUMmer", kind="bio", data_gb=6.9, touched_blocks=14_900,
        density=0.95, thp_coverage=0.5,
        pattern=AccessPattern(sequential=0.65, uniform=0.25, zipf=0.10, page_repeats=24),
        fullscale_accesses=90e6,
        description="Genome alignment (BioBench)",
    ),
    "PR": WorkloadSpec(
        name="PR", kind="graph", data_gb=9.3, touched_blocks=300_000,
        density=0.95, thp_coverage=0.0, pattern=_STREAM_PATTERN,
        description="PageRank (GraphBIG)",
    ),
    "SSSP": WorkloadSpec(
        name="SSSP", kind="graph", data_gb=9.3, touched_blocks=300_000,
        density=0.95, thp_coverage=0.0, pattern=_GRAPH_PATTERN,
        description="Single-Source Shortest Path (GraphBIG)",
    ),
    "SysBench": WorkloadSpec(
        name="SysBench", kind="systems", data_gb=64.0, touched_blocks=1_100_000,
        density=0.7, thp_coverage=1.0,
        pattern=AccessPattern(sequential=0.45, uniform=0.55, zipf=0.0, page_repeats=4),
        fullscale_accesses=56e6,
        description="Memory stress (SysBench memory)",
    ),
    "TC": WorkloadSpec(
        name="TC", kind="graph", data_gb=11.9, touched_blocks=37_500,
        density=0.95, thp_coverage=0.0,
        pattern=AccessPattern(sequential=0.20, uniform=0.40, zipf=0.40, page_repeats=8),
        description="Triangle Count (GraphBIG)",
    ),
}

#: The eight GraphBIG applications (used by Figure 15).
GRAPH_WORKLOADS: List[str] = ["BC", "BFS", "CC", "DC", "DFS", "PR", "SSSP", "TC"]


def workload_names() -> List[str]:
    """All application names in the paper's presentation order."""
    return list(ALL_WORKLOADS)


def get_workload(name: str, scale: int = 1, seed: int = 12345):
    """Instantiate a calibrated workload at ``1/scale`` footprint.

    Names starting with ``trace:`` resolve to a recorded or imported
    ``.vpt`` trace instead (see :mod:`repro.traces`); the returned
    :class:`~repro.traces.workload.TraceWorkload` carries the scale and
    seed it was recorded with, so ``scale``/``seed`` are ignored for it.
    """
    if name.startswith(TRACE_PREFIX):
        # Imported lazily: the trace subsystem pulls in I/O machinery the
        # synthetic-only path never needs.
        from repro.traces.workload import TraceWorkload

        return TraceWorkload(name[len(TRACE_PREFIX):])
    spec = ALL_WORKLOADS.get(name)
    if spec is None:
        close = difflib.get_close_matches(name, list(ALL_WORKLOADS), n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ConfigurationError(
            f"unknown workload {name!r}{hint}; available: "
            f"{', '.join(ALL_WORKLOADS)}; trace files replay as "
            f"'{TRACE_PREFIX}<path>.vpt'",
            field="name", value=name,
        )
    return Workload(spec, scale=scale, seed=seed)


def graph_workload_with_nodes(
    name: str, nodes: int, scale: int = 1, seed: int = 12345
) -> Workload:
    """A graph application rescaled to ``nodes`` input nodes (Figure 15).

    Footprint scales linearly with the node count relative to the 1M-node
    reference inputs; data_gb scales alongside.
    """
    if name not in GRAPH_WORKLOADS:
        raise ConfigurationError(f"{name} is not a graph workload")
    spec = ALL_WORKLOADS[name]
    factor = nodes / GRAPH_REFERENCE_NODES
    blocks = max(32, int(spec.touched_blocks * factor))
    scaled = WorkloadSpec(
        name=f"{spec.name}-{nodes}",
        kind=spec.kind,
        data_gb=spec.data_gb * factor,
        touched_blocks=blocks,
        density=spec.density,
        thp_coverage=spec.thp_coverage,
        pattern=spec.pattern,
        fullscale_accesses=spec.fullscale_accesses * factor,
        description=f"{spec.description} with {nodes} nodes",
    )
    return Workload(scaled, scale=scale, seed=seed)
