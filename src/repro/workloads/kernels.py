"""Structural generators for the non-graph applications.

Like :mod:`repro.workloads.graph`, these derive traces from the actual
data-structure access loops of each benchmark rather than from tuned
statistical mixtures:

* :class:`GupsKernel` — HPC Challenge RandomAccess: ``T[ran & (N-1)] ^=
  ran`` over a huge table, with the generator-state reads that make it
  (nearly) pure random access.
* :class:`MummerKernel` — genome alignment: stream the reference
  sequence while descending a suffix-tree-like index whose nodes are
  scattered; occasional maximal-match extensions run sequentially.
* :class:`SysbenchMemoryKernel` — sysbench memory: block-wise
  reads/writes over a large region, mixing a sequential sweep with
  random block mode.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError

PAGE_BYTES = 4096


class GupsKernel:
    """HPCC RandomAccess over a table of ``table_pages`` 4KB pages."""

    def __init__(self, table_pages: int, base_vpn: int = 0x7F00 << 16, seed: int = 7):
        if table_pages < 1:
            raise ConfigurationError("GUPS table needs at least one page")
        self.table_pages = table_pages
        self.base_vpn = base_vpn
        self._rng = np.random.default_rng(np.random.SeedSequence([seed, table_pages]))

    def trace(self, length: int) -> np.ndarray:
        """Each update: read-modify-write one random table word.

        The LCG state and code pages live in registers/L1 and do not
        generate TLB-relevant traffic; the trace is the table stream.
        """
        return self.base_vpn + self._rng.integers(
            0, self.table_pages, size=length, dtype=np.int64
        )


class MummerKernel:
    """Genome alignment: reference streaming + index descents."""

    def __init__(
        self,
        reference_pages: int,
        index_pages: int,
        base_vpn: int = 0x7F00 << 16,
        seed: int = 7,
        match_run: int = 24,
        descent_depth: int = 6,
    ) -> None:
        if reference_pages < 1 or index_pages < 1:
            raise ConfigurationError("MUMmer needs reference and index regions")
        self.reference_base = base_vpn
        self.index_base = base_vpn + reference_pages
        self.reference_pages = reference_pages
        self.index_pages = index_pages
        self.match_run = match_run
        self.descent_depth = descent_depth
        self._rng = np.random.default_rng(
            np.random.SeedSequence([seed, reference_pages, index_pages])
        )

    def trace(self, length: int) -> np.ndarray:
        out = np.empty(length, dtype=np.int64)
        pos = 0
        ref_cursor = 0
        while pos < length:
            # Stream a stretch of the reference (query alignment window).
            run = min(self.match_run, length - pos)
            for i in range(run):
                out[pos] = self.reference_base + (ref_cursor + i) % self.reference_pages
                pos += 1
            ref_cursor = (ref_cursor + run) % self.reference_pages
            # Descend the suffix index: a handful of scattered node pages.
            for _ in range(min(self.descent_depth, length - pos)):
                out[pos] = self.index_base + int(
                    self._rng.integers(0, self.index_pages)
                )
                pos += 1
        return out[:length]


class SysbenchMemoryKernel:
    """sysbench memory: block operations over a large buffer."""

    def __init__(
        self,
        buffer_pages: int,
        base_vpn: int = 0x7F00 << 16,
        seed: int = 7,
        block_pages: int = 4,
        random_fraction: float = 0.5,
    ) -> None:
        if buffer_pages < block_pages:
            raise ConfigurationError("buffer smaller than one block")
        self.buffer_pages = buffer_pages
        self.base_vpn = base_vpn
        self.block_pages = block_pages
        self.random_fraction = random_fraction
        self._rng = np.random.default_rng(np.random.SeedSequence([seed, buffer_pages]))

    def trace(self, length: int) -> np.ndarray:
        out = np.empty(length, dtype=np.int64)
        pos = 0
        sweep = 0
        blocks = self.buffer_pages // self.block_pages
        while pos < length:
            if self._rng.random() < self.random_fraction:
                block = int(self._rng.integers(0, blocks))
            else:
                block = sweep
                sweep = (sweep + 1) % blocks
            start = block * self.block_pages
            for i in range(min(self.block_pages, length - pos)):
                out[pos] = self.base_vpn + start + i
                pos += 1
        return out[:length]
