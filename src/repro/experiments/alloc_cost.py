"""Section III: cycles to allocate+zero contiguous chunks vs fragmentation.

Reproduces the motivation measurements: at 0.7 FMFI, allocating 4KB, 8KB,
1MB, 8MB and 64MB costs 4K, 5K, 750K, 13M and 120M cycles respectively,
and above 0.7 FMFI the 64MB allocation fails.  We report both the cost
model directly (the embedded measured curve) and an end-to-end check
against a real buddy allocator fragmented by the
:class:`~repro.mem.fragmentation.Fragmenter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.errors import ContiguousAllocationError, OutOfMemoryError
from repro.common.units import GB, KB, MB, format_bytes
from repro.mem.alloc_cost import AllocationCostModel
from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import Fragmenter, fmfi
from repro.sim.results import format_table

SIZES = (4 * KB, 8 * KB, 1 * MB, 8 * MB, 64 * MB)
FMFI_LEVELS = (0.1, 0.3, 0.5, 0.7, 0.75)


@dataclass
class AllocCostResult:
    """cycles[(size, fmfi)] — None marks an allocation failure."""

    cycles: Dict[Tuple[int, float], float]
    buddy_check: Dict[float, bool]  # fmfi -> 64MB allocation succeeded


def run(levels: Tuple[float, ...] = FMFI_LEVELS, memory_gb: int = 2) -> AllocCostResult:
    model = AllocationCostModel()
    cycles: Dict[Tuple[int, float], float] = {}
    for size in SIZES:
        for level in levels:
            try:
                cycles[(size, level)] = model.cycles(size, level)
            except ContiguousAllocationError:
                cycles[(size, level)] = None
    # End-to-end: fragment a real buddy system and try the 64MB request.
    # At moderate fragmentation the request succeeds; near-total
    # fragmentation (no order-14 block survives) reproduces the failure.
    buddy_check: Dict[float, bool] = {}
    for level in (0.5, 0.99):
        buddy = BuddyAllocator(memory_gb * GB)
        fragmenter = Fragmenter(buddy)
        order = buddy.order_for_bytes(64 * MB)
        fragmenter.fragment_to(level, order, free_fraction=0.3, tolerance=0.005)
        try:
            buddy.alloc_bytes(64 * MB)
            buddy_check[level] = True
        except OutOfMemoryError:
            buddy_check[level] = False
    return AllocCostResult(cycles=cycles, buddy_check=buddy_check)


def format_result(result: AllocCostResult, levels: Tuple[float, ...] = FMFI_LEVELS) -> str:
    headers = ["Chunk"] + [f"FMFI {lvl}" for lvl in levels]
    rows: List[List[str]] = []
    for size in SIZES:
        row = [format_bytes(size)]
        for level in levels:
            value = result.cycles[(size, level)]
            row.append("FAIL" if value is None else f"{value:,.0f}")
        rows.append(row)
    table = format_table(
        headers, rows,
        title="Section III: allocation+zeroing cycles by chunk size and FMFI",
    )
    checks = "\n".join(
        f"buddy end-to-end at FMFI~{lvl}: 64MB allocation "
        + ("succeeded" if ok else "FAILED (as the paper observes)")
        for lvl, ok in result.buddy_check.items()
    )
    return table + "\n\n" + checks


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
