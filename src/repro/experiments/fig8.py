"""Figure 8: maximum contiguous memory allocated for the 4KB-page HPTs.

Per application: ECPT, ECPT+THP, ME-HPT, ME-HPT+THP.  The paper's
headline: ME-HPT reduces the maximum contiguous allocation by 92% (84%
with THP) on average, and from 64MB to 1MB for GUPS and SysBench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.units import MB, format_bytes
from repro.experiments.runner import ExperimentSettings, memory_sweep
from repro.sim.results import format_table


@dataclass
class Fig8Row:
    app: str
    ecpt_bytes: int
    ecpt_thp_bytes: int
    mehpt_bytes: int
    mehpt_thp_bytes: int

    def reduction(self) -> float:
        return 1.0 - self.mehpt_bytes / self.ecpt_bytes if self.ecpt_bytes else 0.0

    def reduction_thp(self) -> float:
        return 1.0 - self.mehpt_thp_bytes / self.ecpt_thp_bytes if self.ecpt_thp_bytes else 0.0


@dataclass
class Fig8Result:
    rows: List[Fig8Row]
    mean_reduction: float
    mean_reduction_thp: float


def run(settings: ExperimentSettings = ExperimentSettings()) -> Fig8Result:
    results = memory_sweep(settings, organizations=("ecpt", "mehpt"))
    rows: List[Fig8Row] = []
    for app in settings.app_list():
        rows.append(
            Fig8Row(
                app=app,
                ecpt_bytes=results[(app, "ecpt", False)].max_contiguous_bytes,
                ecpt_thp_bytes=results[(app, "ecpt", True)].max_contiguous_bytes,
                mehpt_bytes=results[(app, "mehpt", False)].max_contiguous_bytes,
                mehpt_thp_bytes=results[(app, "mehpt", True)].max_contiguous_bytes,
            )
        )
    mean = sum(r.reduction() for r in rows) / len(rows)
    mean_thp = sum(r.reduction_thp() for r in rows) / len(rows)
    return Fig8Result(rows=rows, mean_reduction=mean, mean_reduction_thp=mean_thp)


def format_result(result: Fig8Result) -> str:
    headers = ["App", "ECPT", "ECPT THP", "ME-HPT", "ME-HPT THP", "Reduction", "Reduction THP"]
    body = [
        [
            row.app,
            format_bytes(row.ecpt_bytes),
            format_bytes(row.ecpt_thp_bytes),
            format_bytes(row.mehpt_bytes),
            format_bytes(row.mehpt_thp_bytes),
            f"{row.reduction():.0%}",
            f"{row.reduction_thp():.0%}",
        ]
        for row in result.rows
    ]
    body.append([
        "Average", "", "", "", "",
        f"{result.mean_reduction:.0%}",
        f"{result.mean_reduction_thp:.0%}",
    ])
    return format_table(
        headers, body,
        title="Figure 8: max contiguous allocation for the 4KB-page HPTs",
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
