"""Parallel sweep engine with a persistent on-disk result cache.

The experiment grid — (workload, organization, THP, config overrides) —
is embarrassingly parallel: every cell builds an independent
:class:`~repro.sim.config.SimulatedSystem` from a seeded config, so the
same inputs always produce the same outputs.  :class:`SweepEngine`
exploits both properties:

* **Fan-out.** With ``jobs > 1`` pending cells are distributed over a
  ``concurrent.futures.ProcessPoolExecutor``; with ``jobs == 1`` they
  run inline (no pool, no pickling), which is also the bit-identical
  reference path the parallel path is tested against.

* **Persistence.** Each computed cell may be written to a JSON record
  under ``cache_dir``, keyed by a content hash of the *relevant*
  methodology fields (see :func:`settings_fingerprint`), the cell
  coordinates, the config overrides, and :data:`CACHE_SCHEMA_VERSION`.
  Repeated ``run_all`` / benchmark invocations — including across
  processes and sessions — then skip already-computed cells.  Aborted
  cells (the paper's >0.7-FMFI ECPT failures) are cached too: failures
  are *recorded* in the result dataclasses (``failed=True``), never
  raised, so a warm cache reproduces them faithfully.  Every stored
  record gets a ``<key>.manifest.json`` provenance sidecar (see
  :mod:`repro.obs.manifest`) with the cell coordinates, seed, wall-time,
  host, and the run's metric snapshot.

Cache invalidation: records embed :data:`CACHE_SCHEMA_VERSION`; bump it
whenever simulator or result semantics change so stale records are
treated as misses.  Corrupt or unreadable records are deleted and
recomputed.  ``repro.experiments.run_all --no-cache`` bypasses the disk
entirely.

Worker errors other than the recorded abort modes (e.g. a
:class:`~repro.common.errors.ConfigurationError`) propagate to the
caller exactly as they would inline — every library error pickles with
its structured context (see :mod:`repro.common.errors`).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.manifest import build_manifest, manifest_path, write_manifest
from repro.sim.results import SweepResult, result_from_record, result_to_record

logger = logging.getLogger(__name__)

#: Stamped into every disk record and hashed into every key.  Bump when
#: simulator or result semantics change: old records then hash to
#: different keys and are never served.  v3: results grew the
#: ``metrics`` snapshot field (repro.obs).
CACHE_SCHEMA_VERSION = 3

#: (workload, organization, thp) — one cell of the sweep grid.
Cell = Tuple[str, str, bool]

#: App names with this prefix are trace files (see repro.traces).
TRACE_APP_PREFIX = "trace:"

#: Override values of these types are hashed by value and may be served
#: from disk; anything else (e.g. a FaultPlan) is hashed by ``repr`` and
#: only memoised within the process.
_SCALAR_TYPES = (bool, int, float, str, type(None))


def settings_fingerprint(kind: str, settings) -> Dict[str, object]:
    """The fields of ``ExperimentSettings`` that can affect a ``kind`` cell.

    Memory results are populate-only — which pages exist, not how they
    are accessed — so ``trace_length``, ``base_cycles_per_access`` and
    ``warmup_fraction`` are excluded from the memory key (changing them
    must not evict memory results).  ``apps`` never matters: the cell's
    own workload is part of the key.
    """
    fingerprint: Dict[str, object] = {
        "scale": settings.scale,
        "seed": settings.seed,
        "fmfi": settings.fmfi,
    }
    if kind in ("perf", "datacenter"):
        fingerprint["trace_length"] = settings.trace_length
    if kind == "perf":
        fingerprint["base_cycles_per_access"] = settings.base_cycles_per_access
        fingerprint["warmup_fraction"] = getattr(settings, "warmup_fraction", 0.0)
    return fingerprint


def _canonical_overrides(overrides: Dict[str, object]) -> Tuple[List[List[object]], bool]:
    """Sort overrides into a JSON-stable list; flag non-scalar values.

    The ``engine`` override is excluded from the key: scalar and
    vectorized runs are bit-identical by contract (enforced by
    tests/test_sim_quantum.py and the fastpath equivalence suite), so a
    cell computed under either engine serves re-runs under the other.
    """
    canonical: List[List[object]] = []
    disk_cacheable = True
    for name in sorted(overrides):
        if name == "engine":
            continue
        value = overrides[name]
        if isinstance(value, _SCALAR_TYPES):
            canonical.append([name, value])
        else:
            canonical.append([name, repr(value)])
            disk_cacheable = False
    return canonical, disk_cacheable


def _normalize_app(app: str) -> str:
    """Replace a trace-file app's *path* with its *content* identity.

    A ``trace:<path>`` cell keys on ``trace:sha256:<digest>`` — the
    digest of the trace's encoded payload stored in its footer — so
    renaming or moving the file still hits the cache, while any change
    to the trace's contents misses it.  Synthetic app names pass
    through untouched.
    """
    if app.startswith(TRACE_APP_PREFIX):
        from repro.traces.format import trace_content_id

        digest = trace_content_id(app[len(TRACE_APP_PREFIX):])
        return f"{TRACE_APP_PREFIX}sha256:{digest}"
    return app


def cell_key(
    kind: str, settings, cell: Cell, overrides: Dict[str, object]
) -> Tuple[str, bool]:
    """Content-hash one grid cell.

    Returns ``(digest, disk_cacheable)``.  The digest keys both the
    in-process memo and the disk cache; ``disk_cacheable`` is False when
    an override value has no stable serialization (object ``repr`` may
    embed addresses), in which case the cell is only memoised in-process.
    Trace-backed cells are normalized via :func:`_normalize_app` so the
    key tracks trace *content*, never its filesystem location.
    """
    app, organization, thp = cell
    canonical, disk_cacheable = _canonical_overrides(overrides)
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": kind,
        "settings": settings_fingerprint(kind, settings),
        "app": _normalize_app(app),
        "organization": organization,
        "thp": thp,
        "overrides": canonical,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest(), disk_cacheable


def _compute_cell(
    kind: str, settings, cell: Cell, override_items: Tuple[Tuple[str, object], ...]
) -> SweepResult:
    """Run one grid cell to completion (also the worker entry point).

    Abort-mode failures are recorded inside the returned dataclass, so
    the only exceptions that escape are genuine errors, which pickle
    with their structured context across the pool boundary.
    """
    from repro.sim.simulator import TranslationSimulator, memory_result
    from repro.workloads import get_workload

    app, organization, thp = cell
    if kind == "datacenter":
        from repro.sim.datacenter import DatacenterSimulator, split_overrides

        params, config_overrides = split_overrides(dict(override_items))
        config = settings.config(organization, thp, **config_overrides)
        return DatacenterSimulator(
            [app], config, params=params, trace_length=settings.trace_length
        ).run()
    workload = get_workload(app, scale=settings.scale, seed=settings.seed)
    config = settings.config(organization, thp, **dict(override_items))
    if kind == "memory":
        return memory_result(config.build(workload))
    simulator = TranslationSimulator(
        workload,
        config,
        trace_length=settings.trace_length,
        warmup_fraction=getattr(settings, "warmup_fraction", 0.0),
    )
    return simulator.run()


def _timed_compute_cell(
    kind: str, settings, cell: Cell, override_items: Tuple[Tuple[str, object], ...]
) -> Tuple[SweepResult, float]:
    """:func:`_compute_cell` plus its wall-clock seconds (for manifests).

    Timing wraps the worker side of the pool boundary, so a parallel
    sweep's manifests record per-cell compute time, not queue time.
    """
    start = time.perf_counter()
    result = _compute_cell(kind, settings, cell, override_items)
    return result, time.perf_counter() - start


class ResultCache:
    """One-file-per-cell JSON cache of sweep results.

    Records are written atomically (temp file + ``os.replace``) so
    concurrent engines sharing a directory never observe torn writes.
    Unreadable or malformed records count as ``corrupt``, are deleted,
    and the cell is recomputed.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load(self, key: str, kind: str) -> Optional[SweepResult]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            if record["schema"] != CACHE_SCHEMA_VERSION or record["kind"] != kind:
                raise ValueError("stale or mismatched cache record")
            result = result_from_record(record["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.corrupt += 1
            self.misses += 1
            logger.warning("dropping corrupt cache record %s (%s)", path, exc)
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def store(self, key: str, kind: str, result: SweepResult) -> None:
        os.makedirs(self.directory, exist_ok=True)
        record = {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "result": result_to_record(result),
        }
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_path, self._path(key))
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }


@dataclass
class SweepEngine:
    """Resolves sweep cells through the disk cache and the process pool.

    ``jobs == 1`` runs cells inline in submission order — the reference
    path.  ``jobs > 1`` fans pending cells out over worker processes;
    seeded configs make the two paths produce identical results, which
    the test suite asserts dataclass-for-dataclass.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    use_cache: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(
                f"jobs {self.jobs} must be >= 1", field="jobs", value=self.jobs
            )
        self._cache: Optional[ResultCache] = (
            ResultCache(self.cache_dir)
            if (self.cache_dir and self.use_cache)
            else None
        )

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    def cache_stats(self) -> Optional[Dict[str, int]]:
        return self._cache.stats() if self._cache is not None else None

    def run_cells(
        self,
        kind: str,
        settings,
        cells: Sequence[Cell],
        overrides: Dict[str, object],
    ) -> Dict[Cell, SweepResult]:
        """Resolve every cell: disk cache first, then compute the rest."""
        if kind not in ("memory", "perf", "datacenter"):
            raise ConfigurationError(
                f"unknown sweep kind {kind!r}", field="kind", value=kind
            )
        out: Dict[Cell, SweepResult] = {}
        pending: List[Tuple[Cell, str, bool]] = []
        for cell in cells:
            key, disk_cacheable = cell_key(kind, settings, cell, overrides)
            if self._cache is not None and disk_cacheable:
                cached = self._cache.load(key, kind)
                if cached is not None:
                    out[cell] = cached
                    continue
            pending.append((cell, key, disk_cacheable))
        if pending:
            for (cell, key, disk_cacheable), (result, elapsed) in zip(
                pending, self._compute(kind, settings, pending, overrides)
            ):
                out[cell] = result
                if self._cache is not None and disk_cacheable:
                    self._cache.store(key, kind, result)
                    # Provenance sidecar; ResultCache never reads these,
                    # so a damaged manifest cannot poison a cache hit.
                    write_manifest(
                        manifest_path(self._cache.directory, key),
                        build_manifest(
                            key=key,
                            kind=kind,
                            cell=cell,
                            cache_schema=CACHE_SCHEMA_VERSION,
                            settings=settings_fingerprint(kind, settings),
                            seed=settings.seed,
                            elapsed_seconds=elapsed,
                            metrics=result.metrics,
                        ),
                    )
        return out

    def _compute(
        self,
        kind: str,
        settings,
        pending: Sequence[Tuple[Cell, str, bool]],
        overrides: Dict[str, object],
    ) -> List[Tuple[SweepResult, float]]:
        override_items = tuple(sorted(overrides.items()))
        if self.jobs == 1 or len(pending) == 1:
            return [
                _timed_compute_cell(kind, settings, cell, override_items)
                for cell, _key, _cacheable in pending
            ]
        workers = min(self.jobs, len(pending))
        logger.info(
            "fanning %d %s cells out over %d workers", len(pending), kind, workers
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_timed_compute_cell, kind, settings, cell, override_items)
                for cell, _key, _cacheable in pending
            ]
            return [future.result() for future in futures]


_DEFAULT_ENGINE = SweepEngine()

#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET = object()


def get_engine() -> SweepEngine:
    """The engine ``memory_sweep``/``perf_sweep`` submit through."""
    return _DEFAULT_ENGINE


def configure(jobs=_UNSET, cache_dir=_UNSET, use_cache=_UNSET) -> SweepEngine:
    """Reconfigure the default engine (run_all / benchmark CLI flags)."""
    global _DEFAULT_ENGINE
    changes = {}
    if jobs is not _UNSET:
        changes["jobs"] = jobs
    if cache_dir is not _UNSET:
        changes["cache_dir"] = cache_dir
    if use_cache is not _UNSET:
        changes["use_cache"] = use_cache
    _DEFAULT_ENGINE = replace(_DEFAULT_ENGINE, **changes)
    return _DEFAULT_ENGINE


def set_engine(engine: SweepEngine) -> None:
    """Install ``engine`` as the default (tests swap engines in and out)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine


def reset_engine() -> None:
    """Restore the stock serial, disk-less engine."""
    set_engine(SweepEngine())
