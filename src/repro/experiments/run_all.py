"""Run every experiment and emit one combined report.

``python -m repro.experiments.run_all [--fast] [--output FILE]``

Regenerates the Section III measurements, Tables I-III and Figures 8-16
in paper order, at the drivers' default settings (or the cheaper
``--fast`` preset), writing the combined report to stdout and optionally
to a file.  Sweep results are shared across experiments within the run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List, Tuple

from repro.experiments import (
    alloc_cost,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    table1,
    table2,
    table3,
)
from repro.experiments.runner import ExperimentSettings


def _sections(settings: ExperimentSettings) -> List[Tuple[str, Callable[[], str]]]:
    return [
        ("Section III: allocation costs",
         lambda: alloc_cost.format_result(alloc_cost.run(memory_gb=1))),
        ("Table I", lambda: table1.format_result(table1.run(settings))),
        ("Table II", lambda: table2.format_result(table2.run())),
        ("Table III", lambda: table3.format_result(table3.run())),
        ("Figure 8", lambda: fig8.format_result(fig8.run(settings))),
        ("Figure 9", lambda: fig9.format_result(fig9.run(settings))),
        ("Figure 10", lambda: fig10.format_result(fig10.run(settings))),
        ("Figure 11", lambda: fig11.format_result(fig11.run(settings))),
        ("Figure 12", lambda: fig12.format_result(fig12.run(settings))),
        ("Figure 13", lambda: fig13.format_result(fig13.run(settings))),
        ("Figure 14", lambda: fig14.format_result(fig14.run(settings))),
        ("Figure 15",
         lambda: fig15.format_result(fig15.run(ExperimentSettings(scale=1)))),
        ("Figure 16", lambda: fig16.format_result(fig16.run(settings))),
    ]


def run_all(settings: ExperimentSettings, stream=sys.stdout) -> None:
    """Execute every experiment, streaming formatted sections."""
    start = time.time()
    for title, producer in _sections(settings):
        section_start = time.time()
        print(f"\n{'#' * 70}\n# {title}\n{'#' * 70}", file=stream)
        print(producer(), file=stream)
        print(f"[{title}: {time.time() - section_start:.1f}s]", file=stream)
        stream.flush()
    print(f"\nall experiments completed in {time.time() - start:.1f}s", file=stream)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="smaller footprints and traces (benchmark preset)")
    parser.add_argument("--output", help="also write the report to this file")
    parser.add_argument("--scale", type=int, default=None,
                        help="override the footprint scale divisor")
    args = parser.parse_args(argv)
    settings = ExperimentSettings()
    if args.fast:
        settings = settings.fast()
    if args.scale:
        settings = ExperimentSettings(
            scale=args.scale, trace_length=settings.trace_length
        )
    run_all(settings)
    if args.output:
        with open(args.output, "w") as handle:
            run_all(settings, stream=handle)  # cached sweeps make this cheap


if __name__ == "__main__":
    main()
