"""Run every experiment and emit one combined report.

``python -m repro.experiments.run_all [--fast] [--jobs N] [--cache-dir D]
[--no-cache] [--output FILE]``

Regenerates the Section III measurements, Tables I-III and Figures 8-16
in paper order, at the drivers' default settings (or the cheaper
``--fast`` preset), writing the combined report to stdout and optionally
to a file.  Sweep results are shared across experiments within the run;
with ``--jobs N`` the sweep grids fan out over N worker processes, and
the persistent cache under ``--cache-dir`` lets repeated invocations
skip already-computed cells entirely (``--no-cache`` bypasses it).

The report stream carries only the deterministic section bodies — the
same settings produce a byte-identical report at any ``--jobs`` level.
Progress and timing go through :mod:`logging` (stderr).
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from typing import Callable, List, Tuple

from repro.experiments import (
    alloc_cost,
    datacenter,
    engine,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    table1,
    table2,
    table3,
)
from repro.experiments.runner import ExperimentSettings

logger = logging.getLogger(__name__)

#: Default persistent sweep cache (relative to the invocation directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def _sections(settings: ExperimentSettings) -> List[Tuple[str, Callable[[], str]]]:
    return [
        ("Section III: allocation costs",
         lambda: alloc_cost.format_result(alloc_cost.run(memory_gb=1))),
        ("Table I", lambda: table1.format_result(table1.run(settings))),
        ("Table II", lambda: table2.format_result(table2.run())),
        ("Table III", lambda: table3.format_result(table3.run())),
        ("Figure 8", lambda: fig8.format_result(fig8.run(settings))),
        ("Figure 9", lambda: fig9.format_result(fig9.run(settings))),
        ("Figure 10", lambda: fig10.format_result(fig10.run(settings))),
        ("Figure 11", lambda: fig11.format_result(fig11.run(settings))),
        ("Figure 12", lambda: fig12.format_result(fig12.run(settings))),
        ("Figure 13", lambda: fig13.format_result(fig13.run(settings))),
        ("Figure 14", lambda: fig14.format_result(fig14.run(settings))),
        ("Figure 15",
         lambda: fig15.format_result(fig15.run(ExperimentSettings(scale=1)))),
        ("Figure 16", lambda: fig16.format_result(fig16.run(settings))),
        ("Multi-tenant NUMA datacenter",
         lambda: datacenter.format_result(
             datacenter.run(settings, sockets=2, processes=4))),
    ]


def run_all(settings: ExperimentSettings, stream=sys.stdout) -> None:
    """Execute every experiment, streaming formatted sections.

    Only deterministic section output goes to ``stream``; wall-clock
    progress is reported through the module logger so parallel and
    repeated runs stay byte-identical.
    """
    start = time.time()
    for title, producer in _sections(settings):
        section_start = time.time()
        logger.info("running %s ...", title)
        print(f"\n{'#' * 70}\n# {title}\n{'#' * 70}", file=stream)
        print(producer(), file=stream)
        logger.info("%s done in %.1fs", title, time.time() - section_start)
        stream.flush()
    logger.info("all experiments completed in %.1fs", time.time() - start)


def _log_cache_stats() -> None:
    stats = engine.get_engine().cache_stats()
    if stats is not None:
        logger.info(
            "disk cache: hits=%(hits)d, misses=%(misses)d, stores=%(stores)d, "
            "corrupt=%(corrupt)d", stats,
        )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="smaller footprints and traces (benchmark preset)")
    parser.add_argument("--output", help="also write the report to this file")
    parser.add_argument("--scale", type=int, default=None,
                        help="override the footprint scale divisor")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep grids (1 = inline)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="persistent sweep-result cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the disk cache")
    args = parser.parse_args(argv)
    logging.basicConfig(
        stream=sys.stderr, level=logging.INFO, format="[%(levelname)s] %(message)s"
    )
    engine.configure(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        use_cache=not args.no_cache,
    )
    settings = ExperimentSettings()
    if args.fast:
        settings = settings.fast()
    if args.scale:
        settings = ExperimentSettings(
            scale=args.scale, trace_length=settings.trace_length
        )
    run_all(settings)
    if args.output:
        with open(args.output, "w") as handle:
            run_all(settings, stream=handle)  # cached sweeps make this cheap
    _log_cache_stats()


if __name__ == "__main__":
    main()
