"""Figure 15: small-application benefit of dynamically-changing chunks.

The eight graph applications are rescaled to 1K, 10K and 100K input
nodes and run under two ME-HPT designs:

* ``ME-HPT 1MB`` — a fixed 1MB chunk ladder (no small chunks);
* ``ME-HPT 1MB+8KB`` — the default ladder with 8KB chunks first.

Reported: the average physical memory of a 4KB-page HPT way.  Paper
shape: at 100K nodes both designs need ~1MB so they tie; at 10K and 1K
nodes the default design uses only ~128KB and ~16KB while the 1MB-only
design wastes a full chunk per way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.units import KB, MB, format_bytes
from repro.experiments.runner import ExperimentSettings
from repro.sim.config import SimulationConfig
from repro.sim.results import format_table
from repro.sim.simulator import populate_tables
from repro.workloads.registry import GRAPH_WORKLOADS, graph_workload_with_nodes

NODE_COUNTS = (1_000, 10_000, 100_000)

#: Chunk ladders under comparison.
LADDERS: Dict[str, Tuple[int, ...]] = {
    "ME-HPT 1MB": (1 * MB, 8 * MB, 64 * MB),
    "ME-HPT 1MB+8KB": (8 * KB, 1 * MB, 8 * MB, 64 * MB),
}


@dataclass
class Fig15Result:
    #: mean_way_bytes[(design, nodes)] -> average 4KB-way bytes over graph apps
    mean_way_bytes: Dict[Tuple[str, int], float]


def run(settings: ExperimentSettings = ExperimentSettings()) -> Fig15Result:
    mean_way_bytes: Dict[Tuple[str, int], float] = {}
    for design, ladder in LADDERS.items():
        for nodes in NODE_COUNTS:
            sizes: List[float] = []
            for app in GRAPH_WORKLOADS:
                workload = graph_workload_with_nodes(
                    app, nodes, scale=1, seed=settings.seed
                )
                config = SimulationConfig(
                    organization="mehpt",
                    thp_enabled=False,
                    scale=1,
                    seed=settings.seed,
                    fmfi=settings.fmfi,
                    chunk_sizes=ladder,
                )
                system = config.build(workload)
                populate_tables(system)
                sizes.extend(system.page_tables.way_bytes("4K"))
            mean_way_bytes[(design, nodes)] = sum(sizes) / len(sizes)
    return Fig15Result(mean_way_bytes=mean_way_bytes)


def format_result(result: Fig15Result) -> str:
    headers = ["Design"] + [f"{n//1000}K nodes" for n in NODE_COUNTS]
    body: List[List[str]] = []
    for design in LADDERS:
        body.append(
            [design]
            + [
                format_bytes(int(result.mean_way_bytes[(design, nodes)]))
                for nodes in NODE_COUNTS
            ]
        )
    return format_table(
        headers, body,
        title="Figure 15: average 4KB-HPT way memory for small graph inputs",
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
