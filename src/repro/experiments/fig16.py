"""Figure 16: distribution of cuckoo re-insertions per insertion/rehash.

Every HPT insertion or rehash may displace occupants (cuckoo kicks); the
paper reports that with probability 0.64 no re-insertion is needed and
the mean is ~0.7 re-insertions, making the non-hidden L2P latency on the
re-insertion path negligible.  We merge the kick histograms of every
application's ME-HPT run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.runner import ExperimentSettings, memory_sweep
from repro.sim.results import format_table

MAX_BUCKET = 11


@dataclass
class Fig16Result:
    histogram: Counter
    distribution: List[float]  # P(0) .. P(MAX_BUCKET)
    mean: float
    p_zero: float


def run(settings: ExperimentSettings = ExperimentSettings()) -> Fig16Result:
    results = memory_sweep(settings, organizations=("mehpt",), thp_options=(False,))
    merged: Counter = Counter()
    for result in results.values():
        merged.update(result.kick_histogram)
    total = sum(merged.values())
    distribution = []
    for k in range(MAX_BUCKET + 1):
        if k == MAX_BUCKET:
            count = sum(n for kk, n in merged.items() if kk >= k)
        else:
            count = merged.get(k, 0)
        distribution.append(count / total if total else 0.0)
    mean = (
        sum(k * n for k, n in merged.items()) / total if total else 0.0
    )
    return Fig16Result(
        histogram=merged,
        distribution=distribution,
        mean=mean,
        p_zero=distribution[0] if distribution else 0.0,
    )


def format_result(result: Fig16Result) -> str:
    headers = ["Re-insertions", "Probability"]
    body = [
        [str(k) if k < MAX_BUCKET else f">={MAX_BUCKET}", f"{p:.3f}"]
        for k, p in enumerate(result.distribution)
    ]
    table = format_table(
        headers, body,
        title="Figure 16: cuckoo re-insertions per insertion or rehash",
    )
    return table + f"\nmean re-insertions: {result.mean:.2f} (paper: ~0.7, P(0)~0.64)"


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
