"""Figure 12: final size of each ME-HPT way for 4KB pages.

Per application, per way, without and with THP.  Paper observations: way
sizes differ (per-way resizing works), GUPS/SysBench reach 64MB per way
without THP but stay at the initial 8KB with THP, MUMmer ways are ~0.5MB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.units import format_bytes
from repro.experiments.runner import ExperimentSettings, memory_sweep
from repro.sim.results import format_table


@dataclass
class Fig12Result:
    #: way_bytes[(app, thp)] -> bytes per way (full-scale equivalents)
    way_bytes: Dict[object, List[int]]
    apps: List[str]

    def differing_ways(self, thp: bool) -> List[str]:
        """Apps whose ways ended at different sizes (per-way evidence)."""
        return [
            app for app in self.apps
            if len(set(self.way_bytes[(app, thp)])) > 1
        ]


def run(settings: ExperimentSettings = ExperimentSettings()) -> Fig12Result:
    results = memory_sweep(settings, organizations=("mehpt",))
    apps = settings.app_list()
    way_bytes = {
        (app, thp): results[(app, "mehpt", thp)].way_bytes_4k
        for app in apps
        for thp in (False, True)
    }
    return Fig12Result(way_bytes=way_bytes, apps=apps)


def format_result(result: Fig12Result) -> str:
    headers = ["App", "Way0", "Way1", "Way2", "Way0 THP", "Way1 THP", "Way2 THP"]
    body: List[List[str]] = []
    for app in result.apps:
        no_thp = result.way_bytes[(app, False)]
        thp = result.way_bytes[(app, True)]
        body.append(
            [app]
            + [format_bytes(v) for v in no_thp]
            + [format_bytes(v) for v in thp]
        )
    table = format_table(
        headers, body,
        title="Figure 12: size of each ME-HPT way for 4KB pages",
    )
    differing = result.differing_ways(False)
    return table + (
        f"\napps with unequal way sizes (per-way resizing at work): "
        f"{', '.join(differing) if differing else 'none'}"
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
