"""Experiment drivers: one module per table/figure of the paper.

Every driver exposes ``run(settings) -> result`` returning structured
data and ``format_result(result) -> str`` rendering the paper-style
table; ``python -m repro.experiments.<name>`` prints it.  The shared
sweep machinery lives in :mod:`repro.experiments.runner`, which submits
through the parallel engine in :mod:`repro.experiments.engine`
(``--jobs`` process fan-out + persistent disk cache).

==============  ===========================================================
Module          Reproduces
==============  ===========================================================
``alloc_cost``  Section III allocation-cost measurements
``table1``      Table I — per-application page-table memory consumption
``table2``      Table II — max way sizes / mapping space per chunk size
``table3``      Table III — architectural parameters (configuration dump)
``fig8``        Figure 8 — max contiguous allocation, ECPT vs ME-HPT
``fig9``        Figure 9 — speedups over radix without THP
``fig10``       Figure 10 — page-table memory reduction, split by technique
``fig11``       Figure 11 — upsizing operations per way
``fig12``       Figure 12 — final size of each ME-HPT way
``fig13``       Figure 13 — fraction of entries moved per in-place upsize
``fig14``       Figure 14 — L2P table entries used
``fig15``       Figure 15 — small-graph way sizes, chunk-ladder ablation
``fig16``       Figure 16 — cuckoo re-insertion distribution
``resilience``  Robustness — FMFI survival sweep with fault injection
==============  ===========================================================
"""

from repro.experiments.engine import SweepEngine, configure, get_engine
from repro.experiments.runner import ExperimentSettings, memory_sweep, perf_sweep

__all__ = [
    "ExperimentSettings",
    "SweepEngine",
    "configure",
    "get_engine",
    "memory_sweep",
    "perf_sweep",
]
