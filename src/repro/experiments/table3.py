"""Table III: the architectural parameters used in the evaluation.

A configuration dump — useful to confirm a built system actually honours
the paper's parameters (the test suite asserts key ones against live
structures).
"""

from __future__ import annotations

from typing import Dict

from repro.sim.config import SimulationConfig, table3_parameters
from repro.sim.results import format_table
from repro.workloads import get_workload


def run() -> Dict[str, str]:
    return table3_parameters()


def live_check() -> Dict[str, bool]:
    """Verify a built ME-HPT system against headline Table III values."""
    config = SimulationConfig(organization="mehpt", scale=1)
    system = config.build(get_workload("TC", scale=64))
    tables = system.page_tables
    checks = {
        "3 ways per page size": all(
            t.table.num_ways == 3 for t in tables.tables.values()
        ),
        "initial 128 entries per way": all(
            way.size == 128
            for t in tables.tables.values()
            for way in t.table.ways
        ),
        "L2P: 288 entries": tables.l2p.total_entries() == 288,
        "L2P: 1.16KB": abs(tables.l2p.table_bits() / 8 / 1024 - 1.16) < 0.01,
        "upsize threshold 0.6": all(
            t.table.policy.upsize_threshold == 0.6 for t in tables.tables.values()
        ),
        "downsize threshold 0.2": all(
            t.table.policy.downsize_threshold == 0.2 for t in tables.tables.values()
        ),
    }
    return checks


def format_result(params: Dict[str, str]) -> str:
    rows = [[key, value] for key, value in params.items()]
    return format_table(["Parameter", "Value"], rows,
                        title="Table III: architectural parameters")


def main() -> None:
    print(format_result(run()))
    print()
    for name, ok in live_check().items():
        print(f"  live check {name}: {'ok' if ok else 'FAILED'}")


if __name__ == "__main__":
    main()
