"""Table I: memory consumption of the applications.

Per application: data memory (GB), maximum contiguous page-table
allocation under radix and ECPT, and total page-table memory under radix
and ECPT, without and with THP.  The radix contiguous column is always
4KB (one node); the ECPT contiguous column is the final way size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.units import GB, KB, MB
from repro.experiments.runner import ExperimentSettings, memory_sweep
from repro.sim.results import MemoryFootprintResult, format_table
from repro.workloads import ALL_WORKLOADS


@dataclass
class Table1Row:
    app: str
    data_gb: float
    tree_contig_kb: float
    ecpt_contig_kb: float
    tree_total_mb: float
    ecpt_total_mb: float
    tree_total_thp_mb: float
    ecpt_total_thp_mb: float


def run(settings: ExperimentSettings = ExperimentSettings()) -> List[Table1Row]:
    results = memory_sweep(
        settings, organizations=("radix", "ecpt"), thp_options=(False, True)
    )
    rows: List[Table1Row] = []
    for app in settings.app_list():
        tree = results[(app, "radix", False)]
        tree_thp = results[(app, "radix", True)]
        ecpt = results[(app, "ecpt", False)]
        ecpt_thp = results[(app, "ecpt", True)]
        rows.append(
            Table1Row(
                app=app,
                data_gb=ALL_WORKLOADS[app].data_gb,
                tree_contig_kb=tree.max_contiguous_bytes / KB,
                ecpt_contig_kb=ecpt.max_contiguous_bytes / KB,
                tree_total_mb=tree.total_pt_bytes / MB,
                ecpt_total_mb=ecpt.peak_pt_bytes / MB,
                tree_total_thp_mb=tree_thp.total_pt_bytes / MB,
                ecpt_total_thp_mb=ecpt_thp.peak_pt_bytes / MB,
            )
        )
    return rows


def geomean(values: List[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    product = 1.0
    for value in positive:
        product *= value
    return product ** (1.0 / len(positive))


def format_result(rows: List[Table1Row]) -> str:
    headers = [
        "App", "Data(GB)",
        "Contig Tree(KB)", "Contig ECPT(KB)",
        "Total Tree(MB)", "Total ECPT(MB)",
        "Total Tree THP(MB)", "Total ECPT THP(MB)",
    ]
    body: List[List[str]] = []
    for row in rows:
        body.append([
            row.app,
            f"{row.data_gb:.1f}",
            f"{row.tree_contig_kb:.0f}",
            f"{row.ecpt_contig_kb:.0f}",
            f"{row.tree_total_mb:.2f}",
            f"{row.ecpt_total_mb:.1f}",
            f"{row.tree_total_thp_mb:.2f}",
            f"{row.ecpt_total_thp_mb:.1f}",
        ])
    body.append([
        "GeoMean",
        f"{geomean([r.data_gb for r in rows]):.1f}",
        f"{geomean([r.tree_contig_kb for r in rows]):.1f}",
        f"{geomean([r.ecpt_contig_kb for r in rows]):.1f}",
        f"{geomean([r.tree_total_mb for r in rows]):.1f}",
        f"{geomean([r.ecpt_total_mb for r in rows]):.1f}",
        f"{geomean([r.tree_total_thp_mb for r in rows]):.1f}",
        f"{geomean([r.ecpt_total_thp_mb for r in rows]):.1f}",
    ])
    return format_table(headers, body, title="Table I: memory consumption of the applications")


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
