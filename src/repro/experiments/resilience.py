"""Fragmentation-resilience experiment: survival under rising FMFI.

The paper's Section III observation, turned into a survival curve: sweep
machine fragmentation (FMFI) from pristine to pathological and populate
GUPS — whose 4KB HPT ways reach the 64MB contiguous allocations of
Table I — under each organization.  ECPT's contiguous ways abort (the
failure is *recorded*, never an unhandled crash) once a way doubling
needs 64MB of contiguous memory above 0.7 FMFI; ME-HPT's chunked ways
never request more than 1MB contiguously and complete at every point.

A deterministic transient-fault plan is armed on top of the FMFI rule so
the sweep also exercises the graceful-degradation machinery: injected
transient allocation failures are retried with cycle-charged backoff,
and ``check_invariants()`` runs periodically during population, so each
row reports degradation events, recovery cycles, and that the surviving
tables stayed verified-consistent.

``python -m repro.experiments.resilience`` prints the survival table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.common.units import format_bytes
from repro.experiments.runner import ExperimentSettings
from repro.faults.plan import SITE_CHUNK_ALLOC, FaultPlan, FaultSpec
from repro.sim.results import format_table
from repro.sim.simulator import memory_result
from repro.workloads import get_workload

#: Dense below the paper's 0.7 threshold, then the failure region.
DEFAULT_FMFI_POINTS: Tuple[float, ...] = (
    0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.9
)

#: GUPS is the workload whose ways grow largest (64MB in Table I).
DEFAULT_APP = "GUPS"

#: Invariant-check cadence during population (pages).
DEFAULT_CHECK_EVERY = 2048


def default_fault_plan(seed: int = 12345) -> FaultPlan:
    """Transient allocation faults: every 17th eligible request, 24 max.

    Deterministic (``every``-based), so two runs of the sweep produce
    identical degradation logs — the determinism acceptance test relies
    on this plan.
    """
    return FaultPlan(
        [FaultSpec(SITE_CHUNK_ALLOC, every=17, max_failures=24)],
        seed=seed,
    )


@dataclass
class ResilienceRow:
    """One (FMFI, organization) survival point."""

    fmfi: float
    organization: str
    completed: bool
    failure_reason: str = ""
    invariant_violation: str = ""
    max_contiguous_bytes: int = 0
    degradation_counts: Dict[str, int] = field(default_factory=dict)
    recovery_cycles: float = 0.0

    def degradation_events(self) -> int:
        return sum(self.degradation_counts.values())


@dataclass
class ResilienceResult:
    rows: List[ResilienceRow]
    #: Lowest FMFI at which ECPT failed to complete (None = never).
    ecpt_crash_fmfi: Optional[float]
    #: Whether ME-HPT completed every point with zero invariant violations.
    mehpt_survived_all: bool
    #: Reproducer-corpus replay verdicts (``repro.fuzz``), when a corpus
    #: directory was passed; empty otherwise.
    corpus_replays: List = field(default_factory=list)

    def corpus_ok(self) -> bool:
        """True when every replayed corpus entry matched its manifest."""
        return all(replay.ok for replay in self.corpus_replays)


def run(
    settings: ExperimentSettings = ExperimentSettings(),
    fmfi_points: Sequence[float] = DEFAULT_FMFI_POINTS,
    app: str = DEFAULT_APP,
    fault_plan: Optional[FaultPlan] = None,
    invariant_check_every: int = DEFAULT_CHECK_EVERY,
    corpus_dir: Optional[str] = None,
) -> ResilienceResult:
    """Sweep FMFI for ECPT and ME-HPT; no sweep cache (each point is unique).

    With ``corpus_dir`` the sweep additionally replays the adversarial
    reproducer corpus (see :mod:`repro.fuzz.corpus`) and attaches the
    per-entry verdicts, so one command re-validates both the survival
    curve and every minimized failure the fuzzer has banked.
    """
    plan = fault_plan if fault_plan is not None else default_fault_plan(settings.seed)
    rows: List[ResilienceRow] = []
    for fmfi in fmfi_points:
        for org in ("ecpt", "mehpt"):
            workload = get_workload(app, scale=settings.scale, seed=settings.seed)
            config = settings.config(
                org,
                thp=False,
                fmfi=fmfi,
                fault_plan=plan,
                invariant_check_every=invariant_check_every,
            )
            system = config.build(workload)
            try:
                result = memory_result(system)
            except SimulationError as exc:
                # An invariant violation is a finding, not a crash: the
                # row records it and the sweep continues.
                rows.append(
                    ResilienceRow(
                        fmfi=fmfi,
                        organization=org,
                        completed=False,
                        invariant_violation=repr(exc),
                        degradation_counts=dict(system.degradation.counts()),
                        recovery_cycles=system.degradation.recovery_cycles,
                    )
                )
                continue
            rows.append(
                ResilienceRow(
                    fmfi=fmfi,
                    organization=org,
                    completed=not result.failed,
                    failure_reason=result.failure_reason,
                    max_contiguous_bytes=result.max_contiguous_bytes,
                    degradation_counts=result.degradation_counts,
                    recovery_cycles=result.recovery_cycles,
                )
            )
    ecpt_failures = sorted(
        row.fmfi for row in rows if row.organization == "ecpt" and not row.completed
    )
    mehpt_ok = all(
        row.completed and not row.invariant_violation
        for row in rows
        if row.organization == "mehpt"
    )
    replays: List = []
    if corpus_dir is not None:
        from repro.fuzz.corpus import replay_corpus

        replays = replay_corpus(corpus_dir)
    return ResilienceResult(
        rows=rows,
        ecpt_crash_fmfi=ecpt_failures[0] if ecpt_failures else None,
        mehpt_survived_all=mehpt_ok,
        corpus_replays=replays,
    )


def format_result(result: ResilienceResult) -> str:
    headers = ["FMFI", "Org", "Outcome", "Max contig", "Degradations", "Recovery cyc"]
    body = []
    for row in result.rows:
        if row.invariant_violation:
            outcome = "INVARIANT VIOLATION"
        elif row.completed:
            outcome = "completed"
        else:
            outcome = "aborted"
        body.append([
            f"{row.fmfi:.2f}",
            row.organization,
            outcome,
            format_bytes(row.max_contiguous_bytes),
            str(row.degradation_events()),
            f"{row.recovery_cycles:.0f}",
        ])
    crash = (
        f"{result.ecpt_crash_fmfi:.2f}"
        if result.ecpt_crash_fmfi is not None
        else "never"
    )
    survived = "yes" if result.mehpt_survived_all else "NO"
    table = format_table(
        headers, body,
        title="Fragmentation resilience: survival vs FMFI (GUPS, 4KB HPTs)",
    )
    lines = [
        table,
        f"ECPT first abort at FMFI: {crash}",
        f"ME-HPT survived all points, invariants verified: {survived}",
    ]
    if result.corpus_replays:
        good = sum(1 for replay in result.corpus_replays if replay.ok)
        lines.append(
            f"Adversarial corpus: {good}/{len(result.corpus_replays)} "
            f"reproducers replayed with matching classification"
        )
        for replay in result.corpus_replays:
            if not replay.ok:
                lines.append(f"  MISMATCH {replay.name}: {replay.detail}")
    return "\n".join(lines)


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--corpus", default=None,
        help="also replay the repro.fuzz reproducer corpus at this directory",
    )
    args = parser.parse_args()
    print(format_result(run(corpus_dir=args.corpus)))


if __name__ == "__main__":
    main()
