"""Multi-tenant NUMA datacenter sweeps: replication cost by organization.

``python -m repro.experiments.datacenter [--fast] [--sockets N]
[--processes N] [--policies ...] [--organizations ...] [--jobs N]
[--cache-dir D] [--no-cache]``

Sweeps sockets × tenants × replication policy × page-table organization
through the shared :class:`~repro.experiments.engine.SweepEngine` (so
cells are cached, parallel, and servable via :mod:`repro.serve`) and
reports the question the subsystem exists to answer: **does ME-HPT
replicate more cheaply than radix?**  Radix must copy one 4KB node per
~2MB of mapped VA to every replica socket; ME-HPT copies a handful of
chunks — the "Replicated" and "Shootdown cycles" columns make that
directly comparable in one table.
"""

from __future__ import annotations

import argparse
import logging
import sys
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.experiments import engine
from repro.experiments.runner import ExperimentSettings, datacenter_sweep
from repro.sim.datacenter import POLICIES, DatacenterResult
from repro.sim.results import format_table

#: Default tenant app: every tenant runs a GUPS-shaped working set.
DEFAULT_APP = "GUPS"
#: (organization, policy) -> result, in report order.
GridKey = Tuple[str, str]


@dataclass
class DatacenterExperimentResult:
    """The swept grid plus the sweep's shape, ready for formatting."""

    sockets: int
    processes: int
    grid: Dict[GridKey, DatacenterResult]


def run(
    settings: ExperimentSettings = ExperimentSettings(),
    sockets: int = 2,
    processes: int = 8,
    policies: Tuple[str, ...] = POLICIES,
    organizations: Tuple[str, ...] = ("radix", "ecpt", "mehpt"),
    app: str = DEFAULT_APP,
    **dc_overrides,
) -> DatacenterExperimentResult:
    """Sweep organizations × policies on one machine shape."""
    grid: Dict[GridKey, DatacenterResult] = {}
    for policy in policies:
        overrides = dict(
            dc_sockets=sockets,
            dc_processes=processes,
            dc_policy=policy,
            dc_churn_every=8,
            dc_max_forks=max(2, processes // 4),
        )
        overrides.update(dc_overrides)
        results = datacenter_sweep(
            settings, organizations=organizations, apps=(app,), **overrides
        )
        for (cell_app, org, _thp), result in results.items():
            grid[(org, policy)] = result
    return DatacenterExperimentResult(
        sockets=sockets, processes=processes, grid=grid
    )


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.2f}MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KB"
    return str(n)


def format_result(result: DatacenterExperimentResult) -> str:
    """One org × policy table: replication bytes and NUMA taxes."""
    headers = [
        "Org", "Policy", "Replicated", "Migrated", "Shootdown cycles",
        "Remote DRAM", "Switch ovh", "Total Mcycles", "Status",
    ]
    body: List[List[str]] = []
    for (org, policy), cell in result.grid.items():
        body.append([
            org,
            policy,
            _fmt_bytes(cell.replicated_bytes),
            _fmt_bytes(cell.migrated_bytes),
            f"{cell.shootdown_cycles:.0f}",
            f"{cell.remote_dram_fraction():.3f}",
            f"{cell.switch_overhead():.4f}",
            f"{cell.total_cycles / 1e6:.2f}",
            "FAILED" if cell.failed else "ok",
        ])
    table = format_table(
        headers, body,
        title=(
            f"Datacenter: {result.sockets} sockets x {result.processes} "
            "tenants, replication cost by organization"
        ),
    )
    lines = [table]
    # The headline comparison, stated explicitly for the report reader.
    radix = result.grid.get(("radix", "replicate"))
    mehpt = result.grid.get(("mehpt", "replicate"))
    if radix and mehpt and mehpt.replicated_bytes:
        ratio = radix.replicated_bytes / mehpt.replicated_bytes
        lines.append(
            f"radix replicates {ratio:.1f}x more page-table bytes than ME-HPT"
        )
    return "\n".join(lines)


def main(argv=None) -> None:
    """CLI entry point mirroring ``run_all``'s engine flags."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="smaller footprints and traces")
    parser.add_argument("--sockets", type=int, default=2)
    parser.add_argument("--processes", type=int, default=8,
                        help="tenants sharing the machine")
    parser.add_argument("--policies", nargs="+", default=list(POLICIES),
                        choices=list(POLICIES))
    parser.add_argument("--organizations", nargs="+",
                        default=["radix", "ecpt", "mehpt"],
                        choices=["radix", "ecpt", "mehpt"])
    parser.add_argument("--app", default=DEFAULT_APP)
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--trace-length", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", default=None,
                        help="persistent sweep-result cache directory")
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(
        stream=sys.stderr, level=logging.INFO, format="[%(levelname)s] %(message)s"
    )
    engine.configure(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        use_cache=not args.no_cache and args.cache_dir is not None,
    )
    settings = ExperimentSettings()
    if args.fast:
        settings = settings.fast()
    if args.scale is not None:
        settings = replace(settings, scale=args.scale)
    if args.trace_length is not None:
        settings = replace(settings, trace_length=args.trace_length)
    result = run(
        settings,
        sockets=args.sockets,
        processes=args.processes,
        policies=tuple(args.policies),
        organizations=tuple(args.organizations),
        app=args.app,
    )
    print(format_result(result))
    stats = engine.get_engine().cache_stats()
    if stats is not None:
        logging.info(
            "disk cache: hits=%(hits)d, misses=%(misses)d, "
            "stores=%(stores)d, corrupt=%(corrupt)d", stats,
        )


if __name__ == "__main__":
    main()
