"""Table II: maximum HPT way sizes and mapping space per chunk size.

For each ladder chunk size: the largest way the 64-entry (with stealing)
L2P subtable supports, and the application data a full 3-way HPT of that
size can map with 4KB and with 2MB pages.  These are analytic properties
of the design; we additionally *verify* the small-chunk row against a
live ME-HPT instance (build a way of the claimed maximum and check the
L2P budget is exactly exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.units import CACHE_LINE, KB, MB, format_bytes
from repro.core.chunks import DEFAULT_CHUNK_SIZES, ChunkLadder
from repro.core.l2p import L2PTable
from repro.hashing.clustered import PAGES_PER_BLOCK
from repro.hashing.storage import ChunkedStorage
from repro.sim.results import format_table

#: Data bytes one HPT slot maps: 8 PTEs per 64B line.
BYTES_MAPPED_PER_SLOT_4K = PAGES_PER_BLOCK * 4 * KB
BYTES_MAPPED_PER_SLOT_2M = PAGES_PER_BLOCK * 2 * MB


@dataclass
class Table2Row:
    chunk_bytes: int
    max_way_bytes: int
    map_4k_bytes: int
    map_2m_bytes: int


def run(ways: int = 3) -> List[Table2Row]:
    ladder = ChunkLadder(DEFAULT_CHUNK_SIZES)
    rows: List[Table2Row] = []
    for chunk in ladder.sizes:
        max_way = ladder.max_way_bytes(chunk)
        slots_total = (max_way // CACHE_LINE) * ways
        rows.append(
            Table2Row(
                chunk_bytes=chunk,
                max_way_bytes=max_way,
                map_4k_bytes=slots_total * BYTES_MAPPED_PER_SLOT_4K,
                map_2m_bytes=slots_total * BYTES_MAPPED_PER_SLOT_2M,
            )
        )
    return rows


def verify_smallest_row_live(row: Table2Row) -> bool:
    """Build an actual way of the claimed max and confirm budget exhaustion."""
    l2p = L2PTable(ways=3)
    budget = l2p.subtable(0, "4K")
    storage = ChunkedStorage(
        row.max_way_bytes // CACHE_LINE,
        chunk_bytes=row.chunk_bytes,
        budget=budget,
    )
    full = budget.in_use == budget.capacity_with_steal
    cannot_grow = not storage.extend_to(storage.size_slots * 2)
    storage.release()
    return full and cannot_grow


def format_result(rows: List[Table2Row]) -> str:
    headers = [
        "Chunk Size", "Max HPT Way Size",
        "Max Mapping (4KB pages)", "Max Mapping (2MB pages)",
    ]
    body = [
        [
            format_bytes(row.chunk_bytes),
            format_bytes(row.max_way_bytes),
            format_bytes(row.map_4k_bytes),
            format_bytes(row.map_2m_bytes),
        ]
        for row in rows
    ]
    return format_table(
        headers, body,
        title="Table II: max way sizes and total HPT mapping space per chunk size",
    )


def main() -> None:
    rows = run()
    print(format_result(rows))
    ok = verify_smallest_row_live(rows[0])
    print(f"\nlive verification of the {format_bytes(rows[0].chunk_bytes)} row: "
          + ("passed" if ok else "FAILED"))


if __name__ == "__main__":
    main()
