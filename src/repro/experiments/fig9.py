"""Figure 9: speedups over radix without THP.

Six bars per application: Radix, ECPT, ME-HPT, each without and with THP,
all normalised to Radix without THP.  Headlines: ME-HPT averages 1.23x
(no THP) and 1.28x (THP) over radix, and 1.09x / 1.06x over ECPT.  An
``x`` entry marks a configuration that could not finish (ECPT's 64MB
contiguous allocation failing above 0.7 FMFI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.runner import ExperimentSettings, perf_sweep
from repro.sim.results import PerformanceResult, format_table, geomean, speedup

CONFIGS: Tuple[Tuple[str, bool], ...] = (
    ("radix", False), ("ecpt", False), ("mehpt", False),
    ("radix", True), ("ecpt", True), ("mehpt", True),
)


@dataclass
class Fig9Result:
    #: speedups[app][(org, thp)] normalised to (radix, False); 0.0 = failed.
    speedups: Dict[str, Dict[Tuple[str, bool], float]]
    raw: Dict[Tuple[str, str, bool], PerformanceResult]

    def average(self, org: str, thp: bool) -> float:
        return geomean([self.speedups[app][(org, thp)] for app in self.speedups])

    def mehpt_over_ecpt(self, thp: bool) -> float:
        ratios = []
        for app in self.speedups:
            ecpt = self.speedups[app][("ecpt", thp)]
            mehpt = self.speedups[app][("mehpt", thp)]
            if ecpt > 0 and mehpt > 0:
                ratios.append(mehpt / ecpt)
        return geomean(ratios)


def run(settings: ExperimentSettings = ExperimentSettings()) -> Fig9Result:
    raw = perf_sweep(settings)
    speedups: Dict[str, Dict[Tuple[str, bool], float]] = {}
    for app in settings.app_list():
        base = raw[(app, "radix", False)]
        speedups[app] = {
            (org, thp): speedup(raw[(app, org, thp)], base)
            for org, thp in CONFIGS
        }
    return Fig9Result(speedups=speedups, raw=raw)


def format_result(result: Fig9Result) -> str:
    headers = ["App"] + [
        f"{org.upper()}{' THP' if thp else ''}" for org, thp in CONFIGS
    ]
    body: List[List[str]] = []
    for app, per_config in result.speedups.items():
        row = [app]
        for cfg in CONFIGS:
            value = per_config[cfg]
            row.append("x" if value == 0.0 else f"{value:.2f}")
        body.append(row)
    body.append(
        ["GeoMean"] + [f"{result.average(org, thp):.2f}" for org, thp in CONFIGS]
    )
    table = format_table(headers, body, title="Figure 9: speedup over Radix (no THP)")
    summary = (
        f"\nME-HPT over ECPT: {result.mehpt_over_ecpt(False):.3f}x (no THP), "
        f"{result.mehpt_over_ecpt(True):.3f}x (THP)"
    )
    return table + summary


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
