"""Figure 13: fraction of page-table entries moved in an in-place upsize.

In-place resizing re-indexes each entry with one extra hash bit, so in
expectation half the entries keep their slot — the measured fraction of
*moved* entries should sit near 0.5 (vs 1.0 for out-of-place resizing,
and vs Level Hashing's 1/3 with 4x lookup probes, Section IX).
Applications whose 4KB tables never upsize under THP (GUPS, SysBench)
are excluded from the average, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.runner import ExperimentSettings, memory_sweep
from repro.sim.results import format_table


@dataclass
class Fig13Result:
    #: fraction[(app, thp)] -> mean fraction moved across ways (0 if no upsizes)
    fraction: Dict[object, float]
    apps: List[str]

    def average(self, thp: bool) -> float:
        values = [
            self.fraction[(app, thp)]
            for app in self.apps
            if self.fraction[(app, thp)] > 0
        ]
        return sum(values) / len(values) if values else 0.0


def run(settings: ExperimentSettings = ExperimentSettings()) -> Fig13Result:
    results = memory_sweep(settings, organizations=("mehpt",))
    apps = settings.app_list()
    fraction: Dict[object, float] = {}
    for app in apps:
        for thp in (False, True):
            fraction[(app, thp)] = results[(app, "mehpt", thp)].mean_moved_fraction()
    return Fig13Result(fraction=fraction, apps=apps)


def format_result(result: Fig13Result) -> str:
    headers = ["App", "Fraction moved", "Fraction moved THP"]
    body: List[List[str]] = []
    for app in result.apps:
        body.append([
            app,
            f"{result.fraction[(app, False)]:.3f}",
            f"{result.fraction[(app, True)]:.3f}",
        ])
    body.append([
        "Average",
        f"{result.average(False):.3f}",
        f"{result.average(True):.3f}",
    ])
    return format_table(
        headers, body,
        title="Figure 13: fraction of entries moved per in-place upsize "
              "(expected ~0.5)",
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
