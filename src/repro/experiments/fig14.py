"""Figure 14: number of L2P table entries used per application.

The L2P table has 288 entries (32 x 3 page sizes x 3 ways); most
applications use a small fraction — the paper reports a range of 11 (TC)
to 195 (MUMmer) and an average of 52.5, which is what makes the
context-switch save/restore cheap (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.runner import ExperimentSettings, memory_sweep
from repro.sim.results import format_table


@dataclass
class Fig14Result:
    entries: Dict[object, int]  # (app, thp) -> entries used
    apps: List[str]
    total_entries: int = 288

    def average(self) -> float:
        values = [self.entries[key] for key in self.entries]
        return sum(values) / len(values) if values else 0.0


def run(settings: ExperimentSettings = ExperimentSettings()) -> Fig14Result:
    results = memory_sweep(settings, organizations=("mehpt",))
    apps = settings.app_list()
    entries = {
        (app, thp): results[(app, "mehpt", thp)].l2p_entries_used
        for app in apps
        for thp in (False, True)
    }
    return Fig14Result(entries=entries, apps=apps)


def format_result(result: Fig14Result) -> str:
    headers = ["App", "L2P entries", "L2P entries THP"]
    body = [
        [app,
         str(result.entries[(app, False)]),
         str(result.entries[(app, True)])]
        for app in result.apps
    ]
    body.append(["Average", f"{result.average():.1f}", ""])
    return format_table(
        headers, body,
        title=f"Figure 14: L2P entries used (of {result.total_entries})",
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
