"""Figure 11: number of upsizing operations per way (4KB ME-HPT).

Per application, per way, without and with THP.  Paper observations: ways
are upsized ~10.5 times on average without THP (the per-way balancer
keeps the counts within one of each other), the maximum is 13 (GUPS,
SysBench), and GUPS/SysBench with THP never upsize their 4KB tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.runner import ExperimentSettings, memory_sweep
from repro.sim.results import format_table


@dataclass
class Fig11Result:
    #: upsizes[(app, thp)] -> per-way counts
    upsizes: Dict[object, List[int]]
    apps: List[str]

    def mean_per_way(self, way: int, thp: bool) -> float:
        values = [self.upsizes[(app, thp)][way] for app in self.apps]
        return sum(values) / len(values)


def run(settings: ExperimentSettings = ExperimentSettings()) -> Fig11Result:
    results = memory_sweep(settings, organizations=("mehpt",))
    apps = settings.app_list()
    upsizes = {
        (app, thp): results[(app, "mehpt", thp)].upsizes_per_way_4k
        for app in apps
        for thp in (False, True)
    }
    return Fig11Result(upsizes=upsizes, apps=apps)


def format_result(result: Fig11Result) -> str:
    headers = ["App", "Way0", "Way1", "Way2", "Way0 THP", "Way1 THP", "Way2 THP"]
    body: List[List[str]] = []
    for app in result.apps:
        no_thp = result.upsizes[(app, False)]
        thp = result.upsizes[(app, True)]
        body.append([app] + [str(v) for v in no_thp] + [str(v) for v in thp])
    body.append(
        ["Average"]
        + [f"{result.mean_per_way(w, False):.1f}" for w in range(3)]
        + [f"{result.mean_per_way(w, True):.1f}" for w in range(3)]
    )
    return format_table(
        headers, body,
        title="Figure 11: upsizing operations per way, 4KB ME-HPT",
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
