"""Figure 10: reduction in page-table memory of ME-HPT over ECPT.

Per application (without and with THP): the percentage reduction in peak
page-table memory, split into the contributions of in-place resizing
(Section IV-C) and per-way resizing (Section IV-D), measured by ablation:

* full ME-HPT,
* ME-HPT with in-place resizing disabled (out-of-place chunked resizes),
* ME-HPT with per-way resizing disabled (all-way resizes).

The in-place contribution is ``peak(no-inplace) - peak(full)`` and the
per-way contribution ``peak(no-perway) - peak(full)``, normalised to the
total reduction versus ECPT.  Numbers on the paper's bars (absolute MB
saved) are reported as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.units import MB
from repro.experiments.runner import ExperimentSettings, memory_sweep
from repro.sim.results import format_table


@dataclass
class Fig10Row:
    app: str
    thp: bool
    ecpt_peak: int
    mehpt_peak: int
    no_inplace_peak: int
    no_perway_peak: int

    @property
    def reduction_bytes(self) -> int:
        return max(0, self.ecpt_peak - self.mehpt_peak)

    @property
    def reduction_pct(self) -> float:
        return self.reduction_bytes / self.ecpt_peak if self.ecpt_peak else 0.0

    def contributions(self) -> Dict[str, float]:
        """Shares of the reduction attributable to each technique."""
        inplace = max(0, self.no_inplace_peak - self.mehpt_peak)
        perway = max(0, self.no_perway_peak - self.mehpt_peak)
        total = inplace + perway
        if total == 0:
            return {"inplace": 0.0, "perway": 0.0}
        return {"inplace": inplace / total, "perway": perway / total}


@dataclass
class Fig10Result:
    rows: List[Fig10Row]

    def mean_reduction(self, thp: bool) -> float:
        rows = [r for r in self.rows if r.thp == thp]
        return sum(r.reduction_pct for r in rows) / len(rows) if rows else 0.0

    def mean_contribution(self, technique: str, thp: bool) -> float:
        rows = [r for r in self.rows if r.thp == thp and r.reduction_bytes > 0]
        if not rows:
            return 0.0
        return sum(r.contributions()[technique] for r in rows) / len(rows)


def run(settings: ExperimentSettings = ExperimentSettings()) -> Fig10Result:
    ecpt = memory_sweep(settings, organizations=("ecpt",))
    full = memory_sweep(settings, organizations=("mehpt",))
    no_inplace = memory_sweep(settings, organizations=("mehpt",), enable_inplace=False)
    no_perway = memory_sweep(settings, organizations=("mehpt",), enable_perway=False)
    rows: List[Fig10Row] = []
    for app in settings.app_list():
        for thp in (False, True):
            rows.append(
                Fig10Row(
                    app=app,
                    thp=thp,
                    ecpt_peak=ecpt[(app, "ecpt", thp)].peak_pt_bytes,
                    mehpt_peak=full[(app, "mehpt", thp)].peak_pt_bytes,
                    no_inplace_peak=no_inplace[(app, "mehpt", thp)].peak_pt_bytes,
                    no_perway_peak=no_perway[(app, "mehpt", thp)].peak_pt_bytes,
                )
            )
    return Fig10Result(rows=rows)


def format_result(result: Fig10Result) -> str:
    headers = ["App", "THP", "Reduction %", "Saved MB", "In-place share", "Per-way share"]
    body: List[List[str]] = []
    for row in result.rows:
        contrib = row.contributions()
        body.append([
            row.app,
            "yes" if row.thp else "no",
            f"{row.reduction_pct:.0%}",
            f"{row.reduction_bytes / MB:.1f}",
            f"{contrib['inplace']:.0%}",
            f"{contrib['perway']:.0%}",
        ])
    body.append([
        "Average", "no",
        f"{result.mean_reduction(False):.0%}", "",
        f"{result.mean_contribution('inplace', False):.0%}",
        f"{result.mean_contribution('perway', False):.0%}",
    ])
    body.append([
        "Average", "yes",
        f"{result.mean_reduction(True):.0%}", "",
        f"{result.mean_contribution('inplace', True):.0%}",
        f"{result.mean_contribution('perway', True):.0%}",
    ])
    return format_table(
        headers, body,
        title="Figure 10: page-table memory reduction of ME-HPT over ECPT",
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
