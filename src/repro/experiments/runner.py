"""Shared sweep machinery for the experiment drivers.

``memory_sweep`` populates each workload's footprint into each requested
(organization, THP) system and collects
:class:`~repro.sim.results.MemoryFootprintResult`; ``perf_sweep`` runs
traces and collects :class:`~repro.sim.results.PerformanceResult`.

Both submit through the :mod:`repro.experiments.engine` — a process-pool
fan-out with a persistent on-disk cache — and additionally memoise
results within the process so that e.g. the Figure 8 and Figure 10
drivers (which need the same populate runs) don't repeat the work.
Cache keys are *normalized* per sweep kind: memory results depend only
on which pages exist, so changing ``trace_length`` (or any other
trace-window knob) neither evicts nor misses memory entries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.experiments import engine as _engine
from repro.sim.config import SimulationConfig
from repro.sim.results import MemoryFootprintResult, PerformanceResult
from repro.workloads import workload_names

MemKey = Tuple[str, str, bool]  # (workload, organization, thp)


@dataclass(frozen=True)
class ExperimentSettings:
    """Methodology knobs shared by all experiment drivers.

    ``scale`` divides the footprints (power of two; sizes are reported at
    full-scale equivalents — see DESIGN.md).  ``fast`` presets are used by
    the pytest benchmarks; the defaults favour fidelity.
    """

    scale: int = 32
    trace_length: int = 100_000
    seed: int = 12345
    fmfi: float = 0.7
    base_cycles_per_access: float = 30.0
    apps: Tuple[str, ...] = ()
    #: Leading fraction of the trace that warms TLBs/tables unmeasured.
    warmup_fraction: float = 0.0

    def app_list(self) -> List[str]:
        return list(self.apps) if self.apps else workload_names()

    def config(self, organization: str, thp: bool, **overrides) -> SimulationConfig:
        params = dict(
            organization=organization,
            thp_enabled=thp,
            scale=self.scale,
            seed=self.seed,
            fmfi=self.fmfi,
            base_cycles_per_access=self.base_cycles_per_access,
        )
        params.update(overrides)
        return SimulationConfig(**params)

    def fast(self) -> "ExperimentSettings":
        """A cheaper variant for benchmark smoke runs."""
        return replace(self, scale=max(self.scale, 64), trace_length=30_000)


class _LruDict(OrderedDict):
    """A dict memo with an LRU size cap.

    Long-lived processes (the benchmark suite, a notebook sweeping many
    settings) would otherwise accumulate one result per distinct
    (settings, run, overrides) triple forever; results hold whole kick
    histograms, so the cap matters.
    """

    def __init__(self, maxsize: int = 128) -> None:
        super().__init__()
        self.maxsize = maxsize

    def __getitem__(self, key):
        value = super().__getitem__(key)
        self.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self.maxsize:
            self.popitem(last=False)


#: In-process memo layers, keyed by the engine's normalized content hash
#: (the same key addresses the disk cache).
_MEMORY_CACHE: Dict[str, MemoryFootprintResult] = _LruDict()
_PERF_CACHE: Dict[str, PerformanceResult] = _LruDict()
_DATACENTER_CACHE: Dict[str, object] = _LruDict()


def _sweep(
    kind: str,
    memo: Dict[str, object],
    settings: ExperimentSettings,
    organizations: Iterable[str],
    thp_options: Iterable[bool],
    apps: Optional[Iterable[str]],
    config_overrides: Dict[str, object],
) -> Dict[MemKey, object]:
    """Resolve the sweep grid: memo, then disk cache / pool via the engine."""
    grid: List[Tuple[MemKey, str]] = []
    for app in apps if apps is not None else settings.app_list():
        for org in organizations:
            for thp in thp_options:
                cell = (app, org, thp)
                key, _ = _engine.cell_key(kind, settings, cell, config_overrides)
                grid.append((cell, key))
    missing = [cell for cell, key in grid if key not in memo]
    if missing:
        resolved = _engine.get_engine().run_cells(
            kind, settings, missing, config_overrides
        )
        for cell, result in resolved.items():
            key, _ = _engine.cell_key(kind, settings, cell, config_overrides)
            memo[key] = result
    return {cell: memo[key] for cell, key in grid}


def memory_sweep(
    settings: ExperimentSettings,
    organizations: Iterable[str] = ("ecpt", "mehpt"),
    thp_options: Iterable[bool] = (False, True),
    apps: Optional[Iterable[str]] = None,
    **config_overrides,
) -> Dict[MemKey, MemoryFootprintResult]:
    """Populate footprints and collect memory results for the sweep grid."""
    return _sweep(
        "memory", _MEMORY_CACHE, settings, organizations, thp_options, apps,
        config_overrides,
    )


def perf_sweep(
    settings: ExperimentSettings,
    organizations: Iterable[str] = ("radix", "ecpt", "mehpt"),
    thp_options: Iterable[bool] = (False, True),
    apps: Optional[Iterable[str]] = None,
    **config_overrides,
) -> Dict[MemKey, PerformanceResult]:
    """Run traces and collect performance results for the sweep grid."""
    return _sweep(
        "perf", _PERF_CACHE, settings, organizations, thp_options, apps,
        config_overrides,
    )


def datacenter_sweep(
    settings: ExperimentSettings,
    organizations: Iterable[str] = ("radix", "ecpt", "mehpt"),
    apps: Optional[Iterable[str]] = None,
    **overrides,
):
    """Run multi-tenant NUMA cells for the sweep grid.

    ``overrides`` mixes ``dc_*`` machine-model knobs (sockets, policy,
    churn — see
    :class:`~repro.sim.datacenter.simulator.DatacenterParams`) with
    plain :class:`~repro.sim.config.SimulationConfig` fields; the engine
    splits them per cell.  THP is not swept here (the datacenter story
    is about placement, not page size), so every cell uses ``thp=False``.
    """
    return _sweep(
        "datacenter", _DATACENTER_CACHE, settings, organizations, (False,),
        apps, overrides,
    )


def clear_caches() -> None:
    """Drop memoised sweep results (tests use this for isolation).

    Only the in-process memo is dropped; the engine's disk cache is
    persistent by design and is invalidated by content hash instead.
    """
    _MEMORY_CACHE.clear()
    _PERF_CACHE.clear()
    _DATACENTER_CACHE.clear()
