"""Shared sweep machinery for the experiment drivers.

``memory_sweep`` populates each workload's footprint into each requested
(organization, THP) system and collects
:class:`~repro.sim.results.MemoryFootprintResult`; ``perf_sweep`` runs
traces and collects :class:`~repro.sim.results.PerformanceResult`.
Results are memoised per settings within the process so that e.g. the
Figure 8 and Figure 10 drivers (which need the same populate runs) don't
repeat the work.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ContiguousAllocationError
from repro.sim.config import SimulationConfig
from repro.sim.results import MemoryFootprintResult, PerformanceResult
from repro.sim.simulator import TranslationSimulator, memory_result
from repro.workloads import get_workload, workload_names

MemKey = Tuple[str, str, bool]  # (workload, organization, thp)


@dataclass(frozen=True)
class ExperimentSettings:
    """Methodology knobs shared by all experiment drivers.

    ``scale`` divides the footprints (power of two; sizes are reported at
    full-scale equivalents — see DESIGN.md).  ``fast`` presets are used by
    the pytest benchmarks; the defaults favour fidelity.
    """

    scale: int = 32
    trace_length: int = 100_000
    seed: int = 12345
    fmfi: float = 0.7
    base_cycles_per_access: float = 30.0
    apps: Tuple[str, ...] = ()

    def app_list(self) -> List[str]:
        return list(self.apps) if self.apps else workload_names()

    def config(self, organization: str, thp: bool, **overrides) -> SimulationConfig:
        params = dict(
            organization=organization,
            thp_enabled=thp,
            scale=self.scale,
            seed=self.seed,
            fmfi=self.fmfi,
            base_cycles_per_access=self.base_cycles_per_access,
        )
        params.update(overrides)
        return SimulationConfig(**params)

    def fast(self) -> "ExperimentSettings":
        """A cheaper variant for benchmark smoke runs."""
        return replace(self, scale=max(self.scale, 64), trace_length=30_000)


class _LruDict(OrderedDict):
    """A dict memo with an LRU size cap.

    Long-lived processes (the benchmark suite, a notebook sweeping many
    settings) would otherwise accumulate one result per distinct
    (settings, run, overrides) triple forever; results hold whole kick
    histograms, so the cap matters.
    """

    def __init__(self, maxsize: int = 128) -> None:
        super().__init__()
        self.maxsize = maxsize

    def __getitem__(self, key):
        value = super().__getitem__(key)
        self.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self.maxsize:
            self.popitem(last=False)


_MEMORY_CACHE: Dict[Tuple[ExperimentSettings, MemKey, Tuple], MemoryFootprintResult] = (
    _LruDict()
)
_PERF_CACHE: Dict[Tuple[ExperimentSettings, MemKey, Tuple], PerformanceResult] = (
    _LruDict()
)


def memory_sweep(
    settings: ExperimentSettings,
    organizations: Iterable[str] = ("ecpt", "mehpt"),
    thp_options: Iterable[bool] = (False, True),
    apps: Optional[Iterable[str]] = None,
    **config_overrides,
) -> Dict[MemKey, MemoryFootprintResult]:
    """Populate footprints and collect memory results for the sweep grid."""
    out: Dict[MemKey, MemoryFootprintResult] = {}
    override_key = tuple(sorted(config_overrides.items()))
    for app in apps if apps is not None else settings.app_list():
        for org in organizations:
            for thp in thp_options:
                key = (app, org, thp)
                cache_key = (settings, key, override_key)
                if cache_key not in _MEMORY_CACHE:
                    workload = get_workload(app, scale=settings.scale, seed=settings.seed)
                    config = settings.config(org, thp, **config_overrides)
                    system = config.build(workload)
                    _MEMORY_CACHE[cache_key] = memory_result(system)
                out[key] = _MEMORY_CACHE[cache_key]
    return out


def perf_sweep(
    settings: ExperimentSettings,
    organizations: Iterable[str] = ("radix", "ecpt", "mehpt"),
    thp_options: Iterable[bool] = (False, True),
    apps: Optional[Iterable[str]] = None,
    **config_overrides,
) -> Dict[MemKey, PerformanceResult]:
    """Run traces and collect performance results for the sweep grid."""
    out: Dict[MemKey, PerformanceResult] = {}
    override_key = tuple(sorted(config_overrides.items()))
    for app in apps if apps is not None else settings.app_list():
        for org in organizations:
            for thp in thp_options:
                key = (app, org, thp)
                cache_key = (settings, key, override_key)
                if cache_key not in _PERF_CACHE:
                    workload = get_workload(app, scale=settings.scale, seed=settings.seed)
                    config = settings.config(org, thp, **config_overrides)
                    sim = TranslationSimulator(
                        workload, config, trace_length=settings.trace_length
                    )
                    _PERF_CACHE[cache_key] = sim.run()
                out[key] = _PERF_CACHE[cache_key]
    return out


def clear_caches() -> None:
    """Drop memoised sweep results (tests use this for isolation)."""
    _MEMORY_CACHE.clear()
    _PERF_CACHE.clear()
