"""Radix-tree page tables (the conventional x86-64 organization).

The comparator the paper evaluates against: a 4-level (optionally
5-level) radix tree walked sequentially on a TLB miss, accelerated by
per-level page-walk caches (PWCs).

* :mod:`repro.radix.table` — the tree itself (PGD/PUD/PMD/PTE), with
  4KB, 2MB and 1GB leaves and per-node memory accounting.
* :mod:`repro.radix.pwc` — the three page-walk caches of Table III
  (32 entries/level, fully associative, 4-cycle round trip).
* :mod:`repro.radix.walker` — the walker producing both the translation
  and its cycle cost through the cache hierarchy.
"""

from repro.radix.pwc import PageWalkCaches
from repro.radix.table import RadixPageTable
from repro.radix.walker import RadixWalker

__all__ = ["RadixPageTable", "PageWalkCaches", "RadixWalker"]
