"""The x86-64 radix-tree page table.

Four levels — PGD, PUD, PMD, PTE — each a 4KB node of 512 eight-byte
entries, indexed by successive 9-bit slices of the virtual page number
(Figure 1 of the paper).  A five-level mode models Intel's LA57 extension
(the paper's scalability argument for why radix trees keep getting
slower).

Leaves can sit at three levels, giving the three page sizes:

* PTE level — 4KB pages,
* PMD level — 2MB huge pages,
* PUD level — 1GB giant pages.

Memory accounting is by node: every node is one 4KB physical page, which
is why the radix tree's *contiguous* allocation requirement is always one
page (Table I, column 3).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.units import CACHE_LINE, PAGE_4K, PTE_SIZE

#: Entries per node (512 for 4KB nodes of 8-byte entries).
FANOUT = PAGE_4K // PTE_SIZE
#: Bits consumed per level.
LEVEL_BITS = 9
#: PTEs per cache line within a node.
ENTRIES_PER_LINE = CACHE_LINE // PTE_SIZE

#: Page sizes by the level at which the leaf sits (4-level naming).
PAGE_SIZE_BITS = {"4K": 0, "2M": LEVEL_BITS, "1G": 2 * LEVEL_BITS}


class _Node:
    """One radix node: a 4KB page of 512 entries."""

    __slots__ = ("addr", "entries")

    def __init__(self, addr: int) -> None:
        self.addr = addr
        self.entries: Dict[int, object] = {}


class _Leaf:
    """A leaf entry: physical page number plus the mapping's page size."""

    __slots__ = ("ppn", "page_size")

    def __init__(self, ppn: int, page_size: str) -> None:
        self.ppn = ppn
        self.page_size = page_size


class RadixPageTable:
    """A radix page table for one address space.

    ``levels`` is 4 (x86-64) or 5 (LA57).  VPNs are 4KB-granular virtual
    page numbers; 2MB/1GB mappings are registered once under their
    512/262144-aligned base VPN.
    """

    _node_ids = itertools.count(1)

    def __init__(self, levels: int = 4) -> None:
        if levels not in (4, 5):
            raise ConfigurationError("radix tables support 4 or 5 levels")
        self.levels = levels
        self.root = self._new_node()
        self.node_count = 1
        self.mapped_pages = {"4K": 0, "2M": 0, "1G": 0}

    def _new_node(self) -> _Node:
        # Synthetic physical placement: spread nodes across distinct pages.
        return _Node(next(self._node_ids) * PAGE_4K)

    # -- index math ---------------------------------------------------------

    def _indices(self, vpn: int) -> List[int]:
        """Per-level 9-bit indices, root level first."""
        shifts = range((self.levels - 1) * LEVEL_BITS, -1, -LEVEL_BITS)
        return [(vpn >> shift) & (FANOUT - 1) for shift in shifts]

    def _leaf_depth(self, page_size: str) -> int:
        """Number of levels walked to reach the leaf for ``page_size``."""
        skipped = PAGE_SIZE_BITS[page_size] // LEVEL_BITS
        return self.levels - skipped

    @staticmethod
    def align_vpn(vpn: int, page_size: str) -> int:
        """The base 4KB-VPN of the ``page_size`` page containing ``vpn``."""
        return vpn & ~((1 << PAGE_SIZE_BITS[page_size]) - 1)

    # -- mapping ------------------------------------------------------------

    def map(self, vpn: int, ppn: int, page_size: str = "4K") -> int:
        """Map ``vpn`` -> ``ppn``; return the number of nodes allocated.

        ``vpn`` must be aligned for the page size.  Remapping an existing
        page replaces its translation.
        """
        if page_size not in PAGE_SIZE_BITS:
            raise ConfigurationError(f"unknown page size {page_size!r}")
        if vpn != self.align_vpn(vpn, page_size):
            raise ConfigurationError(f"vpn {vpn:#x} not aligned for {page_size}")
        depth = self._leaf_depth(page_size)
        indices = self._indices(vpn)
        node = self.root
        created = 0
        for level in range(depth - 1):
            child = node.entries.get(indices[level])
            if child is None:
                child = self._new_node()
                node.entries[indices[level]] = child
                created += 1
            elif isinstance(child, _Leaf):
                raise ConfigurationError(
                    f"vpn {vpn:#x}: a larger page already maps this range"
                )
            node = child
        leaf_index = indices[depth - 1]
        existing = node.entries.get(leaf_index)
        if existing is None:
            self.mapped_pages[page_size] += 1
        elif isinstance(existing, _Node):
            raise ConfigurationError(
                f"vpn {vpn:#x}: smaller pages already map inside this range"
            )
        node.entries[leaf_index] = _Leaf(ppn, page_size)
        self.node_count += created
        return created

    def unmap(self, vpn: int, page_size: str = "4K") -> bool:
        """Remove a mapping; empty intermediate nodes are retained (as the
        Linux kernel does until teardown).  Returns presence."""
        vpn = self.align_vpn(vpn, page_size)
        depth = self._leaf_depth(page_size)
        indices = self._indices(vpn)
        node = self.root
        for level in range(depth - 1):
            child = node.entries.get(indices[level])
            if not isinstance(child, _Node):
                return False
            node = child
        leaf = node.entries.get(indices[depth - 1])
        if isinstance(leaf, _Leaf):
            del node.entries[indices[depth - 1]]
            self.mapped_pages[leaf.page_size] -= 1
            return True
        return False

    # -- translation ----------------------------------------------------

    def walk(self, vpn: int) -> Tuple[Optional[_Leaf], List[int]]:
        """Walk the tree for ``vpn``.

        Returns ``(leaf_or_None, line_addresses)`` where the addresses are
        the cache lines touched, one per level walked, root first.  The
        walk stops early at a huge-page leaf.
        """
        indices = self._indices(vpn)
        node = self.root
        lines: List[int] = []
        for level in range(self.levels):
            index = indices[level]
            lines.append((node.addr + (index // ENTRIES_PER_LINE) * CACHE_LINE) // CACHE_LINE)
            entry = node.entries.get(index)
            if entry is None:
                return None, lines
            if isinstance(entry, _Leaf):
                return entry, lines
            node = entry
        return None, lines

    def translate(self, vpn: int) -> Optional[Tuple[int, str]]:
        """Return ``(ppn, page_size)`` for ``vpn`` or None if unmapped.

        For huge pages the returned PPN is the base frame of the huge
        page; callers add the in-page offset.
        """
        leaf, _lines = self.walk(vpn)
        if leaf is None:
            return None
        return leaf.ppn, leaf.page_size

    def node_line_addrs(self, vpn: int) -> List[int]:
        """Just the cache-line addresses a full walk of ``vpn`` touches."""
        _leaf, lines = self.walk(vpn)
        return lines

    def node_for_prefix(self, prefix: int, depth: int) -> Optional[_Node]:
        """The node probed at level ``depth`` for a VPN whose top index
        slices equal ``prefix`` (``depth`` 9-bit slices; 0 = the root).

        Returns None when the path is absent or blocked by a huge-page
        leaf.  Used by the batched walk engine to resolve node base
        addresses once per prefix: nodes are only ever created, never
        moved or removed, so a resolved address stays valid for the rest
        of the run.
        """
        node = self.root
        for level in range(depth):
            entry = node.entries.get(
                (prefix >> ((depth - 1 - level) * LEVEL_BITS)) & (FANOUT - 1)
            )
            if not isinstance(entry, _Node):
                return None
            node = entry
        return node

    # -- accounting -------------------------------------------------------

    def table_bytes(self) -> int:
        """Total page-table memory: one 4KB page per node."""
        return self.node_count * PAGE_4K

    def max_contiguous_bytes(self) -> int:
        """Largest contiguous allocation a radix table ever needs: one page."""
        return PAGE_4K

    def iter_mappings(self) -> Iterator[Tuple[int, int, str]]:
        """Yield (vpn, ppn, page_size) for every mapping."""

        def recurse(node: _Node, prefix: int, level: int):
            shift = (self.levels - 1 - level) * LEVEL_BITS
            for index, entry in node.entries.items():
                vpn = prefix | (index << shift)
                if isinstance(entry, _Leaf):
                    yield vpn, entry.ppn, entry.page_size
                else:
                    yield from recurse(entry, vpn, level + 1)

        yield from recurse(self.root, 0, 0)
