"""Page-walk caches (PWCs) for the radix walker.

Modern MMUs cache intermediate page-table entries so that most walks skip
the upper tree levels (Barr et al., "Translation Caching").  Table III
models three fully-associative 32-entry caches (one per non-leaf level)
with a 4-cycle round trip.

The cache for depth ``k`` holds pointers to depth-``k`` nodes, tagged by
the VPN prefix that selects that node.  A lookup returns the deepest node
the walker can jump to, so a walk that hits in the deepest PWC performs a
single memory access (the leaf level).
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.radix.table import LEVEL_BITS


class _FullyAssociativeCache:
    """Small fully-associative LRU cache of integer tags."""

    def __init__(self, entries: int) -> None:
        self.capacity = entries
        self._tags: List[int] = []
        self.hits = 0
        self.misses = 0

    def lookup(self, tag: int) -> bool:
        if tag in self._tags:
            if self._tags[0] != tag:
                self._tags.remove(tag)
                self._tags.insert(0, tag)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, tag: int) -> None:
        if tag in self._tags:
            if self._tags[0] != tag:
                self._tags.remove(tag)
                self._tags.insert(0, tag)
            return
        self._tags.insert(0, tag)
        if len(self._tags) > self.capacity:
            self._tags.pop()


class PageWalkCaches:
    """The set of per-level PWCs for one walker.

    ``levels`` is the tree depth; caches exist for node depths
    ``1 .. min(levels - 1, num_caches)`` counted from the deepest, i.e.
    with the default three caches a 5-level tree caches depths 2-4 and
    always pays for the root access on a top miss.
    """

    def __init__(self, levels: int = 4, entries_per_level: int = 32, num_caches: int = 3) -> None:
        if levels < 2:
            raise ConfigurationError("PWC needs at least a 2-level tree")
        self.levels = levels
        shallowest = max(1, (levels - 1) - num_caches + 1)
        self._caches: Dict[int, _FullyAssociativeCache] = {
            depth: _FullyAssociativeCache(entries_per_level)
            for depth in range(shallowest, levels)
        }

    def _tag(self, vpn: int, depth: int) -> int:
        """VPN prefix selecting the depth-``depth`` node."""
        return vpn >> ((self.levels - depth) * LEVEL_BITS)

    def lookup(self, vpn: int, max_depth: int) -> int:
        """Deepest node depth (<= ``max_depth``) the walker can start at.

        Returns 0 when no PWC hits (start at the root).  Only the winning
        depth counts as a hit; shallower caches are not queried (the
        hardware probes all in parallel and uses the deepest hit).
        """
        for depth in sorted(self._caches, reverse=True):
            if depth > max_depth:
                continue
            if self._caches[depth].lookup(self._tag(vpn, depth)):
                return depth
        return 0

    def fill(self, vpn: int, reached_depth: int) -> None:
        """Install pointers for every node depth up to ``reached_depth``."""
        for depth, cache in self._caches.items():
            if depth <= reached_depth:
                cache.fill(self._tag(vpn, depth))

    def hit_rate(self) -> float:
        hits = sum(c.hits for c in self._caches.values())
        misses = sum(c.misses for c in self._caches.values())
        total = hits + misses
        return hits / total if total else 0.0

    def invalidate_all(self) -> None:
        for cache in self._caches.values():
            cache._tags.clear()
