"""The radix page-table walker: translation plus cycle accounting.

A radix walk is inherently *sequential*: each level's access produces the
address for the next (Figure 1), so the walker sums the per-level memory
latencies — this is the scalability problem the paper opens with.  The
PWCs let most walks skip upper levels; the workloads that overflow the
PWCs are the ones radix trees serve poorly.
"""

from __future__ import annotations

from typing import Optional

from repro.mem.cache import CacheHierarchy
from repro.mmu.walk import WalkResult
from repro.obs.trace import EVENT_WALK_END, EVENT_WALK_START
from repro.radix.pwc import PageWalkCaches
from repro.radix.table import RadixPageTable


class RadixWalker:
    """Walks a :class:`RadixPageTable` through PWCs and the cache hierarchy."""

    def __init__(
        self,
        table: RadixPageTable,
        cache_hierarchy: CacheHierarchy,
        pwc: Optional[PageWalkCaches] = None,
        pwc_cycles: int = 4,
        obs=None,
    ) -> None:
        self.table = table
        self.caches = cache_hierarchy
        self.pwc = pwc if pwc is not None else PageWalkCaches(levels=table.levels)
        self.pwc_cycles = pwc_cycles
        self.walks = 0
        self.total_cycles = 0
        self.total_accesses = 0
        #: Optional repro.obs.Observability: walk_start/walk_end events
        #: plus a live per-walk latency histogram (pow2 bins).
        self.obs = obs
        self.walk_latency = None
        if obs is not None and obs.registry is not None:
            self.walk_latency = obs.registry.histogram(
                "walker.walk_latency", bucketer="pow2"
            )

    def walk(self, vpn: int) -> WalkResult:
        """Translate ``vpn``; returns the translation and its cycle cost."""
        if self.obs is not None:
            self.obs.emit(EVENT_WALK_START, walk=self.walks, vpn=vpn)
        leaf, lines = self.table.walk(vpn)
        depth_walked = len(lines)  # nodes the full walk touches
        start = self.pwc.lookup(vpn, max_depth=depth_walked - 1)
        cycles = self.pwc_cycles
        accesses = 0
        for line in lines[start:]:
            cycles += self.caches.access(line)
            accesses += 1
        # Pointers to nodes at depths 1..depth_walked-1 were obtained
        # (either from the PWC or from the walk itself); install them.
        self.pwc.fill(vpn, depth_walked - 1)
        if self.obs is not None:
            self.obs.emit(
                EVENT_WALK_END, walk=self.walks, cycles=cycles, accesses=accesses,
            )
            if self.walk_latency is not None:
                self.walk_latency.observe(cycles)
        self.walks += 1
        self.total_cycles += cycles
        self.total_accesses += accesses
        if leaf is None:
            return WalkResult(None, None, cycles, accesses)
        return WalkResult(leaf.ppn, leaf.page_size, cycles, accesses)

    def mean_walk_cycles(self) -> float:
        return self.total_cycles / self.walks if self.walks else 0.0
