"""Applications of the ME-HPT hashing techniques beyond page tables.

Section VIII argues the four techniques generalise to other multi-way
hash structures; Section IX compares against Level Hashing.  This
package provides working instances of each:

* :mod:`repro.applications.kvstore` — an in-memory key-value store on
  the elastic cuckoo engine with chunked storage and per-way/in-place
  resizing (the "Key-Value Stores" paragraph).
* :mod:`repro.applications.directory` — a cuckoo coherence directory
  with per-way resizing (the "Scalable Secure Directories" paragraph).
* :mod:`repro.applications.level_hashing` — a faithful Level Hashing
  table for the Section IX comparison: ~1/3 of entries moved per resize
  but 4 probes per lookup, versus ME-HPT's 1/2 moves at W probes.
"""

from repro.applications.directory import CuckooDirectory
from repro.applications.kvstore import MemEfficientKVStore
from repro.applications.level_hashing import LevelHashTable

__all__ = ["MemEfficientKVStore", "CuckooDirectory", "LevelHashTable"]
