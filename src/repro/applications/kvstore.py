"""A memory-efficient key-value store on the ME-HPT hashing engine.

Section VIII: "The ideas developed in ME-HPTs can be applied to many
existing key-value stores, which require dynamic resizing — one cannot
know the proper size of the key-value store in advance."

The store demonstrates all four techniques outside the page-table
context: ways live in chunks (bounded contiguous allocations), grow in
place with the one-extra-bit rule, one way at a time, with the
weighted-random insertion policy.  String keys are hashed to 64-bit
integers; values are arbitrary Python objects.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from repro.common.rng import DeterministicRng
from repro.common.units import KB
from repro.hashing.cuckoo import ElasticCuckooTable, ElasticWay
from repro.hashing.hashes import HashFamily, mix64
from repro.hashing.policies import PerWayResizePolicy
from repro.hashing.storage import ChunkedStorage, UnlimitedChunkBudget


def _hash_key(key: str) -> int:
    """Map a string key to a 64-bit integer (FNV-1a folded through mix64)."""
    h = 0xCBF29CE484222325
    for byte in key.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return mix64(h)


class MemEfficientKVStore:
    """An elastic, chunk-backed key-value store.

    Parameters
    ----------
    ways:
        Cuckoo associativity (3, as in ME-HPT, by default).
    initial_slots:
        Starting capacity per way.
    chunk_bytes:
        Contiguous-allocation unit; the store never asks the allocator
        for more than one chunk at a time.
    allocator:
        Optional cost-model allocator to account allocations against.
    """

    def __init__(
        self,
        ways: int = 3,
        initial_slots: int = 128,
        chunk_bytes: int = 8 * KB,
        allocator: Any = None,
        seed: int = 0,
    ) -> None:
        family = HashFamily(seed=seed)
        budget = UnlimitedChunkBudget()
        way_objs = [
            ElasticWay(
                w,
                family.function(w),
                ChunkedStorage(
                    initial_slots,
                    chunk_bytes=chunk_bytes,
                    allocator=allocator,
                    budget=budget,
                ),
            )
            for w in range(ways)
        ]
        self._table = ElasticCuckooTable(
            way_objs,
            PerWayResizePolicy(min_way_slots=initial_slots),
            lambda w, slots: ChunkedStorage(
                slots, chunk_bytes=chunk_bytes, allocator=allocator, budget=budget
            ),
            rng=DeterministicRng(seed + 1),
        )
        #: Collision-safe key check: store the key string in the value.
        self._chunk_bytes = chunk_bytes

    # -- mapping interface --------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Insert or update ``key``."""
        self._table.insert(_hash_key(key), (key, value))

    def get(self, key: str, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default``."""
        slot = self._table.lookup(_hash_key(key))
        if slot is None or slot[0] != key:
            return default
        return slot[1]

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it was present."""
        slot = self._table.lookup(_hash_key(key))
        if slot is None or slot[0] != key:
            return False
        return self._table.delete(_hash_key(key))

    def __contains__(self, key: str) -> bool:
        slot = self._table.lookup(_hash_key(key))
        return slot is not None and slot[0] == key

    def __len__(self) -> int:
        return len(self._table)

    def items(self) -> Iterator[Tuple[str, Any]]:
        """Yield (key, value) pairs (order unspecified)."""
        for _hash, (key, value) in self._table.items():
            yield key, value

    # -- memory behaviour ---------------------------------------------------

    def total_bytes(self) -> int:
        """Physical bytes across all ways."""
        return self._table.total_bytes()

    def peak_bytes(self) -> int:
        """Peak physical bytes (in-place resizing keeps this ~= final)."""
        return self._table.peak_bytes

    def max_contiguous_bytes(self) -> int:
        """The store never needs more contiguous memory than one chunk."""
        return self._chunk_bytes

    def occupancy(self) -> float:
        return self._table.occupancy()

    def mean_kicks(self) -> float:
        return self._table.stats.mean_kicks()
