"""A cuckoo coherence directory with ME-HPT-style resizing.

Section VIII ("Scalable Secure Directories"): hash-based directories
such as Cuckoo Directory and SecDir track sharers per cache line in
set-associative cuckoo structures; per-core private directories face the
same sizing problem as per-process page tables.  This model applies
in-place and per-way resizing to a directory keyed by physical line
address, holding a sharer bitmask and coherence state per entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.hashing.cuckoo import ElasticCuckooTable, ElasticWay
from repro.hashing.hashes import HashFamily
from repro.hashing.policies import PerWayResizePolicy
from repro.hashing.storage import ChunkedStorage, UnlimitedChunkBudget

VALID_STATES = ("S", "E", "M")


@dataclass
class DirectoryEntry:
    """Sharers and state for one tracked cache line."""

    sharers: int  # bitmask, one bit per core
    state: str    # S(hared), E(xclusive), M(odified)


class CuckooDirectory:
    """An elastic cuckoo directory for ``cores`` cores.

    The API follows the classic directory operations: a read records a
    sharer, a write claims exclusive ownership (returning the cores to
    invalidate), and an eviction drops the line.
    """

    def __init__(
        self,
        cores: int = 8,
        ways: int = 4,
        initial_slots: int = 256,
        chunk_bytes: int = 8 * 1024,
        seed: int = 0,
    ) -> None:
        if cores < 1 or cores > 64:
            raise ConfigurationError("directory model supports 1-64 cores")
        self.cores = cores
        family = HashFamily(seed=seed + 17)
        budget = UnlimitedChunkBudget()
        way_objs = [
            ElasticWay(
                w,
                family.function(w),
                ChunkedStorage(initial_slots, chunk_bytes=chunk_bytes, budget=budget),
            )
            for w in range(ways)
        ]
        self._table = ElasticCuckooTable(
            way_objs,
            PerWayResizePolicy(min_way_slots=initial_slots),
            lambda w, slots: ChunkedStorage(
                slots, chunk_bytes=chunk_bytes, budget=budget
            ),
            rng=DeterministicRng(seed),
        )

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.cores:
            raise ConfigurationError(f"core {core} out of range")

    # -- coherence operations ----------------------------------------------

    def record_read(self, line_addr: int, core: int) -> None:
        """Core ``core`` reads ``line_addr``: add it to the sharer set."""
        self._check_core(core)
        entry = self._table.lookup(line_addr)
        if entry is None:
            self._table.insert(line_addr, DirectoryEntry(1 << core, "E"))
            return
        entry.sharers |= 1 << core
        if entry.state != "M" and bin(entry.sharers).count("1") > 1:
            entry.state = "S"

    def record_write(self, line_addr: int, core: int) -> int:
        """Core ``core`` writes ``line_addr``; returns the invalidation mask
        of other cores that held the line."""
        self._check_core(core)
        mine = 1 << core
        entry = self._table.lookup(line_addr)
        if entry is None:
            self._table.insert(line_addr, DirectoryEntry(mine, "M"))
            return 0
        invalidate = entry.sharers & ~mine
        entry.sharers = mine
        entry.state = "M"
        return invalidate

    def evict(self, line_addr: int) -> bool:
        """Drop tracking for ``line_addr`` (e.g. LLC eviction)."""
        return self._table.delete(line_addr)

    def sharers_of(self, line_addr: int) -> Optional[int]:
        entry = self._table.lookup(line_addr)
        return entry.sharers if entry is not None else None

    def state_of(self, line_addr: int) -> Optional[str]:
        entry = self._table.lookup(line_addr)
        return entry.state if entry is not None else None

    # -- sizing behaviour -----------------------------------------------------

    def tracked_lines(self) -> int:
        return len(self._table)

    def total_bytes(self) -> int:
        return self._table.total_bytes()

    def peak_bytes(self) -> int:
        return self._table.peak_bytes

    def way_sizes(self) -> list:
        return [way.size for way in self._table.ways]

    def drain(self) -> None:
        self._table.drain()
