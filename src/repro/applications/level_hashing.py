"""Level Hashing (Zuo et al., OSDI'18) for the Section IX comparison.

Level Hashing is, to the paper's knowledge, the only other hashing
scheme with a form of in-place resizing.  Structure:

* a **top level** of N buckets and a **bottom level** of N/2 buckets;
  bucket ``b`` of the bottom level backs top buckets ``2b`` and ``2b+1``;
* each key hashes to two candidate top buckets (two hash functions);
  with the two backing bottom buckets that makes **4 probe locations**;
* a resize allocates a new top level of 2N buckets, the old top level
  becomes the new bottom level, and only the **old bottom level's
  entries (~1/3 of the table)** are rehashed into the new top.

The trade the paper draws (Section IX): Level Hashing moves fewer
entries per resize (1/3 vs ME-HPT's 1/2) but pays 4 memory probes on
*every lookup*, and it must free the old bottom level, fragmenting
memory, while ME-HPT's old table becomes part of the new one.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError, TableFullError
from repro.common.units import is_power_of_two
from repro.hashing.hashes import HashFamily

#: Entries per bucket (slots share a cache line in the original design).
BUCKET_SLOTS = 4


class _Bucket:
    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: List[Tuple[int, Any]] = []

    def full(self) -> bool:
        return len(self.items) >= BUCKET_SLOTS

    def find(self, key: int) -> Optional[int]:
        for index, (stored, _value) in enumerate(self.items):
            if stored == key:
                return index
        return None


class LevelHashTable:
    """A two-level hash table with Level Hashing's in-place-style resize."""

    def __init__(self, initial_top_buckets: int = 16, seed: int = 0,
                 load_factor_limit: float = 0.9) -> None:
        if not is_power_of_two(initial_top_buckets) or initial_top_buckets < 2:
            raise ConfigurationError("top level must be a power of two >= 2")
        family = HashFamily(seed=seed + 31)
        self._h0 = family.function(0)
        self._h1 = family.function(1)
        self._top: List[_Bucket] = [_Bucket() for _ in range(initial_top_buckets)]
        self._bottom: List[_Bucket] = [_Bucket() for _ in range(initial_top_buckets // 2)]
        self.count = 0
        self.load_factor_limit = load_factor_limit
        self.resizes = 0
        self.entries_moved = 0
        self.entries_present_at_resizes = 0
        self.probes_per_lookup = 4

    # -- geometry ------------------------------------------------------------

    def capacity(self) -> int:
        return (len(self._top) + len(self._bottom)) * BUCKET_SLOTS

    def load_factor(self) -> float:
        return self.count / self.capacity()

    def _candidates(self, key: int) -> Tuple[int, int]:
        n = len(self._top)
        return self._h0(key) % n, self._h1(key) % n

    def _probe_buckets(self, key: int) -> List[_Bucket]:
        """The 4 locations a lookup examines (2 top + 2 bottom).

        Each level is addressed with its own modulus.  Because the bottom
        level has exactly half the top level's buckets, an entry placed in
        the top level at ``h mod N`` stays addressable after a resize
        demotes that level to the bottom of a ``2N`` table — the key
        consistency property of Level Hashing's in-place resize.
        """
        t0, t1 = self._candidates(key)
        m = len(self._bottom)
        b0, b1 = self._h0(key) % m, self._h1(key) % m
        return [self._top[t0], self._top[t1], self._bottom[b0], self._bottom[b1]]

    # -- operations ----------------------------------------------------------

    def get(self, key: int) -> Optional[Any]:
        for bucket in self._probe_buckets(key):
            index = bucket.find(key)
            if index is not None:
                return bucket.items[index][1]
        return None

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self.count

    def put(self, key: int, value: Any) -> None:
        for bucket in self._probe_buckets(key):
            index = bucket.find(key)
            if index is not None:
                bucket.items[index] = (key, value)
                return
        if self.load_factor() >= self.load_factor_limit:
            self._resize()
        if not self._try_place(key, value) and not self._place_with_movement(
            key, value
        ):
            self._resize()
            if not self._try_place(key, value) and not self._place_with_movement(
                key, value
            ):
                raise TableFullError("level hash table cannot place the key")
        self.count += 1

    def _try_place(self, key: int, value: Any) -> bool:
        # Top buckets first (fast path for future lookups), then bottom.
        for bucket in self._probe_buckets(key):
            if not bucket.full():
                bucket.items.append((key, value))
                return True
        return False

    def _place_with_movement(self, key: int, value: Any) -> bool:
        """Level Hashing's one-step displacement: when all four candidate
        buckets are full, try moving an occupant of a candidate *bottom*
        bucket up to one of its own top-level buckets, freeing a slot.
        This keeps the achievable load factor high without cuckoo chains.
        """
        m = len(self._bottom)
        for bottom_index in {self._h0(key) % m, self._h1(key) % m}:
            bucket = self._bottom[bottom_index]
            for slot, (occupant_key, occupant_value) in enumerate(bucket.items):
                for top_index in self._candidates(occupant_key):
                    target = self._top[top_index]
                    if not target.full():
                        target.items.append((occupant_key, occupant_value))
                        bucket.items.pop(slot)
                        bucket.items.append((key, value))
                        return True
        return False

    def delete(self, key: int) -> bool:
        for bucket in self._probe_buckets(key):
            index = bucket.find(key)
            if index is not None:
                bucket.items.pop(index)
                self.count -= 1
                return True
        return False

    def items(self) -> Iterator[Tuple[int, Any]]:
        for level in (self._top, self._bottom):
            for bucket in level:
                yield from bucket.items

    # -- resizing ---------------------------------------------------------

    def _resize(self) -> None:
        """Grow: new top of 2N buckets; old top becomes the bottom; only
        the old *bottom* entries (~1/3 of the table) are rehashed."""
        old_bottom = self._bottom
        self._bottom = self._top
        self._top = [_Bucket() for _ in range(len(self._bottom) * 2)]
        self.resizes += 1
        self.entries_present_at_resizes += self.count
        moved = 0
        for bucket in old_bottom:
            for key, value in bucket.items:
                moved += 1
                if not self._try_place(key, value):
                    # Extremely rare: cascade another resize to make room.
                    self._resize()
                    if not self._try_place(key, value):
                        raise TableFullError("level hashing resize overflow")
        self.entries_moved += moved

    def moved_fraction(self) -> float:
        """Entries moved per resize over entries present — the ~1/3 claim."""
        if self.entries_present_at_resizes == 0:
            return 0.0
        return self.entries_moved / self.entries_present_at_resizes
