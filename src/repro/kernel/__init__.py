"""OS model: address spaces, demand paging, THP, context switches.

The page-table organizations are hardware structures; this package is the
software above them — the pieces of a kernel the paper's evaluation
exercises:

* :mod:`repro.kernel.address_space` — VMAs, demand paging, and the page
  fault handler that charges allocation/insertion costs.
* :mod:`repro.kernel.thp` — a transparent-huge-page policy with per-
  workload coverage (the paper's THP vs no-THP configurations).
* :mod:`repro.kernel.context` — context-switch costs including the L2P
  save/restore of Section V-C.
"""

from repro.kernel.address_space import AddressSpace, FaultResult, Vma
from repro.kernel.context import ContextSwitchModel
from repro.kernel.thp import ThpPolicy

__all__ = ["AddressSpace", "FaultResult", "Vma", "ThpPolicy", "ContextSwitchModel"]
