"""Context-switch cost model (Section V-C).

On a context switch the OS must save and restore the MMU-resident L2P
table of the outgoing/incoming processes.  Only the *valid* entries move
(they cluster at the subtable extremes), so the overhead tracks L2P
usage — on average 53 entries in the paper, hence modest.  In a
virtualized system the guest has no L2P at all (guest HPTs live in host
pages), so only the host table is switched.
"""

from __future__ import annotations

from typing import Optional

from repro.core.l2p import L2PTable


class ContextSwitchModel:
    """Cycle cost of a context switch for each page-table organization."""

    def __init__(
        self,
        base_cycles: int = 1500,
        l2p_entry_cycles: int = 4,
        virtualized: bool = False,
    ) -> None:
        self.base_cycles = base_cycles
        self.l2p_entry_cycles = l2p_entry_cycles
        self.virtualized = virtualized
        self.switches = 0
        self.total_cycles = 0

    def switch_cost(self, outgoing_l2p: Optional[L2PTable], incoming_l2p: Optional[L2PTable]) -> int:
        """Cycles for one switch; pass None for non-ME-HPT processes."""
        cycles = self.base_cycles
        if not self.virtualized:
            for l2p in (outgoing_l2p, incoming_l2p):
                if l2p is not None:
                    cycles += l2p.entries_used() * self.l2p_entry_cycles
        self.switches += 1
        self.total_cycles += cycles
        return cycles

    def mean_cost(self) -> float:
        return self.total_cycles / self.switches if self.switches else 0.0
