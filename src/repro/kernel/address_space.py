"""Address spaces, VMAs and the demand-paging fault handler.

The fault handler is where the page-table organizations differ in *cost*:

* allocating the data frame (identical across organizations — charged
  from the measured cost curve at the configured fragmentation);
* inserting the translation, which for HPTs may trigger cuckoo
  re-insertions (OS work) and — crucially — HPT resizes whose *page-table
  allocations* are cheap small chunks for ME-HPT but huge contiguous
  regions for ECPT.  Those allocation cycles are charged to the faulting
  process, which is exactly the effect behind Figure 9's ME-HPT > ECPT
  performance gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError, MEHPTError
from repro.kernel.thp import PAGES_PER_2M, ThpPolicy
from repro.mem.alloc_cost import AllocationCostModel
from repro.obs.trace import EVENT_FAULT_SERVICED

#: OS entry/exit + fault bookkeeping, beyond the allocation itself.
FAULT_OVERHEAD_CYCLES = 1200
#: OS cycles per cuckoo re-insertion performed inside an insert.
REINSERT_CYCLES = 120


class SegmentationFault(MEHPTError):
    """Access outside every VMA."""


@dataclass
class Vma:
    """One virtual memory area: [start_vpn, end_vpn) 4KB-granular."""

    start_vpn: int
    end_vpn: int
    name: str = "anon"

    def __post_init__(self) -> None:
        if self.end_vpn <= self.start_vpn:
            raise ConfigurationError(f"empty VMA {self.name}")

    def covers(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn

    @property
    def pages(self) -> int:
        return self.end_vpn - self.start_vpn


@dataclass
class FaultResult:
    """Cost breakdown of one serviced page fault."""

    page_size: str
    cycles: float
    data_alloc_cycles: float
    pt_alloc_cycles: float
    reinsert_cycles: float
    kicks: int


@dataclass
class FaultTotals:
    """Aggregated fault costs for one address space."""

    faults: int = 0
    cycles: float = 0.0
    data_alloc_cycles: float = 0.0
    pt_alloc_cycles: float = 0.0
    reinsert_cycles: float = 0.0
    kicks: int = 0
    pages_mapped_4k: int = 0
    pages_mapped_2m: int = 0

    def absorb(self, result: FaultResult) -> None:
        self.faults += 1
        self.cycles += result.cycles
        self.data_alloc_cycles += result.data_alloc_cycles
        self.pt_alloc_cycles += result.pt_alloc_cycles
        self.reinsert_cycles += result.reinsert_cycles
        self.kicks += result.kicks


class AddressSpace:
    """One process's virtual address space over any page-table organization.

    ``page_tables`` is duck-typed: radix
    (:class:`~repro.radix.table.RadixPageTable`) and hashed
    (:class:`~repro.ecpt.tables.HashedPageTableSet`) organizations both
    provide ``map``/``translate``.  ``pt_allocation_cycles_fn`` reports
    the organization's cumulative page-table allocation cycles so the
    fault handler can charge deltas; pass None for organizations whose
    allocations are folded into the fault overhead (radix: one 4KB node
    at a time).
    """

    def __init__(
        self,
        page_tables,
        thp: Optional[ThpPolicy] = None,
        cost_model: Optional[AllocationCostModel] = None,
        fmfi: float = 0.7,
        fault_overhead_cycles: float = FAULT_OVERHEAD_CYCLES,
        reinsert_cycles: float = REINSERT_CYCLES,
        charge_data_alloc: bool = True,
        obs=None,
    ) -> None:
        self.page_tables = page_tables
        self.thp = thp if thp is not None else ThpPolicy(enabled=False)
        self.cost_model = cost_model if cost_model is not None else AllocationCostModel()
        self.fmfi = fmfi
        self.fault_overhead_cycles = fault_overhead_cycles
        self.reinsert_cycles = reinsert_cycles
        self.charge_data_alloc = charge_data_alloc
        #: Optional repro.obs.Observability; every serviced fault emits a
        #: ``fault_serviced`` trace event carrying its cycle bill.
        self.obs = obs
        self.vmas: List[Vma] = []
        self.totals = FaultTotals()
        self._next_frame = 1 << 20  # synthetic physical frame numbers

    # -- VMA management ------------------------------------------------------

    def add_vma(self, start_vpn: int, pages: int, name: str = "anon") -> Vma:
        """Register a VMA; overlapping VMAs are rejected."""
        vma = Vma(start_vpn, start_vpn + pages, name)
        for existing in self.vmas:
            if vma.start_vpn < existing.end_vpn and existing.start_vpn < vma.end_vpn:
                raise ConfigurationError(
                    f"VMA {name} overlaps {existing.name}"
                )
        self.vmas.append(vma)
        return vma

    def vma_for(self, vpn: int) -> Optional[Vma]:
        for vma in self.vmas:
            if vma.covers(vpn):
                return vma
        return None

    def total_vma_pages(self) -> int:
        return sum(vma.pages for vma in self.vmas)

    # -- fault handling -----------------------------------------------------

    def _alloc_frames(self, page_size: str) -> int:
        frames = PAGES_PER_2M if page_size == "2M" else 1
        frame = self._next_frame
        # Keep huge frames aligned to their size.
        if frames > 1 and frame % frames:
            frame += frames - frame % frames
        self._next_frame = frame + frames
        return frame

    def handle_fault(self, vpn: int) -> FaultResult:
        """Service a page fault at ``vpn`` (demand paging).

        Raises :class:`SegmentationFault` outside every VMA.  Returns the
        cycle cost breakdown; the caller adds it to the faulting access.
        """
        if self.vma_for(vpn) is None:
            raise SegmentationFault(f"access to unmapped vpn {vpn:#x}")
        page_size = self.thp.page_size_for(vpn)
        if page_size == "2M":
            # Clip huge mappings to the VMA: fall back to 4KB if the 2MB
            # region pokes outside it (as Linux does).
            base = self.thp.region_base(vpn)
            vma = self.vma_for(vpn)
            if not (vma.covers(base) and vma.covers(base + PAGES_PER_2M - 1)):
                page_size = "4K"
        map_vpn = self.thp.region_base(vpn) if page_size == "2M" else vpn
        frame = self._alloc_frames(page_size)

        data_cycles = 0.0
        if self.charge_data_alloc:
            nbytes = (PAGES_PER_2M if page_size == "2M" else 1) * 4096
            data_cycles = self.cost_model.cycles(
                nbytes, min(self.fmfi, self.cost_model.fail_fmfi)
            )

        pt_cycles_before = self._pt_alloc_cycles()
        result = self.page_tables.map(map_vpn, frame, page_size)
        pt_cycles = self._pt_alloc_cycles() - pt_cycles_before
        if isinstance(result, int) and result > 0:
            # Radix organization: ``result`` new 4KB nodes were allocated.
            pt_cycles += result * self.cost_model.cycles(
                4096, min(self.fmfi, self.cost_model.fail_fmfi)
            )
        kicks = getattr(result, "kicks", 0) or 0
        reinsert = kicks * self.reinsert_cycles

        total = self.fault_overhead_cycles + data_cycles + pt_cycles + reinsert
        fault = FaultResult(
            page_size=page_size,
            cycles=total,
            data_alloc_cycles=data_cycles,
            pt_alloc_cycles=pt_cycles,
            reinsert_cycles=reinsert,
            kicks=kicks,
        )
        self.totals.absorb(fault)
        if page_size == "2M":
            self.totals.pages_mapped_2m += 1
        else:
            self.totals.pages_mapped_4k += 1
        if self.obs is not None:
            self.obs.emit(
                EVENT_FAULT_SERVICED,
                vpn=vpn, page_size=page_size, cycles=total,
                pt_alloc_cycles=pt_cycles, reinsert_cycles=reinsert,
                data_alloc_cycles=data_cycles, kicks=kicks,
            )
        return fault

    def _pt_alloc_cycles(self) -> float:
        cycles_fn = getattr(self.page_tables, "allocation_cycles", None)
        return cycles_fn() if cycles_fn is not None else 0.0

    # -- convenience -------------------------------------------------------

    def touch(self, vpn: int) -> Tuple[int, str]:
        """Fault ``vpn`` in if needed; return its translation."""
        translated = self.page_tables.translate(vpn)
        if translated is None:
            self.handle_fault(vpn)
            translated = self.page_tables.translate(vpn)
        return translated

    def populate(self, vma: Vma) -> None:
        """Pre-fault every page of ``vma`` (like MAP_POPULATE)."""
        vpn = vma.start_vpn
        while vpn < vma.end_vpn:
            if self.page_tables.translate(vpn) is None:
                fault = self.handle_fault(vpn)
                vpn = (
                    self.thp.region_base(vpn) + PAGES_PER_2M
                    if fault.page_size == "2M"
                    else vpn + 1
                )
            else:
                vpn += 1
